//! Property: a follower replaying the owner-signed log **converges to
//! the owner's exact signed state no matter how delivery mangles the
//! segmentation** — arbitrary record-aligned slicing, overlaps
//! (re-delivery), mid-segment drops, and out-of-order slices. Overlap is
//! absorbed idempotently, a skip is a typed [`FollowError::Gap`] that
//! never half-applies, and resuming from the gap's `expected` sequence
//! (exactly what a reconnect with `have` does) always completes the
//! replay. Convergence is asserted digest-identically: the mirror's
//! full-range answer and VO are byte-equal to the owner's, i.e. the same
//! signature chain. Case counts are bounded and further capped by
//! `PROPTEST_CASES` in CI.

use adp_core::prelude::*;
use adp_core::publisher::Publisher;
use adp_core::wire;
use adp_faults::{FaultPlan, FaultProxy};
use adp_relation::{Column, KeyRange, Record, Schema, SelectQuery, Table, Value, ValueType};
use adp_server::follow::apply_segment;
use adp_server::{
    FollowError, FollowEvent, FollowStart, LogFollower, RemoteVerifier, ResilientFollower,
    RetryPolicy, Server, ServerConfig,
};
use adp_store::log::encode_record;
use adp_store::{LogRecord, Store};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::OnceLock;
use std::time::{Duration, Instant};

const BATCHES: usize = 5;

struct Fixture {
    /// The table as signed before any batch (the mirror's bootstrap).
    base_st: SignedTable,
    cert: Certificate,
    /// One encoded log record per owner batch, seqs `0..BATCHES`.
    records: Vec<Vec<u8>>,
    /// The owner's final full-range `(result, vo)` wire bytes: the
    /// digest the mirror must land on exactly.
    expected_result: Vec<u8>,
    expected_vo: Vec<u8>,
}

fn fixture() -> &'static Fixture {
    static FIX: OnceLock<Fixture> = OnceLock::new();
    FIX.get_or_init(|| {
        let mut rng = StdRng::seed_from_u64(0xF0110);
        let owner = Owner::new(512, &mut rng);
        let schema = Schema::new(
            vec![
                Column::new("k", ValueType::Int),
                Column::new("v", ValueType::Text),
            ],
            "k",
        );
        let mut t = Table::new("mirror", schema);
        for i in 0..8i64 {
            t.insert(Record::new(vec![
                Value::Int(100 + i * 50),
                Value::from(format!("r{i}")),
            ]))
            .unwrap();
        }
        let base_st = owner
            .sign_table(t, Domain::new(0, 10_000), SchemeConfig::default())
            .unwrap();
        let cert = owner.certificate(&base_st);
        let mut st = base_st.clone();
        let batches = [
            vec![Mutation::Insert(Record::new(vec![
                Value::Int(125),
                Value::from("a"),
            ]))],
            vec![Mutation::Delete {
                key: 300,
                replica: 0,
            }],
            vec![
                Mutation::Insert(Record::new(vec![Value::Int(475), Value::from("b")])),
                Mutation::Insert(Record::new(vec![Value::Int(476), Value::from("c")])),
            ],
            vec![Mutation::Delete {
                key: 100,
                replica: 0,
            }],
            vec![Mutation::Insert(Record::new(vec![
                Value::Int(9_000),
                Value::from("d"),
            ]))],
        ];
        let records = batches
            .into_iter()
            .enumerate()
            .map(|(seq, ops)| {
                let report = owner.apply_batch(&mut st, ops).unwrap();
                encode_record(&LogRecord {
                    seq: seq as u64,
                    ops: report.ops,
                    resigned: report.resigned,
                })
            })
            .collect();
        let (rows, vo) = Publisher::new(&st)
            .answer_select(&SelectQuery::range(KeyRange::all()))
            .unwrap();
        Fixture {
            base_st,
            cert,
            records,
            expected_result: wire::encode_records(&rows),
            expected_vo: wire::encode_vo(&vo),
        }
    })
}

fn fresh_dir() -> PathBuf {
    static SEQ: AtomicU32 = AtomicU32::new(0);
    std::env::temp_dir().join(format!(
        "adp-follow-conv-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ))
}

/// Starts a mirror server bootstrapped from the fixture's base table.
fn mirror_server() -> (adp_server::ServerHandle, PathBuf) {
    let fx = fixture();
    let dir = fresh_dir();
    let store = Store::create_at(&dir, fx.base_st.clone(), 0).unwrap();
    let mut server = Server::new(ServerConfig::default());
    server.add_store(0, store);
    (server.serve("127.0.0.1:0").unwrap(), dir)
}

/// The mirror's full-range answer must be byte-identical to the owner's.
fn assert_digest_identical(handle: &adp_server::ServerHandle) -> Result<(), TestCaseError> {
    let fx = fixture();
    let mut user = RemoteVerifier::connect(handle.addr(), fx.cert.clone(), 0).unwrap();
    let (_, result, vo) = user
        .select_with_bytes(&SelectQuery::range(KeyRange::all()))
        .expect("converged mirror must verify");
    prop_assert_eq!(&result, &fx.expected_result);
    prop_assert_eq!(&vo, &fx.expected_vo);
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Arbitrary record-aligned delivery: each event ships `len` records
    /// starting at `start` — overlapping already-applied records
    /// (re-delivery after a resume), stopping short (mid-segment drop),
    /// or skipping ahead (lost segment). After every gap, resume from
    /// the mirror's own head, as a reconnect with `have` would. The
    /// mirror always converges to the owner's exact digest.
    #[test]
    fn any_delivery_interleaving_converges(
        events in prop::collection::vec((0usize..BATCHES, 1usize..=BATCHES), 0..6),
    ) {
        let fx = fixture();
        let (handle, dir) = mirror_server();
        for (start, len) in events {
            let end = (start + len).min(BATCHES);
            let mut seg = Vec::new();
            for r in &fx.records[start..end] {
                seg.extend_from_slice(r);
            }
            let head = handle.table_epoch(0).unwrap();
            match apply_segment(&handle, 0, &seg) {
                Ok(new_head) => {
                    // Applied through the slice's end, or skipped it
                    // entirely if it was all stale.
                    prop_assert_eq!(new_head, (end as u64).max(head));
                }
                Err(FollowError::Gap { expected, got }) => {
                    prop_assert_eq!(expected, head);
                    prop_assert!(got > expected);
                    // Reconnect-with-resume: ship everything from the
                    // mirror's head.
                    let mut resume = Vec::new();
                    for r in &fx.records[head as usize..] {
                        resume.extend_from_slice(r);
                    }
                    prop_assert_eq!(
                        apply_segment(&handle, 0, &resume).unwrap(),
                        BATCHES as u64
                    );
                }
                Err(other) => return Err(TestCaseError::fail(format!(
                    "honest records may only fail as Gap, got {other:?}"
                ))),
            }
        }
        // Final catch-up (a last resume) completes the replay.
        let head = handle.table_epoch(0).unwrap() as usize;
        let mut rest = Vec::new();
        for r in &fx.records[head..] {
            rest.extend_from_slice(r);
        }
        prop_assert_eq!(apply_segment(&handle, 0, &rest).unwrap(), BATCHES as u64);
        assert_digest_identical(&handle)?;
        handle.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// A mid-segment connection drop at any byte boundary either fails
    /// typed (torn record: CRC/truncation) or applies a record-aligned
    /// prefix — never a torn state — and the resume converges.
    #[test]
    fn mid_segment_drop_then_resume_converges(cut in 0usize..1 << 16) {
        let fx = fixture();
        let full: Vec<u8> = fx.records.iter().flatten().copied().collect();
        let cut = cut % full.len();
        let (handle, dir) = mirror_server();
        match apply_segment(&handle, 0, &full[..cut]) {
            Ok(head) => {
                // A record-aligned prefix: exactly `head` whole records.
                let aligned: usize = fx.records[..head as usize].iter().map(Vec::len).sum();
                prop_assert_eq!(aligned, cut);
            }
            Err(FollowError::Store(_)) => {} // torn record, typed
            Err(other) => return Err(TestCaseError::fail(format!(
                "torn segment must fail as a store error, got {other:?}"
            ))),
        }
        // The epoch equals the number of whole records applied — resume
        // from there, exactly as a reconnect with `have` would.
        let head = handle.table_epoch(0).unwrap() as usize;
        let mut rest = Vec::new();
        for r in &fx.records[head..] {
            rest.extend_from_slice(r);
        }
        prop_assert_eq!(apply_segment(&handle, 0, &rest).unwrap(), BATCHES as u64);
        assert_digest_identical(&handle)?;
        handle.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// Starts an upstream server whose store holds the fixture's full log.
fn upstream_server() -> (adp_server::ServerHandle, PathBuf) {
    let fx = fixture();
    let up_dir = fresh_dir();
    Store::create_at(&up_dir, fx.base_st.clone(), 0).unwrap();
    let mut upstream = Server::new(ServerConfig::default());
    upstream.open_store(0, &up_dir).unwrap();
    let up_handle = upstream.serve("127.0.0.1:0").unwrap();
    for rec in &fx.records {
        for r in adp_store::log::decode_records(rec).unwrap() {
            up_handle.apply_update(0, &r.ops, &r.resigned).unwrap();
        }
    }
    (up_handle, up_dir)
}

/// Chaos driver: a [`ResilientFollower`] mirrors the upstream through a
/// [`FaultProxy`] driven by `seed`'s [`FaultPlan`] — drops, delays,
/// stale duplicates, mid-frame closes, connection refusals — and must
/// converge to the owner's exact digest with **zero manual
/// intervention**: every recovery action below (reset + refetch from the
/// mirror's own cursor) is what the self-healing loop does on its own.
/// A flaky network may delay convergence; it must never corrupt it.
fn chaos_converges(seed: u64) -> Result<(), TestCaseError> {
    let (up_handle, up_dir) = upstream_server();

    // Fault the first few connections, then let the link heal — like a
    // real outage, the chaos window is finite.
    let plan = FaultPlan::new(seed).with_faulty_conns(4).with_horizon(2048);
    let proxy = FaultProxy::start(up_handle.addr(), plan).unwrap();

    let (handle, dir) = mirror_server();
    let retry = RetryPolicy {
        max_retries: 4,
        base: Duration::from_millis(1),
        max_backoff: Duration::from_millis(20),
        seed,
    };
    let mut follower = ResilientFollower::new(proxy.addr(), 0, retry).unwrap();
    follower.set_segment_timeout(Some(Duration::from_millis(150)));
    // A swallowed handshake reply must cost one backoff step, not the
    // 30s default.
    follower.set_handshake_timeout(Duration::from_millis(500));

    let deadline = Instant::now() + Duration::from_secs(30);
    let mut head = handle.table_epoch(0).unwrap();
    while head < BATCHES as u64 {
        prop_assert!(
            Instant::now() < deadline,
            "chaos seed {} did not converge within 30s (head {})",
            seed,
            head
        );
        let records = match follower.next_event(Some(head)) {
            Ok(FollowEvent::Backlog(r)) | Ok(FollowEvent::Segment(r)) => r,
            // The upstream never compacts here: a snapshot can only be a
            // desynced stream. Quiet windows (dropped backlog) and
            // exhausted budgets heal the same way: drop the connection
            // and refetch from the cursor.
            Ok(FollowEvent::Snapshot(_)) | Err(_) => {
                follower.reset();
                continue;
            }
        };
        match apply_segment(&handle, 0, &records) {
            Ok(new_head) => head = new_head,
            // Torn, gapped, or duplicated delivery is refused typed and
            // atomically — refetch from the (unchanged) cursor.
            Err(_) => {
                follower.reset();
                head = handle.table_epoch(0).unwrap();
            }
        }
    }
    assert_digest_identical(&handle)?;

    handle.shutdown();
    proxy.stop();
    up_handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&up_dir);
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Arbitrary fault plans converge digest-identically.
    #[test]
    fn arbitrary_fault_plans_converge(seed in any::<u64>()) {
        chaos_converges(seed)?;
    }
}

/// The CI fault-matrix grid: committed seeds, so every PR replays the
/// exact same chaos byte-for-byte (`FaultPlan` and the retry jitter are
/// both deterministic in the seed). If one of these ever fails, the seed
/// reproduces it locally: `chaos_converges(SEED)`.
#[test]
fn committed_chaos_seeds_converge() {
    for seed in [
        0x8A05_0001,
        0x8A05_0002,
        0x8A05_0003,
        0xDEAD_BEEF,
        0x0BAD_CAFE,
        0xFEED_F00D,
    ] {
        chaos_converges(seed).unwrap_or_else(|e| panic!("seed {seed:#x}: {e:?}"));
    }
}

/// The resume path over a real socket: a mirror that followed part of
/// the log reconnects with `have = head` and receives exactly the
/// missing backlog — converging to the same digest as a fresh bootstrap.
#[test]
fn reconnect_with_resume_over_the_wire() {
    let fx = fixture();

    // Upstream: owner's store with all five batches in its log.
    let (up_handle, up_dir) = upstream_server();

    // Mirror that got through two records before "disconnecting".
    let (handle, dir) = mirror_server();
    let mut partial = fx.records[0].clone();
    partial.extend_from_slice(&fx.records[1]);
    assert_eq!(apply_segment(&handle, 0, &partial).unwrap(), 2);

    // Reconnect with have=2: the backlog is records 2..5, nothing more.
    let (_conn, start) = LogFollower::connect(up_handle.addr(), 0, Some(2)).unwrap();
    let backlog = match start {
        FollowStart::Backlog(b) => b,
        FollowStart::Snapshot(_) => panic!("resume within the log must not re-bootstrap"),
    };
    let seqs: Vec<u64> = adp_store::log::decode_records(&backlog)
        .unwrap()
        .iter()
        .map(|r| r.seq)
        .collect();
    assert_eq!(seqs, vec![2, 3, 4]);
    assert_eq!(apply_segment(&handle, 0, &backlog).unwrap(), BATCHES as u64);
    assert_digest_identical(&handle).unwrap();

    // A resume from the head gets an empty, caught-up backlog.
    let (_conn, start) = LogFollower::connect(up_handle.addr(), 0, Some(BATCHES as u64)).unwrap();
    match start {
        FollowStart::Backlog(b) => assert!(adp_store::log::decode_records(&b).unwrap().is_empty()),
        FollowStart::Snapshot(_) => panic!("caught-up resume must ack with an empty backlog"),
    }

    handle.shutdown();
    up_handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&up_dir);
}
