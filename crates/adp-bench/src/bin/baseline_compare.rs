//! Reproduces the paper's evaluation across all four schemes — the
//! `adp-core` signature chain vs the Devanbu Merkle tree \[10\], the Ma
//! aggregated-signature scheme \[13\], and the VB-tree \[20\] — over a
//! shared workload grid, and keeps `docs/EVALUATION.md` provably in sync
//! with the code. See `adp_bench::compare` for the harness itself.
//!
//! ```text
//! cargo run --release -p adp-bench --bin baseline_compare            # full grid,
//!                                  #   prints tables, writes BENCH_PR5.json
//!     -- --write-doc               # …and regenerates docs/EVALUATION.md's
//!                                  #   generated region in place
//!     -- --check                   # re-derive every deterministic cell and
//!                                  #   fail if the committed doc/snapshot drifted
//!     -- --tiny [--out P]          # seconds-scale smoke grid (CI)
//!     -- --out P --doc P --label L # path/label overrides
//! ```
//!
//! `ADP_PERF_SAMPLES` bounds timing samples exactly as in
//! `perf_trajectory`; `--check` takes no timings at all, so it is fast
//! and machine-independent.

use adp_bench::compare;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match compare::parse_args(&args) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("baseline_compare: {e}");
            std::process::exit(2);
        }
    };
    if let Err(e) = compare::run(&opts) {
        eprintln!("baseline_compare: {e}");
        std::process::exit(1);
    }
}
