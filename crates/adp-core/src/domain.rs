//! The ordered key domain `(L, U)` and query-range normalization.
//!
//! Section 3.1: the owner publishes a domain `(L, U)` known to everyone and
//! inserts two fictitious *delimiter* entries `r_0` and `r_{n+1}` into the
//! sorted list. In this implementation the delimiters sit at the fixed
//! values `L+1` and `U-1`, and real keys are confined to `[L+2, U-2]`, so
//! the delimiters are always strict extremes regardless of later updates.
//!
//! Query bounds are normalized to a closed interval `[α, β]` with
//! `L+2 ≤ α` and `β ≤ U-2`: a query's half-open or unbounded sides are
//! clamped — this never changes the answer (no real key lies outside) and
//! guarantees the chain exponents `δ_e = α - r_{a-1}.K - 1` and
//! `r_{b+1}.K - β - 1` are non-negative for honest boundaries, including
//! delimiter boundaries.

use adp_relation::KeyRange;
use std::ops::Bound;

/// The public key domain `(L, U)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Domain {
    l: i64,
    u: i64,
}

impl Domain {
    /// Creates a domain. Requires room for the two delimiters plus at least
    /// one real key: `u - l >= 4`.
    pub fn new(l: i64, u: i64) -> Self {
        assert!(u > l, "domain upper bound must exceed lower bound");
        assert!(
            (u as i128 - l as i128) >= 4,
            "domain must have width >= 4 to hold delimiters and keys"
        );
        Domain { l, u }
    }

    /// A domain comfortably holding 32-bit keys (the paper's running
    /// assumption: `m = log_B 2^32` for integer keys).
    pub fn u32_keys() -> Self {
        Domain::new(-2, (1i64 << 32) + 2)
    }

    /// Lower bound `L` (exclusive for keys).
    pub fn l(&self) -> i64 {
        self.l
    }

    /// Upper bound `U` (exclusive for keys).
    pub fn u(&self) -> i64 {
        self.u
    }

    /// The left delimiter's key value (`L + 1`).
    pub fn left_delimiter(&self) -> i64 {
        self.l + 1
    }

    /// The right delimiter's key value (`U - 1`).
    pub fn right_delimiter(&self) -> i64 {
        self.u - 1
    }

    /// Smallest legal real key (`L + 2`).
    pub fn key_min(&self) -> i64 {
        self.l + 2
    }

    /// Largest legal real key (`U - 2`).
    pub fn key_max(&self) -> i64 {
        self.u - 2
    }

    /// Whether `k` is a legal real key.
    pub fn contains_key(&self, k: i64) -> bool {
        k >= self.key_min() && k <= self.key_max()
    }

    /// Domain width `U - L` (fits u64 for any i64 pair).
    pub fn width(&self) -> u64 {
        (self.u as i128 - self.l as i128) as u64
    }

    /// `δ_t` for the *up* chain of key `k`: `U - k - 1`.
    pub fn delta_up(&self, k: i64) -> u64 {
        debug_assert!(k > self.l && k < self.u);
        (self.u as i128 - k as i128 - 1) as u64
    }

    /// `δ_t` for the *down* chain of key `k`: `k - L - 1`.
    pub fn delta_down(&self, k: i64) -> u64 {
        debug_assert!(k > self.l && k < self.u);
        (k as i128 - self.l as i128 - 1) as u64
    }

    /// `δ_c` for an origin check against `α`: `U - α` (the number of extra
    /// hash steps the *user* applies to the up-chain intermediate digests).
    pub fn delta_up_query(&self, alpha: i64) -> u64 {
        (self.u as i128 - alpha as i128) as u64
    }

    /// `δ_c` for a terminal check against `β`: `β - L`.
    pub fn delta_down_query(&self, beta: i64) -> u64 {
        (beta as i128 - self.l as i128) as u64
    }

    /// `δ_e` for the up direction: `α - k - 1`; `None` if `k >= α`
    /// (undefined — exactly the unforgeability property of Case 1).
    pub fn delta_up_evidence(&self, k: i64, alpha: i64) -> Option<u64> {
        let d = alpha as i128 - k as i128 - 1;
        if d < 0 {
            None
        } else {
            Some(d as u64)
        }
    }

    /// `δ_e` for the down direction: `k - β - 1`; `None` if `k <= β`.
    pub fn delta_down_evidence(&self, k: i64, beta: i64) -> Option<u64> {
        let d = k as i128 - beta as i128 - 1;
        if d < 0 {
            None
        } else {
            Some(d as u64)
        }
    }

    /// Normalizes a [`KeyRange`] into closed bounds `[α, β]` clamped to the
    /// legal key interval. Returns `None` if the normalized range is empty
    /// *by construction* (e.g. `K > 5 AND K < 6` over integers), in which
    /// case an empty result needs no cryptographic proof.
    pub fn normalize(&self, range: &KeyRange) -> Option<QueryBounds> {
        let alpha = match range.lo {
            Bound::Unbounded => self.key_min(),
            Bound::Included(a) => a.max(self.key_min()),
            Bound::Excluded(a) => {
                if a >= self.key_max() {
                    return None;
                }
                (a.saturating_add(1)).max(self.key_min())
            }
        };
        let beta = match range.hi {
            Bound::Unbounded => self.key_max(),
            Bound::Included(b) => b.min(self.key_max()),
            Bound::Excluded(b) => {
                if b <= self.key_min() {
                    return None;
                }
                (b.saturating_sub(1)).min(self.key_max())
            }
        };
        if alpha > beta {
            return None;
        }
        Some(QueryBounds { alpha, beta })
    }
}

/// Normalized closed query bounds `α ≤ K ≤ β` within the legal key range.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct QueryBounds {
    pub alpha: i64,
    pub beta: i64,
}

impl QueryBounds {
    /// Whether a key falls inside the bounds.
    pub fn contains(&self, k: i64) -> bool {
        k >= self.alpha && k <= self.beta
    }
}

/// Canonical byte encoding of a key for hashing into chains.
pub fn key_bytes(k: i64) -> [u8; 8] {
    k.to_le_bytes()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delimiters_and_key_bounds() {
        let d = Domain::new(0, 100_000);
        assert_eq!(d.left_delimiter(), 1);
        assert_eq!(d.right_delimiter(), 99_999);
        assert_eq!(d.key_min(), 2);
        assert_eq!(d.key_max(), 99_998);
        assert!(d.contains_key(2) && d.contains_key(99_998));
        assert!(!d.contains_key(1) && !d.contains_key(99_999));
        assert_eq!(d.width(), 100_000);
    }

    #[test]
    fn paper_example_deltas() {
        // Section 3.1 example: range (0, 100000), g(r) = h^{U-r-1}(r).
        let d = Domain::new(0, 100_000);
        assert_eq!(d.delta_up(7), 99_992);
        assert_eq!(d.delta_up(2000), 97_999);
        assert_eq!(d.delta_up(3500), 96_499);
        // Publisher returns h^{α - 8010 - 1} = h^{1989} for α = 10000.
        assert_eq!(d.delta_up_evidence(8010, 10_000), Some(1989));
        // User hashes (U - α) = 90000 more times.
        assert_eq!(d.delta_up_query(10_000), 90_000);
        assert_eq!(1989 + 90_000, d.delta_up(8010));
        // Right delimiter 88888: g = h^{11111}.
        assert_eq!(d.delta_up(88_888), 11_111);
    }

    #[test]
    fn down_direction_mirror() {
        let d = Domain::new(0, 100_000);
        // δ't = k - L - 1.
        assert_eq!(d.delta_down(8010), 8009);
        // Publisher proves r_{b+1} > β via h^{k - β - 1}.
        assert_eq!(d.delta_down_evidence(12_100, 10_000), Some(2099));
        // User hashes (β - L) more times, landing on δ't.
        assert_eq!(d.delta_down_query(10_000), 10_000);
        assert_eq!(2099 + 10_000, d.delta_down(12_100));
    }

    #[test]
    fn down_evidence_algebra() {
        let d = Domain::new(0, 100_000);
        // (k - β - 1) + (β - L) must equal k - L - 1 for all honest pairs.
        for (k, beta) in [(12_100i64, 10_000i64), (50, 2), (99_998, 99_997)] {
            let e = d.delta_down_evidence(k, beta).unwrap();
            assert_eq!(
                e + d.delta_down_query(beta),
                d.delta_down(k),
                "k={k} β={beta}"
            );
        }
    }

    #[test]
    fn evidence_undefined_for_violations() {
        let d = Domain::new(0, 100_000);
        // Case 1: r_{a-1} >= α ⇒ undefined.
        assert_eq!(d.delta_up_evidence(10_000, 10_000), None);
        assert_eq!(d.delta_up_evidence(10_001, 10_000), None);
        // Boundary exactly one below is fine (δ_e = 0 is allowed).
        assert_eq!(d.delta_up_evidence(9_999, 10_000), Some(0));
        assert_eq!(d.delta_down_evidence(10_000, 10_000), None);
        assert_eq!(d.delta_down_evidence(10_001, 10_000), Some(0));
    }

    #[test]
    fn normalization() {
        let d = Domain::new(0, 100_000);
        // K < 10000 → [2, 9999].
        let b = d.normalize(&KeyRange::less_than(10_000)).unwrap();
        assert_eq!((b.alpha, b.beta), (2, 9_999));
        // K >= 10000 → [10000, 99998].
        let b = d.normalize(&KeyRange::at_least(10_000)).unwrap();
        assert_eq!((b.alpha, b.beta), (10_000, 99_998));
        // Full scan.
        let b = d.normalize(&KeyRange::all()).unwrap();
        assert_eq!((b.alpha, b.beta), (2, 99_998));
        // Point query.
        let b = d.normalize(&KeyRange::point(42)).unwrap();
        assert_eq!((b.alpha, b.beta), (42, 42));
        // Empty by construction.
        assert!(d
            .normalize(&KeyRange {
                lo: Bound::Excluded(5),
                hi: Bound::Excluded(6)
            })
            .is_none());
        assert!(d.normalize(&KeyRange::closed(10, 5)).is_none());
        // Clamping out-of-domain bounds.
        let b = d.normalize(&KeyRange::closed(-500, 500_000)).unwrap();
        assert_eq!((b.alpha, b.beta), (2, 99_998));
    }

    #[test]
    fn delimiter_boundary_evidence_always_defined() {
        // For any normalized [α, β] the delimiters can serve as boundaries:
        // left delimiter key < α and right delimiter key > β must have
        // non-negative evidence exponents.
        let d = Domain::new(0, 1_000);
        for alpha in [d.key_min(), 57, d.key_max()] {
            assert!(
                d.delta_up_evidence(d.left_delimiter(), alpha).is_some(),
                "α={alpha}"
            );
        }
        for beta in [d.key_min(), 57, d.key_max()] {
            assert!(
                d.delta_down_evidence(d.right_delimiter(), beta).is_some(),
                "β={beta}"
            );
        }
    }

    #[test]
    fn negative_domain_bounds() {
        let d = Domain::new(-1_000, 1_000);
        assert_eq!(d.width(), 2_000);
        assert_eq!(d.delta_up(-500), 1_499);
        assert_eq!(d.delta_down(-500), 499);
        assert!(d.contains_key(-998));
    }

    #[test]
    #[should_panic(expected = "width >= 4")]
    fn tiny_domain_rejected() {
        let _ = Domain::new(0, 3);
    }
}
