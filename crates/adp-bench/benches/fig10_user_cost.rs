//! **Figure 10** reproduction: user computation overhead vs number base
//! `B`, for result sizes {1, 5, 10} over a 32-bit key domain.
//!
//! Three views per (B, |Q|):
//! * the paper's analytic formula (5) with Table 1 constants (`C_hash` =
//!   50 µs, `C_sign` = 5 ms) — the exact Figure 10 curves;
//! * the *measured hash-operation count* of this implementation's verifier
//!   (hardware-independent; comparable to the formula's bracketed term);
//! * measured wall-clock verification time on this machine.
//!
//! Expected shape: minimum at B ∈ {2, 3} (the paper: 2 < B < 3), rising
//! toward B = 10.

use adp_bench::{bench_owner_small, f2, TablePrinter};
use adp_core::costmodel::{self, CostParams, FIG10_RESULT_SIZES};
use adp_core::prelude::*;
use adp_relation::{Column, KeyRange, Record, Schema, SelectQuery, Table, Value, ValueType};
use std::time::Instant;

fn main() {
    let params = CostParams::default();

    println!("\n=== Figure 10 (analytic, formula (5), 32-bit key domain) ===\n");
    let t = TablePrinter::new(&["B", "m", "q=1 (ms)", "q=5 (ms)", "q=10 (ms)"]);
    for row in costmodel::figure10(&params) {
        let cells: Vec<String> = vec![
            row.base.to_string(),
            row.m.to_string(),
            f2(row.cuser_ms[0]),
            f2(row.cuser_ms[1]),
            f2(row.cuser_ms[2]),
        ];
        t.row(&cells.iter().map(String::as_str).collect::<Vec<_>>());
    }

    println!("\n=== Figure 10 (measured: this implementation, 32-bit domain) ===\n");
    // A small table inside a 2^32-wide domain: the verification cost
    // depends on the domain (chain lengths), not the table size.
    let domain = Domain::new(0, (1i64 << 32) + 4);
    let schema = Schema::new(vec![Column::new("k", ValueType::Int)], "k");
    let owner = bench_owner_small();
    let t = TablePrinter::new(&[
        "B",
        "q",
        "hash ops",
        "formula ops",
        "measured ms",
        "ops x 50us + 5ms",
    ]);
    for base in [2u32, 3, 4, 6, 8, 10] {
        let mut table = Table::new("f10", schema.clone());
        for i in 0..12i64 {
            table
                .insert(Record::new(vec![Value::Int(domain.key_min() + i * 1000)]))
                .unwrap();
        }
        let st = owner
            .sign_table(table, domain, SchemeConfig::with_base(base))
            .unwrap();
        let cert = owner.certificate(&st);
        let publisher = Publisher::new(&st);
        for &q in &FIG10_RESULT_SIZES {
            let beta = domain.key_min() + (q as i64 - 1) * 1000;
            let query = SelectQuery::range(KeyRange::closed(domain.key_min(), beta));
            let (result, vo) = publisher.answer_select(&query).unwrap();
            assert_eq!(result.len() as u64, q);
            // Hash-operation count of one verification.
            adp_crypto::reset_hash_ops();
            verify_select(&cert, &query, &result, &vo).unwrap();
            let ops = adp_crypto::hash_ops();
            // Wall-clock (averaged).
            let iters = 20;
            let start = Instant::now();
            for _ in 0..iters {
                verify_select(&cert, &query, &result, &vo).unwrap();
            }
            let measured_ms = start.elapsed().as_secs_f64() * 1000.0 / iters as f64;
            let m = costmodel::paper_m(base, 1u64 << 32);
            let formula_ops = costmodel::cuser_hashes(base, m, q);
            let projected = ops as f64 * params.c_hash_us / 1000.0 + params.c_sign_ms;
            let cells = [
                base.to_string(),
                q.to_string(),
                ops.to_string(),
                formula_ops.to_string(),
                format!("{measured_ms:.3}"),
                f2(projected),
            ];
            t.row(&cells.iter().map(String::as_str).collect::<Vec<_>>());
        }
    }
    println!(
        "\nShape check: both the formula and the measured hash-op counts have\n\
         their minimum at B = 2..3 and grow toward B = 10 (the paper: the\n\
         optimum lies at 2 < B < 3). Measured counts sit above the formula's\n\
         bracketed term by the Merkle/attribute bookkeeping the model omits.\n"
    );
}
