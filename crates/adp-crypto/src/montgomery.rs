//! Montgomery modular multiplication (CIOS) for fast `mod_pow` with odd
//! moduli — the case of every RSA operation and every Miller–Rabin round.
//!
//! Replaces the multiply-then-Knuth-divide inner loop of square-and-multiply
//! with reduction-free limb arithmetic: `a·b·R⁻¹ mod n` in a single pass,
//! where `R = 2^(64·s)`.
//!
//! # Hot-path structure
//!
//! The RSA widths this workspace actually runs — 512-bit CRT halves of a
//! 1024-bit key and the 512/1024-bit moduli themselves — are 8 and 16 limbs.
//! Those widths get dedicated CIOS kernels whose loop bounds are compile-time
//! constants (fully unrolled, no bounds checks, no spills to `Vec`), plus a
//! dedicated squaring kernel (`mont_sqr`) that computes the half product and
//! doubles it, saving ~25% of the 64×64 multiplies on the squarings that
//! dominate an exponentiation ladder. Every other width falls back to a
//! generic loop over a stack scratch buffer (heap only beyond 64 limbs).
//!
//! Exponentiation uses left-to-right *sliding windows* over a table of odd
//! powers, and the whole ladder runs on two reusable scratch buffers — no
//! allocation inside the loop. Contexts are designed to be built once and
//! cached (see `PublicKey`/`Keypair` in [`crate::rsa`]): construction pays
//! one `R² mod n` division so that steady-state calls never divide at all.

use crate::bigint::BigUint;

/// Widths at or below this run the generic kernel on a stack buffer;
/// anything larger (>4096-bit moduli) falls back to a heap scratch.
const MAX_STACK_LIMBS: usize = 64;

/// Precomputed context for a fixed odd modulus.
#[derive(Clone)]
pub struct MontgomeryCtx {
    /// Modulus limbs, little-endian, length `s`.
    n: Vec<u64>,
    /// `-n[0]^{-1} mod 2^64`.
    n0_inv: u64,
    /// `R² mod n` (for converting into Montgomery form).
    r2: Vec<u64>,
    /// `R mod n` — the Montgomery form of 1.
    r1: Vec<u64>,
}

/// One CIOS round: accumulate `ai·b` into `t`, then divide by 2^64 after
/// adding `m·n`. Factored as a macro so the fixed-width kernels inline it
/// with constant trip counts.
macro_rules! cios_round {
    ($t:ident, $ai:expr, $b:ident, $n:ident, $n0_inv:expr, $s:expr) => {{
        // t += ai * b
        let ai = $ai;
        let mut carry: u128 = 0;
        for j in 0..$s {
            let sum = $t[j] as u128 + ai as u128 * $b[j] as u128 + carry;
            $t[j] = sum as u64;
            carry = sum >> 64;
        }
        let sum = $t[$s] as u128 + carry;
        $t[$s] = sum as u64;
        $t[$s + 1] = $t[$s + 1].wrapping_add((sum >> 64) as u64);

        // m = t[0] * n0_inv mod 2^64; t = (t + m*n) / 2^64
        let m = $t[0].wrapping_mul($n0_inv);
        let sum = $t[0] as u128 + m as u128 * $n[0] as u128;
        let mut carry = sum >> 64; // low limb is zero by construction
        for j in 1..$s {
            let sum = $t[j] as u128 + m as u128 * $n[j] as u128 + carry;
            $t[j - 1] = sum as u64;
            carry = sum >> 64;
        }
        let sum = $t[$s] as u128 + carry;
        $t[$s - 1] = sum as u64;
        let sum2 = $t[$s + 1] as u128 + (sum >> 64);
        $t[$s] = sum2 as u64;
        $t[$s + 1] = (sum2 >> 64) as u64;
    }};
}

/// Fixed-width CIOS multiplication kernel: `$s` is a literal, so every loop
/// has a constant trip count and the slices collapse to register arrays.
macro_rules! cios_fixed {
    ($name:ident, $s:literal) => {
        fn $name(out: &mut [u64], a: &[u64], b: &[u64], n: &[u64], n0_inv: u64) {
            let a: &[u64; $s] = a[..$s].try_into().unwrap();
            let b: &[u64; $s] = b[..$s].try_into().unwrap();
            let n: &[u64; $s] = n[..$s].try_into().unwrap();
            let mut t = [0u64; $s + 2];
            for i in 0..$s {
                cios_round!(t, a[i], b, n, n0_inv, $s);
            }
            reduce_once(&mut out[..$s], &t[..$s + 1], n);
        }
    };
}

cios_fixed!(cios_mul_8, 8);
cios_fixed!(cios_mul_16, 16);

/// Fixed-width Montgomery squaring: computes the upper-triangle product
/// once, doubles it, adds the diagonal, then runs a word-by-word Montgomery
/// reduction over the double-width result (SOS). `s(s-1)/2 + s` multiplies
/// for the square plus `s²` for the reduction, vs `2s² + s` for CIOS.
macro_rules! sqr_fixed {
    ($name:ident, $s:literal) => {
        fn $name(out: &mut [u64], a: &[u64], n: &[u64], n0_inv: u64) {
            let a: &[u64; $s] = a[..$s].try_into().unwrap();
            let n: &[u64; $s] = n[..$s].try_into().unwrap();
            let mut w = [0u64; 2 * $s + 1];
            square_wide(&mut w, a);
            mont_reduce_wide(&mut w, n, n0_inv, $s);
            reduce_once(&mut out[..$s], &w[$s..2 * $s + 1], n);
        }
    };
}

sqr_fixed!(cios_sqr_8, 8);
sqr_fixed!(cios_sqr_16, 16);

/// `w[..2s] = a²` via the squaring shortcut: cross products once, doubled,
/// plus the diagonal. `w` must be zeroed on entry (one extra top limb is
/// left untouched for the reduction's carry room).
#[inline]
fn square_wide(w: &mut [u64], a: &[u64]) {
    let s = a.len();
    // Upper triangle: w[i+j] += a[i]·a[j] for i < j.
    for i in 0..s {
        let ai = a[i];
        let mut carry: u128 = 0;
        for j in i + 1..s {
            let cur = w[i + j] as u128 + ai as u128 * a[j] as u128 + carry;
            w[i + j] = cur as u64;
            carry = cur >> 64;
        }
        w[i + s] = carry as u64; // this slot is untouched so far
    }
    // Double (the triangle counts each cross product once).
    let mut top = 0u64;
    for limb in w[..2 * s].iter_mut() {
        let new_top = *limb >> 63;
        *limb = (*limb << 1) | top;
        top = new_top;
    }
    // Diagonal a[i]² at positions 2i, 2i+1.
    let mut carry: u128 = 0;
    for i in 0..s {
        let sq = a[i] as u128 * a[i] as u128;
        let lo = w[2 * i] as u128 + (sq as u64) as u128 + carry;
        w[2 * i] = lo as u64;
        let hi = w[2 * i + 1] as u128 + (sq >> 64) + (lo >> 64);
        w[2 * i + 1] = hi as u64;
        carry = hi >> 64;
    }
    debug_assert_eq!(carry, 0, "a² fits in 2s limbs");
}

/// In-place Montgomery reduction of the double-width `w` (2s+1 limbs): on
/// exit `w[s..=2s]` holds `(value · R⁻¹ mod n) + k·n` with `k ∈ {0, 1}`.
#[inline]
fn mont_reduce_wide(w: &mut [u64], n: &[u64], n0_inv: u64, s: usize) {
    for i in 0..s {
        let m = w[i].wrapping_mul(n0_inv);
        let mut carry: u128 = 0;
        for j in 0..s {
            let cur = w[i + j] as u128 + m as u128 * n[j] as u128 + carry;
            w[i + j] = cur as u64;
            carry = cur >> 64;
        }
        let mut k = i + s;
        while carry > 0 {
            let cur = w[k] as u128 + carry;
            w[k] = cur as u64;
            carry = cur >> 64;
            k += 1;
        }
    }
}

/// Conditional final subtraction: `t` is `s+1` limbs in `[0, 2n)`; writes
/// the canonical `s`-limb representative into `out`.
#[inline]
fn reduce_once(out: &mut [u64], t: &[u64], n: &[u64]) {
    let s = n.len();
    debug_assert_eq!(t.len(), s + 1);
    let needs_sub = t[s] != 0 || cmp_limbs(&t[..s], n) != std::cmp::Ordering::Less;
    if needs_sub {
        let mut borrow = 0u64;
        for j in 0..s {
            let (d1, b1) = t[j].overflowing_sub(n[j]);
            let (d2, b2) = d1.overflowing_sub(borrow);
            out[j] = d2;
            borrow = (b1 as u64) + (b2 as u64);
        }
    } else {
        out.copy_from_slice(&t[..s]);
    }
}

/// Generic-width CIOS multiplication (stack scratch up to 64 limbs).
fn cios_generic(out: &mut [u64], a: &[u64], b: &[u64], n: &[u64], n0_inv: u64) {
    let s = n.len();
    let mut stack = [0u64; MAX_STACK_LIMBS + 2];
    let mut heap;
    let t: &mut [u64] = if s <= MAX_STACK_LIMBS {
        &mut stack[..s + 2]
    } else {
        heap = vec![0u64; s + 2];
        &mut heap
    };
    for &ai in a.iter().take(s) {
        cios_round!(t, ai, b, n, n0_inv, s);
    }
    reduce_once(out, &t[..s + 1], n);
}

impl MontgomeryCtx {
    /// Builds a context. Returns `None` for even or trivial moduli.
    ///
    /// Construction performs the only divisions this type ever does
    /// (`R² mod n`), so callers should build once per modulus and cache —
    /// `PublicKey`/`Keypair` do exactly that.
    pub fn new(modulus: &BigUint) -> Option<Self> {
        if modulus.is_even() || modulus.is_one() || modulus.is_zero() {
            return None;
        }
        let n = modulus.to_limbs();
        let s = n.len();
        // Newton iteration for the inverse of n[0] modulo 2^64:
        // x_{k+1} = x_k (2 - n0 x_k); 6 steps suffice for 64 bits.
        let n0 = n[0];
        let mut inv = 1u64;
        for _ in 0..6 {
            inv = inv.wrapping_mul(2u64.wrapping_sub(n0.wrapping_mul(inv)));
        }
        debug_assert_eq!(n0.wrapping_mul(inv), 1);
        let n0_inv = inv.wrapping_neg();
        // R² mod n via shifting (R = 2^(64 s)).
        let r2_big = BigUint::one().shl(2 * 64 * s).rem(modulus);
        let mut r2 = r2_big.to_limbs();
        r2.resize(s, 0);
        let mut ctx = MontgomeryCtx {
            n,
            n0_inv,
            r2,
            r1: Vec::new(),
        };
        // R mod n = mont_mul(R², 1).
        ctx.r1 = ctx.leave_mont(&ctx.r2);
        Some(ctx)
    }

    /// Number of limbs `s`.
    fn width(&self) -> usize {
        self.n.len()
    }

    /// CIOS Montgomery multiplication `a · b · R⁻¹ mod n` into `out`.
    /// All slices are `s` limbs; inputs `< n`; `out` must not alias `a`/`b`.
    fn mont_mul_into(&self, out: &mut [u64], a: &[u64], b: &[u64]) {
        match self.width() {
            8 => cios_mul_8(out, a, b, &self.n, self.n0_inv),
            16 => cios_mul_16(out, a, b, &self.n, self.n0_inv),
            _ => cios_generic(out, a, b, &self.n, self.n0_inv),
        }
    }

    /// Montgomery squaring `a² · R⁻¹ mod n` into `out`. Dedicated kernels
    /// at the 8/16-limb fast-path widths; elsewhere squaring via the
    /// multiplication kernel.
    fn mont_sqr_into(&self, out: &mut [u64], a: &[u64]) {
        match self.width() {
            8 => cios_sqr_8(out, a, &self.n, self.n0_inv),
            16 => cios_sqr_16(out, a, &self.n, self.n0_inv),
            _ => cios_generic(out, a, a, &self.n, self.n0_inv),
        }
    }

    /// Reduces `v` below `n` and pads to `s` limbs (Montgomery domain
    /// entry). The in-range case — every RSA operand — is a limb
    /// comparison, no modulus clone or division.
    fn canonical_limbs(&self, v: &BigUint) -> Vec<u64> {
        let s = self.width();
        let mut limbs = v.to_limbs();
        let in_range = limbs.len() < s
            || (limbs.len() == s && cmp_limbs(&limbs, &self.n) == std::cmp::Ordering::Less);
        if !in_range {
            let modulus = BigUint::from_limbs(self.n.clone());
            limbs = v.rem(&modulus).to_limbs();
        }
        limbs.resize(s, 0);
        limbs
    }

    /// Leaves the Montgomery domain: `a · R⁻¹ mod n` (multiplication by a
    /// raw 1). Single exit point for every public entry below, so a future
    /// dedicated reduction only has to land here.
    fn leave_mont(&self, a: &[u64]) -> Vec<u64> {
        let s = self.width();
        let mut one_raw = vec![0u64; s];
        one_raw[0] = 1;
        let mut out = vec![0u64; s];
        self.mont_mul_into(&mut out, a, &one_raw);
        out
    }

    /// `a · b mod n` through the Montgomery kernels. Exercises the same
    /// fixed-width fast paths as `mod_pow`; the differential property suite
    /// checks it against [`BigUint::mul_mod`].
    pub fn mul_mod(&self, a: &BigUint, b: &BigUint) -> BigUint {
        let s = self.width();
        let a = self.canonical_limbs(a);
        let b = self.canonical_limbs(b);
        let mut ma = vec![0u64; s];
        let mut t = vec![0u64; s];
        self.mont_mul_into(&mut ma, &a, &self.r2); // a·R
        self.mont_mul_into(&mut t, &ma, &b); // a·b
        BigUint::from_limbs(t)
    }

    /// `a² mod n` through the dedicated squaring kernel.
    pub fn sqr_mod(&self, a: &BigUint) -> BigUint {
        let s = self.width();
        let a = self.canonical_limbs(a);
        let mut ma = vec![0u64; s];
        self.mont_mul_into(&mut ma, &a, &self.r2); // a·R
        let mut sq = vec![0u64; s];
        self.mont_sqr_into(&mut sq, &ma); // a²·R
        BigUint::from_limbs(self.leave_mont(&sq))
    }

    /// `Π factors mod n`, keeping the accumulator in Montgomery form so
    /// each factor costs two multiplications and zero divisions — the
    /// condensed-RSA aggregation loop (Section 5.2) in one call.
    pub fn product_mod<'a>(&self, factors: impl IntoIterator<Item = &'a BigUint>) -> BigUint {
        let s = self.width();
        let mut acc = self.r1.clone(); // Montgomery form of 1
        let mut mf = vec![0u64; s];
        let mut tmp = vec![0u64; s];
        for f in factors {
            let f = self.canonical_limbs(f);
            self.mont_mul_into(&mut mf, &f, &self.r2);
            self.mont_mul_into(&mut tmp, &acc, &mf);
            std::mem::swap(&mut acc, &mut tmp);
        }
        BigUint::from_limbs(self.leave_mont(&acc))
    }

    /// `base^exp mod n`: left-to-right sliding-window exponentiation over a
    /// table of odd powers, in Montgomery form throughout. The inner ladder
    /// reuses two scratch buffers — no allocation per step.
    pub fn mod_pow(&self, base: &BigUint, exp: &BigUint) -> BigUint {
        let s = self.width();
        if exp.is_zero() {
            return BigUint::one();
        }
        let base_limbs = self.canonical_limbs(base);
        let mut mont_base = vec![0u64; s];
        self.mont_mul_into(&mut mont_base, &base_limbs, &self.r2);

        let bits = exp.bit_len();
        // Window width: a 2^{w-1}-entry table pays off only for exponents
        // long enough to amortize its construction.
        let w: usize = match bits {
            0..=24 => 2,
            25..=96 => 3,
            97..=320 => 4,
            _ => 5,
        };
        let table_len = 1usize << (w - 1);
        // Flat table of odd powers base^1, base^3, …, base^(2^w - 1).
        let mut table = vec![0u64; table_len * s];
        table[..s].copy_from_slice(&mont_base);
        if table_len > 1 {
            let mut base_sq = vec![0u64; s];
            self.mont_sqr_into(&mut base_sq, &mont_base);
            for i in 1..table_len {
                let (prev, cur) = table.split_at_mut(i * s);
                self.mont_mul_into(&mut cur[..s], &prev[(i - 1) * s..], &base_sq);
            }
        }

        let mut acc = vec![0u64; s];
        let mut tmp = vec![0u64; s];
        let mut started = false;
        let mut i = bits as isize - 1;
        while i >= 0 {
            if !exp.bit(i as usize) {
                if started {
                    self.mont_sqr_into(&mut tmp, &acc);
                    std::mem::swap(&mut acc, &mut tmp);
                }
                i -= 1;
                continue;
            }
            // Greedy window [j..=i]: at most `w` bits, ending on a set bit.
            let mut j = (i + 1 - w as isize).max(0);
            while !exp.bit(j as usize) {
                j += 1;
            }
            let mut val = 0usize;
            for b in (j..=i).rev() {
                val = (val << 1) | exp.bit(b as usize) as usize;
            }
            let entry = (val >> 1) * s;
            if started {
                for _ in 0..(i - j + 1) {
                    self.mont_sqr_into(&mut tmp, &acc);
                    std::mem::swap(&mut acc, &mut tmp);
                }
                self.mont_mul_into(&mut tmp, &acc, &table[entry..entry + s]);
                std::mem::swap(&mut acc, &mut tmp);
            } else {
                acc.copy_from_slice(&table[entry..entry + s]);
                started = true;
            }
            i = j - 1;
        }
        BigUint::from_limbs(self.leave_mont(&acc))
    }
}

fn cmp_limbs(a: &[u64], b: &[u64]) -> std::cmp::Ordering {
    debug_assert_eq!(a.len(), b.len());
    for i in (0..a.len()).rev() {
        match a[i].cmp(&b[i]) {
            std::cmp::Ordering::Equal => continue,
            ord => return ord,
        }
    }
    std::cmp::Ordering::Equal
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn rejects_even_or_trivial_moduli() {
        assert!(MontgomeryCtx::new(&BigUint::from_u64(10)).is_none());
        assert!(MontgomeryCtx::new(&BigUint::one()).is_none());
        assert!(MontgomeryCtx::new(&BigUint::zero()).is_none());
        assert!(MontgomeryCtx::new(&BigUint::from_u64(9)).is_some());
    }

    #[test]
    fn matches_plain_mod_pow_small() {
        let m = BigUint::from_u64(1_000_003); // odd
        let ctx = MontgomeryCtx::new(&m).unwrap();
        for (b, e) in [(2u64, 10u64), (3, 0), (0, 5), (999_999, 999), (7, 1)] {
            let base = BigUint::from_u64(b);
            let exp = BigUint::from_u64(e);
            assert_eq!(
                ctx.mod_pow(&base, &exp),
                base.mod_pow_plain(&exp, &m),
                "b={b} e={e}"
            );
        }
    }

    #[test]
    fn matches_plain_mod_pow_random() {
        let mut rng = StdRng::seed_from_u64(0x30);
        // 512 and 1024 hit the fixed-width kernels; the rest the generic.
        for bits in [64usize, 128, 256, 448, 512, 576, 960, 1024, 1088] {
            let mut m = BigUint::random_bits(&mut rng, bits);
            if m.is_even() {
                m = m.add(&BigUint::one());
            }
            let ctx = MontgomeryCtx::new(&m).unwrap();
            for _ in 0..6 {
                let base = BigUint::random_below(&mut rng, &m);
                let exp = BigUint::random_bits(&mut rng, bits / 2);
                assert_eq!(
                    ctx.mod_pow(&base, &exp),
                    base.mod_pow_plain(&exp, &m),
                    "bits={bits}"
                );
            }
        }
    }

    #[test]
    fn mul_and_sqr_match_bigint() {
        let mut rng = StdRng::seed_from_u64(0x31);
        for bits in [120usize, 512, 520, 1024, 1030] {
            let mut m = BigUint::random_bits(&mut rng, bits);
            if m.is_even() {
                m = m.add(&BigUint::one());
            }
            let ctx = MontgomeryCtx::new(&m).unwrap();
            for _ in 0..8 {
                let a = BigUint::random_below(&mut rng, &m);
                let b = BigUint::random_below(&mut rng, &m);
                assert_eq!(ctx.mul_mod(&a, &b), a.mul_mod(&b, &m), "bits={bits}");
                assert_eq!(ctx.sqr_mod(&a), a.mul_mod(&a, &m), "bits={bits}");
            }
        }
    }

    #[test]
    fn product_mod_matches_fold() {
        let mut rng = StdRng::seed_from_u64(0x32);
        let mut m = BigUint::random_bits(&mut rng, 512);
        if m.is_even() {
            m = m.add(&BigUint::one());
        }
        let ctx = MontgomeryCtx::new(&m).unwrap();
        let factors: Vec<BigUint> = (0..9)
            .map(|_| BigUint::random_below(&mut rng, &m))
            .collect();
        let expected = factors
            .iter()
            .fold(BigUint::one(), |acc, f| acc.mul_mod(f, &m));
        assert_eq!(ctx.product_mod(factors.iter()), expected);
        assert_eq!(
            ctx.product_mod(std::iter::empty::<&BigUint>()),
            BigUint::one()
        );
    }

    #[test]
    fn fermat_holds_via_montgomery() {
        let p = BigUint::from_u64(4_294_967_311); // prime
        let ctx = MontgomeryCtx::new(&p).unwrap();
        let exp = p.sub(&BigUint::one());
        for b in [2u64, 3, 65_537] {
            assert_eq!(ctx.mod_pow(&BigUint::from_u64(b), &exp), BigUint::one());
        }
    }
}
