//! Value-generation strategies: the [`Strategy`] trait and the combinators
//! the workspace's property suites use. No shrinking — generation only.

use rand::rngs::StdRng;
use rand::Rng;
use std::marker::PhantomData;
use std::rc::Rc;

/// A recipe for generating values of `Self::Value` from a seeded RNG.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Discards generated values failing `f` (regenerating, bounded).
    fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            whence,
            f,
        }
    }

    /// Type-erases the strategy so heterogeneous strategies of one value
    /// type can live in one collection (`prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// See [`Strategy::boxed`].
pub struct BoxedStrategy<T>(Rc<dyn DynStrategy<T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

trait DynStrategy<T> {
    fn generate_dyn(&self, rng: &mut StdRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn generate_dyn(&self, rng: &mut StdRng) -> S::Value {
        self.generate(rng)
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        self.0.generate_dyn(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn generate(&self, rng: &mut StdRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    f: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn generate(&self, rng: &mut StdRng) -> S::Value {
        for _ in 0..1_000 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter '{}': 1000 consecutive rejections", self.whence);
    }
}

/// Uniform choice among same-valued strategies (`prop_oneof!`).
pub struct OneOf<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> OneOf<T> {
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        OneOf { options }
    }
}

impl<T> Strategy for OneOf<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        let idx = rng.gen_range(0..self.options.len());
        self.options[idx].generate(rng)
    }
}

/// `any::<T>()` — the whole domain of `T`.
pub struct Any<T>(PhantomData<T>);

impl<T> Any<T> {
    pub fn new() -> Self {
        Any(PhantomData)
    }
}

impl<T> Default for Any<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: rand::Standard> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        rng.gen()
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

impl<T> Strategy for std::ops::Range<T>
where
    T: Copy + PartialOrd + rand::SampleUniform + rand::RangeStep,
{
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        rng.gen_range(self.clone())
    }
}

impl<T> Strategy for std::ops::RangeInclusive<T>
where
    T: Copy + PartialOrd + rand::SampleUniform,
{
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        rng.gen_range(self.clone())
    }
}

/// `prop::collection::vec(element, size_range)`.
pub fn vec<S: Strategy>(element: S, sizes: std::ops::Range<usize>) -> VecStrategy<S> {
    assert!(sizes.start < sizes.end, "collection::vec: empty size range");
    VecStrategy { element, sizes }
}

pub struct VecStrategy<S> {
    element: S,
    sizes: std::ops::Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
        let n = rng.gen_range(self.sizes.clone());
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A: 0);
impl_tuple_strategy!(A: 0, B: 1);
impl_tuple_strategy!(A: 0, B: 1, C: 2);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);

/// A `&str` is a regex-lite string strategy, as in upstream proptest.
///
/// Supported subset: literal characters, character classes `[a-z0-9_]`
/// (ranges and singletons), `.` (printable ASCII), and the quantifiers
/// `{n}`, `{lo,hi}`, `?`, `*` (0..=8), `+` (1..=8) applied to the
/// preceding atom. Anything else panics loudly at generation time.
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut StdRng) -> String {
        generate_from_pattern(self, rng)
    }
}

#[derive(Debug)]
enum Atom {
    Literal(char),
    Class(Vec<(char, char)>),
    AnyChar,
}

impl Atom {
    fn emit(&self, rng: &mut StdRng, out: &mut String) {
        match self {
            Atom::Literal(c) => out.push(*c),
            Atom::AnyChar => out.push(rng.gen_range(0x20u32..0x7F) as u8 as char),
            Atom::Class(ranges) => {
                let total: u32 = ranges.iter().map(|(a, b)| *b as u32 - *a as u32 + 1).sum();
                let mut pick = rng.gen_range(0..total);
                for (a, b) in ranges {
                    let span = *b as u32 - *a as u32 + 1;
                    if pick < span {
                        out.push(char::from_u32(*a as u32 + pick).unwrap());
                        return;
                    }
                    pick -= span;
                }
                unreachable!("pick is always within total");
            }
        }
    }
}

fn generate_from_pattern(pattern: &str, rng: &mut StdRng) -> String {
    let mut out = String::new();
    let mut chars = pattern.chars().peekable();
    while let Some(c) = chars.next() {
        let atom = match c {
            '[' => {
                let mut ranges = Vec::new();
                loop {
                    let a = chars
                        .next()
                        .unwrap_or_else(|| panic!("unterminated class in regex '{pattern}'"));
                    if a == ']' {
                        break;
                    }
                    if chars.peek() == Some(&'-') {
                        chars.next();
                        let b = chars
                            .next()
                            .unwrap_or_else(|| panic!("unterminated range in regex '{pattern}'"));
                        assert!(a <= b, "inverted range {a}-{b} in regex '{pattern}'");
                        ranges.push((a, b));
                    } else {
                        ranges.push((a, a));
                    }
                }
                assert!(!ranges.is_empty(), "empty class in regex '{pattern}'");
                Atom::Class(ranges)
            }
            '.' => Atom::AnyChar,
            '\\' => Atom::Literal(
                chars
                    .next()
                    .unwrap_or_else(|| panic!("dangling escape in regex '{pattern}'")),
            ),
            '{' | '}' | '*' | '+' | '?' | '(' | ')' | '|' | '^' | '$' => {
                panic!("unsupported regex syntax '{c}' in '{pattern}' (shim subset)")
            }
            other => Atom::Literal(other),
        };
        // Optional quantifier.
        let (lo, hi) = match chars.peek() {
            Some('{') => {
                chars.next();
                let mut spec = String::new();
                loop {
                    match chars.next() {
                        Some('}') => break,
                        Some(d) => spec.push(d),
                        None => panic!("unterminated quantifier in regex '{pattern}'"),
                    }
                }
                match spec.split_once(',') {
                    Some((a, b)) => (
                        a.parse().unwrap_or_else(|_| {
                            panic!("bad quantifier '{{{spec}}}' in regex '{pattern}'")
                        }),
                        b.parse().unwrap_or_else(|_| {
                            panic!("bad quantifier '{{{spec}}}' in regex '{pattern}'")
                        }),
                    ),
                    None => {
                        let n: usize = spec.parse().unwrap_or_else(|_| {
                            panic!("bad quantifier '{{{spec}}}' in regex '{pattern}'")
                        });
                        (n, n)
                    }
                }
            }
            Some('?') => {
                chars.next();
                (0, 1)
            }
            Some('*') => {
                chars.next();
                (0, 8)
            }
            Some('+') => {
                chars.next();
                (1, 8)
            }
            _ => (1, 1),
        };
        assert!(
            lo <= hi,
            "inverted quantifier {{{lo},{hi}}} in regex '{pattern}'"
        );
        let n = rng.gen_range(lo..=hi);
        for _ in 0..n {
            atom.emit(rng, &mut out);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn regex_lite_shapes() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..200 {
            let s = "[a-z]{0,6}".generate(&mut rng);
            assert!(s.len() <= 6);
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));
            let t = "x[0-9]+".generate(&mut rng);
            assert!(t.starts_with('x') && t.len() >= 2);
            assert!(t[1..].chars().all(|c| c.is_ascii_digit()));
        }
    }

    #[test]
    fn ranges_and_tuples_generate_in_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        let strat = (0..80i64, 0..3u32, crate::any::<u64>());
        for _ in 0..500 {
            let (k, r, _v) = strat.generate(&mut rng);
            assert!((0..80).contains(&k));
            assert!(r < 3);
        }
    }

    #[test]
    fn vec_sizes_respected() {
        let mut rng = StdRng::seed_from_u64(3);
        let strat = vec(crate::any::<u8>(), 0..40);
        for _ in 0..200 {
            assert!(strat.generate(&mut rng).len() < 40);
        }
    }

    #[test]
    fn oneof_covers_all_options() {
        let mut rng = StdRng::seed_from_u64(4);
        let strat = OneOf::new(vec![
            Just(1u8).boxed(),
            Just(2u8).boxed(),
            Just(3u8).boxed(),
        ]);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[strat.generate(&mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2] && seen[3]);
    }
}
