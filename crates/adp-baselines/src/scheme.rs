//! A uniform adapter layer over the baseline schemes so comparison
//! harnesses (`adp-bench`'s `baseline_compare`) can iterate schemes
//! generically: publish once, then answer / verify / update through one
//! trait regardless of which construction is underneath.
//!
//! The trait is deliberately *harness-shaped*, not deployment-shaped: an
//! adapter owns both the publisher state and the owner's signing key, so a
//! single value can serve queries **and** absorb updates. Real deployments
//! split those roles (see `adp-core`'s `Owner`/`Publisher`/`verify_select`
//! triple); the adapters exist so a workload grid can drive all four
//! schemes — the signature chain plus the three baselines here — through
//! identical motions and tabulate the costs side by side
//! (`docs/EVALUATION.md`).
//!
//! The signature-chain scheme's adapter lives in `adp-bench` (this crate
//! deliberately does not depend on `adp-core`); it implements the same
//! trait.

use crate::{devanbu, ma, vbtree};
use adp_crypto::{Hasher, Keypair};
use adp_relation::{KeyRange, Record, Table};

/// What the owner ships to set a publisher up (Section 6.1's
/// "dissemination" column): signature bytes beyond the data itself.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Dissemination {
    /// Signature bytes shipped alongside the table.
    pub bytes: usize,
    /// Number of signatures those bytes comprise.
    pub signatures: usize,
}

/// Owner-side cost of one in-place record update (the Section 6.3
/// experiment), in scheme-native units.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct UpdateCost {
    /// Signatures recomputed (the dominant cost at every key size).
    pub signatures: u64,
    /// Digests recomputed (leaf/node/`g` digests — scheme-specific, but
    /// each is one hash-tree evaluation).
    pub digests: u64,
}

impl std::ops::AddAssign for UpdateCost {
    fn add_assign(&mut self, rhs: UpdateCost) {
        self.signatures += rhs.signatures;
        self.digests += rhs.digests;
    }
}

/// One authenticated-query-processing scheme, driven generically by the
/// comparison grid.
///
/// `answer` receives the projection as resolved column indices (always
/// including the key column); schemes that cannot project (`MhtScheme`)
/// ignore it and return full records — `supports_projection` reports the
/// capability so the harness can tabulate the difference instead of
/// papering over it.
pub trait RangeScheme {
    /// The scheme's verification-object type.
    type VO;

    /// Short stable name used in tables and JSON keys.
    fn scheme_name(&self) -> &'static str;

    /// Whether verification proves *completeness* (no omitted rows), the
    /// property the paper is about — not just authenticity.
    fn verifies_completeness(&self) -> bool;

    /// Whether projected-out attributes can be withheld from the user.
    fn supports_projection(&self) -> bool;

    /// Owner → publisher dissemination cost.
    fn dissemination(&self) -> Dissemination;

    /// Publisher-side: answer a range query under a projection (resolved
    /// column indices). Returns the result rows as shipped (which may
    /// include boundary rows or unprojected columns the user did not ask
    /// for) and the VO.
    fn answer(&self, range: &KeyRange, projection: &[usize]) -> (Vec<Record>, Self::VO);

    /// Wire bytes of a VO under the accounting rule shared by every
    /// scheme (documented in `docs/EVALUATION.md` §"VO size accounting").
    fn vo_bytes(vo: &Self::VO) -> usize;

    /// User-side verification against the scheme's certificate.
    fn verify(
        &self,
        range: &KeyRange,
        projection: &[usize],
        rows: &[Record],
        vo: &Self::VO,
    ) -> Result<(), String>;

    /// Rows in a shipped answer that the query did not select (the MHT's
    /// boundary-tuple leak; zero for precision-preserving schemes).
    fn rows_beyond_query(&self, range: &KeyRange, rows: &[Record]) -> usize;

    /// Owner-side: replace the non-key attributes of the row at `pos`,
    /// re-signing whatever the scheme requires. Returns the cost.
    fn update_payload(&mut self, pos: usize, record: Record) -> UpdateCost;
}

/// The Devanbu et al. Merkle-tree scheme behind the [`RangeScheme`] lens.
pub struct MhtScheme {
    /// Publisher state (tree + table + signed root).
    pub table: devanbu::MhtTable,
    cert: devanbu::MhtCertificate,
    keypair: Keypair,
}

impl MhtScheme {
    /// Publishes `table` under the Merkle-tree scheme.
    pub fn publish(keypair: &Keypair, hasher: Hasher, table: Table) -> Self {
        let table = devanbu::MhtTable::publish(keypair, hasher, table);
        let cert = table.certificate();
        MhtScheme {
            table,
            cert,
            keypair: keypair.clone(),
        }
    }
}

impl RangeScheme for MhtScheme {
    type VO = devanbu::MhtRangeVO;

    fn scheme_name(&self) -> &'static str {
        "mht"
    }

    fn verifies_completeness(&self) -> bool {
        true
    }

    fn supports_projection(&self) -> bool {
        false
    }

    fn dissemination(&self) -> Dissemination {
        Dissemination {
            bytes: self.table.dissemination_size(),
            signatures: 1,
        }
    }

    fn answer(&self, range: &KeyRange, _projection: &[usize]) -> (Vec<Record>, Self::VO) {
        // The scheme cannot project: full records always.
        self.table.answer_range(range)
    }

    fn vo_bytes(vo: &Self::VO) -> usize {
        vo.wire_size()
    }

    fn verify(
        &self,
        range: &KeyRange,
        _projection: &[usize],
        rows: &[Record],
        vo: &Self::VO,
    ) -> Result<(), String> {
        let key_idx = self.table.table().schema().key_index();
        devanbu::verify_range(&self.cert, key_idx, range, rows, vo).map_err(|e| e.to_string())
    }

    fn rows_beyond_query(&self, range: &KeyRange, rows: &[Record]) -> usize {
        self.table
            .disclosure_beyond_query(range, rows)
            .boundary_rows_exposed
    }

    fn update_payload(&mut self, pos: usize, record: Record) -> UpdateCost {
        let before = (
            self.table.root_resignatures.get(),
            self.table.update_digests_recomputed.get(),
        );
        self.table.update_record(&self.keypair, pos, record);
        // The row count is unchanged, so the certificate stays valid.
        UpdateCost {
            signatures: self.table.root_resignatures.get() - before.0,
            digests: self.table.update_digests_recomputed.get() - before.1,
        }
    }
}

/// The Ma et al. aggregated-signature scheme behind the [`RangeScheme`]
/// lens.
pub struct MaScheme {
    /// Publisher state (table + per-row signatures).
    pub table: ma::MaTable,
    cert: ma::MaCertificate,
    keypair: Keypair,
}

impl MaScheme {
    /// Publishes `table` under the aggregated-signature scheme.
    pub fn publish(keypair: &Keypair, hasher: Hasher, table: Table) -> Self {
        let table = ma::MaTable::publish(keypair, hasher, table);
        let cert = table.certificate();
        MaScheme {
            table,
            cert,
            keypair: keypair.clone(),
        }
    }
}

impl RangeScheme for MaScheme {
    type VO = ma::MaVO;

    fn scheme_name(&self) -> &'static str {
        "aggsig"
    }

    fn verifies_completeness(&self) -> bool {
        false
    }

    fn supports_projection(&self) -> bool {
        true
    }

    fn dissemination(&self) -> Dissemination {
        Dissemination {
            bytes: self.table.dissemination_size(),
            signatures: self.table.table().len(),
        }
    }

    fn answer(&self, range: &KeyRange, projection: &[usize]) -> (Vec<Record>, Self::VO) {
        self.table.answer_range(range, projection)
    }

    fn vo_bytes(vo: &Self::VO) -> usize {
        vo.wire_size()
    }

    fn verify(
        &self,
        _range: &KeyRange,
        projection: &[usize],
        rows: &[Record],
        vo: &Self::VO,
    ) -> Result<(), String> {
        let arity = self.table.table().schema().arity();
        ma::verify_range(&self.cert, projection, arity, rows, vo).map_err(str::to_string)
    }

    fn rows_beyond_query(&self, _range: &KeyRange, _rows: &[Record]) -> usize {
        0
    }

    fn update_payload(&mut self, pos: usize, record: Record) -> UpdateCost {
        self.table.update_record(&self.keypair, pos, record)
    }
}

/// The Pang & Tan VB-tree scheme behind the [`RangeScheme`] lens.
pub struct VbScheme {
    /// Publisher state (table + signed digest levels).
    pub table: vbtree::VbTree,
    cert: vbtree::VbCertificate,
    keypair: Keypair,
}

impl VbScheme {
    /// Publishes `table` as a VB-tree with the given fanout.
    pub fn publish(keypair: &Keypair, hasher: Hasher, fanout: usize, table: Table) -> Self {
        let table = vbtree::VbTree::publish(keypair, hasher, fanout, table);
        let cert = table.certificate();
        VbScheme {
            table,
            cert,
            keypair: keypair.clone(),
        }
    }
}

impl RangeScheme for VbScheme {
    type VO = vbtree::VbVO;

    fn scheme_name(&self) -> &'static str {
        "vbtree"
    }

    fn verifies_completeness(&self) -> bool {
        false
    }

    fn supports_projection(&self) -> bool {
        // The original refines to attribute granularity; this
        // record-granularity model ships full records, so the comparison
        // credits the capability but measures record-level VOs.
        true
    }

    fn dissemination(&self) -> Dissemination {
        Dissemination {
            bytes: self.table.dissemination_size(),
            signatures: self.table.node_count(),
        }
    }

    fn answer(&self, range: &KeyRange, _projection: &[usize]) -> (Vec<Record>, Self::VO) {
        self.table.answer_range(range)
    }

    fn vo_bytes(vo: &Self::VO) -> usize {
        vo.wire_size()
    }

    fn verify(
        &self,
        _range: &KeyRange,
        _projection: &[usize],
        rows: &[Record],
        vo: &Self::VO,
    ) -> Result<(), String> {
        vbtree::verify_range(&self.cert, rows, vo).map_err(str::to_string)
    }

    fn rows_beyond_query(&self, _range: &KeyRange, _rows: &[Record]) -> usize {
        0
    }

    fn update_payload(&mut self, pos: usize, record: Record) -> UpdateCost {
        self.table.update_record(&self.keypair, pos, record)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adp_relation::{Column, Schema, Value, ValueType};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn keypair() -> Keypair {
        let mut rng = StdRng::seed_from_u64(0xADA);
        Keypair::generate(512, &mut rng)
    }

    fn table(n: i64) -> Table {
        let schema = Schema::new(
            vec![
                Column::new("k", ValueType::Int),
                Column::new("v", ValueType::Text),
            ],
            "k",
        );
        let mut t = Table::new("t", schema);
        for i in 0..n {
            t.insert(Record::new(vec![
                Value::Int(i * 10),
                Value::from(format!("r{i}")),
            ]))
            .unwrap();
        }
        t
    }

    /// Drives one scheme through the same answer → verify → update →
    /// answer → verify cycle the comparison grid uses.
    fn cycle<S: RangeScheme>(scheme: &mut S, expected_complete: bool) {
        let range = KeyRange::closed(100, 300);
        let proj: Vec<usize> = vec![0, 1];
        let (rows, vo) = scheme.answer(&range, &proj);
        scheme
            .verify(&range, &proj, &rows, &vo)
            .unwrap_or_else(|e| panic!("{}: {e}", scheme.scheme_name()));
        assert!(S::vo_bytes(&vo) > 0);
        assert_eq!(scheme.verifies_completeness(), expected_complete);
        let d = scheme.dissemination();
        assert!(d.bytes > 0 && d.signatures > 0);
        // Payload update at a position inside the queried range.
        let cost = scheme.update_payload(15, Record::new(vec![Value::Int(150), Value::from("X")]));
        assert!(cost.signatures >= 1);
        let (rows, vo) = scheme.answer(&range, &proj);
        scheme
            .verify(&range, &proj, &rows, &vo)
            .unwrap_or_else(|e| panic!("{} after update: {e}", scheme.scheme_name()));
        assert!(rows
            .iter()
            .any(|r| r.get(0) == &Value::Int(150) && r.get(1) == &Value::from("X")));
    }

    #[test]
    fn mht_scheme_cycles() {
        let kp = keypair();
        let mut s = MhtScheme::publish(&kp, Hasher::default(), table(40));
        cycle(&mut s, true);
        assert!(!s.supports_projection());
        let range = KeyRange::closed(100, 300);
        let (rows, _) = s.answer(&range, &[0]);
        assert_eq!(s.rows_beyond_query(&range, &rows), 2);
    }

    #[test]
    fn aggsig_scheme_cycles() {
        let kp = keypair();
        let mut s = MaScheme::publish(&kp, Hasher::default(), table(40));
        cycle(&mut s, false);
        assert!(s.supports_projection());
        // Projection actually narrows the shipped rows.
        let (rows, vo) = s.answer(&KeyRange::closed(100, 300), &[0]);
        assert!(rows.iter().all(|r| r.arity() == 1));
        s.verify(&KeyRange::closed(100, 300), &[0], &rows, &vo)
            .unwrap();
    }

    #[test]
    fn vbtree_scheme_cycles() {
        let kp = keypair();
        let mut s = VbScheme::publish(&kp, Hasher::default(), 4, table(40));
        cycle(&mut s, false);
    }

    #[test]
    fn update_costs_match_the_constructions() {
        let kp = keypair();
        let rec = |k: i64| Record::new(vec![Value::Int(k), Value::from("upd")]);

        // MHT: one root re-signature, a root-path of digests.
        let mut mht = MhtScheme::publish(&kp, Hasher::default(), table(64));
        let c = mht.update_payload(10, rec(100));
        assert_eq!(c.signatures, 1);
        assert_eq!(c.digests, 6); // ⌈log2 64⌉

        // Aggregated signatures: exactly one row re-signed.
        let mut ma = MaScheme::publish(&kp, Hasher::default(), table(64));
        let c = ma.update_payload(10, rec(100));
        assert_eq!(c.signatures, 1);

        // VB-tree: one signature per level on the leaf-to-root path.
        let mut vb = VbScheme::publish(&kp, Hasher::default(), 4, table(64));
        let c = vb.update_payload(10, rec(100));
        assert_eq!(c.signatures, 4); // 64 → 16 → 4 → 1
        assert_eq!(c.digests, 4);
    }
}
