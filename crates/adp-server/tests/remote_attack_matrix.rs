//! The Section 3.2 cheating strategies, replayed **through a live
//! socket**: a tampering server mounts each `publisher::malicious` attack
//! as a response hook, and the remote verifier must reject every forgery
//! that arrives over the wire — same guarantee as the in-process
//! `attack_matrix`, now across the network boundary (which also proves the
//! forged VOs survive encode → TCP → decode and *still* get caught, rather
//! than being saved by a codec error).
//!
//! Cells mirror `adp-core/tests/attack_matrix.rs` for the three
//! select-query shapes the legacy query frame carries. Applicability is
//! asserted, not assumed: an attack the tamper harness refuses on an
//! expected-applicable shape fails the test. The protocol-v6 planned
//! path (SQL joins and aggregates) gets its own forgery leg in
//! [`planned_sql_forgeries`] below.

use adp_core::prelude::*;
use adp_core::publisher::malicious::{tamper, Attack};
use adp_relation::{
    Column, CompareOp, KeyRange, Predicate, Record, Schema, SelectQuery, Table, Value, ValueType,
};
use adp_server::{RemoteError, RemoteVerifier, Server, ServerConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};

fn staff_table() -> Table {
    let schema = Schema::new(
        vec![
            Column::new("id", ValueType::Int),
            Column::new("name", ValueType::Text),
            Column::new("salary", ValueType::Int),
            Column::new("dept", ValueType::Int),
        ],
        "salary",
    );
    let mut t = Table::new("staff", schema);
    for i in 0..20i64 {
        t.insert(Record::new(vec![
            Value::Int(i),
            Value::from(format!("emp{i}")),
            Value::Int(1_000 + i * 500),
            Value::Int(i % 3),
        ]))
        .unwrap();
    }
    t
}

fn fixture() -> &'static (Arc<SignedTable>, Certificate) {
    static FIX: OnceLock<(Arc<SignedTable>, Certificate)> = OnceLock::new();
    FIX.get_or_init(|| {
        let mut rng = StdRng::seed_from_u64(0xA77AC);
        let owner = Owner::new(512, &mut rng);
        let st = owner
            .sign_table(
                staff_table(),
                Domain::new(0, 100_000),
                SchemeConfig::default(),
            )
            .unwrap();
        let cert = owner.certificate(&st);
        (Arc::new(st), cert)
    })
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Shape {
    RangeSelect,
    FilteredSelect,
    ProjectDistinct,
}

const SHAPES: [Shape; 3] = [
    Shape::RangeSelect,
    Shape::FilteredSelect,
    Shape::ProjectDistinct,
];

fn select_query(shape: Shape) -> SelectQuery {
    let base = SelectQuery::range(KeyRange::closed(2_000, 9_000));
    match shape {
        Shape::RangeSelect => base,
        Shape::FilteredSelect => base.filter(Predicate::new("dept", CompareOp::Eq, 1i64)),
        Shape::ProjectDistinct => base.project(&["dept"]).distinct(),
    }
}

/// Mirrors `attack_matrix::applicable` for the select shapes.
fn applicable(attack: Attack, shape: Shape) -> bool {
    match attack {
        Attack::MislabelFiltered => shape == Shape::FilteredSelect,
        Attack::FakeDuplicate => shape == Shape::ProjectDistinct,
        Attack::TruncateTail => shape != Shape::FilteredSelect,
        _ => true,
    }
}

/// Runs every shape against a server whose responses are forged with
/// `attack`. The hook counts how often the tamper harness actually forged
/// something, so "attack inapplicable" can be distinguished from "attack
/// silently skipped".
fn run_attack(attack: Attack) {
    let (st, cert) = fixture();
    let forged = Arc::new(AtomicUsize::new(0));
    let forged_in_hook = Arc::clone(&forged);
    let mut server = Server::new(ServerConfig::default());
    server.add_shared_table(0, Arc::clone(st));
    server.set_tamper(move |publisher, query, result, vo| {
        match tamper(publisher, query, &result, &vo, attack) {
            Some((bad_result, bad_vo)) => {
                assert!(
                    bad_result != result || bad_vo != vo,
                    "{attack:?} was a no-op"
                );
                forged_in_hook.fetch_add(1, Ordering::SeqCst);
                (bad_result, bad_vo)
            }
            None => (result, vo),
        }
    });
    let handle = server.serve("127.0.0.1:0").unwrap();
    let mut user = RemoteVerifier::connect(handle.addr(), cert.clone(), 0).unwrap();

    for shape in SHAPES {
        let query = select_query(shape);
        let forged_before = forged.load(Ordering::SeqCst);
        let verdict = user.select(&query);
        let was_forged = forged.load(Ordering::SeqCst) > forged_before;
        assert_eq!(
            was_forged,
            applicable(attack, shape),
            "{attack:?} applicability drifted on {shape:?}"
        );
        if was_forged {
            match verdict {
                Err(RemoteError::Verify(_)) => {}
                other => panic!(
                    "{attack:?} on {shape:?} must be rejected by remote \
                     verification, got {other:?}"
                ),
            }
        } else {
            // Inapplicable: the server answered honestly and honesty must
            // verify — the hook may not break the honest path.
            let r = verdict.unwrap_or_else(|e| {
                panic!("honest {shape:?} answer through tampering server must verify: {e}")
            });
            assert!(!r.rows.is_empty());
        }
    }

    handle.shutdown();
}

macro_rules! remote_attacks {
    ($($name:ident => $attack:ident;)+) => {$(
        #[test]
        fn $name() {
            run_attack(Attack::$attack);
        }
    )+};
}

remote_attacks! {
    remote_omit_interior       => OmitInterior;
    remote_truncate_tail       => TruncateTail;
    remote_fake_empty          => FakeEmpty;
    remote_inject_spurious     => InjectSpurious;
    remote_tamper_value        => TamperValue;
    remote_swap_values         => SwapValues;
    remote_shift_left_boundary => ShiftLeftBoundary;
    remote_mislabel_filtered   => MislabelFiltered;
    remote_fake_duplicate      => FakeDuplicate;
}

// --------------------------------------------------------------------------
// Forged replication: the follower as the verifier (protocol v4, §9).
//
// A mirror replays the owner-signed log shipped by an *untrusted*
// upstream. `apply_segment` is fed raw segment bytes exactly as
// `LogFollower::next_segment` returns them off the socket, so forging
// the bytes here is byte-for-byte equivalent to a malicious upstream
// shipping them — and every forgery must be rejected *before* the
// follower's epoch bumps, so its own subscribers never see a bad delta.

mod forged_replication {
    use super::*;
    use adp_core::owner::OwnerError;
    use adp_crypto::Signature;
    use adp_relation::Value;
    use adp_server::follow::{apply_segment, bootstrap_store};
    use adp_server::{FollowError, FollowStart, LogFollower, RemoteSubscriber, UpdateError};
    use adp_store::log::encode_record;
    use adp_store::{LogRecord, Store, StoreError};
    use std::fs;
    use std::time::Duration;

    fn rec(id: i64, salary: i64) -> Record {
        Record::new(vec![
            Value::Int(id),
            Value::from(format!("emp{id}")),
            Value::Int(salary),
            Value::Int(id % 3),
        ])
    }

    fn workdir(name: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("adp-forged-repl-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn flip_signature_byte(resigned: &[(u32, Signature)]) -> Vec<(u32, Signature)> {
        let mut forged = resigned.to_vec();
        let mut bytes = forged[0].1.to_bytes();
        bytes[3] ^= 0x10;
        forged[0].1 = Signature::from_bytes(&bytes);
        forged
    }

    /// Every way an upstream can tamper with the shipped log — flipped
    /// signature byte, reordered records, dropped record, stale-seq
    /// replay, flipped payload bit — is rejected by the follower before
    /// its epoch bumps, and the follower's own subscriber only ever sees
    /// deltas for the honestly-replicated batches.
    #[test]
    fn tampered_segments_rejected_before_epoch_bump() {
        // Owner + upstream publisher, served from a store.
        let mut rng = StdRng::seed_from_u64(0xF06D);
        let owner = Owner::new(512, &mut rng);
        let schema = Schema::new(
            vec![
                Column::new("id", ValueType::Int),
                Column::new("name", ValueType::Text),
                Column::new("salary", ValueType::Int),
                Column::new("dept", ValueType::Int),
            ],
            "salary",
        );
        let mut t = Table::new("staff", schema);
        for i in 0..12i64 {
            t.insert(rec(i, 1_000 + i * 500)).unwrap();
        }
        let signed = owner
            .sign_table(t, Domain::new(0, 100_000), SchemeConfig::default())
            .unwrap();
        let cert = owner.certificate(&signed);
        let mut owner_st = signed.clone();
        let owner_dir = workdir("owner");
        Store::create(&owner_dir, signed).unwrap();
        let mut upstream = Server::new(ServerConfig::default());
        upstream.open_store(0, &owner_dir).unwrap();
        let up_handle = upstream.serve("127.0.0.1:0").unwrap();

        // Follower: bootstrap over the wire, then serve the mirror.
        let (_conn, start) = LogFollower::connect(up_handle.addr(), 0, None).unwrap();
        let snapshot = match start {
            FollowStart::Snapshot(s) => s,
            FollowStart::Backlog(_) => panic!("fresh bootstrap must get a snapshot"),
        };
        let mirror_dir = workdir("mirror");
        let mirror = bootstrap_store(&mirror_dir, &snapshot, &cert.public_key).unwrap();
        let mut follower = Server::new(ServerConfig::default());
        follower.add_store(0, mirror);
        let f_handle = follower.serve("127.0.0.1:0").unwrap();
        let epoch0 = f_handle.table_epoch(0).unwrap();

        // A live subscriber on the *follower*: it must see exactly the
        // honest deltas and none of the forged attempts.
        let mut sub = RemoteSubscriber::subscribe(
            f_handle.addr(),
            cert.clone(),
            0,
            1,
            KeyRange::closed(1_000, 9_000),
        )
        .unwrap();

        // Two honest sequential batches from the owner.
        let r0 = owner
            .apply_batch(&mut owner_st, vec![Mutation::Insert(rec(100, 2_250))])
            .unwrap();
        let r1 = owner
            .apply_batch(
                &mut owner_st,
                vec![Mutation::Delete {
                    key: 3_000,
                    replica: 0,
                }],
            )
            .unwrap();
        let seg = |seq: u64, ops: &[Mutation], resigned: &[(u32, Signature)]| {
            encode_record(&LogRecord {
                seq,
                ops: ops.to_vec(),
                resigned: resigned.to_vec(),
            })
        };
        let seg0 = seg(0, &r0.ops, &r0.resigned);
        let seg1 = seg(1, &r1.ops, &r1.resigned);

        // Attack: flipped signature byte inside an otherwise well-formed
        // record (CRC recomputed by re-encoding). The chain verification
        // must reject it.
        let forged = seg(0, &r0.ops, &flip_signature_byte(&r0.resigned));
        match apply_segment(&f_handle, 0, &forged) {
            Err(FollowError::Update(UpdateError::Store(StoreError::Owner(
                OwnerError::ResignatureInvalid { .. },
            )))) => {}
            other => panic!("forged signature must be rejected, got {other:?}"),
        }
        assert_eq!(f_handle.table_epoch(0), Some(epoch0), "no epoch bump");

        // Attack: reordered records — the later batch first.
        let mut reordered = seg1.clone();
        reordered.extend_from_slice(&seg0);
        match apply_segment(&f_handle, 0, &reordered) {
            Err(FollowError::Gap {
                expected: 0,
                got: 1,
            }) => {}
            other => panic!("reordered records must be a gap, got {other:?}"),
        }
        assert_eq!(f_handle.table_epoch(0), Some(epoch0), "no epoch bump");

        // Attack: dropped record — ship batch 1 without batch 0.
        match apply_segment(&f_handle, 0, &seg1) {
            Err(FollowError::Gap {
                expected: 0,
                got: 1,
            }) => {}
            other => panic!("dropped record must be a gap, got {other:?}"),
        }
        assert_eq!(f_handle.table_epoch(0), Some(epoch0), "no epoch bump");

        // Attack: flipped payload bit (ops, not signature) — caught by
        // the record CRC before anything is verified or applied.
        let mut bitflip = seg0.clone();
        let mid = bitflip.len() / 2;
        bitflip[mid] ^= 0x04;
        match apply_segment(&f_handle, 0, &bitflip) {
            Err(FollowError::Store(_)) => {}
            other => panic!("bit-flipped segment must fail decode, got {other:?}"),
        }
        assert_eq!(f_handle.table_epoch(0), Some(epoch0), "no epoch bump");

        // No forged attempt leaked a delta to the follower's subscriber.
        assert_eq!(sub.poll_delta(Duration::from_millis(300)).unwrap(), None);

        // The honest segments apply, and the subscriber now sees exactly
        // the two honest deltas — each verified against the owner's key.
        let mut both = seg0.clone();
        both.extend_from_slice(&seg1);
        assert_eq!(apply_segment(&f_handle, 0, &both).unwrap(), 2);
        assert_eq!(f_handle.table_epoch(0), Some(2));
        let mut got = 0;
        while got < 2 {
            match sub.poll_delta(Duration::from_secs(5)).unwrap() {
                Some(_) => got += 1,
                None => panic!("honest deltas must reach the follower's subscriber"),
            }
        }
        assert!(sub.keys().contains(&2_250));
        assert!(!sub.keys().contains(&3_000));

        // Attack: stale-seq replay of batch 0 — skipped idempotently, no
        // epoch bump, no delta.
        assert_eq!(apply_segment(&f_handle, 0, &seg0).unwrap(), 2);
        assert_eq!(f_handle.table_epoch(0), Some(2));
        assert_eq!(sub.poll_delta(Duration::from_millis(300)).unwrap(), None);

        sub.unsubscribe().unwrap();
        f_handle.shutdown();
        up_handle.shutdown();
        let _ = fs::remove_dir_all(&owner_dir);
        let _ = fs::remove_dir_all(&mirror_dir);
    }
}

// --------------------------------------------------------------------------
// Forged planned answers: the Section 3.2 cheating strategies replayed
// against the protocol-v6 `PlannedQuery` path — SQL joins and aggregates
// planned client-side, answered by a server whose `set_tamper_planned`
// hook forges the un-encoded `PlanAnswer` before it hits the wire. Every
// forgery must surface as `RemoteError::Verify` on the `SqlSession`,
// never as wrong rows or a wrong aggregate.

mod planned_sql_forgeries {
    use super::*;
    use adp_core::plan::PlanAnswer;
    use adp_core::vo::QueryVO;
    use adp_relation::check_referential_integrity;
    use adp_server::SqlSession;

    /// Employees sorted on their dept fk: 6 rows over depts {10,20,30,40}.
    fn emp_table() -> Table {
        let schema = Schema::new(
            vec![
                Column::new("id", ValueType::Int),
                Column::new("name", ValueType::Text),
                Column::new("dept", ValueType::Int),
            ],
            "dept",
        );
        let mut t = Table::new("emp", schema);
        for (id, name, dept) in [
            (5i64, "A", 10i64),
            (1, "D", 10),
            (2, "C", 20),
            (3, "E", 20),
            (4, "B", 30),
            (6, "F", 40),
        ] {
            t.insert(Record::new(vec![
                Value::Int(id),
                Value::from(name),
                Value::Int(dept),
            ]))
            .unwrap();
        }
        t
    }

    /// Departments keyed on dept id: 5 rows, one never joined.
    fn dept_table() -> Table {
        let schema = Schema::new(
            vec![
                Column::new("dept", ValueType::Int),
                Column::new("dname", ValueType::Text),
                Column::new("budget", ValueType::Int),
            ],
            "dept",
        );
        let mut t = Table::new("dept", schema);
        for (d, n, b) in [
            (10i64, "eng", 500i64),
            (20, "sales", 300),
            (30, "hr", 100),
            (40, "ops", 200),
            (50, "legal", 50),
        ] {
            t.insert(Record::new(vec![
                Value::Int(d),
                Value::from(n),
                Value::Int(b),
            ]))
            .unwrap();
        }
        t
    }

    struct JoinFixture {
        emp: Arc<SignedTable>,
        dept: Arc<SignedTable>,
        emp_cert: Certificate,
        dept_cert: Certificate,
    }

    fn join_fixture() -> &'static JoinFixture {
        static FIX: OnceLock<JoinFixture> = OnceLock::new();
        FIX.get_or_init(|| {
            let mut rng = StdRng::seed_from_u64(0xF0_66E);
            let owner = Owner::new(512, &mut rng);
            let emp_raw = emp_table();
            let dept_raw = dept_table();
            check_referential_integrity(&emp_raw, &dept_raw).unwrap();
            let emp = owner
                .sign_table(emp_raw, Domain::new(0, 1_000), SchemeConfig::default())
                .unwrap();
            let dept = owner
                .sign_table(dept_raw, Domain::new(0, 1_000), SchemeConfig::default())
                .unwrap();
            let emp_cert = owner.certificate(&emp);
            let dept_cert = owner.certificate(&dept);
            JoinFixture {
                emp: Arc::new(emp),
                dept: Arc::new(dept),
                emp_cert,
                dept_cert,
            }
        })
    }

    /// The four Section 3.2 strategies, adapted to planned answers.
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    enum Forgery {
        /// Omit one interior result row; leave the VO untouched.
        DropRow,
        /// Replace one returned row's attribute with a forged value.
        SubstituteRow,
        /// Truncate the VO's proof list; leave the result untouched.
        TruncateVo,
        /// Drop the boundary row *and* its proof entry together — the
        /// "consistent subset" a cheating publisher would love to serve.
        BoundaryDrop,
    }

    const FORGERIES: [Forgery; 4] = [
        Forgery::DropRow,
        Forgery::SubstituteRow,
        Forgery::TruncateVo,
        Forgery::BoundaryDrop,
    ];

    fn substitute(rec: &Record, slot: usize) -> Record {
        let mut vals = rec.values().to_vec();
        vals[slot] = Value::from("forged");
        Record::new(vals)
    }

    /// Applies `f` to the un-encoded answer. Returns `None` if the shape
    /// makes the forgery impossible (empty result etc.) so the harness can
    /// assert the attack actually fired.
    fn forge(f: Forgery, answer: &PlanAnswer) -> Option<PlanAnswer> {
        let mut forged = answer.clone();
        match (&mut forged, f) {
            (PlanAnswer::Select { rows, .. }, Forgery::DropRow) => {
                if rows.len() < 2 {
                    return None;
                }
                rows.remove(1);
            }
            (PlanAnswer::Select { rows, .. }, Forgery::SubstituteRow) => {
                let r = rows.first()?;
                rows[0] = substitute(r, 1);
            }
            (PlanAnswer::Select { vo, .. }, Forgery::TruncateVo) => match vo {
                QueryVO::Range(r) => {
                    r.entries.pop()?;
                }
                _ => return None,
            },
            (PlanAnswer::Select { rows, vo }, Forgery::BoundaryDrop) => match vo {
                QueryVO::Range(r) => {
                    rows.pop()?;
                    r.entries.pop()?;
                }
                _ => return None,
            },
            (PlanAnswer::Join { result, .. }, Forgery::DropRow) => {
                if result.outer_rows.len() < 2 {
                    return None;
                }
                result.outer_rows.remove(1);
            }
            (PlanAnswer::Join { result, .. }, Forgery::SubstituteRow) => {
                let r = result.inner_rows.first()?;
                result.inner_rows[0] = substitute(r, 1);
            }
            (PlanAnswer::Join { vo, .. }, Forgery::TruncateVo) => {
                vo.inner.pop()?;
            }
            (PlanAnswer::Join { result, vo }, Forgery::BoundaryDrop) => match &mut vo.outer {
                QueryVO::Range(r) => {
                    result.outer_rows.pop()?;
                    r.entries.pop()?;
                }
                _ => return None,
            },
        }
        Some(forged)
    }

    /// One planned join and one planned aggregate, both through a server
    /// forging `forgery` on every planned answer. Both must be rejected by
    /// client-side verification; the hook proves it really forged.
    fn run_forgery(forgery: Forgery) {
        let fix = join_fixture();
        let forged = Arc::new(AtomicUsize::new(0));
        let forged_in_hook = Arc::clone(&forged);
        let mut server = Server::new(ServerConfig::default());
        server.add_shared_table(0, Arc::clone(&fix.emp));
        server.add_shared_table(1, Arc::clone(&fix.dept));
        server.set_tamper_planned(move |_plan, answer| match forge(forgery, &answer) {
            Some(bad) => {
                forged_in_hook.fetch_add(1, Ordering::SeqCst);
                bad
            }
            None => answer,
        });
        let handle = server.serve("127.0.0.1:0").unwrap();

        let mut s = SqlSession::connect(handle.addr()).unwrap();
        s.add_table(0, fix.emp_cert.clone(), 6);
        s.add_table(1, fix.dept_cert.clone(), 5);
        s.declare_fk("emp", "dept");

        let statements = [
            // Planned pk-fk join: 5 pairs over depts {10, 20, 30}.
            "SELECT emp.name, dept.dname FROM emp \
             INNER JOIN dept ON emp.dept = dept.dept \
             WHERE emp.dept BETWEEN 10 AND 30",
            // Planned aggregate (select wire shape): COUNT over 5 rows.
            "SELECT COUNT(*) FROM emp WHERE dept BETWEEN 10 AND 30",
        ];
        for sql in statements {
            let before = forged.load(Ordering::SeqCst);
            let verdict = s.query_sql(sql);
            assert!(
                forged.load(Ordering::SeqCst) > before,
                "{forgery:?} must apply to {sql:?}"
            );
            match verdict {
                Err(RemoteError::Verify(_)) => {}
                other => panic!(
                    "{forgery:?} on {sql:?} must be rejected by plan \
                     verification, got {other:?}"
                ),
            }
        }

        handle.shutdown();
    }

    #[test]
    fn forged_planned_answers_all_rejected() {
        for forgery in FORGERIES {
            run_forgery(forgery);
        }
    }

    /// The hook itself may not break honesty: with no forgery mounted the
    /// same statements verify (guards against the harness passing because
    /// *everything* fails).
    #[test]
    fn honest_planned_answers_still_verify() {
        let fix = join_fixture();
        let mut server = Server::new(ServerConfig::default());
        server.add_shared_table(0, Arc::clone(&fix.emp));
        server.add_shared_table(1, Arc::clone(&fix.dept));
        server.set_tamper_planned(|_plan, answer| answer);
        let handle = server.serve("127.0.0.1:0").unwrap();

        let mut s = SqlSession::connect(handle.addr()).unwrap();
        s.add_table(0, fix.emp_cert.clone(), 6);
        s.add_table(1, fix.dept_cert.clone(), 5);
        s.declare_fk("emp", "dept");

        let join = s
            .query_sql(
                "SELECT emp.name, dept.dname FROM emp \
                 INNER JOIN dept ON emp.dept = dept.dept \
                 WHERE emp.dept BETWEEN 10 AND 30",
            )
            .unwrap();
        assert_eq!(join.output.rows.len(), 5);
        let agg = s
            .query_sql("SELECT COUNT(*) FROM emp WHERE dept BETWEEN 10 AND 30")
            .unwrap();
        assert!(matches!(
            agg.output.aggregate.as_ref().unwrap().1,
            AggregateValue::Count(5)
        ));

        handle.shutdown();
    }
}
