//! # adp-server
//!
//! The paper's publisher (Pang et al., SIGMOD 2005, Figure 3) as an actual
//! network service: a `std`-only threaded TCP server that answers
//! select-project(-distinct) queries with verification objects over a
//! small length-prefixed binary protocol, plus the matching verifying
//! client. Until this crate, the publisher was a library call; now the
//! owner → publisher → client trust boundary is a real socket.
//!
//! * [`protocol`] — the versioned frame layer (`Ping`, `QueryRequest`,
//!   `BatchRequest`, `Stats`, `Error`, and — since version 4 — the
//!   log-shipping pair `FollowLog`/`LogSegment` and the subscription
//!   frames `Subscribe`/`DeltaVo`/`Unsubscribe`), layered on the
//!   byte-exact [`adp_core::wire`] codec. Specified in
//!   `docs/PROTOCOL.md`.
//! * [`server`] — an event-driven core: epoll reactor shards own the
//!   non-blocking listener and connection sockets (frame reassembly,
//!   bounded write queues, idle timeouts), a worker pool runs the
//!   queries, and an LRU **VO cache** keyed on
//!   `(table_id, canonical query)` serves hot ranges without touching
//!   the publisher. Thread count is bounded by shards + workers, not by
//!   connection count.
//! * [`client`] — [`RemoteClient`] (raw frames), [`RemoteVerifier`],
//!   which runs the unchanged `adp-core` verifier against the socket, and
//!   [`RemoteSubscriber`], which registers a key range and verifies every
//!   pushed `DeltaVo` incrementally: the server is untrusted, so every
//!   answer is verified against the owner's certificate before being
//!   returned.
//! * [`follow`] — the log-shipping follower: [`LogFollower`] replays an
//!   upstream publisher's signed update log into a local mirror store,
//!   verifying each record before the epoch bump, so a second `adp-server`
//!   can serve the same table with zero trust in its upstream.
//! * [`cache`] / [`pool`] / [`sys`] — the `std`-only LRU map, thread
//!   pool, and raw epoll bindings the server is built from.
//!
//! ## Quick start
//!
//! ```
//! use adp_core::prelude::*;
//! use adp_relation::{Column, KeyRange, Record, Schema, SelectQuery, Table, Value, ValueType};
//! use adp_server::{RemoteVerifier, Server, ServerConfig};
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! // Owner side: sign a table (as in adp-core).
//! let schema = Schema::new(vec![Column::new("salary", ValueType::Int)], "salary");
//! let mut table = Table::new("emp", schema);
//! for s in [2000i64, 3500, 8010, 12100, 25000] {
//!     table.insert(Record::new(vec![Value::Int(s)])).unwrap();
//! }
//! let mut rng = StdRng::seed_from_u64(7);
//! let owner = Owner::new(512, &mut rng);
//! let signed = owner
//!     .sign_table(table, Domain::new(0, 100_000), SchemeConfig::default())
//!     .unwrap();
//! let cert = owner.certificate(&signed);
//!
//! // Publisher side: serve the signed table on an ephemeral port.
//! let mut server = Server::new(ServerConfig::default());
//! server.add_table(0, signed);
//! let handle = server.serve("127.0.0.1:0").unwrap();
//!
//! // User side: query over the socket; the answer is verified against the
//! // certificate before it is returned.
//! let mut user = RemoteVerifier::connect(handle.addr(), cert, 0).unwrap();
//! let query = SelectQuery::range(KeyRange::less_than(10_000));
//! let verified = user.select(&query).unwrap();
//! assert_eq!(verified.rows.len(), 3);
//!
//! handle.shutdown();
//! ```

pub mod cache;
pub mod client;
pub mod follow;
pub mod pool;
pub mod protocol;
mod reactor;
pub mod retry;
pub mod server;
pub mod sys;

pub use cache::LruCache;
pub use client::{
    RemoteClient, RemoteError, RemoteSubscriber, RemoteVerifier, SqlOutcome, SqlSession,
};
pub use follow::{FollowError, FollowEvent, FollowStart, LogFollower, ResilientFollower};
pub use protocol::{ErrorCode, Frame, ProtoError, StatsSnapshot};
pub use retry::RetryPolicy;
pub use server::{PlannedTamperFn, Server, ServerConfig, ServerHandle, TamperFn, UpdateError};
