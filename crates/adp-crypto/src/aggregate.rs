//! Condensed-RSA signature aggregation (Section 5.2 of the paper).
//!
//! The publisher combines the per-record signatures of a query result into a
//! single modulus-sized value, cutting both transmission overhead (one
//! `M_sign` instead of `|Q|` of them) and user-side computation (one
//! signature verification instead of `|Q|`, as verification is ~100x costlier
//! than hashing — Section 5.2).
//!
//! Because the data owner is a *single signer*, the appropriate scheme is
//! condensed RSA (Mykletun, Narasimha, Tsudik — "Signature Bouquets" \[18\]),
//! not multi-signer BLS aggregation \[8\]:
//!
//! * aggregate: `σ = Π σ_i mod n`
//! * verify:    `σ^e ≡ Π FDH(d_i) mod n`
//!
//! ## Immutability caveat
//!
//! As \[18\] discusses, naive condensed signatures are *mutable*: given two
//! valid aggregates an adversary can multiply them into a third valid
//! aggregate for the union of the message sets. \[18\] proposes practical
//! hardening (e.g. zero-knowledge proof of possession protocols). Mutability
//! does not affect the completeness guarantee studied here (an aggregate for
//! a *superset* still requires every component signature to exist, and the
//! verifier derives the expected digest set itself from the query), but the
//! caveat is retained in documentation for downstream users.

use crate::bigint::BigUint;
use crate::digest::Digest;
use crate::hasher::Hasher;
use crate::rsa::{PublicKey, Signature};

/// An aggregated (condensed) signature.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct AggregateSignature {
    value: BigUint,
    len: usize,
    count: usize,
}

impl AggregateSignature {
    /// Condenses `sigs` (all by the same signer) into one value.
    ///
    /// # Panics
    /// If `sigs` is empty.
    pub fn combine(public: &PublicKey, sigs: &[&Signature]) -> Self {
        assert!(!sigs.is_empty(), "cannot aggregate zero signatures");
        let n = public.modulus();
        let acc = match public.mont_ctx() {
            // Montgomery product: two multiplications per signature, no
            // divisions — the publisher-side hot path when answering.
            Some(ctx) => ctx.product_mod(sigs.iter().map(|s| s.value())),
            None => sigs
                .iter()
                .fold(BigUint::one(), |acc, s| acc.mul_mod(s.value(), n)),
        };
        AggregateSignature {
            value: acc,
            len: public.signature_len(),
            count: sigs.len(),
        }
    }

    /// Verifies the aggregate against the multiset of signed digests.
    pub fn verify(&self, hasher: &Hasher, public: &PublicKey, digests: &[Digest]) -> bool {
        if digests.len() != self.count {
            return false;
        }
        let n = public.modulus();
        let lhs = public.pow_mod_n(&self.value, public.exponent());
        let fdhs: Vec<BigUint> = digests.iter().map(|d| public.fdh(hasher, d)).collect();
        let rhs = match public.mont_ctx() {
            Some(ctx) => ctx.product_mod(fdhs.iter()),
            None => fdhs.iter().fold(BigUint::one(), |acc, f| acc.mul_mod(f, n)),
        };
        lhs == rhs
    }

    /// Number of component signatures.
    pub fn count(&self) -> usize {
        self.count
    }

    /// Serialized length in bytes (same as a single signature).
    pub fn byte_len(&self) -> usize {
        self.len
    }

    /// Fixed-width big-endian encoding (count is carried separately by the
    /// enclosing VO, which already knows the result cardinality).
    pub fn to_bytes(&self) -> Vec<u8> {
        self.value.to_bytes_be_padded(self.len)
    }

    /// Decodes an aggregate previously encoded with [`Self::to_bytes`].
    pub fn from_bytes(bytes: &[u8], count: usize) -> Self {
        AggregateSignature {
            value: BigUint::from_bytes_be(bytes),
            len: bytes.len(),
            count,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hasher::HashDomain;
    use crate::rsa::Keypair;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::sync::OnceLock;

    fn key() -> &'static Keypair {
        static KEY: OnceLock<Keypair> = OnceLock::new();
        KEY.get_or_init(|| {
            let mut rng = StdRng::seed_from_u64(0xA66);
            Keypair::generate(512, &mut rng)
        })
    }

    fn digests_and_sigs(h: &Hasher, msgs: &[&[u8]]) -> (Vec<Digest>, Vec<Signature>) {
        let kp = key();
        let ds: Vec<Digest> = msgs.iter().map(|m| h.hash(HashDomain::Data, m)).collect();
        let sigs = ds.iter().map(|d| kp.sign(h, d)).collect();
        (ds, sigs)
    }

    #[test]
    fn aggregate_roundtrip() {
        let h = Hasher::default();
        let (ds, sigs) = digests_and_sigs(&h, &[b"a", b"b", b"c", b"d"]);
        let refs: Vec<&Signature> = sigs.iter().collect();
        let agg = AggregateSignature::combine(key().public(), &refs);
        assert!(agg.verify(&h, key().public(), &ds));
        assert_eq!(agg.count(), 4);
    }

    #[test]
    fn single_signature_aggregate() {
        let h = Hasher::default();
        let (ds, sigs) = digests_and_sigs(&h, &[b"solo"]);
        let agg = AggregateSignature::combine(key().public(), &[&sigs[0]]);
        assert!(agg.verify(&h, key().public(), &ds));
    }

    #[test]
    fn missing_component_rejected() {
        let h = Hasher::default();
        let (ds, sigs) = digests_and_sigs(&h, &[b"a", b"b", b"c"]);
        // Aggregate only two signatures but claim all three digests.
        let agg = AggregateSignature::combine(key().public(), &[&sigs[0], &sigs[1]]);
        assert!(!agg.verify(&h, key().public(), &ds));
        // Matching count but mismatched digest set also fails.
        assert!(!agg.verify(
            &h,
            key().public(),
            &ds[..2].iter().map(|_| ds[2]).collect::<Vec<_>>()
        ));
    }

    #[test]
    fn reordered_digests_still_verify() {
        // Multiplication commutes, so digest order must not matter.
        let h = Hasher::default();
        let (mut ds, sigs) = digests_and_sigs(&h, &[b"a", b"b", b"c"]);
        let refs: Vec<&Signature> = sigs.iter().collect();
        let agg = AggregateSignature::combine(key().public(), &refs);
        ds.reverse();
        assert!(agg.verify(&h, key().public(), &ds));
    }

    #[test]
    fn tampered_aggregate_rejected() {
        let h = Hasher::default();
        let (ds, sigs) = digests_and_sigs(&h, &[b"a", b"b"]);
        let refs: Vec<&Signature> = sigs.iter().collect();
        let agg = AggregateSignature::combine(key().public(), &refs);
        let mut bytes = agg.to_bytes();
        bytes[7] ^= 1;
        let forged = AggregateSignature::from_bytes(&bytes, 2);
        assert!(!forged.verify(&h, key().public(), &ds));
    }

    #[test]
    fn serialization_roundtrip() {
        let h = Hasher::default();
        let (ds, sigs) = digests_and_sigs(&h, &[b"x", b"y"]);
        let refs: Vec<&Signature> = sigs.iter().collect();
        let agg = AggregateSignature::combine(key().public(), &refs);
        let bytes = agg.to_bytes();
        assert_eq!(bytes.len(), key().public().signature_len());
        let back = AggregateSignature::from_bytes(&bytes, 2);
        assert!(back.verify(&h, key().public(), &ds));
    }

    #[test]
    fn duplicate_digests_supported() {
        // DISTINCT handling in the scheme can aggregate the signature of an
        // eliminated duplicate alongside the retained copy.
        let h = Hasher::default();
        let d = h.hash(HashDomain::Data, b"dup");
        let kp = key();
        let s = kp.sign(&h, &d);
        let agg = AggregateSignature::combine(kp.public(), &[&s, &s]);
        assert!(agg.verify(&h, kp.public(), &[d, d]));
        assert!(!agg.verify(&h, kp.public(), &[d]));
    }
}
