//! # adp-faults
//!
//! Deterministic fault injection for the replication chain. The paper's
//! guarantee (Pang et al., SIGMOD 2005) is that a verifier *detects* any
//! tampered or incomplete answer; this crate exists so the repo can also
//! prove the system *survives* the mundane failures that deliver those
//! answers — dropped connections, torn writes, full disks, and processes
//! dying mid-fsync. Everything here is seed-deterministic: the same
//! [`FaultPlan`] seed produces the same fault schedule on every run and
//! every machine, so a chaos failure in CI is a `cargo test` away from a
//! local repro.
//!
//! Three consumers:
//!
//! * [`StoreIo`] — the injectable filesystem used by `adp-store`.
//!   [`RealIo`] is the production implementation (plain `std::fs`);
//!   [`FaultyIo`] wraps it and injects [`DiskFault`]s (short writes,
//!   failed fsyncs, `ENOSPC`, crash-here) at plan-chosen write operations.
//! * [`FaultProxy`] — a TCP proxy that sits between any client and the
//!   server and perturbs the byte stream per plan ([`WireFault`]s: drop,
//!   delay, duplicate, mid-frame close).
//! * [`crash_point`] — named process death. A supervised child run with
//!   `ADP_CRASH_POINT=<name>` aborts (no cleanup, no buffer flush —
//!   indistinguishable from `kill -9` for on-disk state) the moment
//!   execution reaches that point; the parent then asserts the store
//!   still opens and audits.

mod io;
mod plan;
mod proxy;

pub use io::{FaultyIo, RealIo, StoreIo};
pub use plan::{DiskFault, FaultPlan, WireFault, WireSchedule};
pub use proxy::{FaultProxy, ProxyStats};

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

/// Environment variable naming the armed crash point (see [`crash_point`]).
pub const CRASH_ENV: &str = "ADP_CRASH_POINT";

/// `(name, nth hit to die on)` parsed from `ADP_CRASH_POINT`, where the
/// value is `name` (first hit) or `name@k` (0-based k-th hit).
fn armed_crash_point() -> Option<(&'static str, u64)> {
    static ARMED: OnceLock<Option<(String, u64)>> = OnceLock::new();
    ARMED
        .get_or_init(|| {
            let raw = std::env::var(CRASH_ENV).ok().filter(|s| !s.is_empty())?;
            match raw.rsplit_once('@') {
                Some((name, nth)) => {
                    let nth = nth.parse().ok()?;
                    Some((name.to_string(), nth))
                }
                None => Some((raw, 0)),
            }
        })
        .as_ref()
        .map(|(name, nth)| (name.as_str(), *nth))
}

/// Dies on the spot — via `abort`, so no destructors run and no buffered
/// writes are flushed, leaving the same on-disk state a `kill -9` at this
/// instruction would — if and only if the process was started with
/// `ADP_CRASH_POINT=<name>` (or `<name>@k` to die on the 0-based k-th
/// time execution reaches the point). When the variable is unset
/// (production and ordinary tests) this is a single cached-`Option`
/// compare.
///
/// The names in use form the crash-point map documented in
/// `docs/ROBUSTNESS.md`.
pub fn crash_point(name: &str) {
    static HITS: AtomicU64 = AtomicU64::new(0);
    if let Some((armed, nth)) = armed_crash_point() {
        if armed == name && HITS.fetch_add(1, Ordering::SeqCst) == nth {
            eprintln!("adp-faults: crash point {name:?} hit {nth}; aborting");
            std::process::abort();
        }
    }
}

/// A tiny deterministic PRNG (SplitMix64). Not cryptographic — it only
/// schedules faults — but stable across platforms and Rust versions,
/// which is what committed CI seeds require.
#[derive(Debug, Clone)]
pub struct Rng64 {
    state: u64,
}

impl Rng64 {
    /// Seeds the generator.
    pub fn new(seed: u64) -> Rng64 {
        Rng64 { state: seed }
    }

    /// Next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..n` (`n` must be nonzero). The modulo bias is
    /// irrelevant at fault-scheduling scale.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        self.next_u64() % n
    }

    /// True with probability `per_mille`/1000.
    pub fn chance(&mut self, per_mille: u32) -> bool {
        self.below(1000) < u64::from(per_mille)
    }
}

/// Derives an independent stream seed from a base seed, a domain tag, and
/// an index — the glue that lets one committed seed drive many unrelated
/// schedules (per-connection, per-op) without correlation.
pub fn substream(seed: u64, tag: &str, index: u64) -> u64 {
    let mut h = Rng64::new(seed ^ 0xA5A5_5A5A_DEAD_BEEF);
    let mut acc = h.next_u64();
    for &b in tag.as_bytes() {
        acc = Rng64::new(acc ^ u64::from(b)).next_u64();
    }
    Rng64::new(acc ^ index.wrapping_mul(0x2545_F491_4F6C_DD1D)).next_u64()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic() {
        let a: Vec<u64> = {
            let mut r = Rng64::new(42);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = Rng64::new(42);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        let c: Vec<u64> = {
            let mut r = Rng64::new(43);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_ne!(a, c);
    }

    #[test]
    fn substreams_differ_by_tag_and_index() {
        let s = substream(7, "disk", 0);
        assert_ne!(s, substream(7, "disk", 1));
        assert_ne!(s, substream(7, "wire", 0));
        assert_eq!(s, substream(7, "disk", 0));
    }

    #[test]
    fn crash_point_is_inert_when_unarmed() {
        // The test process does not set ADP_CRASH_POINT, so this must
        // return normally.
        crash_point("test.nowhere");
    }
}
