//! The injectable filesystem: every durability-relevant write in
//! `adp-store` goes through a [`StoreIo`], so tests can interpose
//! [`FaultyIo`] and make exactly the `fsync` the invariant depends on
//! fail — or kill the process halfway through it.

use crate::plan::{DiskFault, FaultPlan};
use std::fmt;
use std::fs;
use std::io::{self, Read, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// The filesystem operations a store needs, in path-level form. The
/// production implementation is [`RealIo`]; tests swap in [`FaultyIo`].
///
/// Only *write-class* operations (`write_sync`, `append_sync`, `rename`,
/// `truncate`, `sync_dir`) are fault-injection points — reads are left
/// honest so a test that corrupts state via writes observes the damage
/// the same way production would.
pub trait StoreIo: fmt::Debug + Send + Sync {
    /// Reads the whole file.
    fn read(&self, path: &Path) -> io::Result<Vec<u8>>;

    /// The file's current length in bytes.
    fn file_len(&self, path: &Path) -> io::Result<u64>;

    /// Creates/truncates `path`, writes all of `bytes`, then `fsync`s.
    fn write_sync(&self, path: &Path, bytes: &[u8]) -> io::Result<()>;

    /// Appends `bytes` to `path`, then `fsync`s. Rollback of a failed
    /// append is the *caller's* job (truncate back to the pre-append
    /// length) — a crash can interrupt any rollback, so recovery code
    /// must tolerate a torn tail regardless.
    fn append_sync(&self, path: &Path, bytes: &[u8]) -> io::Result<()>;

    /// Renames `from` over `to` (atomic within a filesystem).
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;

    /// Truncates `path` to `len` bytes and `fsync`s.
    fn truncate(&self, path: &Path, len: u64) -> io::Result<()>;

    /// `fsync`s a directory, making preceding renames/creates in it
    /// durable.
    fn sync_dir(&self, dir: &Path) -> io::Result<()>;
}

/// The production [`StoreIo`]: plain `std::fs`, no faults.
#[derive(Debug, Default, Clone, Copy)]
pub struct RealIo;

impl StoreIo for RealIo {
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        fs::read(path)
    }

    fn file_len(&self, path: &Path) -> io::Result<u64> {
        Ok(fs::metadata(path)?.len())
    }

    fn write_sync(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        let mut f = fs::File::create(path)?;
        f.write_all(bytes)?;
        f.sync_data()
    }

    fn append_sync(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        let mut f = fs::OpenOptions::new().append(true).open(path)?;
        f.write_all(bytes)?;
        f.sync_data()
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        fs::rename(from, to)
    }

    fn truncate(&self, path: &Path, len: u64) -> io::Result<()> {
        let f = fs::OpenOptions::new().write(true).open(path)?;
        f.set_len(len)?;
        f.sync_data()
    }

    fn sync_dir(&self, dir: &Path) -> io::Result<()> {
        fs::File::open(dir)?.sync_all()
    }
}

/// A [`StoreIo`] that consults a [`FaultPlan`] before every write-class
/// operation. Operations are numbered 0, 1, 2, … across the instance
/// (shared by clones), so a plan can pin a fault to "the 3rd write this
/// store ever does" and a torture child crashes at the same instruction
/// every run.
#[derive(Debug, Clone)]
pub struct FaultyIo {
    plan: FaultPlan,
    ops: Arc<AtomicU64>,
    faults: Arc<AtomicU64>,
}

impl FaultyIo {
    /// Wraps the real filesystem with `plan`'s disk faults.
    pub fn new(plan: FaultPlan) -> FaultyIo {
        FaultyIo {
            plan,
            ops: Arc::new(AtomicU64::new(0)),
            faults: Arc::new(AtomicU64::new(0)),
        }
    }

    /// Write-class operations attempted so far.
    pub fn ops(&self) -> u64 {
        self.ops.load(Ordering::Relaxed)
    }

    /// Faults injected so far.
    pub fn faults(&self) -> u64 {
        self.faults.load(Ordering::Relaxed)
    }

    /// Draws the fault (if any) for the next write-class op.
    fn next_fault(&self) -> Option<DiskFault> {
        let op = self.ops.fetch_add(1, Ordering::Relaxed);
        let fault = self.plan.disk_fault(op);
        if fault.is_some() {
            self.faults.fetch_add(1, Ordering::Relaxed);
        }
        fault
    }

    /// Applies `fault` to a buffered write of `bytes` going through `f`.
    /// Returns the error the store sees; `CrashHere` never returns.
    fn faulted_write(fault: DiskFault, f: &mut fs::File, bytes: &[u8]) -> io::Error {
        match fault {
            DiskFault::FailFsync => {
                // The data is written but the barrier fails: the caller
                // must treat the operation as not-committed.
                let _ = f.write_all(bytes);
                io::Error::other("injected: fsync failed (EIO)")
            }
            DiskFault::ShortWrite { keep } => {
                let keep = (keep as usize).min(bytes.len());
                let _ = f.write_all(&bytes[..keep]);
                let _ = f.sync_data();
                io::Error::other("injected: short write (EIO)")
            }
            DiskFault::Enospc => io::Error::new(io::ErrorKind::StorageFull, "injected: ENOSPC"),
            DiskFault::CrashHere { keep } => {
                let keep = (keep as usize).min(bytes.len());
                let _ = f.write_all(&bytes[..keep]);
                let _ = f.sync_data();
                eprintln!("adp-faults: FaultyIo crash-here; aborting mid-write");
                std::process::abort();
            }
        }
    }
}

impl StoreIo for FaultyIo {
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        // Reads stay honest (see trait docs) — but go through a handle so
        // behavior matches RealIo byte for byte.
        let mut buf = Vec::new();
        fs::File::open(path)?.read_to_end(&mut buf)?;
        Ok(buf)
    }

    fn file_len(&self, path: &Path) -> io::Result<u64> {
        RealIo.file_len(path)
    }

    fn write_sync(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        match self.next_fault() {
            None => RealIo.write_sync(path, bytes),
            Some(DiskFault::Enospc) => Err(io::Error::new(
                io::ErrorKind::StorageFull,
                "injected: ENOSPC",
            )),
            Some(fault) => {
                let mut f = fs::File::create(path)?;
                Err(Self::faulted_write(fault, &mut f, bytes))
            }
        }
    }

    fn append_sync(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        match self.next_fault() {
            None => RealIo.append_sync(path, bytes),
            Some(DiskFault::Enospc) => Err(io::Error::new(
                io::ErrorKind::StorageFull,
                "injected: ENOSPC",
            )),
            Some(fault) => {
                let mut f = fs::OpenOptions::new().append(true).open(path)?;
                Err(Self::faulted_write(fault, &mut f, bytes))
            }
        }
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        match self.next_fault() {
            None => RealIo.rename(from, to),
            Some(DiskFault::CrashHere { .. }) => {
                eprintln!("adp-faults: FaultyIo crash-here; aborting before rename");
                std::process::abort();
            }
            Some(_) => Err(io::Error::other("injected: rename failed (EIO)")),
        }
    }

    fn truncate(&self, path: &Path, len: u64) -> io::Result<()> {
        match self.next_fault() {
            None => RealIo.truncate(path, len),
            Some(DiskFault::CrashHere { .. }) => {
                eprintln!("adp-faults: FaultyIo crash-here; aborting before truncate");
                std::process::abort();
            }
            Some(_) => Err(io::Error::other("injected: truncate failed (EIO)")),
        }
    }

    fn sync_dir(&self, dir: &Path) -> io::Result<()> {
        match self.next_fault() {
            None => RealIo.sync_dir(dir),
            Some(DiskFault::CrashHere { .. }) => {
                eprintln!("adp-faults: FaultyIo crash-here; aborting before dir sync");
                std::process::abort();
            }
            Some(_) => Err(io::Error::other("injected: directory fsync failed (EIO)")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::FaultPlan;

    fn tmpdir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("adp-faults-io-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn real_io_round_trips() {
        let dir = tmpdir("real");
        let path = dir.join("f");
        RealIo.write_sync(&path, b"hello").unwrap();
        RealIo.append_sync(&path, b" world").unwrap();
        assert_eq!(RealIo.read(&path).unwrap(), b"hello world");
        assert_eq!(RealIo.file_len(&path).unwrap(), 11);
        RealIo.truncate(&path, 5).unwrap();
        assert_eq!(RealIo.read(&path).unwrap(), b"hello");
        let dest = dir.join("g");
        RealIo.rename(&path, &dest).unwrap();
        assert_eq!(RealIo.read(&dest).unwrap(), b"hello");
        RealIo.sync_dir(&dir).unwrap();
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn enospc_leaves_nothing_behind() {
        let dir = tmpdir("enospc");
        let path = dir.join("f");
        RealIo.write_sync(&path, b"committed").unwrap();
        let io = FaultyIo::new(FaultPlan::clean().force_disk(0, DiskFault::Enospc));
        let err = io.append_sync(&path, b"more").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::StorageFull);
        assert_eq!(RealIo.read(&path).unwrap(), b"committed");
        assert_eq!(io.faults(), 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn short_write_leaves_a_prefix() {
        let dir = tmpdir("short");
        let path = dir.join("f");
        RealIo.write_sync(&path, b"base").unwrap();
        let io = FaultyIo::new(FaultPlan::clean().force_disk(0, DiskFault::ShortWrite { keep: 2 }));
        io.append_sync(&path, b"XYZW").unwrap_err();
        assert_eq!(RealIo.read(&path).unwrap(), b"baseXY");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn faults_only_fire_on_their_op() {
        let dir = tmpdir("nth");
        let path = dir.join("f");
        RealIo.write_sync(&path, b"").unwrap();
        let io = FaultyIo::new(FaultPlan::clean().force_disk(1, DiskFault::Enospc));
        io.append_sync(&path, b"a").unwrap();
        io.append_sync(&path, b"b").unwrap_err();
        io.append_sync(&path, b"c").unwrap();
        assert_eq!(RealIo.read(&path).unwrap(), b"ac");
        assert_eq!(io.ops(), 3);
        fs::remove_dir_all(&dir).unwrap();
    }
}
