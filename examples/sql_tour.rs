//! A tour of the SQL frontend: parse → plan → EXPLAIN → verified
//! execution over a live socket.
//!
//! An owner signs two related tables (employees keyed by their department
//! foreign key, departments keyed by id), an untrusted publisher serves
//! them over the protocol-v6 wire, and a [`adp::server::SqlSession`] —
//! holding nothing but the owner certificates — plans each statement
//! locally, ships the cheapest-proof plan as a `PlannedQuery` frame, and
//! verifies the answer before showing a single row. Along the way it
//! prints the planner's EXPLAIN record and measures the chosen plan's
//! VO-byte advantage over the naive plan on the real wire
//! (`docs/SQL.md`; Pang et al., SIGMOD 2005, Sections 4.1–4.3).
//!
//! Run with: `cargo run --release --example sql_tour`

use adp::core::prelude::*;
use adp::relation::{Column, Record, Schema, Table, Value, ValueType};
use adp::server::{Server, ServerConfig, SqlSession};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

fn emp_table() -> Table {
    let schema = Schema::new(
        vec![
            Column::new("id", ValueType::Int),
            Column::new("name", ValueType::Text),
            Column::new("dept", ValueType::Int),
        ],
        "dept",
    );
    let mut t = Table::new("emp", schema);
    for (id, name, dept) in [
        (5i64, "Ada", 10i64),
        (1, "Dijkstra", 10),
        (2, "Curie", 20),
        (3, "Erdos", 20),
        (4, "Bohr", 30),
        (6, "Franklin", 40),
    ] {
        t.insert(Record::new(vec![
            Value::Int(id),
            Value::from(name),
            Value::Int(dept),
        ]))
        .unwrap();
    }
    t
}

fn dept_table() -> Table {
    let schema = Schema::new(
        vec![
            Column::new("dept", ValueType::Int),
            Column::new("dname", ValueType::Text),
            Column::new("budget", ValueType::Int),
        ],
        "dept",
    );
    let mut t = Table::new("dept", schema);
    for (d, n, b) in [
        (10i64, "engineering", 500i64),
        (20, "sales", 300),
        (30, "hr", 100),
        (40, "ops", 200),
        (50, "legal", 50),
    ] {
        t.insert(Record::new(vec![
            Value::Int(d),
            Value::from(n),
            Value::Int(b),
        ]))
        .unwrap();
    }
    t
}

fn explain(sql: &str, out: &adp::server::SqlOutcome) {
    println!("\nEXPLAIN {sql}");
    println!(
        "  naive  cost: {:>8.0} est. VO bytes + {:>6.2} ms verify  (score {:.0})",
        out.planned.naive_cost.vo_bytes,
        out.planned.naive_cost.verify_ms,
        out.planned.naive_cost.score()
    );
    println!(
        "  chosen cost: {:>8.0} est. VO bytes + {:>6.2} ms verify  (score {:.0})",
        out.planned.chosen_cost.vo_bytes,
        out.planned.chosen_cost.verify_ms,
        out.planned.chosen_cost.score()
    );
    println!(
        "  passes applied: {}",
        if out.planned.passes_applied.is_empty() {
            "(none — naive plan already cheapest)".to_string()
        } else {
            out.planned.passes_applied.join(", ")
        }
    );
    for line in out.planned.optimized.to_string().lines() {
        println!("    {line}");
    }
    println!(
        "  verified: {} rows, {} signatures; {} result bytes + {} VO bytes on the wire",
        out.rows_verified, out.signatures_verified, out.result_bytes, out.vo_bytes
    );
}

fn main() {
    // --- The owner: sign both tables, hand out certificates. -----------
    let mut rng = StdRng::seed_from_u64(0x70_12);
    let owner = Owner::new(512, &mut rng);
    let emp = owner
        .sign_table(emp_table(), Domain::new(0, 1_000), SchemeConfig::default())
        .unwrap();
    let dept = owner
        .sign_table(dept_table(), Domain::new(0, 1_000), SchemeConfig::default())
        .unwrap();
    let emp_cert = owner.certificate(&emp);
    let dept_cert = owner.certificate(&dept);

    // --- The untrusted publisher: a live server on the v6 protocol. ----
    let mut server = Server::new(ServerConfig::default());
    server.add_shared_table(0, Arc::new(emp));
    server.add_shared_table(1, Arc::new(dept));
    let handle = server.serve("127.0.0.1:0").expect("bind");
    println!("publisher listening on {}", handle.addr());

    // --- The user: certificates only, SQL in, verified rows out. -------
    let mut session = SqlSession::connect(handle.addr()).unwrap();
    session.add_table(0, emp_cert, 6);
    session.add_table(1, dept_cert, 5);
    session.declare_fk("emp", "dept");

    // 1. A range select: predicate pushdown narrows the scan, so the
    //    publisher proves [10, 20] instead of the whole signed domain.
    let sql = "SELECT name, dept FROM emp WHERE dept BETWEEN 10 AND 20";
    let out = session.query_sql(sql).unwrap();
    explain(sql, &out);
    for row in &out.output.rows {
        println!("  {:?}", row.values());
    }

    // The naive plan is a real plan — ship it and measure the difference.
    let (_, naive_vo) = session
        .client_mut()
        .query_planned_raw(&out.planned.naive.wire)
        .unwrap();
    println!(
        "  naive plan on the same wire: {} VO bytes → planner saved {} bytes of proof",
        naive_vo.len(),
        naive_vo.len() - out.vo_bytes
    );

    // 2. A pk-fk join: both relations' chains verify, and the inner
    //    side's range transfers onto the outer scan.
    let sql = "SELECT emp.name, dept.dname FROM emp \
               INNER JOIN dept ON emp.dept = dept.dept \
               WHERE emp.dept BETWEEN 10 AND 20";
    let out = session.query_sql(sql).unwrap();
    explain(sql, &out);
    for row in &out.output.rows {
        println!("  {:?}", row.values());
    }

    // 3. Aggregates compute client-side over verified rows: a publisher
    //    that omitted a row would have failed verification first.
    for sql in [
        "SELECT COUNT(*) FROM emp WHERE dept >= 20",
        "SELECT SUM(budget) FROM dept WHERE dept BETWEEN 10 AND 30",
        "SELECT SUM(dept.budget) FROM emp \
         INNER JOIN dept ON emp.dept = dept.dept \
         WHERE emp.dept BETWEEN 10 AND 20",
    ] {
        let out = session.query_sql(sql).unwrap();
        let (label, value) = out.output.aggregate.clone().unwrap();
        explain(sql, &out);
        println!("  {label} = {value:?}");
    }

    // 4. Unprovable statements fail client-side, before any bytes move.
    let err = session
        .query_sql("SELECT * FROM emp INNER JOIN dept ON emp.dept = dept.dept WHERE budget > 100")
        .unwrap_err();
    println!("\nrejected without touching the wire: {err}");

    let stats = session.stats();
    println!(
        "\nsession: {} queries, {} rows verified, {} VO bytes total",
        stats.queries, stats.rows_verified, stats.vo_bytes
    );
    handle.shutdown();
}
