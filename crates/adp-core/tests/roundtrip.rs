//! End-to-end owner → publisher → verifier roundtrips across scheme modes,
//! bases, and query shapes.

use adp_core::prelude::*;
use adp_core::wire;
use adp_relation::{
    Column, CompareOp, KeyRange, Predicate, Record, Schema, SelectQuery, Table, Value, ValueType,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::OnceLock;

fn owner() -> &'static Owner {
    static OWNER: OnceLock<Owner> = OnceLock::new();
    OWNER.get_or_init(|| {
        let mut rng = StdRng::seed_from_u64(0xE2E);
        Owner::new(512, &mut rng)
    })
}

fn emp_schema() -> Schema {
    Schema::new(
        vec![
            Column::new("id", ValueType::Int),
            Column::new("name", ValueType::Text),
            Column::new("salary", ValueType::Int),
            Column::new("dept", ValueType::Int),
            Column::new("photo", ValueType::Bytes),
        ],
        "salary",
    )
}

/// The paper's Figure 1 Employee table (plus a BLOB column).
fn figure1_table() -> Table {
    let mut t = Table::new("emp", emp_schema());
    for (id, name, sal, dept) in [
        (5i64, "A", 2000i64, 1i64),
        (2, "C", 3500, 2),
        (1, "D", 8010, 1),
        (4, "B", 12100, 3),
        (3, "E", 25000, 2),
    ] {
        t.insert(Record::new(vec![
            Value::Int(id),
            Value::from(name),
            Value::Int(sal),
            Value::Int(dept),
            Value::from(vec![id as u8; 64]),
        ]))
        .unwrap();
    }
    t
}

fn signed_figure1(config: SchemeConfig) -> (SignedTable, Certificate) {
    let st = owner()
        .sign_table(figure1_table(), Domain::new(0, 100_000), config)
        .unwrap();
    let cert = owner().certificate(&st);
    (st, cert)
}

fn run(
    st: &SignedTable,
    cert: &Certificate,
    query: &SelectQuery,
) -> Result<(Vec<Record>, VerifyReport), VerifyError> {
    let (result, vo) = Publisher::new(st).answer_select(query).unwrap();
    // Exercise the wire path every time: encode → decode → verify.
    let result_bytes = wire::encode_records(&result);
    let vo_bytes = wire::encode_vo(&vo);
    verify_select_wire(cert, query, &result_bytes, &vo_bytes)
}

#[test]
fn figure1_range_query_verifies() {
    // SELECT * FROM Emp WHERE Salary < 10000 — the paper's running query.
    let (st, cert) = signed_figure1(SchemeConfig::default());
    let query = SelectQuery::range(KeyRange::less_than(10_000));
    let (result, report) = run(&st, &cert, &query).unwrap();
    assert_eq!(report.matched, 3);
    assert!(!report.empty);
    let salaries: Vec<i64> = result
        .iter()
        .map(|r| r.values()[2].as_int().unwrap())
        .collect();
    assert_eq!(salaries, vec![2000, 3500, 8010]);
}

#[test]
fn all_bases_verify() {
    for base in [2u32, 3, 4, 10, 16] {
        let (st, cert) = signed_figure1(SchemeConfig::with_base(base));
        for range in [
            KeyRange::less_than(10_000),
            KeyRange::at_least(10_000),
            KeyRange::closed(3_500, 12_100),
            KeyRange::all(),
            KeyRange::point(8_010),
        ] {
            let query = SelectQuery::range(range);
            let (_, report) =
                run(&st, &cert, &query).unwrap_or_else(|e| panic!("B={base} range={range:?}: {e}"));
            assert!(report.matched > 0, "B={base} range={range:?}");
        }
    }
}

#[test]
fn conceptual_mode_verifies() {
    let (st, cert) = signed_figure1(SchemeConfig::conceptual());
    for range in [
        KeyRange::less_than(10_000),
        KeyRange::closed(2_000, 2_000),
        KeyRange::at_least(25_000),
    ] {
        let query = SelectQuery::range(range);
        let (_, report) = run(&st, &cert, &query).unwrap();
        assert!(report.matched >= 1);
    }
}

#[test]
fn empty_results_verify() {
    let (st, cert) = signed_figure1(SchemeConfig::default());
    for range in [
        KeyRange::closed(4_000, 8_000),   // gap between records
        KeyRange::less_than(2_000),       // below the smallest
        KeyRange::at_least(25_001),       // above the largest
        KeyRange::closed(99_000, 99_500), // far above
    ] {
        let query = SelectQuery::range(range);
        let (result, report) = run(&st, &cert, &query).unwrap();
        assert!(result.is_empty(), "range {range:?}");
        assert!(report.empty);
        assert_eq!(report.signatures_verified, 1);
    }
}

#[test]
fn trivially_empty_range() {
    let (st, cert) = signed_figure1(SchemeConfig::default());
    let query = SelectQuery::range(KeyRange::closed(500, 100)); // α > β
    let (result, vo) = Publisher::new(&st).answer_select(&query).unwrap();
    assert!(result.is_empty());
    assert_eq!(vo, adp_core::vo::QueryVO::TriviallyEmpty);
    let report = verify_select(&cert, &query, &result, &vo).unwrap();
    assert!(report.empty);
}

#[test]
fn full_table_scan_verifies() {
    let (st, cert) = signed_figure1(SchemeConfig::default());
    let query = SelectQuery::range(KeyRange::all());
    let (result, report) = run(&st, &cert, &query).unwrap();
    assert_eq!(result.len(), 5);
    assert_eq!(report.matched, 5);
}

#[test]
fn boundary_exactly_on_records() {
    // α and β landing exactly on record keys.
    let (st, cert) = signed_figure1(SchemeConfig::default());
    let query = SelectQuery::range(KeyRange::closed(2_000, 25_000));
    let (result, _) = run(&st, &cert, &query).unwrap();
    assert_eq!(result.len(), 5);
    let query = SelectQuery::range(KeyRange::closed(3_500, 12_100));
    let (result, _) = run(&st, &cert, &query).unwrap();
    assert_eq!(result.len(), 3);
}

#[test]
fn projection_hides_columns() {
    let (st, cert) = signed_figure1(SchemeConfig::default());
    // Project salary only; the photo BLOB must not travel.
    let query = SelectQuery::range(KeyRange::less_than(10_000)).project(&["salary"]);
    let (result, vo) = Publisher::new(&st).answer_select(&query).unwrap();
    assert_eq!(result[0].arity(), 1);
    let report = verify_select(&cert, &query, &result, &vo).unwrap();
    assert_eq!(report.matched, 3);
    // Projected result must be much smaller than the full records.
    let bytes = wire::encode_records(&result);
    assert!(
        bytes.len() < 100,
        "projected result should exclude the BLOB"
    );
}

#[test]
fn projection_without_key_gets_key_added() {
    let (st, cert) = signed_figure1(SchemeConfig::default());
    let query = SelectQuery::range(KeyRange::less_than(10_000)).project(&["name"]);
    let (result, vo) = Publisher::new(&st).answer_select(&query).unwrap();
    // name + salary (forced key).
    assert_eq!(result[0].arity(), 2);
    assert!(verify_select(&cert, &query, &result, &vo).is_ok());
}

#[test]
fn multipoint_query_verifies() {
    // The paper's Section 4.4 example:
    // SELECT * FROM Emp WHERE Salary < 10000 AND Dept = 1.
    let (st, cert) = signed_figure1(SchemeConfig::default());
    let query = SelectQuery::range(KeyRange::less_than(10_000)).filter(Predicate::new(
        "dept",
        CompareOp::Eq,
        1i64,
    ));
    let (result, vo) = Publisher::new(&st).answer_select(&query).unwrap();
    assert_eq!(result.len(), 2); // ids 5 and 1
    let report = verify_select(&cert, &query, &result, &vo).unwrap();
    assert_eq!(report.matched, 2);
    assert_eq!(report.filtered, 1); // [002, C, 3500, 2] proven filtered
}

#[test]
fn multipoint_all_filtered() {
    let (st, cert) = signed_figure1(SchemeConfig::default());
    let query = SelectQuery::range(KeyRange::less_than(10_000)).filter(Predicate::new(
        "dept",
        CompareOp::Eq,
        99i64,
    ));
    let (result, vo) = Publisher::new(&st).answer_select(&query).unwrap();
    assert!(result.is_empty());
    let report = verify_select(&cert, &query, &result, &vo).unwrap();
    assert_eq!(report.filtered, 3);
    assert_eq!(report.matched, 0);
}

#[test]
fn multipoint_range_filters() {
    let (st, cert) = signed_figure1(SchemeConfig::default());
    let query =
        SelectQuery::range(KeyRange::all()).filter(Predicate::new("dept", CompareOp::Le, 2i64));
    let (result, vo) = Publisher::new(&st).answer_select(&query).unwrap();
    assert_eq!(result.len(), 4);
    let report = verify_select(&cert, &query, &result, &vo).unwrap();
    assert_eq!(report.filtered, 1); // dept 3 (id 4)
}

#[test]
fn distinct_eliminates_duplicates_verifiably() {
    // Table with duplicate (name) projections under DISTINCT.
    let schema = Schema::new(
        vec![
            Column::new("k", ValueType::Int),
            Column::new("grade", ValueType::Text),
        ],
        "k",
    );
    let mut t = Table::new("grades", schema);
    for (k, g) in [(10i64, "A"), (20, "B"), (30, "A"), (40, "B"), (50, "C")] {
        t.insert(Record::new(vec![Value::Int(k), Value::from(g)]))
            .unwrap();
    }
    let st = owner()
        .sign_table(t, Domain::new(0, 1_000), SchemeConfig::default())
        .unwrap();
    let cert = owner().certificate(&st);
    // DISTINCT over (k, grade) never collides (k unique), but DISTINCT over
    // just grade does — note the key is force-included, so duplicates here
    // means equal (grade, k)… to exercise Duplicate entries we need equal
    // keys too:
    let mut t2 = Table::new(
        "dups",
        Schema::new(
            vec![
                Column::new("k", ValueType::Int),
                Column::new("grade", ValueType::Text),
                Column::new("note", ValueType::Text),
            ],
            "k",
        ),
    );
    for (k, g, n) in [
        (10i64, "A", "x"),
        (10, "A", "y"), // same key, same grade, different note
        (10, "B", "z"),
        (20, "A", "w"),
    ] {
        t2.insert(Record::new(vec![
            Value::Int(k),
            Value::from(g),
            Value::from(n),
        ]))
        .unwrap();
    }
    let st2 = owner()
        .sign_table(t2, Domain::new(0, 1_000), SchemeConfig::default())
        .unwrap();
    let cert2 = owner().certificate(&st2);
    let query = SelectQuery::range(KeyRange::all())
        .project(&["grade"])
        .distinct();
    let (result, vo) = Publisher::new(&st2).answer_select(&query).unwrap();
    // Projections (grade, k): (A,10), (A,10) dup, (B,10), (A,20) → 3 rows.
    assert_eq!(result.len(), 3);
    let report = verify_select(&cert2, &query, &result, &vo).unwrap();
    assert_eq!(report.matched, 3);
    assert_eq!(report.duplicates, 1);
    let _ = (st, cert);
}

#[test]
fn duplicate_keys_roundtrip() {
    let schema = Schema::new(
        vec![
            Column::new("k", ValueType::Int),
            Column::new("v", ValueType::Text),
        ],
        "k",
    );
    let mut t = Table::new("dup", schema);
    for (k, v) in [(100i64, "a"), (100, "b"), (100, "c"), (200, "d")] {
        t.insert(Record::new(vec![Value::Int(k), Value::from(v)]))
            .unwrap();
    }
    let st = owner()
        .sign_table(t, Domain::new(0, 1_000), SchemeConfig::default())
        .unwrap();
    let cert = owner().certificate(&st);
    // All three replicas of key 100 must come back.
    let query = SelectQuery::range(KeyRange::point(100));
    let (result, report) = run(&st, &cert, &query).unwrap();
    assert_eq!(result.len(), 3);
    assert_eq!(report.matched, 3);
}

#[test]
fn singleton_table() {
    let schema = Schema::new(vec![Column::new("k", ValueType::Int)], "k");
    let mut t = Table::new("one", schema);
    t.insert(Record::new(vec![Value::Int(50)])).unwrap();
    let st = owner()
        .sign_table(t, Domain::new(0, 100), SchemeConfig::default())
        .unwrap();
    let cert = owner().certificate(&st);
    for (range, want) in [
        (KeyRange::all(), 1usize),
        (KeyRange::point(50), 1),
        (KeyRange::less_than(50), 0),
        (KeyRange::at_least(51), 0),
    ] {
        let query = SelectQuery::range(range);
        let (result, _) = run(&st, &cert, &query).unwrap();
        assert_eq!(result.len(), want, "range {range:?}");
    }
}

#[test]
fn empty_table_all_queries_empty() {
    let schema = Schema::new(vec![Column::new("k", ValueType::Int)], "k");
    let t = Table::new("none", schema);
    let st = owner()
        .sign_table(t, Domain::new(0, 100), SchemeConfig::default())
        .unwrap();
    let cert = owner().certificate(&st);
    for range in [
        KeyRange::all(),
        KeyRange::point(50),
        KeyRange::less_than(10),
    ] {
        let query = SelectQuery::range(range);
        let (result, report) = run(&st, &cert, &query).unwrap();
        assert!(result.is_empty());
        assert!(report.empty);
    }
}

#[test]
fn verification_survives_updates() {
    let (mut st, _) = signed_figure1(SchemeConfig::default());
    let o = owner();
    o.insert_record(
        &mut st,
        Record::new(vec![
            Value::Int(9),
            Value::from("F"),
            Value::Int(5_000),
            Value::Int(1),
            Value::from(vec![9u8; 8]),
        ]),
    )
    .unwrap();
    o.delete_record(&mut st, 12_100, 0).unwrap();
    let cert = o.certificate(&st);
    let query = SelectQuery::range(KeyRange::less_than(10_000));
    let (result, report) = run(&st, &cert, &query).unwrap();
    assert_eq!(result.len(), 4); // 2000, 3500, 5000, 8010
    assert_eq!(report.matched, 4);
}

#[test]
fn randomized_tables_and_queries() {
    let mut rng = StdRng::seed_from_u64(0xF00D);
    let schema = Schema::new(
        vec![
            Column::new("k", ValueType::Int),
            Column::new("payload", ValueType::Text),
        ],
        "k",
    );
    for trial in 0..8 {
        let n = rng.gen_range(0..60);
        let mut t = Table::new(format!("rand{trial}"), schema.clone());
        for i in 0..n {
            let k = rng.gen_range(2..9_998i64);
            t.insert(Record::new(vec![
                Value::Int(k),
                Value::from(format!("row{i}")),
            ]))
            .unwrap();
        }
        let config = if trial % 2 == 0 {
            SchemeConfig::default()
        } else {
            SchemeConfig::with_base(3)
        };
        let st = owner()
            .sign_table(t, Domain::new(0, 10_000), config)
            .unwrap();
        let cert = owner().certificate(&st);
        for _ in 0..12 {
            let a = rng.gen_range(0..10_000i64);
            let b = rng.gen_range(0..10_000i64);
            let (a, b) = (a.min(b), a.max(b));
            let query = SelectQuery::range(KeyRange::closed(a, b));
            let (result, report) =
                run(&st, &cert, &query).unwrap_or_else(|e| panic!("trial {trial} [{a},{b}]: {e}"));
            // Cross-check against direct evaluation.
            let expected = st
                .table()
                .rows()
                .iter()
                .filter(|r| {
                    let k = r.record.key(st.table().schema());
                    k >= a && k <= b
                })
                .count();
            assert_eq!(result.len(), expected, "trial {trial} [{a},{b}]");
            assert_eq!(report.matched, expected);
        }
    }
}

#[test]
fn individual_signatures_mode() {
    let (st, cert) = signed_figure1(SchemeConfig::default().aggregate(false));
    let query = SelectQuery::range(KeyRange::less_than(10_000));
    let (result, vo) = Publisher::new(&st).answer_select(&query).unwrap();
    // VO with per-entry signatures is bigger than the aggregated one.
    let (st_agg, _) = signed_figure1(SchemeConfig::default());
    let (_, vo_agg) = Publisher::new(&st_agg).answer_select(&query).unwrap();
    assert!(vo.wire_size() > vo_agg.wire_size());
    let report = verify_select(&cert, &query, &result, &vo).unwrap();
    assert_eq!(report.signatures_verified, 3);
}

#[test]
fn vo_sizes_scale_with_result() {
    let rng = StdRng::seed_from_u64(0x512E);
    let schema = Schema::new(vec![Column::new("k", ValueType::Int)], "k");
    let mut t = Table::new("sized", schema);
    for i in 0..200i64 {
        t.insert(Record::new(vec![Value::Int(10 + i * 10)]))
            .unwrap();
    }
    let st = owner()
        .sign_table(t, Domain::new(0, 10_000), SchemeConfig::default())
        .unwrap();
    let mut last = 0usize;
    for take in [1usize, 10, 100] {
        let beta = 10 + (take as i64 - 1) * 10;
        let query = SelectQuery::range(KeyRange::closed(10, beta));
        let (result, vo) = Publisher::new(&st).answer_select(&query).unwrap();
        assert_eq!(result.len(), take);
        let size = vo.wire_size();
        assert!(size > last, "VO must grow with |Q|");
        last = size;
    }
    let _ = rng;
}
