//! Role-based access control and query rewriting.
//!
//! The paper's central motivating example (Figure 1): an HR executive may
//! only see records with `Salary < 9000`, so their query
//! `SELECT * FROM Emp WHERE Salary < 10000` is *rewritten* to
//! `... WHERE Salary < 9000` before execution, and the verification scheme
//! must prove completeness **of the rewritten query** without leaking the
//! tuples beyond the policy boundary (which the Devanbu baseline would).
//!
//! Two mechanisms are modelled, matching Sections 1 and 4.4:
//!
//! * **Row policies** — a per-role [`KeyRange`] restriction on the sort
//!   attribute plus arbitrary extra predicates; both are intersected /
//!   appended to the user query by [`AccessPolicy::rewrite`].
//! * **Column policies** — per-role visible column sets; the projection is
//!   intersected so hidden columns are never disclosed (their digests still
//!   participate in `MHT(r.A)`, Section 4.2).
//! * **Visibility columns** — for multipoint Case 2 (Section 4.4), the
//!   owner materializes one boolean column per role; a record hidden from a
//!   role has `vis_<role> = false`, and the publisher can prove a filtered
//!   record was *legitimately* filtered by disclosing only that flag.

use crate::query::{CompareOp, KeyRange, Predicate, Projection, SelectQuery};
use crate::schema::{Column, Schema};
use crate::value::{Value, ValueType};
use std::collections::BTreeMap;
use std::fmt;

/// A user role.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Role(pub String);

impl Role {
    /// Shorthand constructor.
    pub fn new(name: impl Into<String>) -> Self {
        Role(name.into())
    }

    /// Name of this role's visibility column.
    pub fn visibility_column(&self) -> String {
        format!("vis_{}", self.0)
    }
}

impl fmt::Display for Role {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Per-role restrictions.
#[derive(Clone, Debug, Default)]
pub struct RolePolicy {
    /// Restriction on the sort attribute (None = unrestricted).
    pub key_range: Option<KeyRange>,
    /// Additional row predicates the role is limited to.
    pub row_filters: Vec<Predicate>,
    /// Columns the role may see (None = all).
    pub visible_columns: Option<Vec<String>>,
}

/// The access policy for one table.
#[derive(Clone, Debug, Default)]
pub struct AccessPolicy {
    roles: BTreeMap<Role, RolePolicy>,
}

impl AccessPolicy {
    /// An empty (allow-all) policy.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a role's policy.
    pub fn set(&mut self, role: Role, policy: RolePolicy) {
        self.roles.insert(role, policy);
    }

    /// Policy lookup; unknown roles get allow-all.
    pub fn for_role(&self, role: &Role) -> RolePolicy {
        self.roles.get(role).cloned().unwrap_or_default()
    }

    /// All registered roles.
    pub fn roles(&self) -> impl Iterator<Item = &Role> {
        self.roles.keys()
    }

    /// Rewrites `query` to comply with `role`'s policy:
    ///
    /// * the key range is intersected with the role's range,
    /// * the role's row filters are appended,
    /// * the projection is intersected with the visible column set
    ///   (the key column is always retained — the verifier needs it).
    pub fn rewrite(&self, schema: &Schema, role: &Role, query: &SelectQuery) -> SelectQuery {
        let policy = self.for_role(role);
        let mut q = query.clone();
        if let Some(range) = policy.key_range {
            q.range = q.range.intersect(&range);
        }
        q.filters.extend(policy.row_filters.iter().cloned());
        if let Some(visible) = &policy.visible_columns {
            let requested: Vec<String> = match &q.projection {
                Projection::All => schema.columns().iter().map(|c| c.name.clone()).collect(),
                Projection::Columns(cols) => cols.clone(),
            };
            let mut cols: Vec<String> = requested
                .into_iter()
                .filter(|c| visible.contains(c) || c == schema.key_name())
                .collect();
            if !cols.iter().any(|c| c == schema.key_name()) {
                cols.push(schema.key_name().to_string());
            }
            q.projection = Projection::Columns(cols);
        }
        q
    }

    /// Extends a schema with one boolean visibility column per registered
    /// role (Section 4.4 Case 2). Returns the new schema and the list of
    /// added column names in role order.
    pub fn schema_with_visibility_columns(&self, schema: &Schema) -> (Schema, Vec<String>) {
        let cols: Vec<String> = self.roles.keys().map(Role::visibility_column).collect();
        let extra = cols
            .iter()
            .map(|c| Column::new(c.clone(), ValueType::Bool))
            .collect();
        (schema.with_columns(extra), cols)
    }

    /// Computes the visibility flag values for a record under every
    /// registered role, in role order.
    pub fn visibility_flags(&self, schema: &Schema, values: &[Value]) -> Vec<Value> {
        self.roles
            .values()
            .map(|policy| {
                let key_ok = match (&policy.key_range, values.get(schema.key_index())) {
                    (Some(range), Some(Value::Int(k))) => range.contains(*k),
                    _ => true,
                };
                let filters_ok = policy.row_filters.iter().all(|p| p.eval(schema, values));
                Value::Bool(key_ok && filters_ok)
            })
            .collect()
    }

    /// The predicate a publisher adds for role-visibility filtering:
    /// `vis_<role> = true`.
    pub fn visibility_predicate(role: &Role) -> Predicate {
        Predicate::new(role.visibility_column(), CompareOp::Eq, true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Column, Schema};

    fn emp_schema() -> Schema {
        Schema::new(
            vec![
                Column::new("id", ValueType::Int),
                Column::new("name", ValueType::Text),
                Column::new("salary", ValueType::Int),
                Column::new("dept", ValueType::Int),
            ],
            "salary",
        )
    }

    fn figure1_policy() -> AccessPolicy {
        let mut p = AccessPolicy::new();
        // HR manager: everything.
        p.set(Role::new("hr_manager"), RolePolicy::default());
        // HR executive: Salary < 9000 only.
        p.set(
            Role::new("hr_exec"),
            RolePolicy {
                key_range: Some(KeyRange::less_than(9000)),
                ..Default::default()
            },
        );
        p
    }

    #[test]
    fn figure1_rewrite() {
        // The Introduction's scenario: the executive's "Salary < 10000"
        // becomes "Salary < 9000".
        let schema = emp_schema();
        let policy = figure1_policy();
        let q = SelectQuery::range(KeyRange::less_than(10_000));
        let exec_q = policy.rewrite(&schema, &Role::new("hr_exec"), &q);
        assert!(!exec_q.range.contains(9_000));
        assert!(!exec_q.range.contains(9_500));
        assert!(exec_q.range.contains(8_999));
        let mgr_q = policy.rewrite(&schema, &Role::new("hr_manager"), &q);
        assert!(mgr_q.range.contains(9_500));
        assert!(!mgr_q.range.contains(10_000));
    }

    #[test]
    fn unknown_role_unrestricted() {
        let schema = emp_schema();
        let policy = figure1_policy();
        let q = SelectQuery::range(KeyRange::all());
        let rq = policy.rewrite(&schema, &Role::new("stranger"), &q);
        assert_eq!(rq.range, KeyRange::all());
    }

    #[test]
    fn column_policy_intersects_projection() {
        let schema = emp_schema();
        let mut policy = AccessPolicy::new();
        policy.set(
            Role::new("auditor"),
            RolePolicy {
                visible_columns: Some(vec!["salary".into(), "dept".into()]),
                ..Default::default()
            },
        );
        // Request all columns → trimmed to visible ones.
        let q = SelectQuery::range(KeyRange::all());
        let rq = policy.rewrite(&schema, &Role::new("auditor"), &q);
        assert_eq!(
            rq.projection,
            Projection::Columns(vec!["salary".into(), "dept".into()])
        );
        // Request a hidden column → removed, key retained.
        let q = SelectQuery::range(KeyRange::all()).project(&["name"]);
        let rq = policy.rewrite(&schema, &Role::new("auditor"), &q);
        assert_eq!(rq.projection, Projection::Columns(vec!["salary".into()]));
    }

    #[test]
    fn row_filters_appended() {
        let schema = emp_schema();
        let mut policy = AccessPolicy::new();
        policy.set(
            Role::new("dept1"),
            RolePolicy {
                row_filters: vec![Predicate::new("dept", CompareOp::Eq, 1i64)],
                ..Default::default()
            },
        );
        let q = SelectQuery::range(KeyRange::all());
        let rq = policy.rewrite(&schema, &Role::new("dept1"), &q);
        assert_eq!(rq.filters.len(), 1);
        assert!(rq.is_multipoint());
    }

    #[test]
    fn visibility_columns_and_flags() {
        let schema = emp_schema();
        let policy = figure1_policy();
        let (ext_schema, cols) = policy.schema_with_visibility_columns(&schema);
        assert_eq!(
            cols,
            vec!["vis_hr_exec".to_string(), "vis_hr_manager".to_string()]
        );
        assert_eq!(ext_schema.arity(), 6);

        // A $12100 record: hidden from hr_exec, visible to hr_manager.
        let values = vec![
            Value::Int(4),
            Value::from("B"),
            Value::Int(12_100),
            Value::Int(3),
        ];
        let flags = policy.visibility_flags(&schema, &values);
        assert_eq!(flags, vec![Value::Bool(false), Value::Bool(true)]);

        // A $2000 record: visible to both.
        let values = vec![
            Value::Int(5),
            Value::from("A"),
            Value::Int(2_000),
            Value::Int(1),
        ];
        assert_eq!(
            policy.visibility_flags(&schema, &values),
            vec![Value::Bool(true), Value::Bool(true)]
        );
    }

    #[test]
    fn visibility_predicate_shape() {
        let p = AccessPolicy::visibility_predicate(&Role::new("hr_exec"));
        assert_eq!(p.column, "vis_hr_exec");
        assert_eq!(p.op, CompareOp::Eq);
        assert_eq!(p.value, Value::Bool(true));
    }
}
