//! Offline, API-compatible subset of `rand` 0.8.
//!
//! Provides exactly the surface this workspace uses: [`RngCore`],
//! [`SeedableRng`], [`Rng`] (`gen`, `gen_range`, `gen_bool`, `fill`),
//! [`rngs::StdRng`], and [`seq::SliceRandom`] (`shuffle`, `choose`).
//!
//! The generator behind `StdRng` is xoshiro256** seeded via SplitMix64 —
//! deterministic for a given seed, but the streams differ from upstream
//! `rand`'s ChaCha12. Nothing in this repo depends on cross-library stream
//! reproducibility, only on in-repo determinism.

/// Core trait for random number generators: raw output and byte filling.
pub trait RngCore {
    fn next_u32(&mut self) -> u32;
    fn next_u64(&mut self) -> u64;
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    type Seed: Default + AsMut<[u8]>;

    fn from_seed(seed: Self::Seed) -> Self;

    fn seed_from_u64(state: u64) -> Self {
        // SplitMix64-expand the u64 into a full seed, as upstream does.
        let mut sm = SplitMix64(state);
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next().to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Types that can be sampled uniformly from their full value range by `gen`.
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty => $via:ident),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.$via() as $t
            }
        }
    )*};
}

impl_standard_int!(u8 => next_u32, u16 => next_u32, u32 => next_u32, u64 => next_u64,
                   i8 => next_u32, i16 => next_u32, i32 => next_u32, i64 => next_u64,
                   usize => next_u64, isize => next_u64);

impl Standard for u128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Uniform sampling within a range, for `Rng::gen_range`.
///
/// For integers `sample_range` is inclusive of `hi_inclusive` (the `Range`
/// impl decrements the bound first). For floats it samples `[lo, hi)`, and
/// `sample_range_inclusive` — used by `RangeInclusive` — samples `[lo, hi]`
/// to match upstream rand 0.8.
pub trait SampleUniform: Sized {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi_inclusive: Self) -> Self;

    fn sample_range_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        Self::sample_range(rng, lo, hi)
    }
}

macro_rules! impl_sample_uniform {
    ($($t:ty as $u:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi_inclusive: Self) -> Self {
                debug_assert!(lo <= hi_inclusive);
                let span = (hi_inclusive as $u).wrapping_sub(lo as $u);
                if span == <$u>::MAX {
                    return <$u as Standard>::sample(rng) as $t;
                }
                let span = span + 1;
                // Rejection sampling over the widened type to kill modulo bias.
                let zone = <$u>::MAX - (<$u>::MAX - span + 1) % span;
                loop {
                    let v = <$u as Standard>::sample(rng);
                    if v <= zone {
                        return (lo as $u).wrapping_add(v % span) as $t;
                    }
                }
            }
        }
    )*};
}

impl_sample_uniform!(
    u8 as u64,
    u16 as u64,
    u32 as u64,
    u64 as u64,
    usize as u64,
    i8 as u64,
    i16 as u64,
    i32 as u64,
    i64 as u64,
    isize as u64
);

impl SampleUniform for u128 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi_inclusive: Self) -> Self {
        debug_assert!(lo <= hi_inclusive);
        let span = hi_inclusive.wrapping_sub(lo);
        if span == u128::MAX {
            return <u128 as Standard>::sample(rng);
        }
        let span = span + 1;
        let zone = u128::MAX - (u128::MAX - span + 1) % span;
        loop {
            let v = <u128 as Standard>::sample(rng);
            if v <= zone {
                return lo.wrapping_add(v % span);
            }
        }
    }
}

impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi_inclusive: Self) -> Self {
        lo + <f64 as Standard>::sample(rng) * (hi_inclusive - lo)
    }

    fn sample_range_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        // 53 uniform bits scaled over [0, 1] (denominator 2^53 - 1, not
        // 2^53), so `hi` itself is reachable.
        let unit = (rng.next_u64() >> 11) as f64 / ((1u64 << 53) - 1) as f64;
        lo + unit * (hi - lo)
    }
}

impl SampleUniform for f32 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi_inclusive: Self) -> Self {
        lo + <f32 as Standard>::sample(rng) * (hi_inclusive - lo)
    }

    fn sample_range_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        let unit = (rng.next_u32() >> 8) as f32 / ((1u32 << 24) - 1) as f32;
        lo + unit * (hi - lo)
    }
}

/// Range argument accepted by `Rng::gen_range` (half-open or inclusive).
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform + PartialOrd + RangeStep> SampleRange<T> for std::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range: empty range");
        T::sample_range(rng, self.start, RangeStep::down(self.end))
    }
}

impl<T: SampleUniform + PartialOrd + Copy> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "gen_range: empty range");
        T::sample_range_inclusive(rng, lo, hi)
    }
}

/// Converts an exclusive upper bound into an inclusive one.
pub trait RangeStep {
    fn down(self) -> Self;
}

macro_rules! impl_range_step_int {
    ($($t:ty),*) => {$(
        impl RangeStep for $t {
            fn down(self) -> Self { self - 1 }
        }
    )*};
}

impl_range_step_int!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, isize);

impl RangeStep for f64 {
    fn down(self) -> Self {
        self // half-open float ranges sample [lo, hi) directly
    }
}

impl RangeStep for f32 {
    fn down(self) -> Self {
        self
    }
}

/// Convenience extension over [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p={p} out of [0,1]");
        <f64 as Standard>::sample(self) < p
    }

    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator standing in for `rand`'s StdRng.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let bytes = self.next_u64().to_le_bytes();
                let n = chunk.len();
                chunk.copy_from_slice(&bytes[..n]);
            }
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, w) in s.iter_mut().enumerate() {
                *w = u64::from_le_bytes(seed[i * 8..(i + 1) * 8].try_into().unwrap());
            }
            // All-zero state is a fixed point of xoshiro; nudge it.
            if s == [0, 0, 0, 0] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            StdRng { s }
        }
    }
}

pub mod seq {
    use super::{Rng, RngCore};

    /// Slice helpers mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        type Item;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            // Fisher–Yates.
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

/// `rand::prelude`-alike for convenience.
pub mod prelude {
    pub use super::rngs::StdRng;
    pub use super::seq::SliceRandom;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_bounds_hold() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(-300..320);
            assert!((-300..320).contains(&v));
            let w: u64 = rng.gen_range(3u64..u64::MAX);
            assert!(w >= 3);
            let f = rng.gen_range(0.0..2.5);
            assert!((0.0..2.5).contains(&f));
            let fi = rng.gen_range(0.0..=2.5);
            assert!((0.0..=2.5).contains(&fi));
            let inc = rng.gen_range(5..=5);
            assert_eq!(inc, 5);
        }
    }

    #[test]
    fn gen_range_covers_span() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 4];
        for _ in 0..1_000 {
            seen[rng.gen_range(0..4usize)] = true;
        }
        assert!(seen.iter().all(|s| *s));
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(
            v, sorted,
            "50 elements staying in place is astronomically unlikely"
        );
    }

    #[test]
    fn fill_bytes_fills() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut buf = [0u8; 33];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|b| *b != 0));
    }
}
