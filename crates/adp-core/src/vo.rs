//! Verification objects (VOs): everything the publisher sends alongside a
//! query result so the user can verify completeness and authenticity.
//!
//! The shapes follow Figures 4/8 of the paper:
//!
//! * a [`BoundaryProof`] per side, carrying the `m+1` intermediate digest
//!   chain points `h^{δ_{e,i}}(r|i)` plus the representation selector
//!   (canonical root, or non-canonical index + canonical digest +
//!   `⌈log₂ m⌉` Merkle path digests),
//! * an [`EntryProof`] per position inside the result range (matched,
//!   multipoint-filtered, or DISTINCT-eliminated),
//! * the signatures — one aggregated condensed-RSA value by default
//!   (Section 5.2) or individual signatures when aggregation is disabled.
//!
//! All sizes reported by [`QueryVO::wire_size`] are the exact encoded byte
//! lengths produced by [`crate::wire`], which is what the Figure 9 traffic
//! experiment measures.

use adp_crypto::{AggregateSignature, Digest, InclusionProof, Signature};
use adp_relation::Value;

/// How the publisher proves which representation of `δ_t` the user's
/// chain extension lands on (Figure 8a).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RepProof {
    /// `δ_{t,i} ≥ δ_{c,i}` everywhere: the canonical representation is the
    /// target; the publisher supplies the non-canonical MHT root.
    Canonical { mht_root: Digest },
    /// The user is steered to the preferred non-canonical representation
    /// `^jδ_t`: the publisher supplies the canonical representation's
    /// digest plus the Merkle path placing `h(^jδ_t)` in the tree.
    NonCanonical {
        /// Which preferred non-canonical representation `^jδ_t`.
        index: u32,
        /// Digest of the canonical representation's chain targets.
        canon_digest: Digest,
        /// Merkle path placing `h(^jδ_t)` in the representation tree.
        path: InclusionProof,
    },
}

/// Proof that a boundary record's key lies strictly outside the query range
/// on one side, without revealing the key.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BoundaryProof {
    /// `h^{δ_{e,i}}(k|i)` per digit — a single digest in conceptual mode.
    pub intermediates: Vec<Digest>,
    /// Representation selector (`None` in conceptual mode).
    pub selector: Option<RepProof>,
    /// The opposite direction's finished component, opaque.
    pub other_component: Digest,
    /// The boundary record's attribute-tree root, opaque.
    pub attr_root: Digest,
}

/// Attribute disclosure for one record: values the publisher reveals,
/// leaf digests standing in for hidden ones, and the root (sent per the
/// paper's accounting; the verifier recomputes and cross-checks it).
///
/// Positions index the record's *non-key* columns in schema order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AttrProof {
    /// Attribute values revealed inline (multipoint-filtered rows disclose
    /// the failing attribute(s) this way).
    pub disclosed: Vec<(u32, Value)>,
    /// Leaf digests standing in for attributes the user may not see.
    pub hidden: Vec<(u32, Digest)>,
    /// The `MHT(r.A)` root; the verifier recomputes it from the other two
    /// fields and cross-checks.
    pub root: Digest,
}

/// The chain material a verifier needs for an entry whose key it knows.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EntryChains {
    /// Optimized mode: the rep-MHT roots for both directions (Figure 8b).
    Optimized { up_root: Digest, down_root: Digest },
    /// Conceptual mode: the verifier recomputes the full chains itself.
    Conceptual,
}

/// One position inside the contiguous result range on `K`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EntryProof {
    /// A row of the returned result (in order).
    Match {
        /// Chain material for the disclosed key (Figure 8b).
        chains: EntryChains,
        /// Attribute tree proof; disclosure happens through the result row.
        attrs: AttrProof,
    },
    /// A row inside the range that fails the query's non-key filters
    /// (multipoint queries, Section 4.4). `attrs.disclosed` carries the
    /// failing attribute value(s) — for access-control filtering (Case 2)
    /// that is the role's visibility flag. The chain components are opaque
    /// because the key is not revealed.
    Filtered {
        /// Finished up-direction component of `g` (key stays hidden).
        up_component: Digest,
        /// Finished down-direction component of `g`.
        down_component: Digest,
        /// Attribute proof disclosing the failing attribute value(s).
        attrs: AttrProof,
    },
    /// A DISTINCT-eliminated duplicate of result row `of` (Section 4.2).
    /// Chains are reconstructible from the referenced row's key; hidden
    /// digests cover the attributes outside the projection, which may
    /// differ between duplicates.
    Duplicate {
        /// Index of the retained first occurrence in the result.
        of: u32,
        /// Chain material, reconstructible from the referenced row's key.
        chains: EntryChains,
        /// Attribute proof (duplicates may differ outside the projection).
        attrs: AttrProof,
    },
}

/// Signatures covering the result entries (one per entry, chained):
/// condensed into a single aggregate by default.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SignatureProof {
    /// One condensed-RSA aggregate covering every link (Section 5.2).
    Aggregated(AggregateSignature),
    /// One plain signature per link (aggregation disabled).
    Individual(Vec<Signature>),
}

impl SignatureProof {
    /// Number of component signatures.
    pub fn count(&self) -> usize {
        match self {
            SignatureProof::Aggregated(a) => a.count(),
            SignatureProof::Individual(v) => v.len(),
        }
    }
}

/// The previous neighbour's `g` for an empty-result proof: either the left
/// domain edge anchor `h(L)` or the opaque concatenated digests.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PrevG {
    /// The left neighbour is the domain's left delimiter: the anchor is
    /// `h(L)`, which the verifier derives from the certificate.
    Edge,
    /// The serialized `g` of the record before the left boundary, opaque.
    Opaque(Vec<u8>),
}

/// Proof that no record falls in `[α, β]`: two *adjacent* records (or
/// delimiters) straddle the range — the left one proves `K < α`, the right
/// one `K > β`, and the left one's signature binds them as neighbours.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EmptyProof {
    /// `g` of the record preceding the left boundary (signature input).
    pub prev: PrevG,
    /// Proof that the left straddling record's key is `< α`.
    pub left: BoundaryProof,
    /// Proof that the right straddling record's key is `> β`.
    pub right: BoundaryProof,
    /// The left record's chain signature, binding the pair as neighbours.
    pub signature: SignatureProof,
}

/// VO for a non-empty result.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RangeVO {
    /// Proof that the record before the first result has key `< α`.
    pub left: BoundaryProof,
    /// Proof that the record after the last result has key `> β`.
    pub right: BoundaryProof,
    /// One entry per chain position inside the range, in key order.
    pub entries: Vec<EntryProof>,
    /// The chained signatures covering every in-range position.
    pub signatures: SignatureProof,
}

/// The full verification object accompanying a select result.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum QueryVO {
    /// The normalized range is empty by construction; nothing to prove.
    TriviallyEmpty,
    /// The range is non-trivial but holds no records.
    Empty(EmptyProof),
    /// The range holds records.
    Range(RangeVO),
}

impl QueryVO {
    /// Exact encoded size in bytes (drives the Figure 9 measurement).
    pub fn wire_size(&self) -> usize {
        crate::wire::encode_vo(self).len()
    }

    /// Number of `Match` entries (must equal the result row count).
    pub fn match_count(&self) -> usize {
        match self {
            QueryVO::Range(r) => r
                .entries
                .iter()
                .filter(|e| matches!(e, EntryProof::Match { .. }))
                .count(),
            _ => 0,
        }
    }

    /// Total digests carried (for cost accounting against formula (4)).
    pub fn digest_count(&self) -> usize {
        fn boundary(b: &BoundaryProof) -> usize {
            let sel = match &b.selector {
                None => 0,
                Some(RepProof::Canonical { .. }) => 1,
                Some(RepProof::NonCanonical { path, .. }) => 1 + path.digest_count(),
            };
            b.intermediates.len() + sel + 2
        }
        fn attrs(a: &AttrProof) -> usize {
            a.hidden.len() + 1
        }
        fn entry(e: &EntryProof) -> usize {
            match e {
                EntryProof::Match { chains, attrs: a }
                | EntryProof::Duplicate {
                    chains, attrs: a, ..
                } => {
                    attrs(a)
                        + match chains {
                            EntryChains::Optimized { .. } => 2,
                            EntryChains::Conceptual => 0,
                        }
                }
                EntryProof::Filtered { attrs: a, .. } => attrs(a) + 2,
            }
        }
        match self {
            QueryVO::TriviallyEmpty => 0,
            QueryVO::Empty(e) => boundary(&e.left) + boundary(&e.right),
            QueryVO::Range(r) => {
                boundary(&r.left) + boundary(&r.right) + r.entries.iter().map(entry).sum::<usize>()
            }
        }
    }
}
