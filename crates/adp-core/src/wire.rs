//! Binary wire format for verification objects and result sets.
//!
//! The Figure 9 experiment measures *user traffic overhead* — the exact
//! number of bytes of authentication information per byte of result data —
//! so the VO needs a real, byte-exact serialization, not an estimate. No
//! serializer crate exists in the offline dependency set, and a hand-rolled
//! format is also the honest way to account: every digest costs
//! `1 + M_digest/8` bytes (1-byte length), every signature
//! `4 + M_sign/8`, and framing is explicit.
//!
//! The format round-trips losslessly; decoding performs bounds checking and
//! rejects malformed input (a malicious publisher controls these bytes).

use crate::vo::{
    AttrProof, BoundaryProof, EmptyProof, EntryChains, EntryProof, PrevG, QueryVO, RangeVO,
    RepProof, SignatureProof,
};
use adp_crypto::{AggregateSignature, Digest, InclusionProof, ProofStep, Signature};
use adp_relation::{CompareOp, KeyRange, Predicate, Projection, Record, SelectQuery, Value};
use std::fmt;
use std::ops::Bound;

/// Decoding failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WireError(pub &'static str);

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "wire decoding error: {}", self.0)
    }
}
impl std::error::Error for WireError {}

/// Append-only byte writer.
#[derive(Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Consumes the writer, returning the accumulated bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Appends a single byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a `u32`, little-endian.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64`, little-endian.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `i64`, little-endian two's complement.
    pub fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a length-prefixed byte string (`u32` length, then the
    /// bytes).
    pub fn bytes(&mut self, v: &[u8]) {
        self.u32(v.len() as u32);
        self.buf.extend_from_slice(v);
    }

    /// Appends a digest (`u8` length, then the digest bytes — digests are
    /// 16–32 bytes, so one length byte suffices and the Figure 9 accounting
    /// of `1 + M_digest/8` bytes per digest holds exactly).
    pub fn digest(&mut self, d: &Digest) {
        self.u8(d.len() as u8);
        self.buf.extend_from_slice(d.as_bytes());
    }

    /// Appends a [`Value`] in its canonical self-describing encoding,
    /// length-prefixed.
    pub fn value(&mut self, v: &Value) {
        self.bytes(&v.encode());
    }
}

/// Bounds-checked byte reader.
pub struct Reader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Wraps a byte slice for decoding.
    pub fn new(data: &'a [u8]) -> Self {
        Reader { data, pos: 0 }
    }

    /// Bytes left to consume.
    pub fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    /// Whether every byte has been consumed (decoders demand this to
    /// reject trailing garbage).
    pub fn done(&self) -> bool {
        self.remaining() == 0
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError("unexpected end of input"));
        }
        let s = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads a little-endian `i64`.
    pub fn i64(&mut self) -> Result<i64, WireError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads a length-prefixed byte string; the length is bounds-checked
    /// against the remaining input before any allocation.
    pub fn bytes(&mut self) -> Result<&'a [u8], WireError> {
        let len = self.u32()? as usize;
        self.take(len)
    }

    /// Reads a digest, rejecting lengths outside the scheme's 16–32 byte
    /// window.
    pub fn digest(&mut self) -> Result<Digest, WireError> {
        let len = self.u8()? as usize;
        if !(16..=32).contains(&len) {
            return Err(WireError("digest length out of range"));
        }
        Ok(Digest::from_bytes(self.take(len)?))
    }

    /// Reads a length-prefixed [`Value`] in its canonical encoding.
    pub fn value(&mut self) -> Result<Value, WireError> {
        let raw = self.bytes()?;
        decode_value(raw)
    }
}

/// Decodes the canonical [`Value::encode`] form.
pub fn decode_value(raw: &[u8]) -> Result<Value, WireError> {
    let (&tag, payload) = raw.split_first().ok_or(WireError("empty value"))?;
    match tag {
        0x01 => {
            let arr: [u8; 8] = payload
                .try_into()
                .map_err(|_| WireError("bad int payload"))?;
            Ok(Value::Int(i64::from_le_bytes(arr)))
        }
        0x02 => Ok(Value::Text(
            String::from_utf8(payload.to_vec()).map_err(|_| WireError("bad utf8"))?,
        )),
        0x03 => Ok(Value::Bytes(payload.to_vec())),
        0x04 => match payload {
            [0] => Ok(Value::Bool(false)),
            [1] => Ok(Value::Bool(true)),
            _ => Err(WireError("bad bool payload")),
        },
        _ => Err(WireError("unknown value tag")),
    }
}

fn write_inclusion_proof(w: &mut Writer, p: &InclusionProof) {
    w.u32(p.leaf_index);
    w.u8(p.steps.len() as u8);
    for s in &p.steps {
        w.digest(&s.sibling);
        w.u8(s.sibling_is_left as u8);
    }
}

fn read_inclusion_proof(r: &mut Reader) -> Result<InclusionProof, WireError> {
    let leaf_index = r.u32()?;
    let n = r.u8()? as usize;
    let mut steps = Vec::with_capacity(n);
    for _ in 0..n {
        let sibling = r.digest()?;
        let sibling_is_left = match r.u8()? {
            0 => false,
            1 => true,
            _ => return Err(WireError("bad bool")),
        };
        steps.push(ProofStep {
            sibling,
            sibling_is_left,
        });
    }
    Ok(InclusionProof { leaf_index, steps })
}

fn write_boundary(w: &mut Writer, b: &BoundaryProof) {
    w.u32(b.intermediates.len() as u32);
    for d in &b.intermediates {
        w.digest(d);
    }
    match &b.selector {
        None => w.u8(0),
        Some(RepProof::Canonical { mht_root }) => {
            w.u8(1);
            w.digest(mht_root);
        }
        Some(RepProof::NonCanonical {
            index,
            canon_digest,
            path,
        }) => {
            w.u8(2);
            w.u32(*index);
            w.digest(canon_digest);
            write_inclusion_proof(w, path);
        }
    }
    w.digest(&b.other_component);
    w.digest(&b.attr_root);
}

fn read_boundary(r: &mut Reader) -> Result<BoundaryProof, WireError> {
    let n = r.u32()? as usize;
    if n > 1 << 16 {
        return Err(WireError("too many intermediates"));
    }
    let mut intermediates = Vec::with_capacity(n);
    for _ in 0..n {
        intermediates.push(r.digest()?);
    }
    let selector = match r.u8()? {
        0 => None,
        1 => Some(RepProof::Canonical {
            mht_root: r.digest()?,
        }),
        2 => {
            let index = r.u32()?;
            let canon_digest = r.digest()?;
            let path = read_inclusion_proof(r)?;
            Some(RepProof::NonCanonical {
                index,
                canon_digest,
                path,
            })
        }
        _ => return Err(WireError("bad selector tag")),
    };
    let other_component = r.digest()?;
    let attr_root = r.digest()?;
    Ok(BoundaryProof {
        intermediates,
        selector,
        other_component,
        attr_root,
    })
}

fn write_attrs(w: &mut Writer, a: &AttrProof) {
    w.u32(a.disclosed.len() as u32);
    for (pos, v) in &a.disclosed {
        w.u32(*pos);
        w.value(v);
    }
    w.u32(a.hidden.len() as u32);
    for (pos, d) in &a.hidden {
        w.u32(*pos);
        w.digest(d);
    }
    w.digest(&a.root);
}

fn read_attrs(r: &mut Reader) -> Result<AttrProof, WireError> {
    let nd = r.u32()? as usize;
    if nd > 1 << 20 {
        return Err(WireError("too many disclosed attrs"));
    }
    let mut disclosed = Vec::with_capacity(nd);
    for _ in 0..nd {
        let pos = r.u32()?;
        disclosed.push((pos, r.value()?));
    }
    let nh = r.u32()? as usize;
    if nh > 1 << 20 {
        return Err(WireError("too many hidden attrs"));
    }
    let mut hidden = Vec::with_capacity(nh);
    for _ in 0..nh {
        let pos = r.u32()?;
        hidden.push((pos, r.digest()?));
    }
    let root = r.digest()?;
    Ok(AttrProof {
        disclosed,
        hidden,
        root,
    })
}

fn write_chains(w: &mut Writer, c: &EntryChains) {
    match c {
        EntryChains::Conceptual => w.u8(0),
        EntryChains::Optimized { up_root, down_root } => {
            w.u8(1);
            w.digest(up_root);
            w.digest(down_root);
        }
    }
}

fn read_chains(r: &mut Reader) -> Result<EntryChains, WireError> {
    match r.u8()? {
        0 => Ok(EntryChains::Conceptual),
        1 => Ok(EntryChains::Optimized {
            up_root: r.digest()?,
            down_root: r.digest()?,
        }),
        _ => Err(WireError("bad chains tag")),
    }
}

fn write_entry(w: &mut Writer, e: &EntryProof) {
    match e {
        EntryProof::Match { chains, attrs } => {
            w.u8(0);
            write_chains(w, chains);
            write_attrs(w, attrs);
        }
        EntryProof::Filtered {
            up_component,
            down_component,
            attrs,
        } => {
            w.u8(1);
            w.digest(up_component);
            w.digest(down_component);
            write_attrs(w, attrs);
        }
        EntryProof::Duplicate { of, chains, attrs } => {
            w.u8(2);
            w.u32(*of);
            write_chains(w, chains);
            write_attrs(w, attrs);
        }
    }
}

fn read_entry(r: &mut Reader) -> Result<EntryProof, WireError> {
    match r.u8()? {
        0 => Ok(EntryProof::Match {
            chains: read_chains(r)?,
            attrs: read_attrs(r)?,
        }),
        1 => Ok(EntryProof::Filtered {
            up_component: r.digest()?,
            down_component: r.digest()?,
            attrs: read_attrs(r)?,
        }),
        2 => Ok(EntryProof::Duplicate {
            of: r.u32()?,
            chains: read_chains(r)?,
            attrs: read_attrs(r)?,
        }),
        _ => Err(WireError("bad entry tag")),
    }
}

fn write_signatures(w: &mut Writer, s: &SignatureProof) {
    match s {
        SignatureProof::Aggregated(a) => {
            w.u8(0);
            w.u32(a.count() as u32);
            w.bytes(&a.to_bytes());
        }
        SignatureProof::Individual(v) => {
            w.u8(1);
            w.u32(v.len() as u32);
            for sig in v {
                w.bytes(&sig.to_bytes());
            }
        }
    }
}

fn read_signatures(r: &mut Reader) -> Result<SignatureProof, WireError> {
    match r.u8()? {
        0 => {
            let count = r.u32()? as usize;
            let bytes = r.bytes()?;
            Ok(SignatureProof::Aggregated(AggregateSignature::from_bytes(
                bytes, count,
            )))
        }
        1 => {
            let n = r.u32()? as usize;
            if n > 1 << 24 {
                return Err(WireError("too many signatures"));
            }
            let mut v = Vec::with_capacity(n);
            for _ in 0..n {
                v.push(Signature::from_bytes(r.bytes()?));
            }
            Ok(SignatureProof::Individual(v))
        }
        _ => Err(WireError("bad signature tag")),
    }
}

/// Encodes a [`QueryVO`] to bytes.
pub fn encode_vo(vo: &QueryVO) -> Vec<u8> {
    let mut w = Writer::new();
    match vo {
        QueryVO::TriviallyEmpty => w.u8(0),
        QueryVO::Empty(e) => {
            w.u8(1);
            match &e.prev {
                PrevG::Edge => w.u8(0),
                PrevG::Opaque(b) => {
                    w.u8(1);
                    w.bytes(b);
                }
            }
            write_boundary(&mut w, &e.left);
            write_boundary(&mut w, &e.right);
            write_signatures(&mut w, &e.signature);
        }
        QueryVO::Range(rv) => {
            w.u8(2);
            write_boundary(&mut w, &rv.left);
            write_boundary(&mut w, &rv.right);
            w.u32(rv.entries.len() as u32);
            for e in &rv.entries {
                write_entry(&mut w, e);
            }
            write_signatures(&mut w, &rv.signatures);
        }
    }
    w.into_bytes()
}

/// Decodes a [`QueryVO`] from bytes, validating framing.
pub fn decode_vo(data: &[u8]) -> Result<QueryVO, WireError> {
    let mut r = Reader::new(data);
    let vo = match r.u8()? {
        0 => QueryVO::TriviallyEmpty,
        1 => {
            let prev = match r.u8()? {
                0 => PrevG::Edge,
                1 => PrevG::Opaque(r.bytes()?.to_vec()),
                _ => return Err(WireError("bad prev tag")),
            };
            let left = read_boundary(&mut r)?;
            let right = read_boundary(&mut r)?;
            let signature = read_signatures(&mut r)?;
            QueryVO::Empty(EmptyProof {
                prev,
                left,
                right,
                signature,
            })
        }
        2 => {
            let left = read_boundary(&mut r)?;
            let right = read_boundary(&mut r)?;
            let n = r.u32()? as usize;
            if n > 1 << 24 {
                return Err(WireError("too many entries"));
            }
            let mut entries = Vec::with_capacity(n);
            for _ in 0..n {
                entries.push(read_entry(&mut r)?);
            }
            let signatures = read_signatures(&mut r)?;
            QueryVO::Range(RangeVO {
                left,
                right,
                entries,
                signatures,
            })
        }
        _ => return Err(WireError("bad VO tag")),
    };
    if !r.done() {
        return Err(WireError("trailing bytes"));
    }
    Ok(vo)
}

/// Encodes a certificate (everything a user needs to verify): table name,
/// schema, domain, scheme config, owner public key. Shipped over an
/// authenticated channel in a real deployment.
pub fn encode_certificate(cert: &crate::owner::Certificate) -> Vec<u8> {
    let mut w = Writer::new();
    w.bytes(cert.table_name.as_bytes());
    write_schema(&mut w, &cert.schema);
    w.i64(cert.domain.l());
    w.i64(cert.domain.u());
    match cert.config.mode {
        crate::scheme::Mode::Conceptual => w.u8(0),
        crate::scheme::Mode::Optimized { base } => {
            w.u8(1);
            w.u32(base);
        }
    }
    w.u8(cert.config.digest_len as u8);
    w.u8(cert.config.aggregate_signatures as u8);
    w.bytes(&cert.public_key.modulus().to_bytes_be());
    w.bytes(&cert.public_key.exponent().to_bytes_be());
    w.into_bytes()
}

/// Decodes a certificate.
pub fn decode_certificate(data: &[u8]) -> Result<crate::owner::Certificate, WireError> {
    let mut r = Reader::new(data);
    let table_name =
        String::from_utf8(r.bytes()?.to_vec()).map_err(|_| WireError("bad table name"))?;
    let schema = read_schema(&mut r)?;
    let l = r.i64()?;
    let u = r.i64()?;
    if u <= l || (u as i128 - l as i128) < 4 {
        return Err(WireError("bad domain bounds"));
    }
    let mode = match r.u8()? {
        0 => crate::scheme::Mode::Conceptual,
        1 => {
            let base = r.u32()?;
            if base < 2 {
                return Err(WireError("bad base"));
            }
            crate::scheme::Mode::Optimized { base }
        }
        _ => return Err(WireError("bad mode tag")),
    };
    let digest_len = r.u8()? as usize;
    if !(16..=32).contains(&digest_len) {
        return Err(WireError("bad digest length"));
    }
    let aggregate_signatures = match r.u8()? {
        0 => false,
        1 => true,
        _ => return Err(WireError("bad bool")),
    };
    let n = adp_crypto::BigUint::from_bytes_be(r.bytes()?);
    let e = adp_crypto::BigUint::from_bytes_be(r.bytes()?);
    if n.is_zero() || e.is_zero() {
        return Err(WireError("bad public key"));
    }
    if !r.done() {
        return Err(WireError("trailing bytes"));
    }
    Ok(crate::owner::Certificate {
        table_name,
        schema,
        domain: crate::domain::Domain::new(l, u),
        config: crate::scheme::SchemeConfig {
            mode,
            digest_len,
            aggregate_signatures,
        },
        public_key: adp_crypto::PublicKey::from_parts(n, e),
    })
}

fn write_schema(w: &mut Writer, schema: &adp_relation::Schema) {
    w.u32(schema.arity() as u32);
    for col in schema.columns() {
        w.bytes(col.name.as_bytes());
        w.u8(match col.ty {
            adp_relation::ValueType::Int => 0,
            adp_relation::ValueType::Text => 1,
            adp_relation::ValueType::Bytes => 2,
            adp_relation::ValueType::Bool => 3,
        });
    }
    w.u32(schema.key_index() as u32);
}

fn read_schema(r: &mut Reader) -> Result<adp_relation::Schema, WireError> {
    let arity = r.u32()? as usize;
    if arity == 0 || arity > 1 << 12 {
        return Err(WireError("bad schema arity"));
    }
    let mut cols = Vec::with_capacity(arity);
    for _ in 0..arity {
        let name =
            String::from_utf8(r.bytes()?.to_vec()).map_err(|_| WireError("bad column name"))?;
        let ty = match r.u8()? {
            0 => adp_relation::ValueType::Int,
            1 => adp_relation::ValueType::Text,
            2 => adp_relation::ValueType::Bytes,
            3 => adp_relation::ValueType::Bool,
            _ => return Err(WireError("bad column type")),
        };
        cols.push(adp_relation::Column::new(name, ty));
    }
    let key_idx = r.u32()? as usize;
    if key_idx >= arity {
        return Err(WireError("bad key index"));
    }
    let key_name = cols[key_idx].name.clone();
    // Schema::new panics on inconsistencies; validate first.
    if cols[key_idx].ty != adp_relation::ValueType::Int {
        return Err(WireError("key column must be INT"));
    }
    let mut names: Vec<&str> = cols.iter().map(|c| c.name.as_str()).collect();
    names.sort_unstable();
    names.dedup();
    if names.len() != cols.len() {
        return Err(WireError("duplicate column names"));
    }
    Ok(adp_relation::Schema::new(cols, &key_name))
}

/// Encodes the owner → publisher dissemination payload: the signature list
/// for chain positions `0..=n+1`.
pub fn encode_signatures(sigs: &[Signature]) -> Vec<u8> {
    let mut w = Writer::new();
    w.u32(sigs.len() as u32);
    for s in sigs {
        w.bytes(&s.to_bytes());
    }
    w.into_bytes()
}

/// Decodes a signature list.
pub fn decode_signatures(data: &[u8]) -> Result<Vec<Signature>, WireError> {
    let mut r = Reader::new(data);
    let n = r.u32()? as usize;
    if n > 1 << 24 {
        return Err(WireError("too many signatures"));
    }
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(Signature::from_bytes(r.bytes()?));
    }
    if !r.done() {
        return Err(WireError("trailing bytes"));
    }
    Ok(out)
}

/// Encodes a result set (records of self-describing values).
pub fn encode_records(records: &[Record]) -> Vec<u8> {
    let mut w = Writer::new();
    w.u32(records.len() as u32);
    for rec in records {
        w.u32(rec.arity() as u32);
        for v in rec.values() {
            w.value(v);
        }
    }
    w.into_bytes()
}

/// Decodes a result set.
pub fn decode_records(data: &[u8]) -> Result<Vec<Record>, WireError> {
    let mut r = Reader::new(data);
    let n = r.u32()? as usize;
    if n > 1 << 24 {
        return Err(WireError("too many records"));
    }
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let arity = r.u32()? as usize;
        if arity > 1 << 16 {
            return Err(WireError("record arity too large"));
        }
        let mut values = Vec::with_capacity(arity);
        for _ in 0..arity {
            values.push(r.value()?);
        }
        out.push(Record::new(values));
    }
    if !r.done() {
        return Err(WireError("trailing bytes"));
    }
    Ok(out)
}

// ---------------------------------------------------------------- queries

fn write_key_bound(w: &mut Writer, b: &Bound<i64>) {
    match b {
        Bound::Unbounded => w.u8(0),
        Bound::Included(v) => {
            w.u8(1);
            w.i64(*v);
        }
        Bound::Excluded(v) => {
            w.u8(2);
            w.i64(*v);
        }
    }
}

fn read_key_bound(r: &mut Reader) -> Result<Bound<i64>, WireError> {
    Ok(match r.u8()? {
        0 => Bound::Unbounded,
        1 => Bound::Included(r.i64()?),
        2 => Bound::Excluded(r.i64()?),
        _ => return Err(WireError("bad bound tag")),
    })
}

fn compare_op_tag(op: CompareOp) -> u8 {
    match op {
        CompareOp::Eq => 0,
        CompareOp::Ne => 1,
        CompareOp::Lt => 2,
        CompareOp::Le => 3,
        CompareOp::Gt => 4,
        CompareOp::Ge => 5,
    }
}

fn compare_op_from_tag(tag: u8) -> Result<CompareOp, WireError> {
    Ok(match tag {
        0 => CompareOp::Eq,
        1 => CompareOp::Ne,
        2 => CompareOp::Lt,
        3 => CompareOp::Le,
        4 => CompareOp::Gt,
        5 => CompareOp::Ge,
        _ => return Err(WireError("bad compare op tag")),
    })
}

/// Encodes a [`SelectQuery`] — the request half of the publisher protocol
/// (`adp-server` carries these inside `QueryRequest` frames; see
/// `docs/PROTOCOL.md`).
///
/// Layout: key-range bounds (tagged), filter list, projection, DISTINCT
/// flag. The encoding round-trips exactly:
///
/// ```
/// use adp_core::wire::{decode_query, encode_query};
/// use adp_relation::{KeyRange, SelectQuery};
///
/// let q = SelectQuery::range(KeyRange::closed(2_000, 9_000)).distinct();
/// assert_eq!(decode_query(&encode_query(&q)).unwrap(), q);
/// ```
pub fn encode_query(query: &SelectQuery) -> Vec<u8> {
    let mut w = Writer::new();
    write_key_bound(&mut w, &query.range.lo);
    write_key_bound(&mut w, &query.range.hi);
    w.u32(query.filters.len() as u32);
    for f in &query.filters {
        w.bytes(f.column.as_bytes());
        w.u8(compare_op_tag(f.op));
        w.value(&f.value);
    }
    match &query.projection {
        Projection::All => w.u8(0),
        Projection::Columns(cols) => {
            w.u8(1);
            w.u32(cols.len() as u32);
            for c in cols {
                w.bytes(c.as_bytes());
            }
        }
    }
    w.u8(query.distinct as u8);
    w.into_bytes()
}

/// Decodes a [`SelectQuery`], validating framing (a malicious client
/// controls these bytes just as a malicious publisher controls VO bytes).
pub fn decode_query(data: &[u8]) -> Result<SelectQuery, WireError> {
    let mut r = Reader::new(data);
    let query = read_query(&mut r)?;
    if !r.done() {
        return Err(WireError("trailing bytes"));
    }
    Ok(query)
}

fn read_query(r: &mut Reader) -> Result<SelectQuery, WireError> {
    let lo = read_key_bound(r)?;
    let hi = read_key_bound(r)?;
    let nf = r.u32()? as usize;
    if nf > 1 << 10 {
        return Err(WireError("too many filters"));
    }
    let mut filters = Vec::with_capacity(nf);
    for _ in 0..nf {
        let column =
            String::from_utf8(r.bytes()?.to_vec()).map_err(|_| WireError("bad column name"))?;
        let op = compare_op_from_tag(r.u8()?)?;
        let value = r.value()?;
        filters.push(Predicate { column, op, value });
    }
    let projection = match r.u8()? {
        0 => Projection::All,
        1 => {
            let nc = r.u32()? as usize;
            if nc > 1 << 12 {
                return Err(WireError("too many projected columns"));
            }
            let mut cols = Vec::with_capacity(nc);
            for _ in 0..nc {
                cols.push(
                    String::from_utf8(r.bytes()?.to_vec())
                        .map_err(|_| WireError("bad column name"))?,
                );
            }
            Projection::Columns(cols)
        }
        _ => return Err(WireError("bad projection tag")),
    };
    let distinct = match r.u8()? {
        0 => false,
        1 => true,
        _ => return Err(WireError("bad bool")),
    };
    Ok(SelectQuery {
        range: KeyRange { lo, hi },
        filters,
        projection,
        distinct,
    })
}

fn write_record(w: &mut Writer, rec: &Record) {
    w.u32(rec.arity() as u32);
    for v in rec.values() {
        w.value(v);
    }
}

fn read_record(r: &mut Reader) -> Result<Record, WireError> {
    let arity = r.u32()? as usize;
    if arity > 1 << 16 {
        return Err(WireError("record arity too large"));
    }
    let mut values = Vec::with_capacity(arity);
    for _ in 0..arity {
        values.push(r.value()?);
    }
    Ok(Record::new(values))
}

/// Encodes a pk-fk join result (Section 4.3): the outer rows followed by
/// the distinct matched inner rows.
pub fn encode_join_result(result: &crate::join::PkFkJoinResult) -> Vec<u8> {
    let mut w = Writer::new();
    w.bytes(&encode_records(&result.outer_rows));
    w.bytes(&encode_records(&result.inner_rows));
    w.into_bytes()
}

/// Decodes a pk-fk join result; rejects trailing bytes.
pub fn decode_join_result(data: &[u8]) -> Result<crate::join::PkFkJoinResult, WireError> {
    let mut r = Reader::new(data);
    let outer_rows = decode_records(r.bytes()?)?;
    let inner_rows = decode_records(r.bytes()?)?;
    if !r.done() {
        return Err(WireError("trailing bytes"));
    }
    Ok(crate::join::PkFkJoinResult {
        outer_rows,
        inner_rows,
    })
}

/// Encodes a pk-fk join VO: the outer-side [`QueryVO`] plus one inner
/// record proof per distinct foreign key.
pub fn encode_join_vo(vo: &crate::join::PkFkJoinVO) -> Vec<u8> {
    let mut w = Writer::new();
    w.bytes(&encode_vo(&vo.outer));
    w.u32(vo.inner.len() as u32);
    for p in &vo.inner {
        write_record(&mut w, &p.record);
        write_chains(&mut w, &p.chains);
        write_attrs(&mut w, &p.attrs);
        w.bytes(&p.prev_g);
        w.bytes(&p.next_g);
    }
    match &vo.inner_signatures {
        None => w.u8(0),
        Some(s) => {
            w.u8(1);
            write_signatures(&mut w, s);
        }
    }
    w.into_bytes()
}

/// Decodes a pk-fk join VO; rejects trailing bytes.
pub fn decode_join_vo(data: &[u8]) -> Result<crate::join::PkFkJoinVO, WireError> {
    let mut r = Reader::new(data);
    let outer = decode_vo(r.bytes()?)?;
    let n = r.u32()? as usize;
    if n > 1 << 24 {
        return Err(WireError("too many inner proofs"));
    }
    let mut inner = Vec::with_capacity(n);
    for _ in 0..n {
        let record = read_record(&mut r)?;
        let chains = read_chains(&mut r)?;
        let attrs = read_attrs(&mut r)?;
        let prev_g = r.bytes()?.to_vec();
        let next_g = r.bytes()?.to_vec();
        inner.push(crate::join::InnerRecordProof {
            record,
            chains,
            attrs,
            prev_g,
            next_g,
        });
    }
    let inner_signatures = match r.u8()? {
        0 => None,
        1 => Some(read_signatures(&mut r)?),
        _ => return Err(WireError("bad option tag")),
    };
    if !r.done() {
        return Err(WireError("trailing bytes"));
    }
    Ok(crate::join::PkFkJoinVO {
        outer,
        inner,
        inner_signatures,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use adp_crypto::{hasher::HashDomain, Hasher};

    fn d(s: &[u8]) -> Digest {
        Hasher::default().hash(HashDomain::Data, s)
    }

    fn sample_boundary() -> BoundaryProof {
        BoundaryProof {
            intermediates: vec![d(b"i0"), d(b"i1"), d(b"i2")],
            selector: Some(RepProof::NonCanonical {
                index: 1,
                canon_digest: d(b"canon"),
                path: InclusionProof {
                    leaf_index: 1,
                    steps: vec![ProofStep {
                        sibling: d(b"sib"),
                        sibling_is_left: true,
                    }],
                },
            }),
            other_component: d(b"other"),
            attr_root: d(b"attr"),
        }
    }

    fn sample_attrs() -> AttrProof {
        AttrProof {
            disclosed: vec![(1, Value::Int(7)), (2, Value::from("x"))],
            hidden: vec![(0, d(b"h0"))],
            root: d(b"root"),
        }
    }

    #[test]
    fn vo_roundtrip_trivially_empty() {
        let vo = QueryVO::TriviallyEmpty;
        assert_eq!(decode_vo(&encode_vo(&vo)).unwrap(), vo);
    }

    #[test]
    fn vo_roundtrip_empty() {
        let vo = QueryVO::Empty(EmptyProof {
            prev: PrevG::Opaque(vec![1, 2, 3]),
            left: sample_boundary(),
            right: BoundaryProof {
                intermediates: vec![d(b"x")],
                selector: Some(RepProof::Canonical { mht_root: d(b"r") }),
                other_component: d(b"o"),
                attr_root: d(b"a"),
            },
            signature: SignatureProof::Individual(vec![Signature::from_bytes(&[9u8; 64])]),
        });
        assert_eq!(decode_vo(&encode_vo(&vo)).unwrap(), vo);
    }

    #[test]
    fn vo_roundtrip_range() {
        let vo = QueryVO::Range(RangeVO {
            left: sample_boundary(),
            right: sample_boundary(),
            entries: vec![
                EntryProof::Match {
                    chains: EntryChains::Optimized {
                        up_root: d(b"u"),
                        down_root: d(b"dn"),
                    },
                    attrs: sample_attrs(),
                },
                EntryProof::Filtered {
                    up_component: d(b"uc"),
                    down_component: d(b"dc"),
                    attrs: sample_attrs(),
                },
                EntryProof::Duplicate {
                    of: 0,
                    chains: EntryChains::Conceptual,
                    attrs: sample_attrs(),
                },
            ],
            signatures: SignatureProof::Aggregated(AggregateSignature::from_bytes(&[5u8; 64], 3)),
        });
        assert_eq!(decode_vo(&encode_vo(&vo)).unwrap(), vo);
    }

    #[test]
    fn records_roundtrip() {
        let records = vec![
            Record::new(vec![
                Value::Int(-5),
                Value::from("héllo"),
                Value::Bool(true),
            ]),
            Record::new(vec![Value::from(vec![0u8, 255, 3])]),
            Record::new(vec![]),
        ];
        assert_eq!(decode_records(&encode_records(&records)).unwrap(), records);
    }

    #[test]
    fn truncated_input_rejected() {
        let vo = QueryVO::Range(RangeVO {
            left: sample_boundary(),
            right: sample_boundary(),
            entries: vec![],
            signatures: SignatureProof::Individual(vec![]),
        });
        let bytes = encode_vo(&vo);
        for cut in [1usize, bytes.len() / 2, bytes.len() - 1] {
            assert!(decode_vo(&bytes[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut bytes = encode_vo(&QueryVO::TriviallyEmpty);
        bytes.push(0);
        assert!(decode_vo(&bytes).is_err());
    }

    #[test]
    fn bad_tags_rejected() {
        assert!(decode_vo(&[9]).is_err());
        assert!(decode_value(&[0x07, 1, 2]).is_err());
        assert!(decode_value(&[]).is_err());
        assert!(decode_value(&[0x04, 2]).is_err());
        assert!(decode_value(&[0x01, 1, 2]).is_err());
    }

    #[test]
    fn value_kinds_roundtrip() {
        for v in [
            Value::Int(i64::MIN),
            Value::Int(i64::MAX),
            Value::from(""),
            Value::from("日本語"),
            Value::from(Vec::<u8>::new()),
            Value::Bool(false),
        ] {
            assert_eq!(decode_value(&v.encode()).unwrap(), v, "{v:?}");
        }
    }

    #[test]
    fn query_roundtrip() {
        use adp_relation::{CompareOp, Predicate};
        let queries = [
            SelectQuery::range(KeyRange::all()),
            SelectQuery::range(KeyRange::closed(2_000, 9_000)),
            SelectQuery::range(KeyRange {
                lo: Bound::Excluded(-5),
                hi: Bound::Unbounded,
            }),
            SelectQuery::range(KeyRange::less_than(100))
                .filter(Predicate::new("dept", CompareOp::Eq, 1i64))
                .filter(Predicate::new("tag", CompareOp::Ne, "x"))
                .project(&["dept", "tag"])
                .distinct(),
        ];
        for q in queries {
            assert_eq!(decode_query(&encode_query(&q)).unwrap(), q, "{q:?}");
        }
    }

    /// Fixed vector quoted byte-for-byte in `docs/PROTOCOL.md` — keep the
    /// two in sync.
    #[test]
    fn query_fixed_vector_matches_protocol_doc() {
        let q = SelectQuery::range(KeyRange::closed(2_000, 9_000));
        assert_eq!(
            encode_query(&q),
            vec![
                0x01, 0xD0, 0x07, 0, 0, 0, 0, 0, 0, // lo: Included(2000)
                0x01, 0x28, 0x23, 0, 0, 0, 0, 0, 0, // hi: Included(9000)
                0, 0, 0, 0,    // no filters
                0x00, // projection: All
                0x00, // distinct: false
            ]
        );
    }

    /// Fixed vectors for the value encodings quoted in `docs/PROTOCOL.md`.
    #[test]
    fn value_fixed_vectors_match_protocol_doc() {
        assert_eq!(Value::Int(7).encode(), vec![0x01, 7, 0, 0, 0, 0, 0, 0, 0]);
        assert_eq!(Value::from("hi").encode(), vec![0x02, b'h', b'i']);
        assert_eq!(Value::Bool(true).encode(), vec![0x04, 1]);
    }

    #[test]
    fn query_bad_bytes_rejected() {
        // Bad bound tag.
        assert!(decode_query(&[3]).is_err());
        // Truncations never panic and always error.
        let bytes = encode_query(
            &SelectQuery::range(KeyRange::closed(0, 10))
                .filter(adp_relation::Predicate::new(
                    "c",
                    adp_relation::CompareOp::Lt,
                    5i64,
                ))
                .project(&["c"]),
        );
        for cut in 0..bytes.len() {
            assert!(decode_query(&bytes[..cut]).is_err(), "cut at {cut}");
        }
        // Trailing bytes rejected.
        let mut bytes = encode_query(&SelectQuery::range(KeyRange::all()));
        bytes.push(0);
        assert!(decode_query(&bytes).is_err());
    }

    #[test]
    fn digest_length_validation() {
        let mut w = Writer::new();
        w.u8(5); // invalid digest length
        w.bytes(b"xxxxx");
        let mut r = Reader::new(&[5, 1, 2, 3, 4, 5]);
        assert!(r.digest().is_err());
    }
}
