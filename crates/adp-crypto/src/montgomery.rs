//! Montgomery modular multiplication (CIOS) for fast `mod_pow` with odd
//! moduli — the case of every RSA operation and every Miller–Rabin round.
//!
//! Replaces the multiply-then-Knuth-divide inner loop of square-and-multiply
//! with reduction-free limb arithmetic: `a·b·R⁻¹ mod n` in a single pass,
//! where `R = 2^(64·s)`. Speedup on 512–1024-bit moduli is ~3–5×, which
//! directly accelerates owner-side table signing (`C_sign` per record) and
//! user-side verification.

use crate::bigint::BigUint;

/// Precomputed context for a fixed odd modulus.
pub struct MontgomeryCtx {
    /// Modulus limbs, little-endian, length `s`.
    n: Vec<u64>,
    /// `-n[0]^{-1} mod 2^64`.
    n0_inv: u64,
    /// `R² mod n` (for converting into Montgomery form).
    r2: Vec<u64>,
}

impl MontgomeryCtx {
    /// Builds a context. Returns `None` for even or trivial moduli.
    pub fn new(modulus: &BigUint) -> Option<Self> {
        if modulus.is_even() || modulus.is_one() || modulus.is_zero() {
            return None;
        }
        let n = modulus.to_limbs();
        let s = n.len();
        // Newton iteration for the inverse of n[0] modulo 2^64:
        // x_{k+1} = x_k (2 - n0 x_k); 6 steps suffice for 64 bits.
        let n0 = n[0];
        let mut inv = 1u64;
        for _ in 0..6 {
            inv = inv.wrapping_mul(2u64.wrapping_sub(n0.wrapping_mul(inv)));
        }
        debug_assert_eq!(n0.wrapping_mul(inv), 1);
        let n0_inv = inv.wrapping_neg();
        // R² mod n via shifting (R = 2^(64 s)).
        let r2_big = BigUint::one().shl(2 * 64 * s).rem(modulus);
        let mut r2 = r2_big.to_limbs();
        r2.resize(s, 0);
        Some(MontgomeryCtx { n, n0_inv, r2 })
    }

    /// Number of limbs `s`.
    fn width(&self) -> usize {
        self.n.len()
    }

    /// CIOS Montgomery multiplication: `a · b · R⁻¹ mod n`.
    /// Inputs and output are `s`-limb vectors `< n`.
    fn mont_mul(&self, a: &[u64], b: &[u64]) -> Vec<u64> {
        let s = self.width();
        let n = &self.n;
        // t has s+2 limbs.
        let mut t = vec![0u64; s + 2];
        for &ai in a.iter().take(s) {
            // t += ai * b
            let mut carry: u128 = 0;
            for j in 0..s {
                let sum = t[j] as u128 + ai as u128 * b[j] as u128 + carry;
                t[j] = sum as u64;
                carry = sum >> 64;
            }
            let sum = t[s] as u128 + carry;
            t[s] = sum as u64;
            t[s + 1] = t[s + 1].wrapping_add((sum >> 64) as u64);

            // m = t[0] * n0_inv mod 2^64; t = (t + m*n) / 2^64
            let m = t[0].wrapping_mul(self.n0_inv);
            let sum = t[0] as u128 + m as u128 * n[0] as u128;
            let mut carry = sum >> 64; // low limb is zero by construction
            for j in 1..s {
                let sum = t[j] as u128 + m as u128 * n[j] as u128 + carry;
                t[j - 1] = sum as u64;
                carry = sum >> 64;
            }
            let sum = t[s] as u128 + carry;
            t[s - 1] = sum as u64;
            let sum2 = t[s + 1] as u128 + (sum >> 64);
            t[s] = sum2 as u64;
            t[s + 1] = (sum2 >> 64) as u64;
        }
        // Conditional subtraction: t may be in [0, 2n).
        let needs_sub = t[s] != 0 || cmp_limbs(&t[..s], n) != std::cmp::Ordering::Less;
        let mut out = t[..s].to_vec();
        if needs_sub {
            let mut borrow = 0u64;
            for j in 0..s {
                let (d1, b1) = out[j].overflowing_sub(n[j]);
                let (d2, b2) = d1.overflowing_sub(borrow);
                out[j] = d2;
                borrow = (b1 as u64) + (b2 as u64);
            }
        }
        out
    }

    /// `base^exp mod n` with a 4-bit window in Montgomery form.
    pub fn mod_pow(&self, base: &BigUint, exp: &BigUint) -> BigUint {
        let s = self.width();
        if exp.is_zero() {
            return BigUint::one();
        }
        let modulus = BigUint::from_limbs(self.n.clone());
        let mut base_limbs = base.rem(&modulus).to_limbs();
        base_limbs.resize(s, 0);
        // one in Montgomery form = R mod n = mont_mul(1, R²).
        let mut one = vec![0u64; s];
        one[0] = 1;
        let mont_one = self.mont_mul(&one, &self.r2);
        let mont_base = self.mont_mul(&base_limbs, &self.r2);
        // Window table: base^0..base^15 (Montgomery form).
        let mut table = Vec::with_capacity(16);
        table.push(mont_one.clone());
        table.push(mont_base.clone());
        for i in 2..16 {
            let prev: &Vec<u64> = &table[i - 1];
            table.push(self.mont_mul(prev, &mont_base));
        }
        let bits = exp.bit_len();
        let windows = bits.div_ceil(4);
        let mut acc = mont_one;
        for w in (0..windows).rev() {
            if w != windows - 1 {
                for _ in 0..4 {
                    acc = self.mont_mul(&acc, &acc);
                }
            }
            let mut nib = 0usize;
            for b in (0..4).rev() {
                nib <<= 1;
                if exp.bit(w * 4 + b) {
                    nib |= 1;
                }
            }
            if nib != 0 {
                acc = self.mont_mul(&acc, &table[nib]);
            }
        }
        // Convert out of Montgomery form.
        let res = self.mont_mul(&acc, &one);
        BigUint::from_limbs(res)
    }
}

fn cmp_limbs(a: &[u64], b: &[u64]) -> std::cmp::Ordering {
    debug_assert_eq!(a.len(), b.len());
    for i in (0..a.len()).rev() {
        match a[i].cmp(&b[i]) {
            std::cmp::Ordering::Equal => continue,
            ord => return ord,
        }
    }
    std::cmp::Ordering::Equal
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn rejects_even_or_trivial_moduli() {
        assert!(MontgomeryCtx::new(&BigUint::from_u64(10)).is_none());
        assert!(MontgomeryCtx::new(&BigUint::one()).is_none());
        assert!(MontgomeryCtx::new(&BigUint::zero()).is_none());
        assert!(MontgomeryCtx::new(&BigUint::from_u64(9)).is_some());
    }

    #[test]
    fn matches_plain_mod_pow_small() {
        let m = BigUint::from_u64(1_000_003); // odd
        let ctx = MontgomeryCtx::new(&m).unwrap();
        for (b, e) in [(2u64, 10u64), (3, 0), (0, 5), (999_999, 999), (7, 1)] {
            let base = BigUint::from_u64(b);
            let exp = BigUint::from_u64(e);
            assert_eq!(
                ctx.mod_pow(&base, &exp),
                base.mod_pow_plain(&exp, &m),
                "b={b} e={e}"
            );
        }
    }

    #[test]
    fn matches_plain_mod_pow_random() {
        let mut rng = StdRng::seed_from_u64(0x30);
        for bits in [64usize, 128, 256, 512] {
            let mut m = BigUint::random_bits(&mut rng, bits);
            if m.is_even() {
                m = m.add(&BigUint::one());
            }
            let ctx = MontgomeryCtx::new(&m).unwrap();
            for _ in 0..10 {
                let base = BigUint::random_below(&mut rng, &m);
                let exp = BigUint::random_bits(&mut rng, bits / 2);
                assert_eq!(
                    ctx.mod_pow(&base, &exp),
                    base.mod_pow_plain(&exp, &m),
                    "bits={bits}"
                );
            }
        }
    }

    #[test]
    fn fermat_holds_via_montgomery() {
        let p = BigUint::from_u64(4_294_967_311); // prime
        let ctx = MontgomeryCtx::new(&p).unwrap();
        let exp = p.sub(&BigUint::one());
        for b in [2u64, 3, 65_537] {
            assert_eq!(ctx.mod_pow(&BigUint::from_u64(b), &exp), BigUint::one());
        }
    }
}
