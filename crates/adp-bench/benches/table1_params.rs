//! **Table 1** reproduction: the paper's cost parameters next to values
//! measured for this implementation on this machine.

use adp_bench::{f2, timed_avg, TablePrinter};
use adp_core::costmodel::CostParams;
use adp_crypto::{hasher::HashDomain, Hasher, Keypair};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    println!("\n=== Table 1: cost parameters (paper defaults vs measured) ===\n");
    let paper = CostParams::default();

    // C_hash: one application of h over a 100-byte pre-image.
    let hasher = Hasher::new(16);
    let msg = vec![0xa5u8; 100];
    let chash = timed_avg(20_000, || {
        std::hint::black_box(hasher.hash(HashDomain::Data, &msg));
    });

    // C_sign / C_verify with the paper's M_sign = 1024 bits.
    let mut rng = StdRng::seed_from_u64(0x7AB1E);
    let keypair = Keypair::generate(1024, &mut rng);
    let digest = hasher.hash(HashDomain::Data, b"message");
    let csign = timed_avg(50, || {
        std::hint::black_box(keypair.sign(&hasher, &digest));
    });
    let sig = keypair.sign(&hasher, &digest);
    let cverify = timed_avg(200, || {
        std::hint::black_box(keypair.public().verify(&hasher, &digest, &sig));
    });

    let t = TablePrinter::new(&["parameter", "paper (2005)", "measured here"]);
    t.row(&[
        "C_hash",
        &format!("{} us", paper.c_hash_us),
        &format!("{:.3} us", chash.as_secs_f64() * 1e6),
    ]);
    t.row(&[
        "C_sign(1024b)",
        "-",
        &format!("{:.3} ms", csign.as_secs_f64() * 1e3),
    ]);
    t.row(&[
        "C_verify",
        &format!("{} ms", paper.c_sign_ms),
        &format!("{:.3} ms", cverify.as_secs_f64() * 1e3),
    ]);
    t.row(&[
        "M_digest",
        &format!("{} bits", paper.m_digest_bits),
        &format!("{} bits", hasher.digest_bits()),
    ]);
    t.row(&[
        "M_sign",
        &format!("{} bits", paper.m_sign_bits),
        &format!("{} bits", keypair.public().bits()),
    ]);
    t.row(&[
        "verify/hash ratio",
        &f2(paper.c_sign_ms * 1000.0 / paper.c_hash_us),
        &f2(cverify.as_secs_f64() / chash.as_secs_f64()),
    ]);
    println!(
        "\nNote: the paper's Section 5.2 cites signature verification as ~100x\n\
         a hash operation; the measured ratio above plays the same role in\n\
         the aggregation savings (one verification per result instead of |Q|).\n"
    );
}
