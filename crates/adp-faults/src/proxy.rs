//! The socket-level fault proxy: a TCP forwarder that sits between a
//! client and the server and perturbs the byte stream per
//! [`FaultPlan`] — drops, stalls, stale duplicates, mid-frame closes,
//! refusals, and an on-demand partition switch. The proxy is oblivious
//! to the protocol on purpose: every fault manifests to the endpoints as
//! exactly what a hostile network can do to a TCP connection.

use crate::plan::{FaultPlan, WireFault, WireSchedule};
use std::io::{self, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

/// How much recently-forwarded history each pump keeps for `Duplicate`.
const HISTORY_CAP: usize = 1024;

/// Counters exposed by a running [`FaultProxy`].
#[derive(Debug, Default)]
pub struct ProxyStats {
    conns: AtomicU64,
    refused: AtomicU64,
    faults: AtomicU64,
    forwarded: AtomicU64,
}

impl ProxyStats {
    /// Connections accepted so far (including refused ones).
    pub fn conns(&self) -> u64 {
        self.conns.load(Ordering::Relaxed)
    }

    /// Connections dropped without forwarding (plan refusals and
    /// partition-window arrivals).
    pub fn refused(&self) -> u64 {
        self.refused.load(Ordering::Relaxed)
    }

    /// Wire faults actually injected (a planned fault positioned past
    /// the end of the stream never fires).
    pub fn faults(&self) -> u64 {
        self.faults.load(Ordering::Relaxed)
    }

    /// Payload bytes forwarded (both directions).
    pub fn forwarded(&self) -> u64 {
        self.forwarded.load(Ordering::Relaxed)
    }
}

/// A running fault proxy. Dropping it (or calling [`FaultProxy::stop`])
/// closes the listener; live pump threads notice within a tick and exit.
#[derive(Debug)]
pub struct FaultProxy {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    partitioned: Arc<AtomicBool>,
    stats: Arc<ProxyStats>,
    accept_thread: Option<thread::JoinHandle<()>>,
}

impl FaultProxy {
    /// Starts a proxy on an ephemeral local port, forwarding to
    /// `upstream` with `plan`'s wire faults.
    pub fn start(upstream: impl ToSocketAddrs, plan: FaultPlan) -> io::Result<FaultProxy> {
        let upstream = upstream
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "no upstream addr"))?;
        let listener = TcpListener::bind("127.0.0.1:0")?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let partitioned = Arc::new(AtomicBool::new(false));
        let stats = Arc::new(ProxyStats::default());
        let accept_thread = {
            let (stop, partitioned, stats) = (
                Arc::clone(&stop),
                Arc::clone(&partitioned),
                Arc::clone(&stats),
            );
            thread::Builder::new()
                .name("fault-proxy-accept".into())
                .spawn(move || accept_loop(listener, upstream, plan, stop, partitioned, stats))?
        };
        Ok(FaultProxy {
            addr,
            stop,
            partitioned,
            stats,
            accept_thread: Some(accept_thread),
        })
    }

    /// The address clients should connect to instead of the upstream.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Live counters.
    pub fn stats(&self) -> &ProxyStats {
        &self.stats
    }

    /// Switches the partition on or off. While partitioned, established
    /// connections are torn down and new ones are accepted and
    /// immediately reset — the peer looks reachable at the TCP layer but
    /// no byte crosses.
    pub fn set_partitioned(&self, on: bool) {
        self.partitioned.store(on, Ordering::SeqCst);
    }

    /// Stops the proxy and joins the accept thread.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for FaultProxy {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(
    listener: TcpListener,
    upstream: SocketAddr,
    plan: FaultPlan,
    stop: Arc<AtomicBool>,
    partitioned: Arc<AtomicBool>,
    stats: Arc<ProxyStats>,
) {
    while !stop.load(Ordering::SeqCst) {
        let (client, _) = match listener.accept() {
            Ok(pair) => pair,
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                thread::sleep(Duration::from_millis(2));
                continue;
            }
            Err(_) => break,
        };
        let conn = stats.conns.fetch_add(1, Ordering::Relaxed);
        let sched = plan.wire_schedule(conn);
        if partitioned.load(Ordering::SeqCst) || sched.refuse {
            stats.refused.fetch_add(1, Ordering::Relaxed);
            let _ = client.shutdown(Shutdown::Both);
            continue;
        }
        let server = match TcpStream::connect(upstream) {
            Ok(s) => s,
            Err(_) => {
                stats.refused.fetch_add(1, Ordering::Relaxed);
                let _ = client.shutdown(Shutdown::Both);
                continue;
            }
        };
        spawn_pumps(client, server, sched, &stop, &partitioned, &stats);
    }
}

fn spawn_pumps(
    client: TcpStream,
    server: TcpStream,
    sched: WireSchedule,
    stop: &Arc<AtomicBool>,
    partitioned: &Arc<AtomicBool>,
    stats: &Arc<ProxyStats>,
) {
    let pairs = [
        (
            client.try_clone(),
            server.try_clone(),
            sched.client_to_server,
        ),
        (Ok(server), Ok(client), sched.server_to_client),
    ];
    for (src, dst, faults) in pairs {
        let (Ok(src), Ok(dst)) = (src, dst) else {
            return;
        };
        let (stop, partitioned, stats) =
            (Arc::clone(stop), Arc::clone(partitioned), Arc::clone(stats));
        let _ = thread::Builder::new()
            .name("fault-proxy-pump".into())
            .spawn(move || pump(src, dst, faults, stop, partitioned, stats));
    }
}

/// Copies `src` → `dst`, applying `faults` at their planned positions in
/// the *source* byte stream. Exits on EOF, error, stop, or partition.
fn pump(
    mut src: TcpStream,
    mut dst: TcpStream,
    faults: Vec<WireFault>,
    stop: Arc<AtomicBool>,
    partitioned: Arc<AtomicBool>,
    stats: Arc<ProxyStats>,
) {
    let _ = src.set_read_timeout(Some(Duration::from_millis(25)));
    let mut consumed: u64 = 0;
    let mut next_fault = 0usize;
    let mut dropping: u64 = 0;
    let mut history: Vec<u8> = Vec::with_capacity(HISTORY_CAP);
    let mut buf = [0u8; 4096];
    let close_both = |src: &TcpStream, dst: &TcpStream| {
        let _ = src.shutdown(Shutdown::Both);
        let _ = dst.shutdown(Shutdown::Both);
    };
    loop {
        if stop.load(Ordering::SeqCst) || partitioned.load(Ordering::SeqCst) {
            close_both(&src, &dst);
            return;
        }
        let n = match src.read(&mut buf) {
            Ok(0) => {
                // Clean EOF: stop forwarding this direction but let the
                // other pump drain.
                let _ = dst.shutdown(Shutdown::Write);
                return;
            }
            Ok(n) => n,
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(_) => {
                close_both(&src, &dst);
                return;
            }
        };
        let mut chunk = &buf[..n];
        while !chunk.is_empty() {
            // Swallow bytes a Drop fault claimed first.
            if dropping > 0 {
                let take = (dropping as usize).min(chunk.len());
                consumed += take as u64;
                dropping -= take as u64;
                chunk = &chunk[take..];
                continue;
            }
            // How far may we forward before the next fault triggers?
            let limit = match faults.get(next_fault) {
                Some(f) if f.at() <= consumed + chunk.len() as u64 => (f.at() - consumed) as usize,
                _ => chunk.len(),
            };
            if limit > 0 {
                if forward(&mut dst, &chunk[..limit], &mut history, &stats).is_err() {
                    close_both(&src, &dst);
                    return;
                }
                consumed += limit as u64;
                chunk = &chunk[limit..];
                continue;
            }
            // A fault fires exactly here.
            let fault = faults[next_fault];
            next_fault += 1;
            stats.faults.fetch_add(1, Ordering::Relaxed);
            match fault {
                WireFault::Drop { len, .. } => dropping = u64::from(len),
                WireFault::Delay { ms, .. } => {
                    thread::sleep(Duration::from_millis(u64::from(ms.min(1000))));
                }
                WireFault::Duplicate { len, .. } => {
                    let start = history.len().saturating_sub(len as usize);
                    let stale = history[start..].to_vec();
                    if forward(&mut dst, &stale, &mut history, &stats).is_err() {
                        close_both(&src, &dst);
                        return;
                    }
                }
                WireFault::Close { .. } => {
                    close_both(&src, &dst);
                    return;
                }
            }
        }
    }
}

fn forward(
    dst: &mut TcpStream,
    bytes: &[u8],
    history: &mut Vec<u8>,
    stats: &ProxyStats,
) -> io::Result<()> {
    dst.write_all(bytes)?;
    stats
        .forwarded
        .fetch_add(bytes.len() as u64, Ordering::Relaxed);
    history.extend_from_slice(bytes);
    if history.len() > HISTORY_CAP {
        history.drain(..history.len() - HISTORY_CAP);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::FaultPlan;
    use std::io::{Read, Write};

    /// An upstream that echoes whatever it receives.
    fn echo_server() -> (SocketAddr, thread::JoinHandle<()>) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let t = thread::spawn(move || {
            // Serve a bounded number of connections, then quit.
            for _ in 0..64 {
                let Ok((mut s, _)) = listener.accept() else {
                    return;
                };
                thread::spawn(move || {
                    let mut buf = [0u8; 1024];
                    loop {
                        match s.read(&mut buf) {
                            Ok(0) | Err(_) => return,
                            Ok(n) => {
                                if s.write_all(&buf[..n]).is_err() {
                                    return;
                                }
                            }
                        }
                    }
                });
            }
        });
        (addr, t)
    }

    #[test]
    fn clean_plan_forwards_verbatim() {
        let (upstream, _t) = echo_server();
        let proxy = FaultProxy::start(upstream, FaultPlan::clean()).unwrap();
        let mut c = TcpStream::connect(proxy.addr()).unwrap();
        c.write_all(b"round trip").unwrap();
        let mut got = [0u8; 10];
        c.read_exact(&mut got).unwrap();
        assert_eq!(&got, b"round trip");
        assert_eq!(proxy.stats().faults(), 0);
        assert!(proxy.stats().forwarded() >= 20);
        proxy.stop();
    }

    #[test]
    fn close_fault_cuts_the_stream_mid_flight() {
        let (upstream, _t) = echo_server();
        let plan = FaultPlan::clean();
        // Hand-build a plan that closes the client→server stream after
        // 4 bytes: wire_schedule is seed-driven, so test via a forced
        // schedule through the pump directly is overkill — instead use a
        // seed scan to find a close-at-small-offset schedule.
        let _ = plan;
        let mut chosen = None;
        for seed in 0..5000u64 {
            let p = FaultPlan::new(seed).with_faulty_conns(1).with_horizon(32);
            let s = p.wire_schedule(0);
            let close_early = !s.refuse
                && s.server_to_client.is_empty()
                && s.client_to_server.len() == 1
                && matches!(s.client_to_server[0], WireFault::Close { at } if at <= 8);
            if close_early {
                chosen = Some(p);
                break;
            }
        }
        let plan = chosen.expect("no seed in 0..5000 yields a lone early close");
        let proxy = FaultProxy::start(upstream, plan).unwrap();
        let mut c = TcpStream::connect(proxy.addr()).unwrap();
        c.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        let _ = c.write_all(&[0u8; 64]);
        // The proxy closes; the echo never completes. Reads must reach
        // EOF (or a reset), not hang.
        let mut sink = Vec::new();
        let res = c.read_to_end(&mut sink);
        assert!(res.is_ok() || res.is_err());
        assert!(sink.len() < 64, "close fault failed to truncate");
        assert!(proxy.stats().faults() >= 1);
        proxy.stop();
    }

    #[test]
    fn partition_resets_new_connections() {
        let (upstream, _t) = echo_server();
        let proxy = FaultProxy::start(upstream, FaultPlan::clean()).unwrap();
        proxy.set_partitioned(true);
        let mut c = TcpStream::connect(proxy.addr()).unwrap();
        c.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        let _ = c.write_all(b"hello?");
        let mut sink = Vec::new();
        let _ = c.read_to_end(&mut sink);
        assert!(sink.is_empty(), "partitioned proxy forwarded bytes");
        proxy.set_partitioned(false);
        // Healed: traffic flows again.
        let mut c = TcpStream::connect(proxy.addr()).unwrap();
        c.write_all(b"back").unwrap();
        let mut got = [0u8; 4];
        c.read_exact(&mut got).unwrap();
        assert_eq!(&got, b"back");
        proxy.stop();
    }

    #[test]
    fn refused_connections_are_counted() {
        let (upstream, _t) = echo_server();
        // Find a seed whose first connection is refused.
        let plan = (0..5000u64)
            .map(|s| FaultPlan::new(s).with_faulty_conns(1))
            .find(|p| p.wire_schedule(0).refuse)
            .expect("no refusal seed in 0..5000");
        let proxy = FaultProxy::start(upstream, plan).unwrap();
        let mut c = TcpStream::connect(proxy.addr()).unwrap();
        c.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        let mut sink = Vec::new();
        let _ = c.read_to_end(&mut sink);
        assert!(sink.is_empty());
        // Second connection (index 1) is past faulty_conns: clean.
        let mut c = TcpStream::connect(proxy.addr()).unwrap();
        c.write_all(b"ok").unwrap();
        let mut got = [0u8; 2];
        c.read_exact(&mut got).unwrap();
        assert_eq!(&got, b"ok");
        assert_eq!(proxy.stats().refused(), 1);
        proxy.stop();
    }
}
