//! **Section 6.3** reproduction: update locality.
//!
//! The paper argues the signature-chain scheme updates like a doubly-linked
//! list — a record update re-signs the record and its two neighbours, which
//! live in at most two adjacent B+-tree leaves — whereas Merkle-hash-tree
//! schemes (Devanbu [10], VB-tree-like structures) must recompute a digest
//! path to the root and re-sign the root, a locking hot-spot.
//!
//! Measured here per random in-place update:
//! * signature-chain: signatures recomputed, B+-tree leaves/nodes touched,
//!   wall time;
//! * Devanbu MHT: digest path length recomputed, root re-signs, wall time.

use adp_baselines::devanbu::MhtTable;
use adp_bench::{bench_owner_small, ms, TablePrinter, WorkloadSpec};
use adp_core::prelude::*;
use adp_crypto::Hasher;
use adp_relation::{Record, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

fn main() {
    println!("\n=== Section 6.3: update cost (per in-place record update) ===\n");
    let owner = bench_owner_small();
    let updates = 30usize;

    let t = TablePrinter::new(&[
        "scheme",
        "table rows",
        "sigs/update",
        "digests/paths",
        "leaves touched",
        "ms/update",
    ]);

    for n in [1_000usize, 10_000] {
        // --- signature chain ---
        let (mut st, _cert) = WorkloadSpec::new(n).signed(owner, SchemeConfig::default());
        let mut rng = StdRng::seed_from_u64(n as u64);
        let mut sigs = 0usize;
        let mut leaves = 0u64;
        let mut nodes = 0u64;
        let start = Instant::now();
        for _ in 0..updates {
            let pos = rng.gen_range(0..st.len());
            let row = st.table().row(pos);
            let key = row.record.key(st.table().schema());
            let replica = row.replica;
            let mut vals = row.record.values().to_vec();
            vals[1] = Value::Int(rng.gen_range(0..1_000_000));
            let report = owner
                .update_record(&mut st, key, replica, Record::new(vals))
                .unwrap();
            sigs += report.signatures_recomputed;
            leaves += report.index_leaves_touched;
            nodes += report.index_nodes_touched;
        }
        let elapsed = start.elapsed() / updates as u32;
        t.row(&[
            "sig-chain",
            &n.to_string(),
            &format!("{:.1}", sigs as f64 / updates as f64),
            &format!("{:.1} nodes", nodes as f64 / updates as f64),
            &format!("{:.1}", leaves as f64 / updates as f64),
            &ms(elapsed),
        ]);

        // --- Devanbu MHT ---
        let (table, _domain) = WorkloadSpec::new(n).build();
        let mut rng2 = StdRng::seed_from_u64(0x4D48);
        let mut kp_rng = StdRng::seed_from_u64(0x4D49);
        let keypair = adp_crypto::Keypair::generate(512, &mut kp_rng);
        let mut mht = MhtTable::publish(&keypair, Hasher::default(), table);
        let start = Instant::now();
        for _ in 0..updates {
            let pos = rng2.gen_range(0..mht.table().len());
            let row = mht.table().row(pos);
            let mut vals = row.record.values().to_vec();
            vals[1] = Value::Int(rng2.gen_range(0..1_000_000));
            mht.update_record(&keypair, pos, Record::new(vals));
        }
        let elapsed = start.elapsed() / updates as u32;
        t.row(&[
            "devanbu-mht",
            &n.to_string(),
            &format!("{:.1}", mht.root_resignatures.get() as f64 / updates as f64),
            &format!(
                "{:.1} path digests",
                mht.update_digests_recomputed.get() as f64 / updates as f64
            ),
            "root (hot-spot)",
            &ms(elapsed),
        ]);
    }
    println!(
        "\nShape check: the signature chain's work per update is constant (3\n\
         signatures, a couple of adjacent leaves) regardless of table size;\n\
         the Merkle tree's digest path grows with log n and every update\n\
         serializes on the root signature.\n"
    );
}
