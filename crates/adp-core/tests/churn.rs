//! Sustained-churn stress: interleave owner updates (insert / delete /
//! modify / key-moving updates) with publisher queries and user
//! verification, continuously. Guards the incremental re-signing logic
//! (Section 6.3) against drift: after every batch the chain must audit and
//! every query must verify and agree with a trusted reference evaluation.

use adp_core::prelude::*;
use adp_relation::{Column, KeyRange, Record, Schema, SelectQuery, Table, Value, ValueType};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::OnceLock;

fn owner() -> &'static Owner {
    static OWNER: OnceLock<Owner> = OnceLock::new();
    OWNER.get_or_init(|| {
        let mut rng = StdRng::seed_from_u64(0xC4C4);
        Owner::new(512, &mut rng)
    })
}

fn schema() -> Schema {
    Schema::new(
        vec![
            Column::new("k", ValueType::Int),
            Column::new("gen", ValueType::Int),
        ],
        "k",
    )
}

#[test]
fn chain_survives_sustained_churn() {
    let o = owner();
    let mut rng = StdRng::seed_from_u64(0x1234);
    let mut t = Table::new("churn", schema());
    for i in 0..60i64 {
        t.insert(Record::new(vec![Value::Int(i * 16 + 8), Value::Int(0)]))
            .unwrap();
    }
    let domain = Domain::new(0, 2_048);
    let mut st = o.sign_table(t, domain, SchemeConfig::default()).unwrap();
    let cert = o.certificate(&st);

    for round in 0..12 {
        // A batch of random mutations.
        for _ in 0..6 {
            match rng.gen_range(0..4) {
                0 => {
                    // Insert at a random legal key (duplicates welcome).
                    let k = rng.gen_range(domain.key_min()..=domain.key_max());
                    o.insert_record(&mut st, Record::new(vec![Value::Int(k), Value::Int(round)]))
                        .unwrap();
                }
                1 if st.len() > 10 => {
                    // Delete a random row.
                    let pos = rng.gen_range(0..st.len());
                    let (k, r) = {
                        let row = st.table().row(pos);
                        (row.record.key(st.table().schema()), row.replica)
                    };
                    o.delete_record(&mut st, k, r).unwrap();
                }
                2 => {
                    // In-place attribute update.
                    let pos = rng.gen_range(0..st.len());
                    let (k, r) = {
                        let row = st.table().row(pos);
                        (row.record.key(st.table().schema()), row.replica)
                    };
                    o.update_record(
                        &mut st,
                        k,
                        r,
                        Record::new(vec![Value::Int(k), Value::Int(round + 100)]),
                    )
                    .unwrap();
                }
                _ => {
                    // Key-moving update (delete + insert path).
                    let pos = rng.gen_range(0..st.len());
                    let (k, r) = {
                        let row = st.table().row(pos);
                        (row.record.key(st.table().schema()), row.replica)
                    };
                    let new_k = rng.gen_range(domain.key_min()..=domain.key_max());
                    o.update_record(
                        &mut st,
                        k,
                        r,
                        Record::new(vec![Value::Int(new_k), Value::Int(round + 200)]),
                    )
                    .unwrap();
                }
            }
        }
        assert!(st.audit(), "chain must audit after round {round}");

        // Random queries verified against a reference evaluation.
        let publisher = Publisher::new(&st);
        for _ in 0..4 {
            let a = rng.gen_range(0..2_048i64);
            let b = a + rng.gen_range(0..512i64);
            let query = SelectQuery::range(KeyRange::closed(a, b));
            let (rows, vo) = publisher.answer_select(&query).unwrap();
            let report = verify_select(&cert, &query, &rows, &vo)
                .unwrap_or_else(|e| panic!("round {round} [{a},{b}]: {e}"));
            let expected = st
                .table()
                .rows()
                .iter()
                .filter(|r| {
                    let k = r.record.key(st.table().schema());
                    k >= a && k <= b
                })
                .count();
            assert_eq!(report.matched, expected, "round {round} [{a},{b}]");
        }
    }
}

#[test]
fn churn_down_to_empty_and_back() {
    let o = owner();
    let mut t = Table::new("drain", schema());
    for i in 0..10i64 {
        t.insert(Record::new(vec![Value::Int(i * 10 + 5), Value::Int(0)]))
            .unwrap();
    }
    let domain = Domain::new(0, 1_000);
    let mut st = o.sign_table(t, domain, SchemeConfig::default()).unwrap();
    let cert = o.certificate(&st);

    // Drain the table completely.
    while !st.is_empty() {
        let (k, r) = {
            let row = st.table().row(0);
            (row.record.key(st.table().schema()), row.replica)
        };
        o.delete_record(&mut st, k, r).unwrap();
    }
    assert!(st.audit());
    let query = SelectQuery::range(KeyRange::all());
    let (rows, vo) = Publisher::new(&st).answer_select(&query).unwrap();
    let report = verify_select(&cert, &query, &rows, &vo).unwrap();
    assert!(report.empty);

    // Refill.
    for i in 0..10i64 {
        o.insert_record(
            &mut st,
            Record::new(vec![Value::Int(i * 7 + 3), Value::Int(1)]),
        )
        .unwrap();
    }
    assert!(st.audit());
    let (rows, vo) = Publisher::new(&st).answer_select(&query).unwrap();
    let report = verify_select(&cert, &query, &rows, &vo).unwrap();
    assert_eq!(report.matched, 10);
    assert_eq!(rows.len(), 10);
}
