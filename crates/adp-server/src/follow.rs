//! The log-shipping follower: a second `adp-server` that mirrors an
//! owner's publisher over the wire with **zero trust in either side**.
//!
//! The follower bootstraps from a [`Frame::Snapshot`] — authenticated by
//! checking the embedded public key against the certificate it already
//! holds and re-running the full `O(n)` signature audit — then replays
//! the owner-signed update log shipped as [`Frame::LogSegment`]s. Every
//! replayed record passes through [`ServerHandle::apply_update`], whose
//! store verifies the batch's re-signed chain signatures before anything
//! is persisted or served: a tampered record (flipped signature byte,
//! reordered or dropped mutation) is rejected *before* the follower's
//! epoch bumps, so its own subscribers never see the forgery. The mirror
//! converges to the owner's exact snapshot — same chain, same signatures
//! — and answers queries whose VOs verify against the owner's public key,
//! exactly as the paper's multi-publisher story requires (Section 1: any
//! number of untrusted mirrors, one signing owner).

use crate::client::DEFAULT_REPLY_TIMEOUT;
use crate::protocol::{read_frame, write_frame, ErrorCode, Frame, ProtoError};
use crate::server::{ServerHandle, UpdateError};
use adp_crypto::PublicKey;
use adp_store::format::decode_snapshot;
use adp_store::log::decode_records;
use adp_store::{Store, StoreError};
use std::fmt;
use std::io;
use std::net::{TcpStream, ToSocketAddrs};
use std::path::Path;
use std::time::Duration;

/// Why following failed.
#[derive(Debug)]
pub enum FollowError {
    /// Transport or framing failure.
    Proto(ProtoError),
    /// The upstream answered with an error frame.
    Server {
        /// Error code from the upstream.
        code: ErrorCode,
        /// Upstream-provided detail.
        message: String,
    },
    /// The upstream answered with a frame of the wrong type (or for the
    /// wrong table).
    UnexpectedFrame(&'static str),
    /// The bootstrap snapshot's public key is not the owner's: the
    /// upstream is serving a different (or forged) table.
    KeyMismatch,
    /// The bootstrap snapshot failed the full signature audit: the
    /// upstream shipped data it cannot prove.
    AuditFailed,
    /// A shipped record skipped ahead of the mirror's sequence — records
    /// were dropped or reordered in flight. Reconnect and resume from
    /// `expected` (the [`FollowError::Gap::expected`] value is exactly the
    /// `have` to hand [`LogFollower::connect`]).
    Gap {
        /// The sequence the mirror needs next.
        expected: u64,
        /// The sequence that actually arrived.
        got: u64,
    },
    /// The upstream re-sent a snapshot mid-stream (its log was compacted
    /// past our position); the mirror must re-bootstrap from scratch.
    ResyncRequired,
    /// The local mirror store refused the data (decode failure, CRC
    /// mismatch, or — the important case — signature verification failure
    /// on a tampered record).
    Store(StoreError),
    /// The local serving handle refused the replayed batch.
    Update(UpdateError),
}

impl fmt::Display for FollowError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FollowError::Proto(e) => write!(f, "protocol error: {e}"),
            FollowError::Server { code, message } => {
                write!(f, "upstream error ({code}): {message}")
            }
            FollowError::UnexpectedFrame(detail) => write!(f, "unexpected frame: {detail}"),
            FollowError::KeyMismatch => {
                write!(
                    f,
                    "bootstrap snapshot is not signed by the expected owner key"
                )
            }
            FollowError::AuditFailed => {
                write!(f, "bootstrap snapshot failed the signature audit")
            }
            FollowError::Gap { expected, got } => {
                write!(f, "log gap: expected seq {expected}, got {got}")
            }
            FollowError::ResyncRequired => {
                write!(
                    f,
                    "upstream compacted past our position; re-bootstrap required"
                )
            }
            FollowError::Store(e) => write!(f, "mirror store rejected the data: {e}"),
            FollowError::Update(e) => write!(f, "mirror refused the replayed batch: {e}"),
        }
    }
}

impl std::error::Error for FollowError {}

impl From<ProtoError> for FollowError {
    fn from(e: ProtoError) -> Self {
        FollowError::Proto(e)
    }
}

impl From<io::Error> for FollowError {
    fn from(e: io::Error) -> Self {
        FollowError::Proto(ProtoError::Io(e))
    }
}

impl From<StoreError> for FollowError {
    fn from(e: StoreError) -> Self {
        FollowError::Store(e)
    }
}

impl From<UpdateError> for FollowError {
    fn from(e: UpdateError) -> Self {
        FollowError::Update(e)
    }
}

/// What the [`LogFollower::connect`] handshake produced.
pub enum FollowStart {
    /// The resume point was accepted: the backlog of framed log records
    /// from `have` to the upstream's head (empty when fully caught up).
    /// Apply it with [`apply_segment`], then stream live segments.
    Backlog(Vec<u8>),
    /// A full bootstrap snapshot: either `have` was `None`, or the
    /// upstream compacted its log past `have`. Authenticate and persist
    /// it with [`bootstrap_store`].
    Snapshot(Vec<u8>),
}

/// One follower connection to an upstream publisher: the handshake plus a
/// blocking stream of [`Frame::LogSegment`]s.
pub struct LogFollower {
    stream: TcpStream,
    table_id: u32,
}

impl LogFollower {
    /// Connects and performs the `FollowLog` handshake. `have` is the
    /// lowest log sequence the mirror still needs (its store's
    /// `next_seq`), or `None` for a fresh bootstrap.
    pub fn connect(
        addr: impl ToSocketAddrs,
        table_id: u32,
        have: Option<u64>,
    ) -> Result<(LogFollower, FollowStart), FollowError> {
        let mut stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        stream.set_write_timeout(Some(DEFAULT_REPLY_TIMEOUT))?;
        stream.set_read_timeout(Some(DEFAULT_REPLY_TIMEOUT))?;
        write_frame(&mut stream, &Frame::FollowLog { table_id, have }).map_err(ProtoError::Io)?;
        let start = match read_frame(&mut stream)? {
            Frame::LogSegment {
                table_id: tid,
                records,
            } if tid == table_id => FollowStart::Backlog(records),
            Frame::Snapshot {
                table_id: tid,
                snapshot,
            } if tid == table_id => FollowStart::Snapshot(snapshot),
            Frame::Error { code, message } => return Err(FollowError::Server { code, message }),
            _ => {
                return Err(FollowError::UnexpectedFrame(
                    "expected LogSegment or Snapshot for the followed table",
                ))
            }
        };
        Ok((LogFollower { stream, table_id }, start))
    }

    /// Sets the patience for the next live segment (`None` waits forever).
    pub fn set_timeout(&mut self, timeout: Option<Duration>) -> io::Result<()> {
        self.stream.set_read_timeout(timeout)
    }

    /// Blocks for the next live [`Frame::LogSegment`], returning its
    /// framed records. A mid-stream [`Frame::Snapshot`] means the
    /// upstream can no longer serve our position:
    /// [`FollowError::ResyncRequired`].
    pub fn next_segment(&mut self) -> Result<Vec<u8>, FollowError> {
        match read_frame(&mut self.stream)? {
            Frame::LogSegment {
                table_id: tid,
                records,
            } if tid == self.table_id => Ok(records),
            Frame::Snapshot { .. } => Err(FollowError::ResyncRequired),
            Frame::Error { code, message } => Err(FollowError::Server { code, message }),
            _ => Err(FollowError::UnexpectedFrame(
                "expected LogSegment for the followed table",
            )),
        }
    }
}

/// Authenticates a bootstrap snapshot and persists it as a fresh mirror
/// store at `dir`. The snapshot is **untrusted input**: it is accepted
/// only if its embedded public key equals the owner key the mirror
/// already holds *and* the full signature chain audits — the upstream
/// cannot seed the mirror with anything the owner didn't sign.
pub fn bootstrap_store(
    dir: impl AsRef<Path>,
    snapshot: &[u8],
    expected_key: &PublicKey,
) -> Result<Store, FollowError> {
    let (st, base_seq) = decode_snapshot(snapshot)?;
    if st.public_key() != expected_key {
        return Err(FollowError::KeyMismatch);
    }
    if !st.audit() {
        return Err(FollowError::AuditFailed);
    }
    Ok(Store::create_at(dir, st, base_seq)?)
}

/// Applies one segment's framed log records to the mirror's serving
/// handle. Already-applied records (`seq` below the mirror's head) are
/// skipped idempotently — resume overlap is harmless; a record skipping
/// *ahead* is a [`FollowError::Gap`] and nothing past it is applied.
///
/// Every applied record goes through [`ServerHandle::apply_update`]:
/// signatures are verified against the mirror's own chain state before
/// the record is logged, the table swapped, or the epoch bumped, so a
/// tampered record leaves the mirror (and its subscribers) untouched.
/// Returns the mirror's new head sequence.
pub fn apply_segment(
    handle: &ServerHandle,
    table_id: u32,
    records: &[u8],
) -> Result<u64, FollowError> {
    // For store-backed tables the serving epoch *is* the store's
    // `next_seq`: `add_store` seeds it so and both advance in lockstep.
    let mut head = handle
        .table_epoch(table_id)
        .ok_or(FollowError::Update(UpdateError::UnknownTable(table_id)))?;
    for rec in decode_records(records)? {
        if rec.seq < head {
            continue;
        }
        if rec.seq > head {
            return Err(FollowError::Gap {
                expected: head,
                got: rec.seq,
            });
        }
        head = handle.apply_update(table_id, &rec.ops, &rec.resigned)?;
    }
    Ok(head)
}
