//! Property-based tests for the relational substrate: table ordering
//! invariants, B+-tree/BTreeMap equivalence under arbitrary workloads,
//! range-scan agreement, and access-control rewriting laws.

use adp_relation::{
    AccessPolicy, BPlusTree, Column, CompareOp, KeyRange, Predicate, Record, Role, RolePolicy,
    Schema, SelectQuery, Table, Value, ValueType,
};
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::ops::Bound;

fn schema() -> Schema {
    Schema::new(
        vec![
            Column::new("k", ValueType::Int),
            Column::new("v", ValueType::Int),
        ],
        "k",
    )
}

#[derive(Clone, Debug)]
enum TreeOp {
    Insert(i64, u32, u64),
    Remove(i64, u32),
    Get(i64, u32),
    Range(i64, i64),
}

fn arb_tree_op() -> impl Strategy<Value = TreeOp> {
    prop_oneof![
        (0..80i64, 0..3u32, any::<u64>()).prop_map(|(k, r, v)| TreeOp::Insert(k, r, v)),
        (0..80i64, 0..3u32).prop_map(|(k, r)| TreeOp::Remove(k, r)),
        (0..80i64, 0..3u32).prop_map(|(k, r)| TreeOp::Get(k, r)),
        (0..80i64, 0..80i64).prop_map(|(a, b)| TreeOp::Range(a.min(b), a.max(b))),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn bptree_matches_btreemap(ops in prop::collection::vec(arb_tree_op(), 0..300), order in 4usize..32) {
        let mut tree = BPlusTree::new(order);
        let mut model: BTreeMap<(i64, u32), u64> = BTreeMap::new();
        for op in ops {
            match op {
                TreeOp::Insert(k, r, v) => {
                    prop_assert_eq!(tree.insert((k, r), v), model.insert((k, r), v));
                }
                TreeOp::Remove(k, r) => {
                    prop_assert_eq!(tree.remove((k, r)), model.remove(&(k, r)));
                }
                TreeOp::Get(k, r) => {
                    prop_assert_eq!(tree.get((k, r)), model.get(&(k, r)));
                }
                TreeOp::Range(a, b) => {
                    let got = tree.range_keys(
                        Bound::Included((a, 0)),
                        Bound::Included((b, u32::MAX)),
                    );
                    let want: Vec<(i64, u32)> = model
                        .range((a, 0)..=(b, u32::MAX))
                        .map(|(k, _)| *k)
                        .collect();
                    prop_assert_eq!(got, want);
                }
            }
        }
        tree.check_invariants();
        prop_assert_eq!(tree.len(), model.len());
    }

    #[test]
    fn table_stays_sorted_with_replicas(keys in prop::collection::vec(0..50i64, 0..100)) {
        let mut t = Table::new("t", schema());
        for (i, k) in keys.iter().enumerate() {
            t.insert(Record::new(vec![Value::Int(*k), Value::Int(i as i64)])).unwrap();
        }
        // Sorted by (key, replica), replicas dense per key.
        let pairs: Vec<(i64, u32)> = t.rows().iter().map(|r| r.sort_key(t.schema())).collect();
        let mut sorted = pairs.clone();
        sorted.sort_unstable();
        prop_assert_eq!(&pairs, &sorted);
        let mut last: Option<(i64, u32)> = None;
        for (k, r) in pairs {
            match last {
                Some((lk, lr)) if lk == k => prop_assert_eq!(r, lr + 1),
                _ => prop_assert_eq!(r, 0),
            }
            last = Some((k, r));
        }
    }

    #[test]
    fn range_positions_agree_with_filter(keys in prop::collection::vec(0..100i64, 0..60), a in 0i64..100, b in 0i64..100) {
        let (a, b) = (a.min(b), a.max(b));
        let mut t = Table::new("t", schema());
        for k in &keys {
            t.insert(Record::new(vec![Value::Int(*k), Value::Int(0)])).unwrap();
        }
        let (s, e) = t.key_range_positions(Bound::Included(a), Bound::Included(b));
        let expected = t.rows().iter().filter(|r| {
            let k = r.record.key(t.schema());
            k >= a && k <= b
        }).count();
        prop_assert_eq!(e - s, expected);
    }

    #[test]
    fn bulk_load_equals_incremental(keys in prop::collection::vec(0..40i64, 0..60)) {
        let mut incremental = Table::new("t", schema());
        let mut records = Vec::new();
        for (i, k) in keys.iter().enumerate() {
            let rec = Record::new(vec![Value::Int(*k), Value::Int(i as i64)]);
            records.push(rec.clone());
            incremental.insert(rec).unwrap();
        }
        let bulk = Table::from_records("t", schema(), records).unwrap();
        // Same multiset of (key, replica); values may attach to different
        // replicas when keys collide (insertion order vs sort order), so
        // compare keys only.
        let a: Vec<(i64, u32)> = incremental.rows().iter().map(|r| r.sort_key(incremental.schema())).collect();
        let b: Vec<(i64, u32)> = bulk.rows().iter().map(|r| r.sort_key(bulk.schema())).collect();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn rewrite_always_narrows(lo in -100i64..100, hi in -100i64..100, cap in -100i64..100) {
        let (lo, hi) = (lo.min(hi), lo.max(hi));
        let mut policy = AccessPolicy::new();
        policy.set(Role::new("r"), RolePolicy {
            key_range: Some(KeyRange::less_than(cap)),
            ..Default::default()
        });
        let q = SelectQuery::range(KeyRange::closed(lo, hi));
        let rq = policy.rewrite(&schema(), &Role::new("r"), &q);
        // Every key admitted by the rewritten range is admitted by BOTH the
        // original range and the policy.
        for k in -100..100i64 {
            if rq.range.contains(k) {
                prop_assert!(q.range.contains(k));
                prop_assert!(k < cap);
            }
        }
    }

    #[test]
    fn predicates_consistent_with_manual_eval(k in 0i64..50, v in 0i64..50, bound in 0i64..50) {
        let s = schema();
        let values = vec![Value::Int(k), Value::Int(v)];
        for (op, expect) in [
            (CompareOp::Eq, v == bound),
            (CompareOp::Ne, v != bound),
            (CompareOp::Lt, v < bound),
            (CompareOp::Le, v <= bound),
            (CompareOp::Gt, v > bound),
            (CompareOp::Ge, v >= bound),
        ] {
            let p = Predicate::new("v", op, bound);
            prop_assert_eq!(p.eval(&s, &values), expect);
        }
    }
}
