//! Records (tuples).

use crate::schema::Schema;
use crate::value::Value;
use std::fmt;

/// A tuple of attribute values, positionally matching a [`Schema`].
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct Record {
    values: Vec<Value>,
}

impl Record {
    /// Wraps values into a record (validation happens at table insertion).
    pub fn new(values: Vec<Value>) -> Self {
        Record { values }
    }

    /// All values.
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// Value at a column index.
    pub fn get(&self, index: usize) -> &Value {
        &self.values[index]
    }

    /// Value by column name.
    pub fn get_named<'a>(&'a self, schema: &Schema, name: &str) -> Option<&'a Value> {
        schema.column_index(name).map(|i| &self.values[i])
    }

    /// The key attribute value as an integer.
    pub fn key(&self, schema: &Schema) -> i64 {
        self.values[schema.key_index()]
            .as_int()
            .expect("key column validated as INT")
    }

    /// Number of attributes.
    pub fn arity(&self) -> usize {
        self.values.len()
    }

    /// Serialized size of the whole record on the wire (the paper's `M_r`).
    pub fn wire_size(&self) -> usize {
        self.values.iter().map(Value::wire_size).sum()
    }

    /// Keeps only the columns at `indices` (projection π).
    pub fn project(&self, indices: &[usize]) -> Record {
        Record {
            values: indices.iter().map(|&i| self.values[i].clone()).collect(),
        }
    }

    /// Consumes the record, returning its values.
    pub fn into_values(self) -> Vec<Value> {
        self.values
    }
}

impl fmt::Display for Record {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, v) in self.values.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, "]")
    }
}

impl From<Vec<Value>> for Record {
    fn from(values: Vec<Value>) -> Self {
        Record::new(values)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Column;
    use crate::value::ValueType;

    fn schema() -> Schema {
        Schema::new(
            vec![
                Column::new("id", ValueType::Int),
                Column::new("name", ValueType::Text),
                Column::new("salary", ValueType::Int),
            ],
            "salary",
        )
    }

    fn rec() -> Record {
        Record::new(vec![Value::Int(5), Value::from("A"), Value::Int(2000)])
    }

    #[test]
    fn accessors() {
        let s = schema();
        let r = rec();
        assert_eq!(r.key(&s), 2000);
        assert_eq!(r.get(0), &Value::Int(5));
        assert_eq!(r.get_named(&s, "name"), Some(&Value::from("A")));
        assert_eq!(r.get_named(&s, "missing"), None);
        assert_eq!(r.arity(), 3);
    }

    #[test]
    fn projection() {
        let r = rec();
        let p = r.project(&[2, 0]);
        assert_eq!(p.values(), &[Value::Int(2000), Value::Int(5)]);
    }

    #[test]
    fn wire_size_sums_values() {
        let r = rec();
        assert_eq!(r.wire_size(), 9 + (1 + 4 + 1) + 9);
    }
}
