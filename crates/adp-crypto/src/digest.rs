//! Digest values of configurable length.
//!
//! The paper's cost analysis (Table 1) assumes `M_digest = 128` bits, an
//! MD5-era digest size. Rather than implementing a broken hash, we compute
//! SHA-256 and truncate to a configurable length between 16 and 32 bytes
//! (truncated SHA-256 is a standard construction, cf. SHA-224/SHA-512/256).
//! All digests produced by one [`crate::Hasher`] share the same length, so
//! verification-object sizes can be measured with either the paper's 128-bit
//! parameter or the modern 256-bit default.

use std::fmt;

/// Maximum digest length in bytes (full SHA-256 output).
pub const MAX_DIGEST_LEN: usize = 32;

/// Minimum digest length in bytes we allow truncation to.
pub const MIN_DIGEST_LEN: usize = 16;

/// A hash digest of between 16 and 32 bytes.
///
/// Stored inline (no heap allocation); equality and ordering consider only
/// the active `len` prefix.
#[derive(Clone, Copy)]
pub struct Digest {
    bytes: [u8; MAX_DIGEST_LEN],
    len: u8,
}

impl Digest {
    /// Wraps raw digest bytes. Panics if `bytes.len()` is out of range.
    pub fn from_bytes(bytes: &[u8]) -> Self {
        assert!(
            (MIN_DIGEST_LEN..=MAX_DIGEST_LEN).contains(&bytes.len()),
            "digest length {} out of range",
            bytes.len()
        );
        let mut buf = [0u8; MAX_DIGEST_LEN];
        buf[..bytes.len()].copy_from_slice(bytes);
        Digest {
            bytes: buf,
            len: bytes.len() as u8,
        }
    }

    /// The active digest bytes.
    #[inline]
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes[..self.len as usize]
    }

    /// Digest length in bytes.
    #[inline]
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Always false; digests are never empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Lowercase hex rendering.
    pub fn to_hex(&self) -> String {
        self.as_bytes().iter().map(|b| format!("{b:02x}")).collect()
    }
}

impl PartialEq for Digest {
    fn eq(&self, other: &Self) -> bool {
        self.as_bytes() == other.as_bytes()
    }
}
impl Eq for Digest {}

impl PartialOrd for Digest {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Digest {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.as_bytes().cmp(other.as_bytes())
    }
}

impl std::hash::Hash for Digest {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_bytes().hash(state);
    }
}

impl fmt::Debug for Digest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Digest({}…)", &self.to_hex()[..12.min(2 * self.len())])
    }
}

impl fmt::Display for Digest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_hex())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_len() {
        let d = Digest::from_bytes(&[7u8; 16]);
        assert_eq!(d.len(), 16);
        assert_eq!(d.as_bytes(), &[7u8; 16]);
        let d32 = Digest::from_bytes(&[9u8; 32]);
        assert_eq!(d32.len(), 32);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn too_short_panics() {
        let _ = Digest::from_bytes(&[1u8; 8]);
    }

    #[test]
    fn equality_ignores_padding() {
        let a = Digest::from_bytes(&[1u8; 16]);
        let mut raw = [0u8; 32];
        raw[..16].copy_from_slice(&[1u8; 16]);
        let b = Digest::from_bytes(&raw[..16]);
        assert_eq!(a, b);
    }

    #[test]
    fn hex_rendering() {
        let d = Digest::from_bytes(&[0xab; 16]);
        assert_eq!(d.to_hex(), "ab".repeat(16));
    }
}
