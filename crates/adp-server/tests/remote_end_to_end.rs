//! End-to-end over a real socket: a threaded server on an ephemeral port
//! answers single and batched range queries, the remote verifier accepts
//! every honest answer, and the VO cache reports hits for repeated (and
//! semantically-identical) queries.

use adp_core::prelude::*;
use adp_relation::{
    Column, CompareOp, KeyRange, Predicate, Record, Schema, SelectQuery, Table, Value, ValueType,
};
use adp_server::{RemoteClient, RemoteError, RemoteVerifier, Server, ServerConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::ops::Bound;
use std::sync::{Arc, OnceLock};

/// 20 staff rows keyed on salary (1000, 1500, …, 10500).
fn staff_table() -> Table {
    let schema = Schema::new(
        vec![
            Column::new("id", ValueType::Int),
            Column::new("name", ValueType::Text),
            Column::new("salary", ValueType::Int),
            Column::new("dept", ValueType::Int),
        ],
        "salary",
    );
    let mut t = Table::new("staff", schema);
    for i in 0..20i64 {
        t.insert(Record::new(vec![
            Value::Int(i),
            Value::from(format!("emp{i}")),
            Value::Int(1_000 + i * 500),
            Value::Int(i % 3),
        ]))
        .unwrap();
    }
    t
}

fn fixture() -> &'static (Arc<SignedTable>, Certificate) {
    static FIX: OnceLock<(Arc<SignedTable>, Certificate)> = OnceLock::new();
    FIX.get_or_init(|| {
        let mut rng = StdRng::seed_from_u64(0x5E7E);
        let owner = Owner::new(512, &mut rng);
        let st = owner
            .sign_table(
                staff_table(),
                Domain::new(0, 100_000),
                SchemeConfig::default(),
            )
            .unwrap();
        let cert = owner.certificate(&st);
        (Arc::new(st), cert)
    })
}

fn start_server() -> adp_server::ServerHandle {
    let (st, _) = fixture();
    let mut server = Server::new(ServerConfig::default());
    server.add_shared_table(0, Arc::clone(st));
    server.serve("127.0.0.1:0").expect("bind ephemeral port")
}

#[test]
fn remote_select_verifies_honest_answers() {
    let handle = start_server();
    let (_, cert) = fixture();
    let mut user = RemoteVerifier::connect(handle.addr(), cert.clone(), 0).unwrap();

    // Plain range.
    let q = SelectQuery::range(KeyRange::closed(2_000, 9_000));
    let r = user.select(&q).unwrap();
    assert_eq!(r.rows.len(), 15);
    assert_eq!(r.report.matched, 15);

    // Multipoint filter.
    let q = SelectQuery::range(KeyRange::closed(2_000, 9_000)).filter(Predicate::new(
        "dept",
        CompareOp::Eq,
        1i64,
    ));
    let r = user.select(&q).unwrap();
    assert!(r.rows.len() < 15 && !r.rows.is_empty());
    assert!(r.report.filtered > 0);

    // Projected DISTINCT (the key column is always retained, so rows stay
    // distinct and each carries dept + salary).
    let q = SelectQuery::range(KeyRange::closed(2_000, 9_000))
        .project(&["dept"])
        .distinct();
    let r = user.select(&q).unwrap();
    assert_eq!(r.rows.len(), 15);
    assert!(r.rows.iter().all(|row| row.arity() == 2));

    // Provably empty range (between two keys).
    let q = SelectQuery::range(KeyRange::closed(1_100, 1_400));
    let r = user.select(&q).unwrap();
    assert!(r.rows.is_empty() && r.report.empty);

    // Trivially empty range (outside the domain).
    let q = SelectQuery::range(KeyRange::closed(200_000, 300_000));
    let r = user.select(&q).unwrap();
    assert!(r.rows.is_empty() && r.report.empty);

    // Session accounting worked.
    let stats = user.stats();
    assert_eq!(stats.queries, 5);
    assert!(stats.vo_bytes > 0 && stats.hash_ops > 0);

    handle.shutdown();
}

#[test]
fn batched_queries_answer_in_order_over_one_round_trip() {
    let handle = start_server();
    let (_, cert) = fixture();
    let mut user = RemoteVerifier::connect(handle.addr(), cert.clone(), 0).unwrap();

    let queries: Vec<SelectQuery> = (0..8)
        .map(|i| SelectQuery::range(KeyRange::closed(1_000 + i * 500, 6_000 + i * 500)))
        .collect();
    let verified = user.select_batch(&queries).unwrap();
    assert_eq!(verified.len(), queries.len());
    for (q, v) in queries.iter().zip(&verified) {
        // Expected row count straight off the key layout.
        let expect = (0..20i64)
            .filter(|i| q.range.contains(1_000 + i * 500))
            .count();
        assert_eq!(v.rows.len(), expect, "{:?}", q.range);
    }
    let server_stats = user.client_mut().stats().unwrap();
    assert_eq!(server_stats.batches, 1);
    assert_eq!(server_stats.queries, 8);

    handle.shutdown();
}

#[test]
fn batch_isolates_per_item_failures() {
    let handle = start_server();
    let mut client = RemoteClient::connect(handle.addr()).unwrap();

    let ok = SelectQuery::range(KeyRange::closed(1_000, 2_000));
    let items = vec![(0u32, ok.clone()), (9u32, ok.clone()), (0u32, ok)];
    let replies = client.query_batch_raw(&items).unwrap();
    assert_eq!(replies.len(), 3);
    assert!(replies[0].is_ok());
    assert!(matches!(
        &replies[1],
        Err((adp_server::ErrorCode::UnknownTable, _))
    ));
    assert!(replies[2].is_ok());

    handle.shutdown();
}

#[test]
fn vo_cache_hits_on_repeated_and_equivalent_queries() {
    let handle = start_server();
    let (_, cert) = fixture();
    let mut user = RemoteVerifier::connect(handle.addr(), cert.clone(), 0).unwrap();

    let q = SelectQuery::range(KeyRange::closed(2_000, 9_000));
    let first = user.select(&q).unwrap();
    let second = user.select(&q).unwrap();
    assert_eq!(first.rows, second.rows);

    // Semantically identical range spelled differently: the canonical
    // cache key normalizes [2000, 9001) to [2000, 9000].
    let equivalent = SelectQuery::range(KeyRange {
        lo: Bound::Included(2_000),
        hi: Bound::Excluded(9_001),
    });
    let third = user.select(&equivalent).unwrap();
    assert_eq!(first.rows, third.rows);

    let stats = user.client_mut().stats().unwrap();
    assert_eq!(stats.cache_misses, 1, "one publisher run");
    assert!(stats.cache_hits >= 2, "repeat + equivalent both hit");
    assert_eq!(stats.cache_entries, 1);
    assert_eq!(stats.queries, 3);

    handle.shutdown();
}

#[test]
fn ping_unknown_table_and_bad_query_errors() {
    let handle = start_server();
    let (_, cert) = fixture();

    let mut client = RemoteClient::connect(handle.addr()).unwrap();
    client.ping().unwrap();

    // Unknown table id.
    let q = SelectQuery::range(KeyRange::all());
    match client.query_raw(42, &q) {
        Err(RemoteError::Server { code, .. }) => {
            assert_eq!(code, adp_server::ErrorCode::UnknownTable)
        }
        other => panic!("expected UnknownTable, got {other:?}"),
    }

    // Filters on the key column are publisher errors, not crashes.
    let bad = SelectQuery::range(KeyRange::all()).filter(Predicate::new(
        "salary",
        CompareOp::Eq,
        1_000i64,
    ));
    match client.query_raw(0, &bad) {
        Err(RemoteError::Server { code, .. }) => {
            assert_eq!(code, adp_server::ErrorCode::BadQuery)
        }
        other => panic!("expected BadQuery, got {other:?}"),
    }

    // The connection is still usable afterwards.
    let mut user = RemoteVerifier::new(client, cert.clone(), 0);
    let r = user.select(&q).unwrap();
    assert_eq!(r.rows.len(), 20);

    handle.shutdown();
}

#[test]
fn wrong_certificate_rejects_remote_answers() {
    let handle = start_server();
    // A user trusting a different owner must reject everything served.
    let mut rng = StdRng::seed_from_u64(0xD1FF);
    let other_owner = Owner::new(512, &mut rng);
    let other_st = other_owner
        .sign_table(
            staff_table(),
            Domain::new(0, 100_000),
            SchemeConfig::default(),
        )
        .unwrap();
    let wrong_cert = other_owner.certificate(&other_st);

    let mut user = RemoteVerifier::connect(handle.addr(), wrong_cert, 0).unwrap();
    let q = SelectQuery::range(KeyRange::closed(2_000, 9_000));
    assert!(matches!(user.select(&q), Err(RemoteError::Verify(_))));

    handle.shutdown();
}

#[test]
fn concurrent_clients_share_one_server() {
    let handle = start_server();
    let (_, cert) = fixture();
    let addr = handle.addr();

    let threads: Vec<_> = (0..4)
        .map(|t| {
            let cert = cert.clone();
            std::thread::spawn(move || {
                let mut user = RemoteVerifier::connect(addr, cert, 0).unwrap();
                for i in 0..5 {
                    let lo = 1_000 + ((t * 5 + i) % 10) * 500;
                    let q = SelectQuery::range(KeyRange::closed(lo, lo + 3_000));
                    user.select(&q).unwrap();
                }
                user.stats().queries
            })
        })
        .collect();
    let total: usize = threads.into_iter().map(|t| t.join().unwrap()).sum();
    assert_eq!(total, 20);

    let stats = handle.stats();
    assert_eq!(stats.queries, 20);
    assert!(stats.connections >= 4);
    assert!(stats.cache_hits + stats.cache_misses == 20);

    handle.shutdown();
}
