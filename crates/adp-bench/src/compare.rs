//! The cross-scheme comparison harness behind the `baseline_compare`
//! binary and `adp compare`: reproduces the paper's Section 6.1
//! comparison table and Section 6.3 update-churn experiment across all
//! four schemes — the `adp-core` signature chain, the Devanbu Merkle
//! tree, the Ma aggregated-signature scheme, and the VB-tree — over one
//! shared workload grid (table sizes × range selectivities × projection
//! shapes), plus a continuous-churn leg that drives `Owner::apply_batch`
//! through the `adp-store` update log.
//!
//! Everything the harness derives that is *not* a wall-clock time — VO
//! wire bytes, dissemination bytes/signatures, rows shipped, disclosure
//! counts, per-batch re-signing costs, log bytes — is deterministic:
//! workloads and keys come from fixed seeds, so the cells are identical
//! on every machine. Those cells are committed twice, as markdown tables
//! inside `docs/EVALUATION.md` (between `baseline_compare:begin/end`
//! markers) and as the `cells` objects of `BENCH_PR5.json`, and
//! [`run`] in `--check` mode re-derives every one of them and fails on
//! any drift — CI proves the doc can never diverge from the code.
//! Timings (verify latency, publish time, churn throughput) are
//! machine-local and live only in the snapshot's `timing` objects.

use crate::{bench_owner_small, measure_ns, perf_samples, WorkloadSpec};
use adp_baselines::{MaScheme, MhtScheme, RangeScheme, UpdateCost, VbScheme};
use adp_core::prelude::*;
use adp_crypto::{Hasher, Keypair};
use adp_relation::{KeyRange, Record, SelectQuery, Table, Value};
use adp_store::Store;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::path::PathBuf;
use std::time::Instant;

/// VB-tree fanout used throughout the comparison (the value the old
/// one-shot bench used; a middle ground between VO size and signing cost).
const VB_FANOUT: usize = 64;

/// Spaced-key gap of the generated workloads (`WorkloadSpec` default).
const KEY_GAP: i64 = 10;

/// Begin marker of the generated region in `docs/EVALUATION.md`.
pub const DOC_BEGIN: &str = "<!-- baseline_compare:begin";
/// End marker of the generated region in `docs/EVALUATION.md`.
pub const DOC_END: &str = "<!-- baseline_compare:end";

// ------------------------------------------------------------------ grid

/// The shared workload grid. One value of this struct fully determines
/// every deterministic cell the harness emits.
#[derive(Clone, Debug)]
pub struct Grid {
    /// Table cardinalities.
    pub sizes: Vec<usize>,
    /// Result sizes `q` (range selectivities; a `q` is skipped for tables
    /// with fewer than `q + 2` rows, which cannot host an interior range).
    pub result_sizes: Vec<usize>,
    /// Projection shapes as (name, kept columns) over the bench schema
    /// `k INT, grp INT, payload BYTES`.
    pub projections: Vec<(&'static str, Vec<&'static str>)>,
    /// Payload bytes per record.
    pub payload: usize,
    /// Churn leg: table cardinality…
    pub churn_rows: usize,
    /// …mutations per batch…
    pub churn_batch: usize,
    /// …and batches applied.
    pub churn_batches: usize,
}

impl Grid {
    /// The committed grid — what `docs/EVALUATION.md` and
    /// `BENCH_PR5.json` are generated from and `--check` re-derives.
    pub fn full() -> Self {
        Grid {
            sizes: vec![1_000, 5_000],
            result_sizes: vec![10, 100, 1_000],
            projections: Self::shapes(),
            payload: 64,
            churn_rows: 2_000,
            churn_batch: 16,
            churn_batches: 32,
        }
    }

    /// A seconds-scale grid for CI smoke runs (`--tiny`). Never used for
    /// the committed artifacts.
    pub fn tiny() -> Self {
        Grid {
            sizes: vec![200],
            result_sizes: vec![5, 20],
            projections: Self::shapes(),
            payload: 64,
            churn_rows: 200,
            churn_batch: 8,
            churn_batches: 4,
        }
    }

    fn shapes() -> Vec<(&'static str, Vec<&'static str>)> {
        vec![("all", vec!["k", "grp", "payload"]), ("key", vec!["k"])]
    }

    /// The result sizes that fit an interior range in an `n`-row table.
    fn queries_for(&self, n: usize) -> Vec<usize> {
        self.result_sizes
            .iter()
            .copied()
            .filter(|q| q + 2 <= n)
            .collect()
    }
}

// ------------------------------------------------------- chain adapter

/// The signature-chain scheme (`adp-core`) behind the same
/// [`RangeScheme`] lens as the baselines, so the grid can iterate all
/// four schemes generically. Owner and publisher state live together
/// here for the same harness-shaped reason as the baseline adapters.
pub struct ChainScheme {
    st: SignedTable,
    cert: Certificate,
    owner: &'static Owner,
}

impl ChainScheme {
    /// Signs `table` over `domain` with the default scheme config.
    pub fn publish(owner: &'static Owner, table: Table, domain: Domain) -> Self {
        let st = owner
            .sign_table(table, domain, SchemeConfig::default())
            .expect("workload keys are in-domain");
        let cert = owner.certificate(&st);
        ChainScheme { st, cert, owner }
    }

    /// The signed table (for the churn driver, which moves it into a
    /// durable store).
    pub fn into_signed_table(self) -> SignedTable {
        self.st
    }

    fn query(&self, range: &KeyRange, projection: &[usize]) -> SelectQuery {
        let schema = self.st.table().schema();
        let q = SelectQuery::range(*range);
        if projection.len() == schema.arity() {
            q
        } else {
            let names: Vec<&str> = projection
                .iter()
                .map(|&i| schema.columns()[i].name.as_str())
                .collect();
            q.project(&names)
        }
    }
}

impl RangeScheme for ChainScheme {
    type VO = QueryVO;

    fn scheme_name(&self) -> &'static str {
        "chain"
    }

    fn verifies_completeness(&self) -> bool {
        true
    }

    fn supports_projection(&self) -> bool {
        true
    }

    fn dissemination(&self) -> adp_baselines::Dissemination {
        adp_baselines::Dissemination {
            bytes: self.st.dissemination_size(),
            signatures: self.st.chain_len(),
        }
    }

    fn answer(&self, range: &KeyRange, projection: &[usize]) -> (Vec<Record>, Self::VO) {
        let query = self.query(range, projection);
        Publisher::new(&self.st)
            .answer_select(&query)
            .expect("grid queries are well-formed")
    }

    fn vo_bytes(vo: &Self::VO) -> usize {
        // The chain scheme has a real codec: this is the exact encoded
        // length, not the baselines' accounting approximation.
        vo.wire_size()
    }

    fn verify(
        &self,
        range: &KeyRange,
        projection: &[usize],
        rows: &[Record],
        vo: &Self::VO,
    ) -> Result<(), String> {
        let query = self.query(range, projection);
        verify_select(&self.cert, &query, rows, vo)
            .map(|_| ())
            .map_err(|e| e.to_string())
    }

    fn rows_beyond_query(&self, _range: &KeyRange, _rows: &[Record]) -> usize {
        0 // precision by construction — the paper's Section 3 requirement
    }

    fn update_payload(&mut self, pos: usize, record: Record) -> UpdateCost {
        let row = &self.st.table().rows()[pos];
        let (key, replica) = (row.record.key(self.st.table().schema()), row.replica);
        let report = self
            .owner
            .update_record(&mut self.st, key, replica, record)
            .expect("churn updates are schema-valid");
        UpdateCost {
            signatures: report.signatures_recomputed as u64,
            digests: report.g_recomputed as u64,
        }
    }
}

// --------------------------------------------------------- measurement

/// Results for one scheme: deterministic cells (machine-independent,
/// committed and checked) and timings (machine-local, snapshot-only).
pub struct SchemeResults {
    /// Stable scheme key: `chain`, `mht`, `aggsig`, `vbtree`.
    pub name: &'static str,
    /// `(key, value)` deterministic cells in emission order.
    pub cells: Vec<(String, u64)>,
    /// `(key, value)` timing entries in emission order.
    pub timing: Vec<(String, f64)>,
}

impl SchemeResults {
    fn new(name: &'static str) -> Self {
        SchemeResults {
            name,
            cells: Vec::new(),
            timing: Vec::new(),
        }
    }

    fn cell(&mut self, key: String, v: u64) {
        self.cells.push((key, v));
    }

    fn time(&mut self, key: String, v: f64) {
        self.timing.push((key, v));
    }

    /// Looks a deterministic cell up (panics on a key the grid did not
    /// emit — a harness bug, not an input error).
    pub fn get(&self, key: &str) -> u64 {
        self.cells
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| *v)
            .unwrap_or_else(|| panic!("missing cell {key} for {}", self.name))
    }
}

/// Drives one published scheme through every (q, projection) cell of one
/// table size. `samples = None` skips timing (the `--check` path).
fn drive<S: RangeScheme>(
    scheme: &S,
    n: usize,
    queries: &[(usize, KeyRange)],
    projections: &[(String, Vec<usize>)],
    samples: Option<usize>,
    res: &mut SchemeResults,
) {
    let d = scheme.dissemination();
    res.cell(format!("dissemination_bytes/n{n}"), d.bytes as u64);
    res.cell(format!("dissemination_sigs/n{n}"), d.signatures as u64);
    for (q, range) in queries {
        for (pname, pidx) in projections {
            let (rows, vo) = scheme.answer(range, pidx);
            scheme
                .verify(range, pidx, &rows, &vo)
                .unwrap_or_else(|e| panic!("{} n={n} q={q} {pname}: {e}", scheme.scheme_name()));
            let key = |metric: &str| format!("{metric}/n{n}/q{q}/{pname}");
            res.cell(key("vo_bytes"), S::vo_bytes(&vo) as u64);
            res.cell(key("answer_rows"), rows.len() as u64);
            res.cell(
                key("answer_bytes"),
                rows.iter().map(Record::wire_size).sum::<usize>() as u64,
            );
            res.cell(
                key("beyond_rows"),
                scheme.rows_beyond_query(range, &rows) as u64,
            );
            if let Some(ns) = samples {
                let t = measure_ns(ns, || {
                    scheme
                        .verify(range, pidx, &rows, &vo)
                        .expect("verified above")
                });
                res.time(key("verify_ns"), t);
            }
        }
    }
}

/// The deterministic churn record for batch `round`, slot `j`, at `key`.
fn churn_record(key: i64, round: usize, j: usize, payload: usize) -> Record {
    Record::new(vec![
        Value::Int(key),
        Value::Int(((round + j) % 10) as i64),
        Value::Bytes(vec![((round * 31 + j * 7) % 251) as u8; payload]),
    ])
}

/// Positions mutated in batch `round` — `k` scatter-strided rows, all
/// distinct, no two adjacent (so the chain's 3-signature neighborhoods
/// never overlap and the per-batch cost is stable).
fn churn_positions(n: usize, k: usize, round: usize) -> Vec<usize> {
    let stride = n / k;
    (0..k)
        .map(|j| (j * stride + (round % stride)) % n)
        .collect()
}

/// Churn leg for a trait-driven scheme: per-record updates, batched for
/// accounting symmetry with the chain's `apply_batch`.
fn churn_scheme<S: RangeScheme>(
    scheme: &mut S,
    grid: &Grid,
    keys: &[i64],
    timing: bool,
    res: &mut SchemeResults,
) {
    let (n, k) = (grid.churn_rows, grid.churn_batch);
    let mut first = UpdateCost::default();
    let start = Instant::now();
    for round in 0..grid.churn_batches {
        let mut cost = UpdateCost::default();
        for (j, &pos) in churn_positions(n, k, round).iter().enumerate() {
            cost += scheme.update_payload(pos, churn_record(keys[pos], round, j, grid.payload));
        }
        if round == 0 {
            first = cost;
        }
    }
    let elapsed = start.elapsed();
    res.cell("churn/resigned_per_batch".into(), first.signatures);
    res.cell("churn/digests_per_batch".into(), first.digests);
    if timing {
        let updates = (grid.churn_batches * k) as f64;
        res.time(
            "churn/updates_per_sec".into(),
            updates / elapsed.as_secs_f64(),
        );
    }
}

/// Churn leg for the chain: `Owner::apply_batch` batches through a real
/// `adp-store` directory, so every batch pays canonicalization, O(k)
/// re-signing, the CRC-framed log append, and the copy-on-write table
/// swap — the full owner-side ingest path a durable deployment runs.
fn churn_chain(
    owner: &'static Owner,
    st: SignedTable,
    grid: &Grid,
    keys: &[i64],
    timing: bool,
    res: &mut SchemeResults,
) {
    // Unique per call, not just per process: the unit tests run several
    // run_grid()s concurrently in one process.
    static CHURN_DIR: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "adp-baseline-compare-{}-{}",
        std::process::id(),
        CHURN_DIR.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let mut store = Store::create(&dir, st).expect("temp store");
    let (n, k) = (grid.churn_rows, grid.churn_batch);
    let (mut first, mut first_log) = (UpdateCost::default(), 0u64);
    let start = Instant::now();
    for round in 0..grid.churn_batches {
        let ops: Vec<Mutation> = churn_positions(n, k, round)
            .iter()
            .enumerate()
            .map(|(j, &pos)| Mutation::Update {
                key: keys[pos],
                replica: 0,
                record: churn_record(keys[pos], round, j, grid.payload),
            })
            .collect();
        let log_before = store.log_bytes().expect("temp store metadata");
        let report = store.apply_batch(owner, ops).expect("churn batch applies");
        if round == 0 {
            first = UpdateCost {
                signatures: report.signatures_recomputed as u64,
                digests: report.g_recomputed as u64,
            };
            first_log = store.log_bytes().expect("temp store metadata") - log_before;
        }
    }
    let elapsed = start.elapsed();
    drop(store);
    let _ = std::fs::remove_dir_all(&dir);
    res.cell("churn/resigned_per_batch".into(), first.signatures);
    res.cell("churn/digests_per_batch".into(), first.digests);
    res.cell("churn/log_bytes_per_batch".into(), first_log);
    if timing {
        let updates = (grid.churn_batches * k) as f64;
        res.time(
            "churn/updates_per_sec".into(),
            updates / elapsed.as_secs_f64(),
        );
    }
}

/// One fixed keypair for the three baselines (the chain uses the shared
/// 512-bit bench owner); all deterministic cells depend on these seeds.
fn baseline_keypair() -> Keypair {
    let mut rng = StdRng::seed_from_u64(0xBA5E1);
    Keypair::generate(512, &mut rng)
}

/// Runs the whole grid. `timing = false` is the `--check` path: every
/// deterministic cell is still derived (and every answer still verified)
/// but nothing is measured.
pub fn run_grid(grid: &Grid, timing: bool) -> Vec<SchemeResults> {
    let owner = bench_owner_small();
    let kp = baseline_keypair();
    let hasher = Hasher::default();
    let samples = if timing { Some(perf_samples()) } else { None };

    let mut chain = SchemeResults::new("chain");
    let mut mht = SchemeResults::new("mht");
    let mut aggsig = SchemeResults::new("aggsig");
    let mut vbtree = SchemeResults::new("vbtree");

    for &n in &grid.sizes {
        let spec = WorkloadSpec::new(n).payload(grid.payload);
        let (table, domain) = spec.build();
        let schema = table.schema().clone();
        let projections: Vec<(String, Vec<usize>)> = grid
            .projections
            .iter()
            .map(|(name, cols)| {
                (
                    name.to_string(),
                    cols.iter()
                        .map(|c| schema.column_index(c).expect("bench schema column"))
                        .collect(),
                )
            })
            .collect();
        // Interior ranges: result rows at positions 1..=q, so both
        // boundary tuples exist and the MHT expansion is exercised.
        let queries: Vec<(usize, KeyRange)> = grid
            .queries_for(n)
            .into_iter()
            .map(|q| {
                let alpha = domain.key_min() + KEY_GAP;
                (q, KeyRange::closed(alpha, alpha + (q as i64 - 1) * KEY_GAP))
            })
            .collect();

        let publish = |res: &mut SchemeResults, f: &mut dyn FnMut()| {
            let start = Instant::now();
            f();
            if timing {
                res.time(
                    format!("publish_ms/n{n}"),
                    start.elapsed().as_secs_f64() * 1e3,
                );
            }
        };

        let mut s_chain = None;
        publish(&mut chain, &mut || {
            s_chain = Some(ChainScheme::publish(owner, table.clone(), domain))
        });
        drive(
            s_chain.as_ref().unwrap(),
            n,
            &queries,
            &projections,
            samples,
            &mut chain,
        );

        let mut s_mht = None;
        publish(&mut mht, &mut || {
            s_mht = Some(MhtScheme::publish(&kp, hasher, table.clone()))
        });
        drive(
            s_mht.as_ref().unwrap(),
            n,
            &queries,
            &projections,
            samples,
            &mut mht,
        );

        let mut s_ma = None;
        publish(&mut aggsig, &mut || {
            s_ma = Some(MaScheme::publish(&kp, hasher, table.clone()))
        });
        drive(
            s_ma.as_ref().unwrap(),
            n,
            &queries,
            &projections,
            samples,
            &mut aggsig,
        );

        let mut s_vb = None;
        publish(&mut vbtree, &mut || {
            s_vb = Some(VbScheme::publish(&kp, hasher, VB_FANOUT, table.clone()))
        });
        drive(
            s_vb.as_ref().unwrap(),
            n,
            &queries,
            &projections,
            samples,
            &mut vbtree,
        );
    }

    // Churn leg: the same 2000-row workload for all four schemes.
    let churn_spec = WorkloadSpec::new(grid.churn_rows).payload(grid.payload);
    let (churn_table, churn_domain) = churn_spec.build();
    let keys: Vec<i64> = churn_table
        .rows()
        .iter()
        .map(|r| r.record.key(churn_table.schema()))
        .collect();

    let chain_scheme = ChainScheme::publish(owner, churn_table.clone(), churn_domain);
    churn_chain(
        owner,
        chain_scheme.into_signed_table(),
        grid,
        &keys,
        timing,
        &mut chain,
    );
    let mut s = MhtScheme::publish(&kp, hasher, churn_table.clone());
    churn_scheme(&mut s, grid, &keys, timing, &mut mht);
    let mut s = MaScheme::publish(&kp, hasher, churn_table.clone());
    churn_scheme(&mut s, grid, &keys, timing, &mut aggsig);
    let mut s = VbScheme::publish(&kp, hasher, VB_FANOUT, churn_table);
    churn_scheme(&mut s, grid, &keys, timing, &mut vbtree);

    vec![chain, mht, aggsig, vbtree]
}

// -------------------------------------------------------- serialization

fn grid_json(grid: &Grid) -> String {
    let list = |v: &[usize]| {
        v.iter()
            .map(|x| x.to_string())
            .collect::<Vec<_>>()
            .join(", ")
    };
    let projs = grid
        .projections
        .iter()
        .map(|(name, _)| format!("\"{name}\""))
        .collect::<Vec<_>>()
        .join(", ");
    format!(
        "  \"grid\": {{ \"sizes\": [{}], \"result_sizes\": [{}], \"projections\": [{projs}], \
         \"payload\": {}, \"churn_rows\": {}, \"churn_batch\": {}, \"churn_batches\": {} }},\n",
        list(&grid.sizes),
        list(&grid.result_sizes),
        grid.payload,
        grid.churn_rows,
        grid.churn_batch,
        grid.churn_batches,
    )
}

/// The `"cells"` object for one scheme — exactly the text `--check`
/// requires to appear verbatim in the committed `BENCH_PR5.json`.
fn cells_json(res: &SchemeResults) -> String {
    let mut s = String::from("      \"cells\": {\n");
    for (i, (k, v)) in res.cells.iter().enumerate() {
        let sep = if i + 1 == res.cells.len() { "" } else { "," };
        s.push_str(&format!("        \"{k}\": {v}{sep}\n"));
    }
    s.push_str("      }");
    s
}

fn timing_json(res: &SchemeResults) -> String {
    let mut s = String::from("      \"timing\": {\n");
    for (i, (k, v)) in res.timing.iter().enumerate() {
        let sep = if i + 1 == res.timing.len() { "" } else { "," };
        s.push_str(&format!("        \"{k}\": {v:.1}{sep}\n"));
    }
    s.push_str("      }");
    s
}

/// The full `BENCH_PR5.json` text.
pub fn snapshot_json(
    grid: &Grid,
    results: &[SchemeResults],
    label: &str,
    samples: usize,
) -> String {
    let mut s = String::from("{\n  \"schema_version\": 1,\n");
    s.push_str(&format!("  \"label\": \"{label}\",\n"));
    s.push_str(&format!("  \"samples\": {samples},\n"));
    s.push_str(&grid_json(grid));
    s.push_str("  \"compare\": {\n");
    for (i, r) in results.iter().enumerate() {
        let sep = if i + 1 == results.len() { "" } else { "," };
        s.push_str(&format!("    \"{}\": {{\n", r.name));
        s.push_str(&cells_json(r));
        s.push_str(",\n");
        s.push_str(&timing_json(r));
        s.push_str(&format!("\n    }}{sep}\n"));
    }
    s.push_str("  }\n}\n");
    s
}

/// The generated markdown (the region between the
/// `baseline_compare:begin/end` markers of `docs/EVALUATION.md`,
/// markers excluded). Deterministic cells only — timings never appear
/// here, so the block is identical on every machine.
pub fn doc_block(grid: &Grid, results: &[SchemeResults]) -> String {
    let names = ["chain", "mht", "aggsig", "vbtree"];
    let mut s = String::new();
    s.push_str(&format!(
        "_Grid: tables of {} rows ({}-byte payloads, spaced keys), result sizes {}, \
         projections {}; churn: {} batches of {} payload updates on a {}-row table. \
         512-bit keys throughout (the comparison is structural; the paper's 1024-bit \
         `M_sign` scales every signature by 2×). All cells below are deterministic — \
         regenerate with `--write-doc`, verify with `--check`._\n\n",
        grid.sizes
            .iter()
            .map(|n| n.to_string())
            .collect::<Vec<_>>()
            .join("/"),
        grid.payload,
        grid.result_sizes
            .iter()
            .map(|q| q.to_string())
            .collect::<Vec<_>>()
            .join("/"),
        grid.projections
            .iter()
            .map(|(p, _)| *p)
            .collect::<Vec<_>>()
            .join("/"),
        grid.churn_batches,
        grid.churn_batch,
        grid.churn_rows,
    ));

    let by_name = |name: &str| results.iter().find(|r| r.name == name).expect("scheme");

    // Dissemination.
    s.push_str("### Owner dissemination (Section 6.1, \"signatures shipped\")\n\n");
    s.push_str("| rows | metric | chain | mht | aggsig | vbtree |\n");
    s.push_str("|---|---|---|---|---|---|\n");
    for &n in &grid.sizes {
        for (label, key) in [
            ("bytes", format!("dissemination_bytes/n{n}")),
            ("signatures", format!("dissemination_sigs/n{n}")),
        ] {
            s.push_str(&format!("| {n} | {label} |"));
            for name in names {
                s.push_str(&format!(" {} |", by_name(name).get(&key)));
            }
            s.push('\n');
        }
    }
    s.push('\n');

    // Per-cell tables.
    for (title, metric) in [
        (
            "VO wire bytes (Section 6.1, user traffic beyond the result)",
            "vo_bytes",
        ),
        ("Result rows shipped (q rows requested)", "answer_rows"),
        ("Result bytes shipped", "answer_bytes"),
    ] {
        s.push_str(&format!("### {title}\n\n"));
        s.push_str("| rows | q | projection | chain | mht | aggsig | vbtree |\n");
        s.push_str("|---|---|---|---|---|---|---|\n");
        for &n in &grid.sizes {
            for q in grid.queries_for(n) {
                for (pname, _) in &grid.projections {
                    s.push_str(&format!("| {n} | {q} | {pname} |"));
                    for name in names {
                        let key = format!("{metric}/n{n}/q{q}/{pname}");
                        s.push_str(&format!(" {} |", by_name(name).get(&key)));
                    }
                    s.push('\n');
                }
            }
        }
        s.push('\n');
    }

    // Capabilities + disclosure.
    let (n_rep, q_rep) = (
        *grid.sizes.last().expect("non-empty grid"),
        grid.queries_for(*grid.sizes.last().expect("non-empty grid"))
            .into_iter()
            .rev()
            .nth(1)
            .unwrap_or(grid.result_sizes[0]),
    );
    s.push_str("### Capabilities and disclosure (Section 2.3 / Section 3)\n\n");
    s.push_str("| property | chain | mht | aggsig | vbtree |\n");
    s.push_str("|---|---|---|---|---|\n");
    s.push_str("| completeness verifiable | yes | yes | **no** | **no** |\n");
    s.push_str(
        "| projection supported | yes | **no** (full tuples) | yes | yes (modeled at record granularity) |\n",
    );
    s.push_str(&format!(
        "| out-of-range rows shipped (n={n_rep}, q={q_rep}, all) |"
    ));
    for name in names {
        s.push_str(&format!(
            " {} |",
            by_name(name).get(&format!("beyond_rows/n{n_rep}/q{q_rep}/all"))
        ));
    }
    s.push('\n');
    s.push('\n');

    // Churn.
    s.push_str(&format!(
        "### Update churn (Section 6.3: {}-update batches on a {}-row table)\n\n",
        grid.churn_batch, grid.churn_rows
    ));
    s.push_str("| metric | chain | mht | aggsig | vbtree |\n");
    s.push_str("|---|---|---|---|---|\n");
    for (label, key) in [
        ("signatures re-signed per batch", "churn/resigned_per_batch"),
        ("digests recomputed per batch", "churn/digests_per_batch"),
    ] {
        s.push_str(&format!("| {label} |"));
        for name in names {
            s.push_str(&format!(" {} |", by_name(name).get(key)));
        }
        s.push('\n');
    }
    s.push_str(&format!(
        "| update-log bytes appended per batch | {} | n/a | n/a | n/a |\n",
        by_name("chain").get("churn/log_bytes_per_batch")
    ));
    s.push('\n');
    s
}

// ---------------------------------------------------------------- modes

/// Options for [`run`] — what `baseline_compare` and `adp compare`
/// parse their command lines into.
#[derive(Clone, Debug, Default)]
pub struct CompareOpts {
    /// Use the seconds-scale smoke grid instead of the committed one.
    pub tiny: bool,
    /// Re-derive deterministic cells and fail on drift from the
    /// committed doc + snapshot (no timing, writes nothing).
    pub check: bool,
    /// Regenerate the marked region of the evaluation doc in place.
    pub write_doc: bool,
    /// Snapshot output path (default `BENCH_PR5.json` at the repo root;
    /// tiny runs default to not writing unless a path is given).
    pub out: Option<String>,
    /// Evaluation doc path (default `docs/EVALUATION.md`).
    pub doc: Option<String>,
    /// Snapshot label.
    pub label: Option<String>,
}

/// Parses harness arguments (shared by the bin and `adp compare`).
pub fn parse_args(args: &[String]) -> Result<CompareOpts, String> {
    let mut opts = CompareOpts::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--tiny" => opts.tiny = true,
            "--check" => opts.check = true,
            "--write-doc" => opts.write_doc = true,
            "--out" => opts.out = Some(it.next().ok_or("--out needs a path")?.clone()),
            "--doc" => opts.doc = Some(it.next().ok_or("--doc needs a path")?.clone()),
            "--label" => opts.label = Some(it.next().ok_or("--label needs a value")?.clone()),
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    if opts.check && (opts.tiny || opts.write_doc) {
        return Err("--check runs the committed grid; it excludes --tiny/--write-doc".into());
    }
    Ok(opts)
}

/// The repo root: the cwd when it looks like the workspace, else two
/// levels up from this crate (both the bin and `adp compare` run from
/// somewhere inside the workspace in practice).
fn repo_root() -> PathBuf {
    if let Ok(cwd) = std::env::current_dir() {
        if cwd.join("docs").is_dir() && cwd.join("Cargo.toml").is_file() {
            return cwd;
        }
    }
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..")
}

fn splice_doc(doc: &str, block: &str) -> Result<String, String> {
    let begin = doc
        .find(DOC_BEGIN)
        .ok_or("doc is missing the baseline_compare:begin marker")?;
    let begin_eol = begin
        + doc[begin..]
            .find('\n')
            .ok_or("begin marker line unterminated")?
        + 1;
    let end = doc
        .find(DOC_END)
        .ok_or("doc is missing the baseline_compare:end marker")?;
    if end < begin_eol {
        return Err("baseline_compare markers are out of order".into());
    }
    Ok(format!(
        "{}\n{}\n{}",
        &doc[..begin_eol],
        block.trim_end(),
        &doc[end..]
    ))
}

fn extract_doc_block(doc: &str) -> Result<&str, String> {
    let begin = doc
        .find(DOC_BEGIN)
        .ok_or("doc is missing the baseline_compare:begin marker")?;
    let begin_eol = begin
        + doc[begin..]
            .find('\n')
            .ok_or("begin marker line unterminated")?
        + 1;
    let end = doc
        .find(DOC_END)
        .ok_or("doc is missing the baseline_compare:end marker")?;
    Ok(doc[begin_eol..end].trim())
}

/// Runs the harness. See [`CompareOpts`] for the modes; returns a
/// human-readable error on check drift or I/O failure.
pub fn run(opts: &CompareOpts) -> Result<(), String> {
    let grid = if opts.tiny {
        Grid::tiny()
    } else {
        Grid::full()
    };
    let doc_path = opts
        .doc
        .clone()
        .map(PathBuf::from)
        .unwrap_or_else(|| repo_root().join("docs/EVALUATION.md"));
    let json_path = opts
        .out
        .clone()
        .map(PathBuf::from)
        .unwrap_or_else(|| repo_root().join("BENCH_PR5.json"));

    if opts.check {
        let results = run_grid(&grid, false);

        // 1. The markdown tables in the committed doc must match the
        //    regenerated block byte for byte.
        let doc = std::fs::read_to_string(&doc_path)
            .map_err(|e| format!("cannot read {}: {e}", doc_path.display()))?;
        let committed = extract_doc_block(&doc)?;
        let expected = doc_block(&grid, &results);
        if committed != expected.trim() {
            return Err(format!(
                "docs/EVALUATION.md has drifted from the code.\n\
                 Regenerate with: cargo run --release -p adp-bench --bin baseline_compare -- --write-doc\n\
                 --- expected (from code) ---\n{}\n--- committed ---\n{}",
                first_diff(expected.trim(), committed),
                abbreviate(committed),
            ));
        }

        // 2. Every deterministic cells-object must appear verbatim in
        //    the committed snapshot, and every scheme must carry timing.
        let json = std::fs::read_to_string(&json_path)
            .map_err(|e| format!("cannot read {}: {e}", json_path.display()))?;
        for r in &results {
            let cells = cells_json(r);
            if !json.contains(&cells) {
                return Err(format!(
                    "BENCH_PR5.json: deterministic cells for scheme `{}` have drifted.\n\
                     Regenerate with: cargo run --release -p adp-bench --bin baseline_compare\n\
                     expected fragment:\n{cells}",
                    r.name
                ));
            }
            if !json.contains(&format!("\"{}\": {{", r.name)) {
                return Err(format!("BENCH_PR5.json: missing compare/{} key", r.name));
            }
        }
        if !json.contains(&grid_json(&grid)) {
            return Err("BENCH_PR5.json: grid does not match the committed grid".into());
        }
        if json.matches("\"timing\": {").count() < results.len() {
            return Err("BENCH_PR5.json: missing timing objects".into());
        }
        println!(
            "check ok: {} deterministic cells match {} and {}",
            results.iter().map(|r| r.cells.len()).sum::<usize>(),
            doc_path.display(),
            json_path.display(),
        );
        return Ok(());
    }

    // Measured run.
    let results = run_grid(&grid, true);
    print!("{}", doc_block(&grid, &results));
    println!("### Timings (machine-local)\n");
    for r in &results {
        for (k, v) in &r.timing {
            println!("{:<8} {k:<32} {v:>14.1}", r.name);
        }
    }
    let label = opts.label.clone().unwrap_or_else(|| "pr5".into());
    let json = snapshot_json(&grid, &results, &label, perf_samples());
    if opts.tiny && opts.out.is_none() {
        println!("\n(tiny grid: snapshot not written — pass --out to keep it)");
    } else {
        std::fs::write(&json_path, &json)
            .map_err(|e| format!("cannot write {}: {e}", json_path.display()))?;
        println!("\nwrote {}", json_path.display());
    }
    if opts.write_doc {
        let doc = std::fs::read_to_string(&doc_path)
            .map_err(|e| format!("cannot read {}: {e}", doc_path.display()))?;
        let spliced = splice_doc(&doc, &doc_block(&grid, &results))?;
        std::fs::write(&doc_path, spliced)
            .map_err(|e| format!("cannot write {}: {e}", doc_path.display()))?;
        println!("updated {}", doc_path.display());
    }
    Ok(())
}

/// First mismatching line (context for check failures).
fn first_diff(expected: &str, committed: &str) -> String {
    for (i, (e, c)) in expected.lines().zip(committed.lines()).enumerate() {
        if e != c {
            return format!("line {}: expected `{e}`, committed `{c}`", i + 1);
        }
    }
    format!(
        "line counts differ: expected {}, committed {}",
        expected.lines().count(),
        committed.lines().count()
    )
}

fn abbreviate(s: &str) -> String {
    match s.char_indices().nth(400) {
        None => s.to_string(),
        Some((i, _)) => format!("{}…", &s[..i]),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_grid_is_deterministic_and_verifies() {
        // Two independent derivations of the tiny grid must agree on
        // every deterministic cell (this is the property --check leans
        // on), and drive() verified every answer along the way.
        let a = run_grid(&Grid::tiny(), false);
        let b = run_grid(&Grid::tiny(), false);
        for (ra, rb) in a.iter().zip(&b) {
            assert_eq!(ra.name, rb.name);
            assert_eq!(ra.cells, rb.cells, "scheme {}", ra.name);
            assert!(ra.timing.is_empty());
        }
        assert_eq!(a.len(), 4);
    }

    #[test]
    fn chain_beats_mht_on_precision_and_aggsig_on_nothing_shipped() {
        let results = run_grid(&Grid::tiny(), false);
        let get = |name: &str, key: &str| {
            results
                .iter()
                .find(|r| r.name == name)
                .expect("scheme")
                .get(key)
        };
        // MHT ships boundary tuples; the chain ships none.
        assert_eq!(get("chain", "beyond_rows/n200/q20/all"), 0);
        assert_eq!(get("mht", "beyond_rows/n200/q20/all"), 2);
        // MHT cannot project: under the key-only projection it ships
        // strictly more result bytes than the chain.
        assert!(
            get("mht", "answer_bytes/n200/q20/key") > get("chain", "answer_bytes/n200/q20/key")
        );
        // One-signature dissemination for MHT, per-row for chain/aggsig,
        // per-node for the VB-tree.
        assert_eq!(get("mht", "dissemination_sigs/n200"), 1);
        assert_eq!(get("chain", "dissemination_sigs/n200"), 202);
        assert_eq!(get("aggsig", "dissemination_sigs/n200"), 200);
        assert!(get("vbtree", "dissemination_sigs/n200") > 200);
    }

    #[test]
    fn doc_block_round_trips_through_splice_and_extract() {
        let results = run_grid(&Grid::tiny(), false);
        let block = doc_block(&Grid::tiny(), &results);
        let doc = format!(
            "# Title\n\nprose\n\n{} -->\nstale\n{} -->\n\ntail\n",
            DOC_BEGIN, DOC_END
        );
        let spliced = splice_doc(&doc, &block).unwrap();
        assert_eq!(extract_doc_block(&spliced).unwrap(), block.trim());
        // Splicing is idempotent.
        let again = splice_doc(&spliced, &block).unwrap();
        assert_eq!(again, spliced);
    }

    #[test]
    fn snapshot_contains_cells_and_timing_for_all_schemes() {
        let results = run_grid(&Grid::tiny(), false);
        let json = snapshot_json(&Grid::tiny(), &results, "test", 2);
        for name in ["chain", "mht", "aggsig", "vbtree"] {
            assert!(json.contains(&format!("\"{name}\": {{")));
        }
        for r in &results {
            assert!(json.contains(&cells_json(r)));
        }
        assert!(json.contains("\"schema_version\": 1"));
        assert!(json.contains(&grid_json(&Grid::tiny())));
    }

    #[test]
    fn churn_positions_are_distinct_and_nonadjacent() {
        for round in 0..40 {
            let mut p = churn_positions(2_000, 16, round);
            p.sort_unstable();
            p.dedup();
            assert_eq!(p.len(), 16);
            assert!(p.windows(2).all(|w| w[1] - w[0] > 2));
        }
    }
}
