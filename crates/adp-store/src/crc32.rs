//! CRC-32 (IEEE 802.3, the zlib/PNG polynomial) for framing snapshot
//! sections and log records. `std`-only like the rest of the workspace; a
//! 256-entry table is built once at first use.

use std::sync::OnceLock;

fn table() -> &'static [u32; 256] {
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, slot) in t.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
            }
            *slot = c;
        }
        t
    })
}

/// CRC-32 of `data` (init `0xFFFFFFFF`, final XOR `0xFFFFFFFF` — the
/// standard zlib convention).
pub fn crc32(data: &[u8]) -> u32 {
    crc32_multi(&[data])
}

/// CRC-32 over the concatenation of several slices without materializing
/// it (the log frames `length || payload` this way).
pub fn crc32_multi(parts: &[&[u8]]) -> u32 {
    let t = table();
    let mut c = 0xFFFF_FFFFu32;
    for part in parts {
        for &b in *part {
            c = t[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
        }
    }
    c ^ 0xFFFF_FFFF
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The canonical check value for CRC-32/ISO-HDLC.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn multi_matches_concat() {
        assert_eq!(crc32_multi(&[b"12345", b"6789"]), crc32(b"123456789"));
        assert_eq!(crc32_multi(&[b"", b"abc", b""]), crc32(b"abc"));
    }

    #[test]
    fn single_bit_flips_change_the_checksum() {
        let base = b"adp-store section payload".to_vec();
        let c0 = crc32(&base);
        for i in 0..base.len() * 8 {
            let mut m = base.clone();
            m[i / 8] ^= 1 << (i % 8);
            assert_ne!(crc32(&m), c0, "bit {i}");
        }
    }
}
