//! The VB-tree baseline (Pang & Tan \[20\], "Authenticating Query Results in
//! Edge Computing", ICDE 2004), as characterized in Section 2.3 of the
//! paper: a B+-tree whose node digests are *each signed* by the owner, so a
//! query answer only needs the signature of the **smallest subtree
//! enveloping the result** plus the complementary digests inside that
//! subtree — the VO does not grow with the full tree height to the root.
//!
//! Like Ma et al., the VB-tree authenticates values but **does not verify
//! completeness** (the comparison bench demonstrates the undetectable
//! omission at range edges). This implementation models the digest/signing
//! structure at record granularity with a configurable fanout; the
//! original's attribute-granularity refinement changes constants only.

use crate::scheme::UpdateCost;
use adp_crypto::{Digest, HashDomain, Hasher, Keypair, PublicKey, Signature};
use adp_relation::{KeyRange, Record, Table};

/// A table published under the VB-tree scheme.
pub struct VbTree {
    table: Table,
    fanout: usize,
    /// `levels\[0\]` = leaf digests (one per record); each higher level hashes
    /// `fanout` children.
    levels: Vec<Vec<Digest>>,
    /// A signature for every node of every level (the scheme's signing
    /// cost: `Σ_l ⌈n/F^l⌉` signatures).
    signatures: Vec<Vec<Signature>>,
    public_key: PublicKey,
    hasher: Hasher,
}

/// User-facing certificate.
#[derive(Clone, Debug)]
pub struct VbCertificate {
    /// The owner's verification key.
    pub public_key: PublicKey,
    /// The hash configuration every node digest was produced under.
    pub hasher: Hasher,
    /// The tree fanout the envelope must be folded with.
    pub fanout: usize,
    /// Table cardinality at publication time.
    pub row_count: usize,
}

/// VO: the enveloping node's coordinates and signature, plus the leaf
/// digests inside the envelope that are not part of the result.
#[derive(Clone, Debug)]
pub struct VbVO {
    /// Level of the enveloping node (0 = leaf level … root).
    pub level: u32,
    /// Index of the node within its level.
    pub node: u32,
    /// Position of the first returned row within the node's span.
    pub offset: u32,
    /// Leaf digests left of the result inside the span.
    pub complement_left: Vec<Digest>,
    /// Leaf digests right of the result inside the span.
    pub complement_right: Vec<Digest>,
    /// The enveloping node's signature.
    pub signature: Signature,
}

impl VbVO {
    /// Wire size under the shared baseline accounting rule
    /// (`docs/EVALUATION.md` §"VO size accounting"): 4-byte scalar
    /// coordinates (`level`, `node`, `offset`), 4-byte counts for the two
    /// complement vectors, `1 + len` per digest, `2 + len` for the
    /// signature.
    pub fn wire_size(&self) -> usize {
        12 + 4
            + 4
            + self
                .complement_left
                .iter()
                .chain(&self.complement_right)
                .map(|d| 1 + d.len())
                .sum::<usize>()
            + 2
            + self.signature.byte_len()
    }
}

fn leaf_digest(hasher: &Hasher, record: &Record) -> Digest {
    hasher.hash(HashDomain::Leaf, &crate::wirecompat::encode_record(record))
}

impl VbTree {
    /// Owner-side: builds and signs every node digest.
    pub fn publish(keypair: &Keypair, hasher: Hasher, fanout: usize, table: Table) -> Self {
        assert!(fanout >= 2);
        let mut leaf_level: Vec<Digest> = table
            .rows()
            .iter()
            .map(|r| leaf_digest(&hasher, &r.record))
            .collect();
        if leaf_level.is_empty() {
            leaf_level.push(hasher.hash(HashDomain::Leaf, b"\x00__empty_table__"));
        }
        let mut levels = vec![leaf_level];
        while levels.last().unwrap().len() > 1 {
            let prev = levels.last().unwrap();
            let next: Vec<Digest> = prev
                .chunks(fanout)
                .map(|chunk| hasher.hash_digests(HashDomain::Node, chunk))
                .collect();
            levels.push(next);
        }
        let signatures: Vec<Vec<Signature>> = levels
            .iter()
            .map(|level| level.iter().map(|d| keypair.sign(&hasher, d)).collect())
            .collect();
        VbTree {
            table,
            fanout,
            levels,
            signatures,
            public_key: keypair.public().clone(),
            hasher,
        }
    }

    /// The underlying table.
    pub fn table(&self) -> &Table {
        &self.table
    }

    /// User-facing certificate.
    pub fn certificate(&self) -> VbCertificate {
        VbCertificate {
            public_key: self.public_key.clone(),
            hasher: self.hasher,
            fanout: self.fanout,
            row_count: self.table.len(),
        }
    }

    /// Bytes the owner ships: a signature per node across all levels.
    pub fn dissemination_size(&self) -> usize {
        self.signatures
            .iter()
            .flat_map(|l| l.iter())
            .map(Signature::byte_len)
            .sum()
    }

    /// Total node count across all levels — one signature each, which is
    /// the scheme's dissemination and re-signing unit.
    pub fn node_count(&self) -> usize {
        self.levels.iter().map(Vec::len).sum()
    }

    /// Span (inclusive leaf positions) of node `idx` at `level`.
    fn span(&self, level: usize, idx: usize) -> (usize, usize) {
        let width = self.fanout.pow(level as u32);
        let lo = idx * width;
        let hi = ((idx + 1) * width - 1).min(self.levels[0].len() - 1);
        (lo, hi)
    }

    /// Publisher-side: answers a range query with the smallest enveloping
    /// node's signature. Authenticity only.
    pub fn answer_range(&self, range: &KeyRange) -> (Vec<Record>, VbVO) {
        let (start, end) = self.table.key_range_positions(range.lo, range.hi);
        if start == end {
            // Empty result: return the whole root as (vacuous) evidence of
            // authenticity; completeness is simply not provable.
            let root_level = self.levels.len() - 1;
            return (
                Vec::new(),
                VbVO {
                    level: root_level as u32,
                    node: 0,
                    offset: 0,
                    complement_left: self.levels[0].clone(),
                    complement_right: Vec::new(),
                    signature: self.signatures[root_level][0].clone(),
                },
            );
        }
        let (lo, hi) = (start, end - 1);
        // Find the lowest level whose node covers [lo, hi].
        let mut level = 0usize;
        while lo / self.fanout.pow(level as u32) != hi / self.fanout.pow(level as u32) {
            level += 1;
        }
        let node = lo / self.fanout.pow(level as u32);
        let (span_lo, span_hi) = self.span(level, node);
        let rows: Vec<Record> = (lo..=hi)
            .map(|i| self.table.row(i).record.clone())
            .collect();
        let vo = VbVO {
            level: level as u32,
            node: node as u32,
            offset: (lo - span_lo) as u32,
            complement_left: self.levels[0][span_lo..lo].to_vec(),
            complement_right: self.levels[0][hi + 1..=span_hi].to_vec(),
            signature: self.signatures[level][node].clone(),
        };
        (rows, vo)
    }

    /// Owner-side update: replace the non-key attributes of the row at
    /// `pos`, recompute the leaf-to-root digest path, and re-sign **every
    /// node on that path** — the scheme's update weakness the paper's
    /// Section 6.3 experiment highlights (a path of signatures per
    /// update, vs one root signature for the MHT and a 3-signature
    /// neighborhood for the chain).
    pub fn update_record(&mut self, keypair: &Keypair, pos: usize, record: Record) -> UpdateCost {
        self.table
            .update_in_place(pos, record)
            .expect("schema-valid, key-preserving update");
        self.levels[0][pos] = leaf_digest(&self.hasher, &self.table.row(pos).record);
        self.signatures[0][pos] = keypair.sign(&self.hasher, &self.levels[0][pos]);
        let mut cost = UpdateCost {
            signatures: 1,
            digests: 1,
        };
        let mut idx = pos;
        for level in 1..self.levels.len() {
            idx /= self.fanout;
            let lo = idx * self.fanout;
            let hi = (lo + self.fanout).min(self.levels[level - 1].len());
            let digest = self
                .hasher
                .hash_digests(HashDomain::Node, &self.levels[level - 1][lo..hi]);
            self.levels[level][idx] = digest;
            self.signatures[level][idx] = keypair.sign(&self.hasher, &digest);
            cost.signatures += 1;
            cost.digests += 1;
        }
        cost
    }
}

/// User-side verification: recomputes the enveloping node's digest from the
/// rows + complement digests and checks its signature. Authenticity only —
/// the query range plays no role, which is exactly the scheme's gap.
pub fn verify_range(cert: &VbCertificate, rows: &[Record], vo: &VbVO) -> Result<(), &'static str> {
    let mut leaves: Vec<Digest> = Vec::new();
    leaves.extend_from_slice(&vo.complement_left);
    leaves.extend(rows.iter().map(|r| leaf_digest(&cert.hasher, r)));
    leaves.extend_from_slice(&vo.complement_right);
    if leaves.is_empty() {
        return Err("empty envelope");
    }
    // Fold `level` times with the certified fanout.
    let mut level_nodes = leaves;
    for _ in 0..vo.level {
        level_nodes = level_nodes
            .chunks(cert.fanout)
            .map(|chunk| cert.hasher.hash_digests(HashDomain::Node, chunk))
            .collect();
    }
    if level_nodes.len() != 1 {
        return Err("envelope does not reduce to one node");
    }
    if cert
        .public_key
        .verify(&cert.hasher, &level_nodes[0], &vo.signature)
    {
        Ok(())
    } else {
        Err("node signature invalid")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adp_relation::{Column, Schema, Value, ValueType};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::sync::OnceLock;

    fn keypair() -> &'static Keypair {
        static K: OnceLock<Keypair> = OnceLock::new();
        K.get_or_init(|| {
            let mut rng = StdRng::seed_from_u64(0x7B7B);
            Keypair::generate(512, &mut rng)
        })
    }

    fn table(n: i64) -> Table {
        let schema = Schema::new(vec![Column::new("k", ValueType::Int)], "k");
        let mut t = Table::new("t", schema);
        for i in 0..n {
            t.insert(Record::new(vec![Value::Int(i)])).unwrap();
        }
        t
    }

    #[test]
    fn authenticity_verifies() {
        let vb = VbTree::publish(keypair(), Hasher::default(), 4, table(64));
        let cert = vb.certificate();
        for range in [
            KeyRange::closed(5, 20),
            KeyRange::closed(0, 63),
            KeyRange::point(17),
            KeyRange::closed(16, 19), // exactly one fanout-4 node at level 1
        ] {
            let (rows, vo) = vb.answer_range(&range);
            verify_range(&cert, &rows, &vo).unwrap_or_else(|e| panic!("{range:?}: {e}"));
        }
    }

    #[test]
    fn envelope_is_minimal() {
        let vb = VbTree::publish(keypair(), Hasher::default(), 4, table(64));
        // A result inside one leaf-level node needs level 0..1.
        let (_, vo) = vb.answer_range(&KeyRange::closed(16, 17));
        assert!(vo.level <= 1);
        // A result spanning the whole table needs the root.
        let (_, vo) = vb.answer_range(&KeyRange::closed(0, 63));
        assert_eq!(vo.level as usize, 3);
    }

    #[test]
    fn tamper_detected() {
        let vb = VbTree::publish(keypair(), Hasher::default(), 4, table(64));
        let cert = vb.certificate();
        let (mut rows, vo) = vb.answer_range(&KeyRange::closed(5, 20));
        rows[3] = Record::new(vec![Value::Int(999)]);
        assert!(verify_range(&cert, &rows, &vo).is_err());
    }

    #[test]
    fn interior_omission_detected_but_edge_omission_is_not() {
        let vb = VbTree::publish(keypair(), Hasher::default(), 4, table(64));
        let cert = vb.certificate();
        let range = KeyRange::closed(5, 20);
        // Interior omission breaks the envelope digest.
        let (mut rows, vo) = vb.answer_range(&range);
        rows.remove(6);
        assert!(verify_range(&cert, &rows, &vo).is_err());
        // Edge omission: the publisher answers a narrower range with a
        // fresh, perfectly valid envelope — undetectable (no completeness).
        let (rows2, vo2) = vb.answer_range(&KeyRange::closed(5, 18));
        assert!(verify_range(&cert, &rows2, &vo2).is_ok());
    }

    #[test]
    fn signing_cost_is_per_node() {
        let vb = VbTree::publish(keypair(), Hasher::default(), 4, table(64));
        // 64 leaves + 16 + 4 + 1 = 85 signatures.
        assert_eq!(vb.dissemination_size(), 85 * 64);
    }

    #[test]
    fn empty_table_and_empty_result() {
        let vb = VbTree::publish(keypair(), Hasher::default(), 4, table(0));
        let cert = vb.certificate();
        let (rows, _vo) = vb.answer_range(&KeyRange::all());
        assert!(rows.is_empty());
        let _ = cert;
        let vb = VbTree::publish(keypair(), Hasher::default(), 4, table(10));
        let (rows, _) = vb.answer_range(&KeyRange::closed(100, 200));
        assert!(rows.is_empty());
    }
}
