//! A named collection of tables (the owner's master database).

use crate::table::Table;
use std::collections::BTreeMap;

/// A database: tables addressed by name.
#[derive(Clone, Debug, Default)]
pub struct Database {
    tables: BTreeMap<String, Table>,
}

impl Database {
    /// An empty database.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds (or replaces) a table under its own name.
    pub fn add_table(&mut self, table: Table) -> Option<Table> {
        self.tables.insert(table.name().to_string(), table)
    }

    /// Table lookup.
    pub fn table(&self, name: &str) -> Option<&Table> {
        self.tables.get(name)
    }

    /// Mutable table lookup.
    pub fn table_mut(&mut self, name: &str) -> Option<&mut Table> {
        self.tables.get_mut(name)
    }

    /// Removes a table.
    pub fn drop_table(&mut self, name: &str) -> Option<Table> {
        self.tables.remove(name)
    }

    /// Table names in order.
    pub fn table_names(&self) -> impl Iterator<Item = &str> {
        self.tables.keys().map(String::as_str)
    }

    /// Number of tables.
    pub fn len(&self) -> usize {
        self.tables.len()
    }

    /// True iff there are no tables.
    pub fn is_empty(&self) -> bool {
        self.tables.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Column, Schema};
    use crate::value::ValueType;

    fn table(name: &str) -> Table {
        Table::new(
            name,
            Schema::new(vec![Column::new("k", ValueType::Int)], "k"),
        )
    }

    #[test]
    fn add_lookup_drop() {
        let mut db = Database::new();
        assert!(db.is_empty());
        db.add_table(table("a"));
        db.add_table(table("b"));
        assert_eq!(db.len(), 2);
        assert!(db.table("a").is_some());
        assert!(db.table_mut("b").is_some());
        assert!(db.table("c").is_none());
        assert_eq!(db.table_names().collect::<Vec<_>>(), vec!["a", "b"]);
        assert!(db.drop_table("a").is_some());
        assert_eq!(db.len(), 1);
    }

    #[test]
    fn replace_returns_old() {
        let mut db = Database::new();
        assert!(db.add_table(table("a")).is_none());
        assert!(db.add_table(table("a")).is_some());
        assert_eq!(db.len(), 1);
    }
}
