//! Fuzz hardening for the SQL frontend: the parser is part of the
//! *client's* attack surface (a statement can come from anywhere), so it
//! must never panic — on any byte sequence — and its pretty-printer must
//! be a section of the parser: `parse → to_string → parse` lands on an
//! equal AST whenever the first parse succeeds.
//!
//! Three layers: raw-bytes fuzz (never panics), mutation fuzz over valid
//! statements (never panics; survivors still round-trip), and a pinned
//! error corpus (positions and messages are API — EXPLAIN tooling and the
//! CLI print them verbatim, so drift is a breaking change).

use adp_core::sql::parse;
use proptest::prelude::*;

/// Renders a syntactically valid statement from fuzz-chosen parts. Covers
/// every grammar production: DISTINCT, all aggregate functions, qualified
/// and bare column refs, every comparison operator, BETWEEN, negative
/// integers, quoted text (including escaped quotes), and booleans.
fn valid_stmt((distinct, sel, join, conds): (bool, u8, bool, Vec<(u8, u8, i64)>)) -> String {
    let select = match sel % 8 {
        0 => "*".to_string(),
        1 => "a".to_string(),
        2 => "a, t.b, c".to_string(),
        3 => "COUNT(*)".to_string(),
        4 => "COUNT(a)".to_string(),
        5 => "SUM(t.a)".to_string(),
        6 => "MIN(a)".to_string(),
        _ => "AVG(b)".to_string(),
    };
    let distinct = distinct && !(3..8).contains(&(sel % 8));
    let mut sql = format!(
        "SELECT {}{select} FROM t",
        if distinct { "DISTINCT " } else { "" }
    );
    if join {
        sql.push_str(" INNER JOIN s ON t.k = s.k");
    }
    for (i, &(col, op, n)) in conds.iter().enumerate() {
        sql.push_str(if i == 0 { " WHERE " } else { " AND " });
        let col = match col % 4 {
            0 => "k",
            1 => "t.k",
            2 => "s.v",
            _ => "flag",
        };
        let cond = match op % 9 {
            0 => format!("{col} = {n}"),
            1 => format!("{col} <> {n}"),
            2 => format!("{col} != {n}"),
            3 => format!("{col} < {n}"),
            4 => format!("{col} <= {n}"),
            5 => format!("{col} > {n}"),
            6 => format!("{col} >= {n}"),
            7 => format!("{col} BETWEEN {} AND {n}", n.saturating_sub(10)),
            _ => match n.rem_euclid(3) {
                0 => format!("{col} = 'it''s'"),
                1 => format!("{col} = TRUE"),
                _ => format!("{col} = 'text'"),
            },
        };
        sql.push_str(&cond);
    }
    sql
}

fn valid_parts() -> impl Strategy<Value = (bool, u8, bool, Vec<(u8, u8, i64)>)> {
    (
        any::<bool>(),
        any::<u8>(),
        any::<bool>(),
        proptest::strategy::vec((any::<u8>(), any::<u8>(), -1_000i64..=1_000), 0..4),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Layer 1a: completely arbitrary bytes (lossily decoded) never panic
    /// the parser. The outcome is free; the process surviving is the test.
    #[test]
    fn arbitrary_bytes_never_panic(bytes in proptest::strategy::vec(any::<u8>(), 0..120)) {
        let s = String::from_utf8_lossy(&bytes);
        let _ = parse(&s);
    }

    /// Layer 1b: arbitrary printable ASCII — denser in token-shaped
    /// garbage than raw bytes, so it exercises the lexer's operator and
    /// literal paths harder.
    #[test]
    fn arbitrary_printable_never_panics(s in "[ -~]{0,100}") {
        let _ = parse(&s);
    }

    /// Layer 2a: generated valid statements parse, and the parse →
    /// pretty-print → reparse loop is a fixed point on the AST.
    #[test]
    fn pretty_print_reparse_fixed_point(parts in valid_parts()) {
        let sql = valid_stmt(parts);
        let ast = match parse(&sql) {
            Ok(ast) => ast,
            Err(e) => return Err(TestCaseError::fail(format!("{sql:?} must parse: {e}"))),
        };
        let printed = ast.to_string();
        let reparsed = match parse(&printed) {
            Ok(ast) => ast,
            Err(e) => {
                return Err(TestCaseError::fail(format!(
                    "pretty-print {printed:?} of {sql:?} must reparse: {e}"
                )))
            }
        };
        prop_assert!(
            reparsed == ast,
            "AST drift through pretty-print of {sql:?}:\n  {ast:?}\nvs {reparsed:?}"
        );
        // And the printed form itself is canonical (idempotent print).
        prop_assert_eq!(reparsed.to_string(), printed);
    }

    /// Layer 2b: single-byte mutations of valid statements never panic,
    /// and any mutant that still parses still round-trips.
    #[test]
    fn mutated_statements_never_panic(
        parts in valid_parts(),
        pos in any::<u16>(),
        byte in any::<u8>(),
    ) {
        let mut sql = valid_stmt(parts).into_bytes();
        let idx = pos as usize % sql.len();
        sql[idx] = byte;
        let s = String::from_utf8_lossy(&sql);
        if let Ok(ast) = parse(&s) {
            let reparsed = parse(&ast.to_string()).map_err(|e| {
                TestCaseError::fail(format!("mutant {s:?} printed unparsable form: {e}"))
            })?;
            prop_assert!(reparsed == ast, "AST drift on mutant {s:?}");
        }
    }
}

/// Layer 3: the pinned error corpus. Byte positions and messages are
/// stable API — the CLI and EXPLAIN tooling show them verbatim.
#[test]
fn pinned_error_corpus() {
    let corpus: [(&str, usize, &str); 19] = [
        ("", 0, "expected SELECT"),
        ("SELECT", 6, "expected select list"),
        ("SELECT *", 8, "expected FROM"),
        ("SELECT * FROM", 13, "expected table name"),
        ("SELEKT * FROM t", 0, "expected SELECT"),
        ("SELECT * FROM t WHERE", 21, "expected condition"),
        (
            "SELECT * FROM t WHERE k BETWEEN 1",
            33,
            "expected AND in BETWEEN",
        ),
        (
            "SELECT * FROM t WHERE k BETWEEN 1 AND",
            37,
            "expected integer literal",
        ),
        ("SELECT * FROM t WHERE k = ", 26, "expected literal"),
        (
            "SELECT * FROM t WHERE k <> 'unterminated",
            27,
            "unterminated string literal",
        ),
        ("SELECT COUNT( FROM t", 14, "expected column name"),
        (
            "SELECT SUM(*) FROM t",
            12,
            "SUM(*) is not valid; only COUNT(*)",
        ),
        (
            "SELECT * FROM t INNER JOIN",
            26,
            "expected table name after JOIN",
        ),
        (
            "SELECT * FROM t INNER JOIN s ON",
            31,
            "expected column name",
        ),
        (
            "SELECT * FROM t INNER JOIN s ON a.k = ",
            38,
            "expected column name",
        ),
        (
            "SELECT * FROM t INNER JOIN s ON a.k < b.k",
            36,
            "expected '=' in join condition",
        ),
        ("SELECT a,, b FROM t", 9, "expected column name"),
        (
            "SELECT * FROM t trailing",
            16,
            "trailing input after statement",
        ),
        (
            "SELECT * FROM t WHERE k = 99999999999999999999999",
            26,
            "integer literal out of range",
        ),
    ];
    for (sql, pos, msg) in corpus {
        let e = parse(sql).expect_err(sql);
        assert_eq!(
            (e.pos, e.msg.as_str()),
            (pos, msg),
            "corpus drift on {sql:?}"
        );
    }
}

/// The parser is permissive where lowering is strict: `DISTINCT COUNT(*)`
/// is grammatical (rejected later with a *plan* error, which carries more
/// context than a parse error could). Pin that split so it stays a
/// deliberate choice.
#[test]
fn distinct_aggregate_parses_but_does_not_lower() {
    let stmt = parse("SELECT DISTINCT COUNT(*) FROM t").unwrap();
    assert!(stmt.distinct);
    use adp_core::plan::{lower, Catalog, CatalogTable};
    use adp_core::prelude::*;
    use adp_relation::{Column, Schema, ValueType};
    let mut catalog = Catalog::new();
    catalog.add(CatalogTable {
        name: "t".to_string(),
        id: 0,
        schema: Schema::new(vec![Column::new("k", ValueType::Int)], "k"),
        domain: Domain::new(0, 100),
        rows: 1,
        base: 2,
        fk_into: None,
    });
    assert!(lower(&stmt, &catalog).is_err());
}
