//! Criterion micro-benchmarks of the scheme's hot paths: owner signing,
//! publisher VO generation, user verification, and the wire codec.

use adp_bench::{bench_owner_small, WorkloadSpec};
use adp_core::prelude::*;
use adp_core::wire;
use adp_relation::{KeyRange, SelectQuery};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};

fn bench_owner_sign(c: &mut Criterion) {
    let owner = bench_owner_small();
    let mut g = c.benchmark_group("owner");
    g.sample_size(10);
    for n in [100usize, 1000] {
        g.throughput(Throughput::Elements(n as u64));
        g.bench_function(format!("sign_table/{n}"), |b| {
            b.iter(|| {
                let (table, domain) = WorkloadSpec::new(n).build();
                owner
                    .sign_table(table, domain, SchemeConfig::default())
                    .unwrap()
            })
        });
    }
    g.finish();
}

fn bench_query_paths(c: &mut Criterion) {
    let owner = bench_owner_small();
    let (st, cert) = WorkloadSpec::new(2000).signed(owner, SchemeConfig::default());
    let publisher = Publisher::new(&st);
    let domain = *st.domain();
    for q in [10usize, 100] {
        let beta = domain.key_min() + (q as i64 - 1) * 10;
        let query = SelectQuery::range(KeyRange::closed(domain.key_min(), beta));
        let (result, vo) = publisher.answer_select(&query).unwrap();
        assert_eq!(result.len(), q);
        let mut g = c.benchmark_group(format!("query_q{q}"));
        g.sample_size(20);
        g.bench_function("publisher_answer", |b| {
            b.iter(|| publisher.answer_select(&query).unwrap())
        });
        g.bench_function("user_verify", |b| {
            b.iter(|| verify_select(&cert, &query, &result, &vo).unwrap())
        });
        let vo_bytes = wire::encode_vo(&vo);
        let rec_bytes = wire::encode_records(&result);
        g.bench_function("wire_encode", |b| {
            b.iter(|| (wire::encode_vo(&vo), wire::encode_records(&result)))
        });
        g.bench_function("wire_decode", |b| {
            b.iter(|| {
                (
                    wire::decode_vo(&vo_bytes).unwrap(),
                    wire::decode_records(&rec_bytes).unwrap(),
                )
            })
        });
        g.finish();
    }
}

fn bench_updates(c: &mut Criterion) {
    let owner = bench_owner_small();
    let mut g = c.benchmark_group("update");
    g.sample_size(20);
    g.bench_function("insert+delete/5000rows", |b| {
        let (mut st, _) = WorkloadSpec::new(5000).signed(owner, SchemeConfig::default());
        let domain = *st.domain();
        let key = domain.key_min() + 7; // between existing keys
        let mut i = 0u64;
        b.iter(|| {
            let rec = adp_relation::Record::new(vec![
                adp_relation::Value::Int(key),
                adp_relation::Value::Int(i as i64),
                adp_relation::Value::Bytes(vec![0u8; 16]),
            ]);
            owner.insert_record(&mut st, rec).unwrap();
            owner.delete_record(&mut st, key, 0).unwrap();
            i += 1;
        })
    });
    g.finish();
}

criterion_group!(benches, bench_owner_sign, bench_query_paths, bench_updates);
criterion_main!(benches);
