//! A small SQL frontend for the verified query pipeline.
//!
//! The grammar covers exactly the shapes the signature-chain scheme can
//! prove (and nothing it cannot): single-table SELECT with range and
//! equality predicates, pk-fk INNER JOIN (Section 4.3), DISTINCT
//! (Section 4.2), and client-side aggregates over verified results
//! (COUNT/SUM/MIN/MAX/AVG). Statements lower to the logical plan IR in
//! [`crate::plan`], which the pass-based optimizer in [`crate::passes`]
//! rewrites before execution.
//!
//! ```text
//! statement  := SELECT [DISTINCT] select_list FROM ident
//!               [INNER? JOIN ident ON colref = colref]
//!               [WHERE condition (AND condition)*]
//! select_list:= '*' | aggregate | colref (',' colref)*
//! aggregate  := COUNT '(' ('*' | colref) ')'
//!             | (SUM|MIN|MAX|AVG) '(' colref ')'
//! colref     := ident ['.' ident]
//! condition  := colref op literal | colref BETWEEN int AND int
//! op         := '=' | '!=' | '<>' | '<' | '<=' | '>' | '>='
//! literal    := ['-'] int | 'text' | TRUE | FALSE
//! ```
//!
//! The parser is a hand-rolled recursive-descent over a separate lexer;
//! it never panics on any input (fuzzed in `tests/sql_parser_fuzz.rs`),
//! and `parse → to_string → parse` is a fixed point on the AST.

use adp_relation::{CompareOp, Value};

/// A parse failure, with the byte offset of the offending token.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SqlError {
    pub pos: usize,
    pub msg: String,
}

impl std::fmt::Display for SqlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SQL error at byte {}: {}", self.pos, self.msg)
    }
}
impl std::error::Error for SqlError {}

fn err<T>(pos: usize, msg: impl Into<String>) -> Result<T, SqlError> {
    Err(SqlError {
        pos,
        msg: msg.into(),
    })
}

/// A possibly table-qualified column reference.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ColumnRef {
    pub table: Option<String>,
    pub column: String,
}

impl ColumnRef {
    pub fn bare(column: impl Into<String>) -> Self {
        ColumnRef {
            table: None,
            column: column.into(),
        }
    }
    pub fn qualified(table: impl Into<String>, column: impl Into<String>) -> Self {
        ColumnRef {
            table: Some(table.into()),
            column: column.into(),
        }
    }
}

impl std::fmt::Display for ColumnRef {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.table {
            Some(t) => write!(f, "{t}.{}", self.column),
            None => write!(f, "{}", self.column),
        }
    }
}

/// Aggregate functions (computed client-side over the verified result,
/// per Section 4.2's duplicate-retention argument).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AggFunc {
    Count,
    Sum,
    Min,
    Max,
    Avg,
}

impl AggFunc {
    pub fn name(self) -> &'static str {
        match self {
            AggFunc::Count => "COUNT",
            AggFunc::Sum => "SUM",
            AggFunc::Min => "MIN",
            AggFunc::Max => "MAX",
            AggFunc::Avg => "AVG",
        }
    }
}

/// What the SELECT clause asks for.
#[derive(Clone, Debug, PartialEq)]
pub enum SelectList {
    /// `SELECT *`
    Star,
    /// `SELECT COUNT(*)`, `SELECT SUM(col)`, …
    Aggregate {
        func: AggFunc,
        arg: Option<ColumnRef>,
    },
    /// `SELECT a, t.b, …`
    Columns(Vec<ColumnRef>),
}

/// `INNER JOIN table ON left = right`.
#[derive(Clone, Debug, PartialEq)]
pub struct JoinClause {
    pub table: String,
    pub left: ColumnRef,
    pub right: ColumnRef,
}

/// One WHERE conjunct.
#[derive(Clone, Debug, PartialEq)]
pub enum Condition {
    Compare {
        col: ColumnRef,
        op: CompareOp,
        value: Value,
    },
    Between {
        col: ColumnRef,
        lo: i64,
        hi: i64,
    },
}

/// A parsed statement.
#[derive(Clone, Debug, PartialEq)]
pub struct Statement {
    pub distinct: bool,
    pub select: SelectList,
    pub from: String,
    pub join: Option<JoinClause>,
    pub conditions: Vec<Condition>,
}

fn fmt_value(v: &Value, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
    match v {
        Value::Int(i) => write!(f, "{i}"),
        Value::Text(s) => write!(f, "'{}'", s.replace('\'', "''")),
        Value::Bool(true) => write!(f, "TRUE"),
        Value::Bool(false) => write!(f, "FALSE"),
        // Not producible by the grammar; printed as an (unreparsable)
        // hex literal only for diagnostics.
        Value::Bytes(b) => {
            write!(f, "X'")?;
            for byte in b {
                write!(f, "{byte:02x}")?;
            }
            write!(f, "'")
        }
    }
}

fn op_sql(op: CompareOp) -> &'static str {
    match op {
        CompareOp::Eq => "=",
        CompareOp::Ne => "<>",
        CompareOp::Lt => "<",
        CompareOp::Le => "<=",
        CompareOp::Gt => ">",
        CompareOp::Ge => ">=",
    }
}

impl std::fmt::Display for Statement {
    /// Canonical pretty-print: uppercase keywords, single spaces, `<>`
    /// for not-equals. Reparsing the output yields an equal AST.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SELECT ")?;
        if self.distinct {
            write!(f, "DISTINCT ")?;
        }
        match &self.select {
            SelectList::Star => write!(f, "*")?,
            SelectList::Aggregate { func, arg } => {
                write!(f, "{}(", func.name())?;
                match arg {
                    Some(c) => write!(f, "{c}")?,
                    None => write!(f, "*")?,
                }
                write!(f, ")")?;
            }
            SelectList::Columns(cols) => {
                for (i, c) in cols.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{c}")?;
                }
            }
        }
        write!(f, " FROM {}", self.from)?;
        if let Some(j) = &self.join {
            write!(f, " INNER JOIN {} ON {} = {}", j.table, j.left, j.right)?;
        }
        for (i, c) in self.conditions.iter().enumerate() {
            write!(f, " {} ", if i == 0 { "WHERE" } else { "AND" })?;
            match c {
                Condition::Compare { col, op, value } => {
                    write!(f, "{col} {} ", op_sql(*op))?;
                    fmt_value(value, f)?;
                }
                Condition::Between { col, lo, hi } => {
                    write!(f, "{col} BETWEEN {lo} AND {hi}")?;
                }
            }
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Lexer
// ---------------------------------------------------------------------------

#[derive(Clone, Debug, PartialEq)]
enum Tok {
    Ident(String),
    Keyword(&'static str),
    Int(i64),
    Str(String),
    Star,
    Comma,
    Dot,
    LParen,
    RParen,
    Minus,
    Op(CompareOp),
}

const KEYWORDS: &[&str] = &[
    "SELECT", "DISTINCT", "FROM", "INNER", "JOIN", "ON", "WHERE", "AND", "BETWEEN", "COUNT", "SUM",
    "MIN", "MAX", "AVG", "TRUE", "FALSE",
];

fn lex(src: &str) -> Result<Vec<(Tok, usize)>, SqlError> {
    let bytes = src.as_bytes();
    let mut toks = Vec::new();
    let mut i = 0usize;
    while i < bytes.len() {
        let b = bytes[i];
        match b {
            b' ' | b'\t' | b'\r' | b'\n' => i += 1,
            b'*' => {
                toks.push((Tok::Star, i));
                i += 1;
            }
            b',' => {
                toks.push((Tok::Comma, i));
                i += 1;
            }
            b'.' => {
                toks.push((Tok::Dot, i));
                i += 1;
            }
            b'(' => {
                toks.push((Tok::LParen, i));
                i += 1;
            }
            b')' => {
                toks.push((Tok::RParen, i));
                i += 1;
            }
            b'-' => {
                toks.push((Tok::Minus, i));
                i += 1;
            }
            b'=' => {
                toks.push((Tok::Op(CompareOp::Eq), i));
                i += 1;
            }
            b'!' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    toks.push((Tok::Op(CompareOp::Ne), i));
                    i += 2;
                } else {
                    return err(i, "expected '=' after '!'");
                }
            }
            b'<' => match bytes.get(i + 1) {
                Some(b'=') => {
                    toks.push((Tok::Op(CompareOp::Le), i));
                    i += 2;
                }
                Some(b'>') => {
                    toks.push((Tok::Op(CompareOp::Ne), i));
                    i += 2;
                }
                _ => {
                    toks.push((Tok::Op(CompareOp::Lt), i));
                    i += 1;
                }
            },
            b'>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    toks.push((Tok::Op(CompareOp::Ge), i));
                    i += 2;
                } else {
                    toks.push((Tok::Op(CompareOp::Gt), i));
                    i += 1;
                }
            }
            b'\'' => {
                // String literal; '' escapes a quote.
                let start = i;
                i += 1;
                let mut s = String::new();
                loop {
                    match bytes.get(i) {
                        None => return err(start, "unterminated string literal"),
                        Some(b'\'') => {
                            if bytes.get(i + 1) == Some(&b'\'') {
                                s.push('\'');
                                i += 2;
                            } else {
                                i += 1;
                                break;
                            }
                        }
                        Some(_) => {
                            // Consume one UTF-8 scalar, not one byte.
                            let rest = &src[i..];
                            let ch = rest.chars().next().expect("in-bounds char");
                            s.push(ch);
                            i += ch.len_utf8();
                        }
                    }
                }
                toks.push((Tok::Str(s), start));
            }
            b'0'..=b'9' => {
                let start = i;
                let mut n: i128 = 0;
                while let Some(d @ b'0'..=b'9') = bytes.get(i) {
                    n = n * 10 + (d - b'0') as i128;
                    if n > i64::MAX as i128 + 1 {
                        return err(start, "integer literal out of range");
                    }
                    i += 1;
                }
                if n > i64::MAX as i128 {
                    // Only representable as the operand of a unary minus;
                    // the parser checks that context.
                    if toks.last().map(|(t, _)| t) == Some(&Tok::Minus) {
                        toks.pop();
                        toks.push((Tok::Int(i64::MIN), start - 1));
                        continue;
                    }
                    return err(start, "integer literal out of range");
                }
                toks.push((Tok::Int(n as i64), start));
            }
            b'A'..=b'Z' | b'a'..=b'z' | b'_' => {
                let start = i;
                while let Some(c) = bytes.get(i) {
                    if c.is_ascii_alphanumeric() || *c == b'_' {
                        i += 1;
                    } else {
                        break;
                    }
                }
                let word = &src[start..i];
                let upper = word.to_ascii_uppercase();
                match KEYWORDS.iter().find(|k| **k == upper) {
                    Some(k) => toks.push((Tok::Keyword(k), start)),
                    None => toks.push((Tok::Ident(word.to_string()), start)),
                }
            }
            _ => {
                let ch = src[i..].chars().next().expect("in-bounds char");
                return err(i, format!("unrecognized character '{ch}'"));
            }
        }
    }
    Ok(toks)
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser {
    toks: Vec<(Tok, usize)>,
    pos: usize,
    end: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|(t, _)| t)
    }

    fn here(&self) -> usize {
        self.toks.get(self.pos).map(|(_, p)| *p).unwrap_or(self.end)
    }

    fn bump(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).map(|(t, _)| t.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn keyword(&mut self, kw: &'static str) -> Result<(), SqlError> {
        match self.peek() {
            Some(Tok::Keyword(k)) if *k == kw => {
                self.pos += 1;
                Ok(())
            }
            _ => err(self.here(), format!("expected {kw}")),
        }
    }

    fn eat_keyword(&mut self, kw: &'static str) -> bool {
        if matches!(self.peek(), Some(Tok::Keyword(k)) if *k == kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn ident(&mut self, what: &str) -> Result<String, SqlError> {
        match self.peek() {
            Some(Tok::Ident(_)) => {
                let Some(Tok::Ident(s)) = self.bump() else {
                    unreachable!()
                };
                Ok(s)
            }
            _ => err(self.here(), format!("expected {what}")),
        }
    }

    fn colref(&mut self) -> Result<ColumnRef, SqlError> {
        let first = self.ident("column name")?;
        if matches!(self.peek(), Some(Tok::Dot)) {
            self.pos += 1;
            let col = self.ident("column name after '.'")?;
            Ok(ColumnRef {
                table: Some(first),
                column: col,
            })
        } else {
            Ok(ColumnRef {
                table: None,
                column: first,
            })
        }
    }

    fn int_literal(&mut self) -> Result<i64, SqlError> {
        let neg = if matches!(self.peek(), Some(Tok::Minus)) {
            self.pos += 1;
            true
        } else {
            false
        };
        match self.peek() {
            Some(Tok::Int(_)) => {
                let Some(Tok::Int(n)) = self.bump() else {
                    unreachable!()
                };
                if neg {
                    n.checked_neg()
                        .ok_or(())
                        .or_else(|_| err(self.here(), "integer literal out of range"))
                } else {
                    Ok(n)
                }
            }
            _ => err(self.here(), "expected integer literal"),
        }
    }

    fn literal(&mut self) -> Result<Value, SqlError> {
        match self.peek() {
            Some(Tok::Minus | Tok::Int(_)) => Ok(Value::Int(self.int_literal()?)),
            Some(Tok::Str(_)) => {
                let Some(Tok::Str(s)) = self.bump() else {
                    unreachable!()
                };
                Ok(Value::Text(s))
            }
            Some(Tok::Keyword("TRUE")) => {
                self.pos += 1;
                Ok(Value::Bool(true))
            }
            Some(Tok::Keyword("FALSE")) => {
                self.pos += 1;
                Ok(Value::Bool(false))
            }
            _ => err(self.here(), "expected literal"),
        }
    }

    fn select_list(&mut self) -> Result<SelectList, SqlError> {
        if matches!(self.peek(), Some(Tok::Star)) {
            self.pos += 1;
            return Ok(SelectList::Star);
        }
        // Aggregate?
        let agg = match self.peek() {
            Some(Tok::Keyword("COUNT")) => Some(AggFunc::Count),
            Some(Tok::Keyword("SUM")) => Some(AggFunc::Sum),
            Some(Tok::Keyword("MIN")) => Some(AggFunc::Min),
            Some(Tok::Keyword("MAX")) => Some(AggFunc::Max),
            Some(Tok::Keyword("AVG")) => Some(AggFunc::Avg),
            _ => None,
        };
        if let Some(func) = agg {
            self.pos += 1;
            match self.peek() {
                Some(Tok::LParen) => {
                    self.pos += 1;
                }
                _ => return err(self.here(), format!("expected '(' after {}", func.name())),
            }
            let arg = if matches!(self.peek(), Some(Tok::Star)) {
                self.pos += 1;
                if func != AggFunc::Count {
                    return err(
                        self.here(),
                        format!("{}(*) is not valid; only COUNT(*)", func.name()),
                    );
                }
                None
            } else {
                Some(self.colref()?)
            };
            match self.peek() {
                Some(Tok::RParen) => {
                    self.pos += 1;
                }
                _ => return err(self.here(), "expected ')'"),
            }
            return Ok(SelectList::Aggregate { func, arg });
        }
        // Column list.
        if !matches!(self.peek(), Some(Tok::Ident(_))) {
            return err(self.here(), "expected select list");
        }
        let mut cols = vec![self.colref()?];
        while matches!(self.peek(), Some(Tok::Comma)) {
            self.pos += 1;
            cols.push(self.colref()?);
        }
        Ok(SelectList::Columns(cols))
    }

    fn condition(&mut self) -> Result<Condition, SqlError> {
        if !matches!(self.peek(), Some(Tok::Ident(_))) {
            return err(self.here(), "expected condition");
        }
        let col = self.colref()?;
        if self.eat_keyword("BETWEEN") {
            let lo = self.int_literal()?;
            self.keyword("AND")
                .or_else(|_| err(self.here(), "expected AND in BETWEEN"))?;
            let hi = self.int_literal()?;
            return Ok(Condition::Between { col, lo, hi });
        }
        let op = match self.peek() {
            Some(Tok::Op(_)) => {
                let Some(Tok::Op(op)) = self.bump() else {
                    unreachable!()
                };
                op
            }
            _ => return err(self.here(), "expected comparison operator"),
        };
        let value = self.literal()?;
        Ok(Condition::Compare { col, op, value })
    }

    fn statement(&mut self) -> Result<Statement, SqlError> {
        self.keyword("SELECT")?;
        let distinct = self.eat_keyword("DISTINCT");
        let select = self.select_list()?;
        self.keyword("FROM")?;
        let from = self.ident("table name")?;
        let join = if self.eat_keyword("INNER") {
            self.keyword("JOIN")?;
            Some(self.join_clause()?)
        } else if self.eat_keyword("JOIN") {
            Some(self.join_clause()?)
        } else {
            None
        };
        let mut conditions = Vec::new();
        if self.eat_keyword("WHERE") {
            conditions.push(self.condition()?);
            while self.eat_keyword("AND") {
                conditions.push(self.condition()?);
            }
        }
        if self.pos != self.toks.len() {
            return err(self.here(), "trailing input after statement");
        }
        Ok(Statement {
            distinct,
            select,
            from,
            join,
            conditions,
        })
    }

    fn join_clause(&mut self) -> Result<JoinClause, SqlError> {
        let table = self.ident("table name after JOIN")?;
        self.keyword("ON")?;
        let left = self.colref()?;
        match self.peek() {
            Some(Tok::Op(CompareOp::Eq)) => {
                self.pos += 1;
            }
            _ => return err(self.here(), "expected '=' in join condition"),
        }
        let right = self.colref()?;
        Ok(JoinClause { table, left, right })
    }
}

/// Parses one statement. Never panics; all failures are [`SqlError`]s.
pub fn parse(sql: &str) -> Result<Statement, SqlError> {
    let toks = lex(sql)?;
    let mut p = Parser {
        toks,
        pos: 0,
        end: sql.len(),
    };
    p.statement()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(sql: &str) -> Statement {
        let ast = parse(sql).unwrap();
        let printed = ast.to_string();
        let reparsed = parse(&printed)
            .unwrap_or_else(|e| panic!("pretty-print of {sql:?} unparsable: {printed:?}: {e}"));
        assert_eq!(ast, reparsed, "fixed point violated for {sql:?}");
        ast
    }

    #[test]
    fn parses_star_select() {
        let ast = roundtrip("select * from emp");
        assert_eq!(ast.select, SelectList::Star);
        assert_eq!(ast.from, "emp");
        assert!(ast.join.is_none() && ast.conditions.is_empty() && !ast.distinct);
    }

    #[test]
    fn parses_projection_distinct_where() {
        let ast = roundtrip(
            "SELECT DISTINCT name, dept FROM emp WHERE salary BETWEEN 1000 AND 9000 AND dept = 'eng'",
        );
        assert!(ast.distinct);
        assert_eq!(
            ast.select,
            SelectList::Columns(vec![ColumnRef::bare("name"), ColumnRef::bare("dept")])
        );
        assert_eq!(ast.conditions.len(), 2);
        assert_eq!(
            ast.conditions[0],
            Condition::Between {
                col: ColumnRef::bare("salary"),
                lo: 1000,
                hi: 9000
            }
        );
        assert_eq!(
            ast.conditions[1],
            Condition::Compare {
                col: ColumnRef::bare("dept"),
                op: CompareOp::Eq,
                value: Value::from("eng")
            }
        );
    }

    #[test]
    fn parses_join_and_aggregates() {
        let ast = roundtrip(
            "SELECT o.item, i.price FROM orders INNER JOIN items ON o.item = i.id WHERE o.item >= 10",
        );
        let j = ast.join.unwrap();
        assert_eq!(j.table, "items");
        assert_eq!(j.left, ColumnRef::qualified("o", "item"));
        let agg = roundtrip("SELECT COUNT(*) FROM emp WHERE salary < 5000");
        assert_eq!(
            agg.select,
            SelectList::Aggregate {
                func: AggFunc::Count,
                arg: None
            }
        );
        let sum = roundtrip("SELECT SUM(salary) FROM emp");
        assert_eq!(
            sum.select,
            SelectList::Aggregate {
                func: AggFunc::Sum,
                arg: Some(ColumnRef::bare("salary"))
            }
        );
    }

    #[test]
    fn bare_join_keyword_and_ne_forms() {
        let a = roundtrip("SELECT * FROM r JOIN s ON r.k = s.k");
        assert!(a.join.is_some());
        let b = parse("SELECT * FROM t WHERE a != 3").unwrap();
        let c = parse("SELECT * FROM t WHERE a <> 3").unwrap();
        assert_eq!(b, c);
    }

    #[test]
    fn negative_and_extreme_integers() {
        let ast = roundtrip("SELECT * FROM t WHERE k >= -42");
        assert_eq!(
            ast.conditions[0],
            Condition::Compare {
                col: ColumnRef::bare("k"),
                op: CompareOp::Ge,
                value: Value::Int(-42)
            }
        );
        let min = roundtrip("SELECT * FROM t WHERE k = -9223372036854775808");
        assert_eq!(
            min.conditions[0],
            Condition::Compare {
                col: ColumnRef::bare("k"),
                op: CompareOp::Eq,
                value: Value::Int(i64::MIN)
            }
        );
        assert!(parse("SELECT * FROM t WHERE k = 9223372036854775808").is_err());
    }

    #[test]
    fn string_escapes_roundtrip() {
        let ast = roundtrip("SELECT * FROM t WHERE name = 'O''Brien'");
        assert_eq!(
            ast.conditions[0],
            Condition::Compare {
                col: ColumnRef::bare("name"),
                op: CompareOp::Eq,
                value: Value::from("O'Brien")
            }
        );
    }

    #[test]
    fn error_positions_and_messages() {
        let cases: &[(&str, &str)] = &[
            ("", "SQL error at byte 0: expected SELECT"),
            ("SELECT", "SQL error at byte 6: expected select list"),
            ("SELECT * FROM", "SQL error at byte 13: expected table name"),
            (
                "SELECT * FROM t WHERE",
                "SQL error at byte 21: expected condition",
            ),
            (
                "SELECT * FROM t WHERE x ! 3",
                "SQL error at byte 24: expected '=' after '!'",
            ),
            (
                "SELECT * FROM t WHERE x = 'oops",
                "SQL error at byte 26: unterminated string literal",
            ),
            (
                "SELECT * FROM t extra",
                "SQL error at byte 16: trailing input after statement",
            ),
            (
                "SELECT SUM(*) FROM t",
                "SQL error at byte 12: SUM(*) is not valid; only COUNT(*)",
            ),
            (
                "SELECT * FROM t WHERE x # 3",
                "SQL error at byte 24: unrecognized character '#'",
            ),
        ];
        for (sql, want) in cases {
            let got = parse(sql).unwrap_err().to_string();
            assert_eq!(&got, want, "for {sql:?}");
        }
    }
}
