//! Section 3.2 cheating-strategy matrix: every malicious-publisher attack is
//! exercised against every query shape (plain range select, multipoint
//! filtered select, projected DISTINCT select, the outer leg of a pk-fk
//! join, and the R-partition leg of a band join), rstest-style — one
//! generated test per (attack, shape) combination.
//!
//! The matrix encodes which combinations each attack applies to (e.g.
//! `FakeDuplicate` needs DISTINCT, `MislabelFiltered` needs a filter, and
//! `TruncateTail` needs a VO whose entries are all matches). Every applicable
//! forgery must be rejected by the verifier; an attack the tamper harness
//! declares inapplicable on an expected-applicable combination fails the
//! test, so coverage cannot silently rot.

mod common;

use adp_core::join::{
    answer_band_join, answer_pkfk_join, verify_band_join, verify_pkfk_join, BandJoinResult,
    BandJoinVO, PkFkJoinResult, PkFkJoinVO,
};
use adp_core::prelude::*;
use adp_core::publisher::malicious::{tamper, Attack};
use adp_relation::{
    check_referential_integrity, CompareOp, KeyRange, Predicate, Projection, SelectQuery,
};
use common::{band_caps_table, dept_table, emp_by_dept, staff_table};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::OnceLock;

fn owner() -> &'static Owner {
    static OWNER: OnceLock<Owner> = OnceLock::new();
    OWNER.get_or_init(|| {
        let mut rng = StdRng::seed_from_u64(0x3A721);
        Owner::new(512, &mut rng)
    })
}

/// The query shapes of the matrix.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Shape {
    /// Plain range select over the sort key.
    RangeSelect,
    /// Multipoint select: range plus an equality filter on `dept`.
    FilteredSelect,
    /// Projected DISTINCT select (key is implicitly retained).
    ProjectDistinct,
    /// The outer (R-side) selection leg of a pk-fk equi-join.
    PkFkJoin,
    /// The R-partition leg of a band join `R.salary ≤ S.cap` (Section
    /// 4.3's second join class): the completeness proof for all R rows
    /// with key ≤ max(S).
    BandJoin,
}

fn select_query(shape: Shape) -> SelectQuery {
    let base = SelectQuery::range(KeyRange::closed(2_000, 9_000));
    match shape {
        Shape::RangeSelect => base,
        Shape::FilteredSelect => base.filter(Predicate::new("dept", CompareOp::Eq, 1i64)),
        Shape::ProjectDistinct => base.project(&["dept"]).distinct(),
        Shape::PkFkJoin | Shape::BandJoin => {
            unreachable!("join shapes do not use a plain select query")
        }
    }
}

/// Whether `attack` is applicable to `shape` — mirrored from the tamper
/// harness's own preconditions so the matrix notices if they drift. The
/// two join legs behave like plain range selects (no filters, no
/// DISTINCT), so only the filter- and duplicate-dependent attacks are
/// inapplicable there.
fn applicable(attack: Attack, shape: Shape) -> bool {
    match attack {
        // Needs a filter to mislabel against.
        Attack::MislabelFiltered => shape == Shape::FilteredSelect,
        // Needs DISTINCT semantics to hide behind.
        Attack::FakeDuplicate => shape == Shape::ProjectDistinct,
        // Needs every VO entry to be a Match: filtered entries make
        // |entries| != |result| and the precondition bails. The DISTINCT
        // shape stays applicable because salaries are unique here, so no
        // entry is ever labeled Duplicate.
        Attack::TruncateTail => shape != Shape::FilteredSelect,
        _ => true,
    }
}

/// Runs one (attack, shape) cell on select-style shapes.
fn run_select_cell(attack: Attack, shape: Shape) {
    let st = owner()
        .sign_table(
            staff_table(),
            Domain::new(0, 100_000),
            SchemeConfig::default(),
        )
        .unwrap();
    let cert = owner().certificate(&st);
    let publisher = Publisher::new(&st);
    let query = select_query(shape);
    let (result, vo) = publisher.answer_select(&query).unwrap();
    verify_select(&cert, &query, &result, &vo)
        .unwrap_or_else(|e| panic!("honest {shape:?} answer must verify: {e}"));

    let tampered = tamper(&publisher, &query, &result, &vo, attack);
    match (tampered, applicable(attack, shape)) {
        (None, false) => {} // matrix agrees: nothing to forge here
        (None, true) => panic!("{attack:?} should be applicable to {shape:?}"),
        (Some(_), false) => panic!("{attack:?} unexpectedly applicable to {shape:?}"),
        (Some((bad_result, bad_vo)), true) => {
            assert!(
                bad_result != result || bad_vo != vo,
                "{attack:?} on {shape:?} was a no-op — the matrix data must \
                 make every tampering observable"
            );
            let verdict = verify_select(&cert, &query, &bad_result, &bad_vo);
            assert!(
                verdict.is_err(),
                "{attack:?} on {shape:?} must be detected, got {verdict:?}"
            );
        }
    }
}

/// Runs one attack cell against the outer leg of a pk-fk join: the forged
/// outer selection is spliced back into the join VO, and `verify_pkfk_join`
/// must reject the whole join.
fn run_join_cell(attack: Attack) {
    let o = owner();
    let (emp, dept) = (emp_by_dept(), dept_table());
    check_referential_integrity(&emp, &dept).unwrap();
    let r = o
        .sign_table(emp, Domain::new(0, 1_000), SchemeConfig::default())
        .unwrap();
    let s = o
        .sign_table(dept, Domain::new(0, 1_000), SchemeConfig::default())
        .unwrap();
    let (rc, sc) = (o.certificate(&r), o.certificate(&s));
    let (r_pub, s_pub) = (Publisher::new(&r), Publisher::new(&s));
    let range = KeyRange::all();
    let (result, vo) =
        answer_pkfk_join(&r_pub, &s_pub, range, &Projection::All, &Projection::All).unwrap();
    verify_pkfk_join(
        &rc,
        &sc,
        range,
        &Projection::All,
        &Projection::All,
        &result,
        &vo,
    )
    .unwrap_or_else(|e| panic!("honest join must verify: {e}"));

    // The outer leg is an ordinary select on R's fk attribute; forge it.
    let outer_query = SelectQuery {
        range,
        filters: Vec::new(),
        projection: Projection::All,
        distinct: false,
    };
    let tampered = tamper(&r_pub, &outer_query, &result.outer_rows, &vo.outer, attack);
    match (tampered, applicable(attack, Shape::PkFkJoin)) {
        (None, false) => {}
        (None, true) => panic!("{attack:?} should be applicable to the join outer leg"),
        (Some(_), false) => panic!("{attack:?} unexpectedly applicable to the join outer leg"),
        (Some((bad_outer_rows, bad_outer_vo)), true) => {
            let bad_result = PkFkJoinResult {
                outer_rows: bad_outer_rows,
                ..result.clone()
            };
            let bad_vo = PkFkJoinVO {
                outer: bad_outer_vo,
                ..vo.clone()
            };
            let verdict = verify_pkfk_join(
                &rc,
                &sc,
                range,
                &Projection::All,
                &Projection::All,
                &bad_result,
                &bad_vo,
            );
            assert!(
                verdict.is_err(),
                "{attack:?} on the join outer leg must be detected, got {verdict:?}"
            );
        }
    }
}

/// Runs one attack cell against the R-partition leg of a band join: the
/// forged partition proof is spliced back into the band-join VO, and
/// `verify_band_join` must reject the whole join.
fn run_band_cell(attack: Attack) {
    use std::ops::Bound;
    let o = owner();
    let r = o
        .sign_table(
            staff_table(),
            Domain::new(0, 100_000),
            SchemeConfig::default(),
        )
        .unwrap();
    let s = o
        .sign_table(
            band_caps_table(),
            Domain::new(0, 100_000),
            SchemeConfig::default(),
        )
        .unwrap();
    let (rc, sc) = (o.certificate(&r), o.certificate(&s));
    let (r_pub, s_pub) = (Publisher::new(&r), Publisher::new(&s));
    let (result, vo) = answer_band_join(&r_pub, &s_pub).unwrap();
    verify_band_join(&rc, &sc, &result, &vo)
        .unwrap_or_else(|e| panic!("honest band join must verify: {e}"));
    assert!(
        result.r_partition.len() >= 3,
        "fixture must leave a tamperable R partition"
    );

    // The R-partition leg is an ordinary select for keys ≤ max(S); forge it.
    let r_query = SelectQuery {
        range: KeyRange {
            lo: Bound::Unbounded,
            hi: Bound::Included(vo.s_max),
        },
        filters: Vec::new(),
        projection: Projection::All,
        distinct: false,
    };
    let tampered = tamper(&r_pub, &r_query, &result.r_partition, &vo.r_vo, attack);
    match (tampered, applicable(attack, Shape::BandJoin)) {
        (None, false) => {}
        (None, true) => panic!("{attack:?} should be applicable to the band R partition"),
        (Some(_), false) => panic!("{attack:?} unexpectedly applicable to the band R partition"),
        (Some((bad_rows, bad_vo)), true) => {
            let bad_result = BandJoinResult {
                r_partition: bad_rows,
                s_partition: result.s_partition.clone(),
            };
            let bad_full_vo = BandJoinVO {
                r_vo: bad_vo,
                s_max: vo.s_max,
                s_max_vo: vo.s_max_vo.clone(),
                s_max_rows: vo.s_max_rows.clone(),
                s_vo: vo.s_vo.clone(),
            };
            let verdict = verify_band_join(&rc, &sc, &bad_result, &bad_full_vo);
            assert!(
                verdict.is_err(),
                "{attack:?} on the band R partition must be detected, got {verdict:?}"
            );
        }
    }
}

/// rstest-style expansion: one named test per (attack, shape) cell.
macro_rules! attack_matrix {
    ($($name:ident => $attack:ident / $shape:ident;)+) => {$(
        #[test]
        fn $name() {
            match Shape::$shape {
                Shape::PkFkJoin => run_join_cell(Attack::$attack),
                Shape::BandJoin => run_band_cell(Attack::$attack),
                shape => run_select_cell(Attack::$attack, shape),
            }
        }
    )+};
}

attack_matrix! {
    omit_interior_on_range_select      => OmitInterior / RangeSelect;
    omit_interior_on_filtered_select   => OmitInterior / FilteredSelect;
    omit_interior_on_project_distinct  => OmitInterior / ProjectDistinct;
    omit_interior_on_pkfk_join         => OmitInterior / PkFkJoin;
    omit_interior_on_band_join         => OmitInterior / BandJoin;

    truncate_tail_on_range_select      => TruncateTail / RangeSelect;
    truncate_tail_on_filtered_select   => TruncateTail / FilteredSelect;
    truncate_tail_on_project_distinct  => TruncateTail / ProjectDistinct;
    truncate_tail_on_pkfk_join         => TruncateTail / PkFkJoin;
    truncate_tail_on_band_join         => TruncateTail / BandJoin;

    fake_empty_on_range_select         => FakeEmpty / RangeSelect;
    fake_empty_on_filtered_select      => FakeEmpty / FilteredSelect;
    fake_empty_on_project_distinct     => FakeEmpty / ProjectDistinct;
    fake_empty_on_pkfk_join            => FakeEmpty / PkFkJoin;
    fake_empty_on_band_join            => FakeEmpty / BandJoin;

    inject_spurious_on_range_select    => InjectSpurious / RangeSelect;
    inject_spurious_on_filtered_select => InjectSpurious / FilteredSelect;
    inject_spurious_on_project_distinct => InjectSpurious / ProjectDistinct;
    inject_spurious_on_pkfk_join       => InjectSpurious / PkFkJoin;
    inject_spurious_on_band_join       => InjectSpurious / BandJoin;

    tamper_value_on_range_select       => TamperValue / RangeSelect;
    tamper_value_on_filtered_select    => TamperValue / FilteredSelect;
    tamper_value_on_project_distinct   => TamperValue / ProjectDistinct;
    tamper_value_on_pkfk_join          => TamperValue / PkFkJoin;
    tamper_value_on_band_join          => TamperValue / BandJoin;

    swap_values_on_range_select        => SwapValues / RangeSelect;
    swap_values_on_filtered_select     => SwapValues / FilteredSelect;
    swap_values_on_project_distinct    => SwapValues / ProjectDistinct;
    swap_values_on_pkfk_join           => SwapValues / PkFkJoin;
    swap_values_on_band_join           => SwapValues / BandJoin;

    shift_left_boundary_on_range_select => ShiftLeftBoundary / RangeSelect;
    shift_left_boundary_on_filtered_select => ShiftLeftBoundary / FilteredSelect;
    shift_left_boundary_on_project_distinct => ShiftLeftBoundary / ProjectDistinct;
    shift_left_boundary_on_pkfk_join   => ShiftLeftBoundary / PkFkJoin;
    shift_left_boundary_on_band_join   => ShiftLeftBoundary / BandJoin;

    mislabel_filtered_on_range_select  => MislabelFiltered / RangeSelect;
    mislabel_filtered_on_filtered_select => MislabelFiltered / FilteredSelect;
    mislabel_filtered_on_project_distinct => MislabelFiltered / ProjectDistinct;
    mislabel_filtered_on_pkfk_join     => MislabelFiltered / PkFkJoin;
    mislabel_filtered_on_band_join     => MislabelFiltered / BandJoin;

    fake_duplicate_on_range_select     => FakeDuplicate / RangeSelect;
    fake_duplicate_on_filtered_select  => FakeDuplicate / FilteredSelect;
    fake_duplicate_on_project_distinct => FakeDuplicate / ProjectDistinct;
    fake_duplicate_on_pkfk_join        => FakeDuplicate / PkFkJoin;
    fake_duplicate_on_band_join        => FakeDuplicate / BandJoin;
}
