//! Every worked byte example in `docs/PROTOCOL.md` is asserted here
//! verbatim, so the spec cannot drift from the codec. If one of these
//! tests fails, fix the document (or the regression) — never the test
//! alone.

use adp_core::wire;
use adp_relation::{KeyRange, SelectQuery, Value};
use adp_server::protocol::{decode_frame, encode_frame, DeltaPiece, Frame};
use adp_server::ErrorCode;

/// PROTOCOL.md §2 "Frame header" — the smallest possible frame.
#[test]
fn ping_frame_example() {
    let bytes = encode_frame(&Frame::Ping);
    assert_eq!(bytes, [0xAD, 0x50, 0x06, 0x01, 0x00, 0x00, 0x00, 0x00]);
}

/// PROTOCOL.md §2 — pong differs only in the frame-type byte.
#[test]
fn pong_frame_example() {
    let bytes = encode_frame(&Frame::Pong);
    assert_eq!(bytes, [0xAD, 0x50, 0x06, 0x02, 0x00, 0x00, 0x00, 0x00]);
}

/// PROTOCOL.md §4 "Values" — canonical value encodings (shared with the
/// `adp-core` wire codec's test vectors).
#[test]
fn value_encoding_examples() {
    assert_eq!(
        Value::Int(7).encode(),
        [0x01, 0x07, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00]
    );
    assert_eq!(Value::from("hi").encode(), [0x02, 0x68, 0x69]);
    assert_eq!(Value::Bool(true).encode(), [0x04, 0x01]);
}

/// PROTOCOL.md §5 "QueryRequest" — the full worked example: table 7,
/// `SELECT * WHERE 2000 ≤ K ≤ 9000`.
#[test]
fn query_request_frame_example() {
    let frame = Frame::QueryRequest {
        table_id: 7,
        query: SelectQuery::range(KeyRange::closed(2_000, 9_000)),
    };
    let bytes = encode_frame(&frame);
    #[rustfmt::skip]
    let expected: &[u8] = &[
        // header
        0xAD, 0x50,             // magic
        0x06,                   // version
        0x03,                   // frame type: QueryRequest
        0x20, 0x00, 0x00, 0x00, // payload length = 32
        // payload
        0x07, 0x00, 0x00, 0x00, // table_id = 7
        0x18, 0x00, 0x00, 0x00, // query blob length = 24
        // query blob
        0x01, 0xD0, 0x07, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, // lo: Included(2000)
        0x01, 0x28, 0x23, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, // hi: Included(9000)
        0x00, 0x00, 0x00, 0x00, // 0 filters
        0x00,                   // projection: All
        0x00,                   // distinct: false
    ];
    assert_eq!(bytes, expected);
    assert_eq!(decode_frame(&bytes).unwrap(), frame);
}

/// PROTOCOL.md §6 "QueryResponse" — the response to a trivially-empty
/// query: zero records, a `TriviallyEmpty` VO.
#[test]
fn query_response_frame_example() {
    let frame = Frame::QueryResponse {
        result: wire::encode_records(&[]),
        vo: wire::encode_vo(&adp_core::vo::QueryVO::TriviallyEmpty),
    };
    let bytes = encode_frame(&frame);
    #[rustfmt::skip]
    let expected: &[u8] = &[
        // header
        0xAD, 0x50, 0x06, 0x04, // magic, version, QueryResponse
        0x0D, 0x00, 0x00, 0x00, // payload length = 13
        // payload
        0x04, 0x00, 0x00, 0x00, // result blob length = 4
        0x00, 0x00, 0x00, 0x00, //   encode_records([]): 0 records
        0x01, 0x00, 0x00, 0x00, // vo blob length = 1
        0x00,                   //   encode_vo(TriviallyEmpty): tag 0
    ];
    assert_eq!(bytes, expected);
    assert_eq!(decode_frame(&bytes).unwrap(), frame);
}

/// PROTOCOL.md §8 "Error" — unknown table id.
#[test]
fn error_frame_example() {
    let frame = Frame::Error {
        code: ErrorCode::UnknownTable,
        message: "no table with id 9".into(),
    };
    let bytes = encode_frame(&frame);
    #[rustfmt::skip]
    let expected: &[u8] = &[
        // header
        0xAD, 0x50, 0x06, 0x09, // magic, version, Error
        0x17, 0x00, 0x00, 0x00, // payload length = 23
        // payload
        0x02,                   // code: UnknownTable
        0x12, 0x00, 0x00, 0x00, // message length = 18
        b'n', b'o', b' ', b't', b'a', b'b', b'l', b'e', b' ',
        b'w', b'i', b't', b'h', b' ', b'i', b'd', b' ', b'9',
    ];
    assert_eq!(bytes, expected);
    assert_eq!(decode_frame(&bytes).unwrap(), frame);
}

/// PROTOCOL.md §1.1 "Connection lifecycle" — the frame-deadline error a
/// slow-loris client is answered with.
#[test]
fn frame_deadline_error_example() {
    let frame = Frame::Error {
        code: ErrorCode::BadFrame,
        message: "frame deadline exceeded".into(),
    };
    let bytes = encode_frame(&frame);
    #[rustfmt::skip]
    let expected: &[u8] = &[
        // header
        0xAD, 0x50, 0x06, 0x09, // magic, version, Error
        0x1C, 0x00, 0x00, 0x00, // payload length = 28
        // payload
        0x01,                   // code: BadFrame
        0x17, 0x00, 0x00, 0x00, // message length = 23
        b'f', b'r', b'a', b'm', b'e', b' ', b'd', b'e', b'a',
        b'd', b'l', b'i', b'n', b'e', b' ', b'e', b'x', b'c',
        b'e', b'e', b'd', b'e', b'd',
    ];
    assert_eq!(bytes, expected);
    assert_eq!(decode_frame(&bytes).unwrap(), frame);
}

/// PROTOCOL.md §7 "Stats" — request is empty; the response is sixteen
/// little-endian `u64` counters (version 2 appended `invalidations`;
/// version 3 appended `open_connections`, `queue_depth`, `idle_reaped`;
/// version 4 appended `subscriptions`, `deltas_pushed`; version 5
/// appended `reconnects`, `resyncs`, `drains`).
#[test]
fn stats_frames_example() {
    assert_eq!(
        encode_frame(&Frame::StatsRequest),
        [0xAD, 0x50, 0x06, 0x07, 0x00, 0x00, 0x00, 0x00]
    );
    let frame = Frame::StatsResponse(adp_server::StatsSnapshot {
        connections: 1,
        queries: 2,
        batches: 0,
        cache_hits: 1,
        cache_misses: 1,
        cache_entries: 1,
        invalidations: 0,
        open_connections: 1,
        queue_depth: 0,
        idle_reaped: 0,
        errors: 0,
        subscriptions: 1,
        deltas_pushed: 1,
        reconnects: 1,
        resyncs: 0,
        drains: 2,
    });
    let bytes = encode_frame(&frame);
    assert_eq!(bytes.len(), 8 + 16 * 8);
    assert_eq!(bytes[..8], [0xAD, 0x50, 0x06, 0x08, 0x80, 0x00, 0x00, 0x00]);
    // The §7 worked example's first counters: connections = 1, queries = 2.
    assert_eq!(bytes[8..16], 1u64.to_le_bytes());
    assert_eq!(bytes[16..24], 2u64.to_le_bytes());
    // ... the two version-4 counters ...
    assert_eq!(bytes[96..104], 1u64.to_le_bytes());
    assert_eq!(bytes[104..112], 1u64.to_le_bytes());
    // ... and the three version-5 counters at the tail.
    assert_eq!(bytes[112..120], 1u64.to_le_bytes()); // reconnects
    assert_eq!(bytes[120..128], 0u64.to_le_bytes()); // resyncs
    assert_eq!(bytes[128..136], 2u64.to_le_bytes()); // drains
    assert_eq!(decode_frame(&bytes).unwrap(), frame);
}

/// PROTOCOL.md §9 "FollowLog" — both handshakes: a fresh follower asking
/// for a bootstrap snapshot, and one resuming from log sequence 3.
#[test]
fn follow_log_frame_examples() {
    let fresh = Frame::FollowLog {
        table_id: 7,
        have: None,
    };
    let bytes = encode_frame(&fresh);
    #[rustfmt::skip]
    let expected: &[u8] = &[
        // header
        0xAD, 0x50, 0x06, 0x0A, // magic, version, FollowLog
        0x05, 0x00, 0x00, 0x00, // payload length = 5
        // payload
        0x07, 0x00, 0x00, 0x00, // table_id = 7
        0x00,                   // have: absent (bootstrap)
    ];
    assert_eq!(bytes, expected);
    assert_eq!(decode_frame(&bytes).unwrap(), fresh);

    let resume = Frame::FollowLog {
        table_id: 7,
        have: Some(3),
    };
    let bytes = encode_frame(&resume);
    #[rustfmt::skip]
    let expected: &[u8] = &[
        // header
        0xAD, 0x50, 0x06, 0x0A, // magic, version, FollowLog
        0x0D, 0x00, 0x00, 0x00, // payload length = 13
        // payload
        0x07, 0x00, 0x00, 0x00, // table_id = 7
        0x01,                   // have: present
        0x03, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, // have = 3
    ];
    assert_eq!(bytes, expected);
    assert_eq!(decode_frame(&bytes).unwrap(), resume);
}

/// PROTOCOL.md §9 "LogSegment" — the caught-up handshake ack: a segment
/// carrying zero log-record frames.
#[test]
fn log_segment_frame_example() {
    let frame = Frame::LogSegment {
        table_id: 7,
        records: Vec::new(),
    };
    let bytes = encode_frame(&frame);
    #[rustfmt::skip]
    let expected: &[u8] = &[
        // header
        0xAD, 0x50, 0x06, 0x0B, // magic, version, LogSegment
        0x08, 0x00, 0x00, 0x00, // payload length = 8
        // payload
        0x07, 0x00, 0x00, 0x00, // table_id = 7
        0x00, 0x00, 0x00, 0x00, // records blob length = 0
    ];
    assert_eq!(bytes, expected);
    assert_eq!(decode_frame(&bytes).unwrap(), frame);
}

/// PROTOCOL.md §10 "Subscribe" — subscription 1 on table 7 watching
/// `2000 ≤ K ≤ 9000` (the same query blob as the §5 example).
#[test]
fn subscribe_frame_example() {
    let frame = Frame::Subscribe {
        sub_id: 1,
        table_id: 7,
        query: SelectQuery::range(KeyRange::closed(2_000, 9_000)),
    };
    let bytes = encode_frame(&frame);
    #[rustfmt::skip]
    let expected: &[u8] = &[
        // header
        0xAD, 0x50, 0x06, 0x0D, // magic, version, Subscribe
        0x24, 0x00, 0x00, 0x00, // payload length = 36
        // payload
        0x01, 0x00, 0x00, 0x00, // sub_id = 1
        0x07, 0x00, 0x00, 0x00, // table_id = 7
        0x18, 0x00, 0x00, 0x00, // query blob length = 24
        0x01, 0xD0, 0x07, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, // lo: Included(2000)
        0x01, 0x28, 0x23, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, // hi: Included(9000)
        0x00, 0x00, 0x00, 0x00, // 0 filters
        0x00,                   // projection: All
        0x00,                   // distinct: false
    ];
    assert_eq!(bytes, expected);
    assert_eq!(decode_frame(&bytes).unwrap(), frame);
}

/// PROTOCOL.md §10 "DeltaVo" — a delta at epoch 2 with one piece proving
/// `[2000, 9000]` empty, and the empty-pieces unsubscribe ack.
#[test]
fn delta_vo_frame_examples() {
    let frame = Frame::DeltaVo {
        sub_id: 1,
        epoch: 2,
        pieces: vec![DeltaPiece {
            lo: 2_000,
            hi: 9_000,
            result: wire::encode_records(&[]),
            vo: wire::encode_vo(&adp_core::vo::QueryVO::TriviallyEmpty),
        }],
    };
    let bytes = encode_frame(&frame);
    #[rustfmt::skip]
    let expected: &[u8] = &[
        // header
        0xAD, 0x50, 0x06, 0x0E, // magic, version, DeltaVo
        0x2D, 0x00, 0x00, 0x00, // payload length = 45
        // payload
        0x01, 0x00, 0x00, 0x00, // sub_id = 1
        0x02, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, // epoch = 2
        0x01, 0x00, 0x00, 0x00, // 1 piece
        // piece 0
        0xD0, 0x07, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, // lo = 2000
        0x28, 0x23, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, // hi = 9000
        0x04, 0x00, 0x00, 0x00, // result blob length = 4
        0x00, 0x00, 0x00, 0x00, //   encode_records([]): 0 records
        0x01, 0x00, 0x00, 0x00, // vo blob length = 1
        0x00,                   //   encode_vo(TriviallyEmpty): tag 0
    ];
    assert_eq!(bytes, expected);
    assert_eq!(decode_frame(&bytes).unwrap(), frame);

    let ack = Frame::DeltaVo {
        sub_id: 1,
        epoch: 0,
        pieces: Vec::new(),
    };
    let bytes = encode_frame(&ack);
    #[rustfmt::skip]
    let expected: &[u8] = &[
        // header
        0xAD, 0x50, 0x06, 0x0E, // magic, version, DeltaVo
        0x10, 0x00, 0x00, 0x00, // payload length = 16
        // payload
        0x01, 0x00, 0x00, 0x00, // sub_id = 1
        0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, // epoch = 0
        0x00, 0x00, 0x00, 0x00, // 0 pieces: the unsubscribe ack
    ];
    assert_eq!(bytes, expected);
    assert_eq!(decode_frame(&bytes).unwrap(), ack);
}

/// PROTOCOL.md §11 "ResyncRequired" — the server could not ship a delta
/// for subscription 1 (it outgrew the frame limit); the subscription is
/// terminated and the client must re-subscribe at epoch ≥ 3.
#[test]
fn resync_required_frame_example() {
    let frame = Frame::ResyncRequired {
        sub_id: 1,
        epoch: 3,
    };
    let bytes = encode_frame(&frame);
    #[rustfmt::skip]
    let expected: &[u8] = &[
        // header
        0xAD, 0x50, 0x06, 0x10, // magic, version, ResyncRequired
        0x0C, 0x00, 0x00, 0x00, // payload length = 12
        // payload
        0x01, 0x00, 0x00, 0x00, // sub_id = 1
        0x03, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, // epoch = 3
    ];
    assert_eq!(bytes, expected);
    assert_eq!(decode_frame(&bytes).unwrap(), frame);
}

/// PROTOCOL.md §10 "Unsubscribe" — cancel subscription 1.
#[test]
fn unsubscribe_frame_example() {
    let frame = Frame::Unsubscribe { sub_id: 1 };
    let bytes = encode_frame(&frame);
    #[rustfmt::skip]
    let expected: &[u8] = &[
        // header
        0xAD, 0x50, 0x06, 0x0F, // magic, version, Unsubscribe
        0x04, 0x00, 0x00, 0x00, // payload length = 4
        // payload
        0x01, 0x00, 0x00, 0x00, // sub_id = 1
    ];
    assert_eq!(bytes, expected);
    assert_eq!(decode_frame(&bytes).unwrap(), frame);
}

/// PROTOCOL.md §12 "PlannedQuery" (version 6) — the worked example: the
/// optimizer-chosen single-table plan for
/// `SELECT * FROM t WHERE 2000 <= K <= 9000` against table 7. The plan
/// blob nests the same 24-byte query blob as the §5 QueryRequest example.
#[test]
fn planned_query_frame_example() {
    let frame = Frame::PlannedQuery {
        plan: adp_core::plan::WirePlan::Select {
            table_id: 7,
            query: SelectQuery::range(KeyRange::closed(2_000, 9_000)),
        },
    };
    let bytes = encode_frame(&frame);
    #[rustfmt::skip]
    let expected: &[u8] = &[
        // header
        0xAD, 0x50,             // magic
        0x06,                   // version
        0x11,                   // frame type: PlannedQuery
        0x25, 0x00, 0x00, 0x00, // payload length = 37
        // payload
        0x21, 0x00, 0x00, 0x00, // plan blob length = 33
        // plan blob
        0x01,                   // plan tag: Select
        0x07, 0x00, 0x00, 0x00, // table_id = 7
        0x18, 0x00, 0x00, 0x00, // query blob length = 24
        // query blob (identical to the §5 example)
        0x01, 0xD0, 0x07, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, // lo: Included(2000)
        0x01, 0x28, 0x23, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, // hi: Included(9000)
        0x00, 0x00, 0x00, 0x00, // 0 filters
        0x00,                   // projection: All
        0x00,                   // distinct: false
    ];
    assert_eq!(bytes, expected);
    assert_eq!(decode_frame(&bytes).unwrap(), frame);
}

/// PROTOCOL.md §12 "PlannedQuery" — the join plan: emp (table 0, the fk
/// side) joined into dept (table 1) over fk keys `[10, 20]`, all columns
/// from the fk side, only `dname` from the pk side.
#[test]
fn planned_join_frame_example() {
    let frame = Frame::PlannedQuery {
        plan: adp_core::plan::WirePlan::PkFkJoin {
            fk_table: 0,
            pk_table: 1,
            fk_range: KeyRange::closed(10, 20),
            fk_projection: adp_relation::Projection::All,
            pk_projection: adp_relation::Projection::Columns(vec!["dname".to_string()]),
        },
    };
    let bytes = encode_frame(&frame);
    #[rustfmt::skip]
    let expected: &[u8] = &[
        // header
        0xAD, 0x50, 0x06, 0x11, // magic, version, PlannedQuery
        0x2E, 0x00, 0x00, 0x00, // payload length = 46
        // payload
        0x2A, 0x00, 0x00, 0x00, // plan blob length = 42
        // plan blob
        0x02,                   // plan tag: PkFkJoin
        0x00, 0x00, 0x00, 0x00, // fk_table = 0
        0x01, 0x00, 0x00, 0x00, // pk_table = 1
        0x01, 0x0A, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, // fk lo: Included(10)
        0x01, 0x14, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, // fk hi: Included(20)
        0x00,                   // fk projection: All
        0x01,                   // pk projection: Columns
        0x01, 0x00, 0x00, 0x00, // 1 column
        0x05, 0x00, 0x00, 0x00, // name length = 5
        b'd', b'n', b'a', b'm', b'e',
    ];
    assert_eq!(bytes, expected);
    assert_eq!(decode_frame(&bytes).unwrap(), frame);
}

/// PROTOCOL.md §12 "PlannedResponse" — same shape as a QueryResponse
/// (two length-prefixed blobs) under frame type 0x12; shown here for a
/// trivially-empty select plan.
#[test]
fn planned_response_frame_example() {
    let frame = Frame::PlannedResponse {
        result: wire::encode_records(&[]),
        vo: wire::encode_vo(&adp_core::vo::QueryVO::TriviallyEmpty),
    };
    let bytes = encode_frame(&frame);
    #[rustfmt::skip]
    let expected: &[u8] = &[
        // header
        0xAD, 0x50, 0x06, 0x12, // magic, version, PlannedResponse
        0x0D, 0x00, 0x00, 0x00, // payload length = 13
        // payload
        0x04, 0x00, 0x00, 0x00, // result blob length = 4
        0x00, 0x00, 0x00, 0x00, //   encode_records([]): 0 records
        0x01, 0x00, 0x00, 0x00, // vo blob length = 1
        0x00,                   //   encode_vo(TriviallyEmpty): tag 0
    ];
    assert_eq!(bytes, expected);
    assert_eq!(decode_frame(&bytes).unwrap(), frame);
}
