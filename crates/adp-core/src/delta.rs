//! Delta-VO construction: turning one applied update batch into the
//! self-contained range proofs a live subscriber re-verifies.
//!
//! The signature-chain scheme makes incremental refresh natural: a batch
//! re-signs only the chain neighborhoods of the positions it dirtied
//! (Section 6.3's `O(k)` locality), so the key intervals spanned by those
//! re-signed runs are exactly where a previously-verified range answer may
//! have gone stale. For each such interval (intersected with the
//! subscriber's range) the publisher answers the closed sub-range as an
//! ordinary select — records plus `QueryVO` — and the subscriber verifies
//! it with the unchanged [`verify_select_wire`](crate::verifier::verify_select_wire)
//! entry point: completeness, authenticity, and precision all come from
//! the existing machinery, and a net-delete interval degrades to an
//! `Empty` proof that is still self-contained. Nothing outside the dirty
//! intervals needs refetching, which is the whole point.

use crate::owner::SignedTable;
use crate::publisher::{PublishError, Publisher};
use crate::vo::QueryVO;
use adp_crypto::Signature;
use adp_relation::{KeyRange, Record, SelectQuery};

/// One refreshed interval of a delta: a complete `(records, vo)` answer
/// for the closed range `[lo, hi]`, verifiable in isolation.
#[derive(Clone, Debug)]
pub struct DeltaPiece {
    /// Inclusive lower key bound.
    pub lo: i64,
    /// Inclusive upper key bound.
    pub hi: i64,
    /// The rows now in `[lo, hi]` (possibly none).
    pub records: Vec<Record>,
    /// Proof for `SelectQuery::range(KeyRange::closed(lo, hi))`.
    pub vo: QueryVO,
}

/// The key intervals a batch dirtied, computed from the batch's re-signed
/// chain positions **on the post-batch table**: every mutation re-signs
/// its own position (inserts/updates) and both chain neighbors, so each
/// maximal run of consecutive re-signed positions `[p..q]` spans the keys
/// `[key_at(p), key_at(q)]` — an interval that contains every inserted,
/// updated, *and deleted* key of that run (a deleted key lies strictly
/// between its surviving neighbors). Runs touching a delimiter clamp to
/// the legal key bounds, and overlapping or adjacent intervals merge.
///
/// Returned intervals are disjoint and ascending. An empty `resigned`
/// slice (a no-op batch) yields no intervals.
pub fn dirty_intervals(st: &SignedTable, resigned: &[(u32, Signature)]) -> Vec<(i64, i64)> {
    let chain_len = st.chain_len();
    let mut positions: Vec<u32> = resigned
        .iter()
        .map(|(pos, _)| *pos)
        .filter(|&p| (p as usize) < chain_len)
        .collect();
    positions.sort_unstable();
    positions.dedup();

    let key_min = st.domain().key_min();
    let key_max = st.domain().key_max();
    let mut intervals: Vec<(i64, i64)> = Vec::new();
    let mut i = 0;
    while i < positions.len() {
        let mut j = i;
        while j + 1 < positions.len() && positions[j + 1] == positions[j] + 1 {
            j += 1;
        }
        let lo = st.key_at(positions[i] as usize).max(key_min);
        let hi = st.key_at(positions[j] as usize).min(key_max);
        match intervals.last_mut() {
            // Replicated keys can make a later run start at the previous
            // run's last key; adjacent intervals merge too (one piece is
            // cheaper than two abutting ones).
            Some((_, prev_hi)) if lo <= prev_hi.saturating_add(1) => *prev_hi = (*prev_hi).max(hi),
            _ => intervals.push((lo, hi)),
        }
        i = j + 1;
    }
    intervals
}

/// Builds the delta pieces for one subscriber: each dirty interval is
/// intersected with the subscription bounds `[sub_lo, sub_hi]` and the
/// surviving intersections are answered as ordinary closed-range selects
/// on the post-batch table. An empty return means the batch did not touch
/// the subscribed range — no delta needs pushing.
pub fn build_delta_pieces(
    st: &SignedTable,
    intervals: &[(i64, i64)],
    sub_lo: i64,
    sub_hi: i64,
) -> Result<Vec<DeltaPiece>, PublishError> {
    let publisher = Publisher::new(st);
    let mut pieces = Vec::new();
    for &(lo, hi) in intervals {
        let (lo, hi) = (lo.max(sub_lo), hi.min(sub_hi));
        if lo > hi {
            continue;
        }
        let query = SelectQuery::range(KeyRange::closed(lo, hi));
        let (records, vo) = publisher.answer_select(&query)?;
        pieces.push(DeltaPiece {
            lo,
            hi,
            records,
            vo,
        });
    }
    Ok(pieces)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prelude::*;
    use adp_relation::{Column, Schema, Table, Value, ValueType};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sign_rows(keys: &[i64]) -> (Owner, SignedTable) {
        let mut rng = StdRng::seed_from_u64(0xDE17A);
        let owner = Owner::new(512, &mut rng);
        let schema = Schema::new(vec![Column::new("k", ValueType::Int)], "k");
        let mut t = Table::new("t", schema);
        for &k in keys {
            t.insert(Record::new(vec![Value::Int(k)])).unwrap();
        }
        let st = owner
            .sign_table(t, Domain::new(0, 10_000), SchemeConfig::default())
            .unwrap();
        (owner, st)
    }

    #[test]
    fn insert_dirty_interval_covers_the_neighborhood() {
        let (owner, mut st) = sign_rows(&[100, 200, 300, 400]);
        let report = owner
            .apply_batch(
                &mut st,
                vec![Mutation::Insert(Record::new(vec![Value::Int(250)]))],
            )
            .unwrap();
        let intervals = dirty_intervals(&st, &report.resigned);
        assert_eq!(intervals.len(), 1);
        let (lo, hi) = intervals[0];
        // The re-signed run is {200, 250, 300}: neighbors plus the insert.
        assert_eq!((lo, hi), (200, 300));
    }

    #[test]
    fn delete_dirty_interval_contains_the_removed_key() {
        let (owner, mut st) = sign_rows(&[100, 200, 300, 400]);
        let report = owner
            .apply_batch(
                &mut st,
                vec![Mutation::Delete {
                    key: 200,
                    replica: 0,
                }],
            )
            .unwrap();
        let intervals = dirty_intervals(&st, &report.resigned);
        assert_eq!(intervals.len(), 1);
        let (lo, hi) = intervals[0];
        assert!(lo <= 200 && 200 <= hi, "deleted key outside [{lo}, {hi}]");
    }

    #[test]
    fn emptying_batch_dirties_the_whole_domain_and_yields_an_empty_proof() {
        let (owner, mut st) = sign_rows(&[100, 200]);
        let report = owner
            .apply_batch(
                &mut st,
                vec![
                    Mutation::Delete {
                        key: 100,
                        replica: 0,
                    },
                    Mutation::Delete {
                        key: 200,
                        replica: 0,
                    },
                ],
            )
            .unwrap();
        let intervals = dirty_intervals(&st, &report.resigned);
        assert_eq!(
            intervals,
            vec![(st.domain().key_min(), st.domain().key_max())]
        );
        let cert = owner.certificate(&st);
        let pieces = build_delta_pieces(
            &st,
            &intervals,
            st.domain().key_min(),
            st.domain().key_max(),
        )
        .unwrap();
        assert_eq!(pieces.len(), 1);
        assert!(pieces[0].records.is_empty());
        let query = SelectQuery::range(KeyRange::closed(pieces[0].lo, pieces[0].hi));
        verify_select(&cert, &query, &pieces[0].records, &pieces[0].vo)
            .expect("empty piece is self-contained");
    }

    #[test]
    fn pieces_verify_and_disjoint_batches_make_disjoint_intervals() {
        let (owner, mut st) = sign_rows(&[100, 200, 300, 2_000, 2_100, 2_200]);
        let report = owner
            .apply_batch(
                &mut st,
                vec![
                    Mutation::Insert(Record::new(vec![Value::Int(150)])),
                    Mutation::Insert(Record::new(vec![Value::Int(2_050)])),
                ],
            )
            .unwrap();
        let intervals = dirty_intervals(&st, &report.resigned);
        assert_eq!(
            intervals.len(),
            2,
            "far-apart edits stay separate: {intervals:?}"
        );
        let cert = owner.certificate(&st);
        let pieces = build_delta_pieces(&st, &intervals, i64::MIN, i64::MAX).unwrap();
        assert_eq!(pieces.len(), 2);
        for p in &pieces {
            let query = SelectQuery::range(KeyRange::closed(p.lo, p.hi));
            verify_select(&cert, &query, &p.records, &p.vo).expect("piece verifies");
        }
        // The first piece picked up the new key 150.
        assert!(pieces[0]
            .records
            .iter()
            .any(|r| r.key(st.table().schema()) == 150));
    }

    #[test]
    fn subscription_bounds_filter_pieces() {
        let (owner, mut st) = sign_rows(&[100, 200, 300, 2_000, 2_100]);
        let report = owner
            .apply_batch(
                &mut st,
                vec![Mutation::Insert(Record::new(vec![Value::Int(2_050)]))],
            )
            .unwrap();
        let intervals = dirty_intervals(&st, &report.resigned);
        // A subscriber watching [0, 500] is untouched by an edit at 2050.
        let pieces = build_delta_pieces(&st, &intervals, 0, 500).unwrap();
        assert!(pieces.is_empty());
    }
}
