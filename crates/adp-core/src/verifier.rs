//! User-side verification (Figures 4 and 8).
//!
//! Given the owner's [`Certificate`], the (rewritten) query, the returned
//! records and the VO, the verifier establishes:
//!
//! * **completeness** — the signature chain walks contiguously from a
//!   record proven `< α` to a record proven `> β`, with every position in
//!   between accounted for (matched, provably-filtered, or
//!   provably-duplicate);
//! * **authenticity** — every returned value participates in `MHT(r.A)` or
//!   the key chains, both bound by the owner's signatures;
//! * **precision** — nothing outside the query's range/filters/projection
//!   was returned.
//!
//! The verifier trusts only the certificate; every byte of the result and
//! VO is treated as adversarial.

use crate::domain::QueryBounds;
use crate::errors::VerifyError;
use crate::gdigest::{
    combine_component, entry_component, link_digest, rep_digest, Direction, GDigest,
};
use crate::owner::Certificate;
use crate::publisher::{attr_position, effective_projection};
use crate::repr::Radix;
use crate::scheme::{Mode, SchemeConfig};
use crate::vo::{
    AttrProof, BoundaryProof, EntryChains, EntryProof, PrevG, QueryVO, RangeVO, RepProof,
    SignatureProof,
};
use adp_crypto::{
    chain_extend, hasher::HashDomain, root_from_mixed, verify_inclusion, Digest, Hasher, MixedLeaf,
    PublicKey,
};
use adp_relation::{Record, Schema, SelectQuery};

/// Successful-verification statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct VerifyReport {
    /// Result rows verified.
    pub matched: usize,
    /// Multipoint-filtered positions accounted for.
    pub filtered: usize,
    /// DISTINCT-eliminated duplicates accounted for.
    pub duplicates: usize,
    /// Component signatures covered by the signature proof.
    pub signatures_verified: usize,
    /// Whether the result was (provably) empty.
    pub empty: bool,
}

/// Verifies a select-project(-distinct) result against its VO.
pub fn verify_select(
    cert: &Certificate,
    query: &SelectQuery,
    result: &[Record],
    vo: &QueryVO,
) -> Result<VerifyReport, VerifyError> {
    let ctx = Ctx::new(cert, query)?;
    match (cert.domain.normalize(&query.range), vo) {
        (None, QueryVO::TriviallyEmpty) => {
            if result.is_empty() {
                Ok(VerifyReport {
                    empty: true,
                    ..Default::default()
                })
            } else {
                Err(VerifyError::ExpectedEmptyResult)
            }
        }
        (None, _) => Err(VerifyError::VoShapeMismatch {
            detail: "range is empty by construction; no proof expected",
        }),
        (Some(_), QueryVO::TriviallyEmpty) => Err(VerifyError::VoShapeMismatch {
            detail: "non-trivial range requires a proof",
        }),
        (Some(bounds), QueryVO::Empty(proof)) => {
            if !result.is_empty() {
                return Err(VerifyError::VoShapeMismatch {
                    detail: "empty-result proof alongside returned rows",
                });
            }
            ctx.verify_empty(&bounds, proof)
        }
        (Some(bounds), QueryVO::Range(rv)) => ctx.verify_range(&bounds, result, rv),
    }
}

/// Shared verification context.
struct Ctx<'a> {
    cert: &'a Certificate,
    query: &'a SelectQuery,
    schema: &'a Schema,
    hasher: Hasher,
    radix: Option<Radix>,
    /// Effective projection: schema column index per result slot.
    proj: Vec<usize>,
    /// Result slot holding the key column.
    key_slot: usize,
}

impl<'a> Ctx<'a> {
    fn new(cert: &'a Certificate, query: &'a SelectQuery) -> Result<Self, VerifyError> {
        let schema = &cert.schema;
        for f in &query.filters {
            match schema.column_index(&f.column) {
                None => {
                    return Err(VerifyError::Unsupported {
                        detail: "filter on unknown column",
                    })
                }
                Some(c) if c == schema.key_index() => {
                    return Err(VerifyError::Unsupported {
                        detail: "filters may not target the key column (use the range)",
                    })
                }
                Some(_) => {}
            }
        }
        let proj = effective_projection(schema, &query.projection, &query.filters).ok_or(
            VerifyError::Unsupported {
                detail: "projection names unknown column",
            },
        )?;
        let key_slot = proj
            .iter()
            .position(|&c| c == schema.key_index())
            .ok_or(VerifyError::KeyColumnMissing)?;
        let radix = match cert.config.mode {
            Mode::Conceptual => None,
            Mode::Optimized { base } => Some(Radix::for_width(base, cert.domain.width())),
        };
        Ok(Ctx {
            cert,
            query,
            schema,
            hasher: cert.config.hasher(),
            radix,
            proj,
            key_slot,
        })
    }

    fn config(&self) -> &SchemeConfig {
        &self.cert.config
    }

    fn public_key(&self) -> &PublicKey {
        &self.cert.public_key
    }

    fn verify_empty(
        &self,
        bounds: &QueryBounds,
        proof: &crate::vo::EmptyProof,
    ) -> Result<VerifyReport, VerifyError> {
        let left_comp = self.boundary_component(&proof.left, Direction::Up, bounds, "left")?;
        let right_comp = self.boundary_component(&proof.right, Direction::Down, bounds, "right")?;
        let g_left = GDigest {
            up: left_comp,
            down: proof.left.other_component,
            attrs: proof.left.attr_root,
        };
        let g_right = GDigest {
            up: proof.right.other_component,
            down: right_comp,
            attrs: proof.right.attr_root,
        };
        let prev_bytes = match &proof.prev {
            PrevG::Edge => crate::gdigest::edge_digest(&self.hasher, self.cert.domain.l())
                .as_bytes()
                .to_vec(),
            PrevG::Opaque(b) => b.clone(),
        };
        let link = link_digest(
            &self.hasher,
            &prev_bytes,
            &g_left.to_bytes(),
            &g_right.to_bytes(),
        );
        self.verify_signatures(&[link], &proof.signature)?;
        Ok(VerifyReport {
            empty: true,
            signatures_verified: 1,
            ..Default::default()
        })
    }

    fn verify_range(
        &self,
        bounds: &QueryBounds,
        result: &[Record],
        rv: &RangeVO,
    ) -> Result<VerifyReport, VerifyError> {
        if rv.entries.is_empty() {
            return Err(VerifyError::VoShapeMismatch {
                detail: "range VO must contain at least one entry",
            });
        }
        let mut g_seq: Vec<Vec<u8>> = Vec::with_capacity(rv.entries.len() + 2);
        let left_comp = self.boundary_component(&rv.left, Direction::Up, bounds, "left")?;
        g_seq.push(
            GDigest {
                up: left_comp,
                down: rv.left.other_component,
                attrs: rv.left.attr_root,
            }
            .to_bytes(),
        );

        let mut matched = 0usize;
        let mut filtered = 0usize;
        let mut duplicates = 0usize;
        let mut next_record = 0usize;

        for (i, entry) in rv.entries.iter().enumerate() {
            match entry {
                EntryProof::Match { chains, attrs } => {
                    let rec = result
                        .get(next_record)
                        .ok_or(VerifyError::ResultCountMismatch {
                            records: result.len(),
                            matches: rv
                                .entries
                                .iter()
                                .filter(|e| matches!(e, EntryProof::Match { .. }))
                                .count(),
                        })?;
                    let key = self.check_record(rec, bounds, i)?;
                    let root = self.attr_root_for_record(rec, attrs, i)?;
                    let (up, down) = self.entry_chain_components(key, chains, i)?;
                    g_seq.push(
                        GDigest {
                            up,
                            down,
                            attrs: root,
                        }
                        .to_bytes(),
                    );
                    matched += 1;
                    next_record += 1;
                }
                EntryProof::Filtered {
                    up_component,
                    down_component,
                    attrs,
                } => {
                    if self.query.filters.is_empty() {
                        return Err(VerifyError::UnexpectedFilteredEntry { entry: i });
                    }
                    self.check_filtered_proven(attrs, i)?;
                    let root = self.attr_root_from_disclosure(attrs, i)?;
                    g_seq.push(
                        GDigest {
                            up: *up_component,
                            down: *down_component,
                            attrs: root,
                        }
                        .to_bytes(),
                    );
                    filtered += 1;
                }
                EntryProof::Duplicate { of, chains, attrs } => {
                    if !self.query.distinct {
                        return Err(VerifyError::DistinctViolation {
                            detail: "duplicate-elimination entry in a non-DISTINCT query",
                        });
                    }
                    let of = *of as usize;
                    if of >= next_record {
                        // Duplicates must reference an already-verified
                        // earlier match (first occurrence is retained).
                        return Err(VerifyError::DuplicateRefInvalid { entry: i });
                    }
                    let rec = &result[of];
                    let key = rec
                        .get(self.key_slot)
                        .as_int()
                        .ok_or(VerifyError::DuplicateRefInvalid { entry: i })?;
                    let root = self.attr_root_for_record(rec, attrs, i)?;
                    let (up, down) = self.entry_chain_components(key, chains, i)?;
                    g_seq.push(
                        GDigest {
                            up,
                            down,
                            attrs: root,
                        }
                        .to_bytes(),
                    );
                    duplicates += 1;
                }
            }
        }

        if next_record != result.len() {
            return Err(VerifyError::ResultCountMismatch {
                records: result.len(),
                matches: next_record,
            });
        }
        if self.query.distinct {
            let mut seen = std::collections::HashSet::new();
            for rec in result {
                if !seen.insert(crate::wire::encode_records(std::slice::from_ref(rec))) {
                    return Err(VerifyError::DistinctViolation {
                        detail: "result contains duplicate rows",
                    });
                }
            }
        }

        let right_comp = self.boundary_component(&rv.right, Direction::Down, bounds, "right")?;
        g_seq.push(
            GDigest {
                up: rv.right.other_component,
                down: right_comp,
                attrs: rv.right.attr_root,
            }
            .to_bytes(),
        );

        let links: Vec<Digest> = (0..rv.entries.len())
            .map(|i| link_digest(&self.hasher, &g_seq[i], &g_seq[i + 1], &g_seq[i + 2]))
            .collect();
        self.verify_signatures(&links, &rv.signatures)?;

        Ok(VerifyReport {
            matched,
            filtered,
            duplicates,
            signatures_verified: links.len(),
            empty: false,
        })
    }

    /// Validates a returned record's shape, typing, range membership and
    /// filter satisfaction (precision). Returns its key.
    fn check_record(
        &self,
        rec: &Record,
        bounds: &QueryBounds,
        entry: usize,
    ) -> Result<i64, VerifyError> {
        if rec.arity() != self.proj.len() {
            return Err(VerifyError::ProjectionMismatch { entry });
        }
        for (slot, &col) in self.proj.iter().enumerate() {
            let expected = self.schema.columns()[col].ty;
            let got = rec.get(slot).value_type();
            if got != expected {
                return Err(VerifyError::SchemaViolation {
                    entry,
                    detail: format!("column {col}: expected {expected}, got {got}"),
                });
            }
        }
        let key = rec
            .get(self.key_slot)
            .as_int()
            .expect("key slot type-checked above");
        if !bounds.contains(key) {
            return Err(VerifyError::KeyOutOfRange { key });
        }
        for f in &self.query.filters {
            let col = self.schema.column_index(&f.column).expect("validated");
            let slot = self
                .proj
                .iter()
                .position(|&c| c == col)
                .expect("effective projection includes filter columns");
            if !f.op.eval(rec.get(slot), &f.value).unwrap_or(false) {
                return Err(VerifyError::FilterViolation { entry });
            }
        }
        Ok(key)
    }

    /// Checks that a filtered entry's disclosed attributes prove at least
    /// one filter predicate fails (with correct typing).
    fn check_filtered_proven(&self, attrs: &AttrProof, entry: usize) -> Result<(), VerifyError> {
        for f in &self.query.filters {
            let col = self.schema.column_index(&f.column).expect("validated");
            let pos = attr_position(self.schema, col);
            if let Some((_, v)) = attrs.disclosed.iter().find(|(p, _)| *p == pos) {
                if v.value_type() != self.schema.columns()[col].ty {
                    continue;
                }
                if f.op.eval(v, &f.value) == Some(false) {
                    return Ok(());
                }
            }
        }
        Err(VerifyError::FilteredNotProven { entry })
    }

    /// Rebuilds `MHT(r.A)`'s root for a record returned in the result:
    /// projected non-key columns come from the record, the rest from the
    /// proof's hidden digests. Cross-checks the proof's root field.
    fn attr_root_for_record(
        &self,
        rec: &Record,
        attrs: &AttrProof,
        entry: usize,
    ) -> Result<Digest, VerifyError> {
        if !attrs.disclosed.is_empty() {
            // Result-row proofs disclose through the record, never inline.
            return Err(VerifyError::AttrCoverageInvalid { entry });
        }
        let non_key = self.schema.arity() - 1;
        let mut encodings: Vec<Option<Vec<u8>>> = vec![None; non_key];
        for (slot, &col) in self.proj.iter().enumerate() {
            if col == self.schema.key_index() {
                continue;
            }
            encodings[attr_position(self.schema, col) as usize] = Some(rec.get(slot).encode());
        }
        self.finish_attr_root(encodings, attrs, entry)
    }

    /// Rebuilds the attribute root for a filtered entry from inline
    /// disclosures plus hidden digests.
    fn attr_root_from_disclosure(
        &self,
        attrs: &AttrProof,
        entry: usize,
    ) -> Result<Digest, VerifyError> {
        let non_key = self.schema.arity() - 1;
        let mut encodings: Vec<Option<Vec<u8>>> = vec![None; non_key];
        for (pos, v) in &attrs.disclosed {
            let pos = *pos as usize;
            if pos >= non_key || encodings[pos].is_some() {
                return Err(VerifyError::AttrCoverageInvalid { entry });
            }
            // Type check against the schema column.
            let col = if pos < self.schema.key_index() {
                pos
            } else {
                pos + 1
            };
            if v.value_type() != self.schema.columns()[col].ty {
                return Err(VerifyError::SchemaViolation {
                    entry,
                    detail: format!("disclosed attribute {pos} has wrong type"),
                });
            }
            encodings[pos] = Some(v.encode());
        }
        self.finish_attr_root(encodings, attrs, entry)
    }

    /// Common tail: fill hidden digests, demand full coverage, hash.
    fn finish_attr_root(
        &self,
        encodings: Vec<Option<Vec<u8>>>,
        attrs: &AttrProof,
        entry: usize,
    ) -> Result<Digest, VerifyError> {
        let non_key = encodings.len();
        let mut hidden: Vec<Option<Digest>> = vec![None; non_key];
        for (pos, d) in &attrs.hidden {
            let pos = *pos as usize;
            if pos >= non_key || hidden[pos].is_some() || encodings[pos].is_some() {
                return Err(VerifyError::AttrCoverageInvalid { entry });
            }
            hidden[pos] = Some(*d);
        }
        let root = if non_key == 0 {
            if !attrs.hidden.is_empty() {
                return Err(VerifyError::AttrCoverageInvalid { entry });
            }
            delimiter_sentinel(&self.hasher)
        } else {
            let mut leaves: Vec<MixedLeaf<'_>> = Vec::with_capacity(non_key);
            for (i, enc) in encodings.iter().enumerate() {
                match (enc, hidden[i]) {
                    (Some(e), None) => leaves.push(MixedLeaf::Value(e)),
                    (None, Some(d)) => leaves.push(MixedLeaf::Digest(d)),
                    _ => return Err(VerifyError::AttrCoverageInvalid { entry }),
                }
            }
            root_from_mixed(&self.hasher, &leaves)
        };
        if root != attrs.root {
            return Err(VerifyError::AttrRootMismatch { entry });
        }
        Ok(root)
    }

    /// Figure 8b: recompute both direction components for a disclosed key.
    fn entry_chain_components(
        &self,
        key: i64,
        chains: &EntryChains,
        entry: usize,
    ) -> Result<(Digest, Digest), VerifyError> {
        match (self.config().mode, chains) {
            (Mode::Conceptual, EntryChains::Conceptual) => Ok((
                entry_component(
                    &self.hasher,
                    self.config(),
                    None,
                    &self.cert.domain,
                    key,
                    Direction::Up,
                    None,
                ),
                entry_component(
                    &self.hasher,
                    self.config(),
                    None,
                    &self.cert.domain,
                    key,
                    Direction::Down,
                    None,
                ),
            )),
            (Mode::Optimized { .. }, EntryChains::Optimized { up_root, down_root }) => Ok((
                entry_component(
                    &self.hasher,
                    self.config(),
                    self.radix.as_ref(),
                    &self.cert.domain,
                    key,
                    Direction::Up,
                    Some(*up_root),
                ),
                entry_component(
                    &self.hasher,
                    self.config(),
                    self.radix.as_ref(),
                    &self.cert.domain,
                    key,
                    Direction::Down,
                    Some(*down_root),
                ),
            )),
            _ => {
                let _ = entry;
                Err(VerifyError::VoShapeMismatch {
                    detail: "entry chain mode mismatch",
                })
            }
        }
    }

    /// Figure 8a: derive a boundary record's hidden-key component by
    /// extending the intermediate digests `δ_c` more steps.
    fn boundary_component(
        &self,
        proof: &BoundaryProof,
        dir: Direction,
        bounds: &QueryBounds,
        side: &'static str,
    ) -> Result<Digest, VerifyError> {
        let delta_c = match dir {
            Direction::Up => self.cert.domain.delta_up_query(bounds.alpha),
            Direction::Down => self.cert.domain.delta_down_query(bounds.beta),
        };
        match self.config().mode {
            Mode::Conceptual => {
                if proof.intermediates.len() != 1 || proof.selector.is_some() {
                    return Err(VerifyError::BoundaryShapeInvalid { side });
                }
                Ok(chain_extend(&self.hasher, proof.intermediates[0], delta_c))
            }
            Mode::Optimized { .. } => {
                let radix = self.radix.as_ref().expect("optimized mode has a radix");
                if proof.intermediates.len() != radix.digit_count() {
                    return Err(VerifyError::BoundaryShapeInvalid { side });
                }
                let c_digits = radix.canonical(delta_c);
                let targets: Vec<Digest> = proof
                    .intermediates
                    .iter()
                    .zip(&c_digits)
                    .map(|(d, &c)| chain_extend(&self.hasher, *d, c as u64))
                    .collect();
                let h_dt = rep_digest(&self.hasher, &targets);
                match &proof.selector {
                    None => Err(VerifyError::BoundaryShapeInvalid { side }),
                    Some(RepProof::Canonical { mht_root }) => {
                        Ok(combine_component(&self.hasher, h_dt, *mht_root))
                    }
                    Some(RepProof::NonCanonical {
                        index,
                        canon_digest,
                        path,
                    }) => {
                        if *index >= radix.m() || path.leaf_index != *index {
                            return Err(VerifyError::BoundarySelectorInvalid { side });
                        }
                        let root = verify_inclusion(&self.hasher, h_dt, path);
                        Ok(combine_component(&self.hasher, *canon_digest, root))
                    }
                }
            }
        }
    }

    /// Checks the signature proof over the computed link digests.
    fn verify_signatures(
        &self,
        links: &[Digest],
        sigs: &SignatureProof,
    ) -> Result<(), VerifyError> {
        if sigs.count() != links.len() {
            return Err(VerifyError::SignatureCountMismatch {
                expected: links.len(),
                got: sigs.count(),
            });
        }
        let ok = match sigs {
            SignatureProof::Aggregated(agg) => agg.verify(&self.hasher, self.public_key(), links),
            SignatureProof::Individual(v) => links
                .iter()
                .zip(v)
                .all(|(l, s)| self.public_key().verify(&self.hasher, l, s)),
        };
        if ok {
            Ok(())
        } else {
            Err(VerifyError::SignatureInvalid)
        }
    }
}

/// Sentinel root for schemas with no non-key attributes (must match
/// `gdigest::attr_tree`).
fn delimiter_sentinel(hasher: &Hasher) -> Digest {
    hasher.hash(HashDomain::Leaf, b"\x00__no_attrs__")
}

/// End-to-end wire verification: decode the result and VO from bytes, then
/// verify. This is the path a real client exercises and what benches
/// measure.
pub fn verify_select_wire(
    cert: &Certificate,
    query: &SelectQuery,
    result_bytes: &[u8],
    vo_bytes: &[u8],
) -> Result<(Vec<Record>, VerifyReport), VerifyError> {
    let result =
        crate::wire::decode_records(result_bytes).map_err(|_| VerifyError::VoShapeMismatch {
            detail: "result bytes malformed",
        })?;
    let vo = crate::wire::decode_vo(vo_bytes).map_err(|_| VerifyError::VoShapeMismatch {
        detail: "VO bytes malformed",
    })?;
    let report = verify_select(cert, query, &result, &vo)?;
    Ok((result, report))
}
