//! Property-based tests over the whole pipeline: for arbitrary tables and
//! queries, honest answers verify and the verified result matches a trusted
//! re-evaluation; random mutations of the result are rejected.

use adp::core::prelude::*;
use adp::relation::{
    Column, CompareOp, KeyRange, Predicate, Record, Schema, SelectQuery, Table, Value, ValueType,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::OnceLock;

fn owner() -> &'static Owner {
    static OWNER: OnceLock<Owner> = OnceLock::new();
    OWNER.get_or_init(|| {
        let mut rng = StdRng::seed_from_u64(0x9209);
        Owner::new(512, &mut rng)
    })
}

fn schema() -> Schema {
    Schema::new(
        vec![
            Column::new("k", ValueType::Int),
            Column::new("cat", ValueType::Int),
            Column::new("label", ValueType::Text),
        ],
        "k",
    )
}

const KEY_LO: i64 = 2;
const KEY_HI: i64 = 998;

prop_compose! {
    fn arb_row()(k in KEY_LO..=KEY_HI, cat in 0..4i64, label in "[a-z]{0,6}") -> (i64, i64, String) {
        (k, cat, label)
    }
}

prop_compose! {
    fn arb_table()(rows in prop::collection::vec(arb_row(), 0..40)) -> Table {
        let mut t = Table::new("prop", schema());
        for (k, cat, label) in rows {
            t.insert(Record::new(vec![Value::Int(k), Value::Int(cat), Value::from(label)])).unwrap();
        }
        t
    }
}

prop_compose! {
    fn arb_range()(a in 0..=1_000i64, b in 0..=1_000i64) -> KeyRange {
        KeyRange::closed(a.min(b), a.max(b))
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn honest_range_answers_verify_and_match_reference(table in arb_table(), range in arb_range()) {
        let o = owner();
        let st = o.sign_table(table, Domain::new(0, 1_000), SchemeConfig::default()).unwrap();
        let cert = o.certificate(&st);
        let query = SelectQuery::range(range);
        let (rows, vo) = Publisher::new(&st).answer_select(&query).unwrap();
        let report = verify_select(&cert, &query, &rows, &vo).unwrap();
        // Reference evaluation on the trusted copy.
        let expected: Vec<i64> = st.table().rows().iter()
            .map(|r| r.record.key(st.table().schema()))
            .filter(|k| range.contains(*k))
            .collect();
        let got: Vec<i64> = rows.iter().map(|r| r.get(0).as_int().unwrap()).collect();
        prop_assert_eq!(got, expected);
        prop_assert_eq!(report.matched, rows.len());
    }

    #[test]
    fn honest_multipoint_answers_verify(table in arb_table(), range in arb_range(), cat in 0..4i64) {
        let o = owner();
        let st = o.sign_table(table, Domain::new(0, 1_000), SchemeConfig::default()).unwrap();
        let cert = o.certificate(&st);
        let query = SelectQuery::range(range).filter(Predicate::new("cat", CompareOp::Eq, cat));
        let (rows, vo) = Publisher::new(&st).answer_select(&query).unwrap();
        let report = verify_select(&cert, &query, &rows, &vo).unwrap();
        let in_range = st.table().rows().iter()
            .filter(|r| range.contains(r.record.key(st.table().schema())))
            .count();
        prop_assert_eq!(report.matched + report.filtered, in_range);
        prop_assert!(rows.iter().all(|r| r.get(1).as_int() == Some(cat)));
    }

    #[test]
    fn distinct_projections_verify(table in arb_table(), range in arb_range()) {
        let o = owner();
        let st = o.sign_table(table, Domain::new(0, 1_000), SchemeConfig::default()).unwrap();
        let cert = o.certificate(&st);
        let query = SelectQuery::range(range).project(&["cat"]).distinct();
        let (rows, vo) = Publisher::new(&st).answer_select(&query).unwrap();
        let report = verify_select(&cert, &query, &rows, &vo).unwrap();
        // (cat, k) pairs are unique in the result.
        let mut seen = std::collections::HashSet::new();
        for r in &rows {
            let rendered = format!("{r}");
            let fresh = seen.insert(rendered);
            prop_assert!(fresh);
        }
        prop_assert_eq!(report.matched, rows.len());
    }

    #[test]
    fn dropping_any_row_is_rejected(table in arb_table(), range in arb_range(), drop_idx in 0usize..40) {
        let o = owner();
        let st = o.sign_table(table, Domain::new(0, 1_000), SchemeConfig::default()).unwrap();
        let cert = o.certificate(&st);
        let query = SelectQuery::range(range);
        let (mut rows, vo) = Publisher::new(&st).answer_select(&query).unwrap();
        prop_assume!(!rows.is_empty());
        let idx = drop_idx % rows.len();
        rows.remove(idx);
        prop_assert!(verify_select(&cert, &query, &rows, &vo).is_err());
    }

    #[test]
    fn mutating_any_value_is_rejected(table in arb_table(), range in arb_range(), pick in 0usize..1000) {
        let o = owner();
        let st = o.sign_table(table, Domain::new(0, 1_000), SchemeConfig::default()).unwrap();
        let cert = o.certificate(&st);
        let query = SelectQuery::range(range);
        let (mut rows, vo) = Publisher::new(&st).answer_select(&query).unwrap();
        prop_assume!(!rows.is_empty());
        let row = pick % rows.len();
        let col = (pick / 7) % 3;
        let mut vals = rows[row].values().to_vec();
        vals[col] = match &vals[col] {
            Value::Int(v) => Value::Int(v + 1),
            Value::Text(s) => Value::from(format!("{s}!")),
            other => other.clone(),
        };
        rows[row] = Record::new(vals);
        prop_assert!(verify_select(&cert, &query, &rows, &vo).is_err());
    }

    #[test]
    fn vo_wire_roundtrip_random(table in arb_table(), range in arb_range()) {
        let o = owner();
        let st = o.sign_table(table, Domain::new(0, 1_000), SchemeConfig::default()).unwrap();
        let query = SelectQuery::range(range);
        let (rows, vo) = Publisher::new(&st).answer_select(&query).unwrap();
        let enc = adp::core::wire::encode_vo(&vo);
        prop_assert_eq!(adp::core::wire::decode_vo(&enc).unwrap(), vo);
        let enc = adp::core::wire::encode_records(&rows);
        prop_assert_eq!(adp::core::wire::decode_records(&enc).unwrap(), rows);
    }
}
