//! **Section 6.2** reproduction: the paper's absolute user-cost numbers.
//!
//! "With B = 2, m = 32 … formula (5) reduces to
//! `C_user = 6.8 (n-a+1) + 8.7 msec`. Thus, C_user is roughly 15.5 msec,
//! 689 msec and 6.81 sec for result size of 1, 100 and 1000 records."
//!
//! We print the analytic values, this implementation's measured hash-op
//! counts (and what they would cost at the paper's 50 µs/hash), and the
//! measured wall-clock on this machine.

use adp_bench::{bench_owner_small, f2, TablePrinter};
use adp_core::costmodel::{self, CostParams};
use adp_core::prelude::*;
use adp_relation::{Column, KeyRange, Record, Schema, SelectQuery, Table, Value, ValueType};
use std::time::Instant;

fn main() {
    let params = CostParams::default();
    let (slope, intercept) = costmodel::sec62_linear_form(&params);
    println!(
        "\n=== Section 6.2: C_user = {:.1} q + {:.1} ms (paper: 6.8 q + 8.7) ===\n",
        slope, intercept
    );

    // Build: B = 2 over a 2^32 domain (m = 32), 1100 records.
    let domain = Domain::new(0, (1i64 << 32) + 4);
    let schema = Schema::new(vec![Column::new("k", ValueType::Int)], "k");
    let mut table = Table::new("s62", schema);
    for i in 0..1100i64 {
        table
            .insert(Record::new(vec![Value::Int(domain.key_min() + i * 100)]))
            .unwrap();
    }
    let owner = bench_owner_small();
    let st = owner
        .sign_table(table, domain, SchemeConfig::default())
        .unwrap();
    let cert = owner.certificate(&st);
    let publisher = Publisher::new(&st);

    let t = TablePrinter::new(&[
        "result size",
        "paper ms",
        "formula ops",
        "measured ops",
        "ops@50us+5ms",
        "measured ms",
    ]);
    for q in [1u64, 100, 1000] {
        let beta = domain.key_min() + (q as i64 - 1) * 100;
        let query = SelectQuery::range(KeyRange::closed(domain.key_min(), beta));
        let (result, vo) = publisher.answer_select(&query).unwrap();
        assert_eq!(result.len() as u64, q);
        adp_crypto::reset_hash_ops();
        verify_select(&cert, &query, &result, &vo).unwrap();
        let ops = adp_crypto::hash_ops();
        let iters = if q >= 1000 { 3 } else { 10 };
        let start = Instant::now();
        for _ in 0..iters {
            verify_select(&cert, &query, &result, &vo).unwrap();
        }
        let measured_ms = start.elapsed().as_secs_f64() * 1000.0 / iters as f64;
        let paper_ms = costmodel::cuser_ms(&params, 2, 32, q);
        let projected = ops as f64 * params.c_hash_us / 1000.0 + params.c_sign_ms;
        let cells = [
            q.to_string(),
            f2(paper_ms),
            costmodel::cuser_hashes(2, 32, q).to_string(),
            ops.to_string(),
            f2(projected),
            format!("{measured_ms:.3}"),
        ];
        t.row(&cells.iter().map(String::as_str).collect::<Vec<_>>());
    }
    println!(
        "\nThe paper's 15.5 ms / 689 ms / 6.81 s column reproduces from formula\n\
         (5); the measured op counts track the formula (the small surplus is\n\
         Merkle bookkeeping), and modern hashing is ~2-3 orders of magnitude\n\
         faster than the 2005 constant, so wall-clock is correspondingly lower.\n"
    );
}
