//! The [`FaultPlan`]: one committed 64-bit seed, expanded on demand into
//! per-connection wire schedules and per-operation disk faults. The plan
//! is pure data — the proxy and the faulty filesystem ask it what to do;
//! it never touches a socket or a file itself.

use crate::{substream, Rng64};

/// A single filesystem fault, injected at one write-class operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DiskFault {
    /// The write's `fsync` fails with `EIO`; the data may or may not be
    /// durable. The store must treat the operation as failed.
    FailFsync,
    /// Only the first `keep` bytes of the payload reach the file before
    /// the write fails with `EIO` — the classic torn write.
    ShortWrite {
        /// Bytes actually written before the failure.
        keep: u32,
    },
    /// The write fails up front with `ENOSPC` (disk full); nothing is
    /// written.
    Enospc,
    /// The process aborts mid-operation after a partial write — the
    /// in-process equivalent of `kill -9` at the worst instruction.
    /// `keep` bytes of the payload land on disk first.
    CrashHere {
        /// Bytes written before the process dies.
        keep: u32,
    },
}

/// A single byte-stream perturbation, positioned by the count of bytes
/// already forwarded in its direction. Positions are byte-level on
/// purpose: a TCP stream cannot actually lose or duplicate bytes without
/// a connection reset, so every wire fault here manifests to the peer as
/// either latency, garbage (framing/CRC errors), or a mid-frame close —
/// exactly the failures a self-healing client must absorb by tearing the
/// connection down and reconnecting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireFault {
    /// Forward `at` bytes, then silently swallow the next `len` bytes.
    Drop {
        /// Bytes forwarded before the fault.
        at: u64,
        /// Bytes consumed without forwarding.
        len: u32,
    },
    /// Forward `at` bytes, then stall the stream for `ms` milliseconds.
    Delay {
        /// Bytes forwarded before the stall.
        at: u64,
        /// Stall duration in milliseconds (kept small; schedules cap it).
        ms: u32,
    },
    /// Forward `at` bytes, then re-forward up to `len` of the most
    /// recently forwarded bytes (stale duplicate — garbles framing).
    Duplicate {
        /// Bytes forwarded before the fault.
        at: u64,
        /// Length of the replayed suffix.
        len: u32,
    },
    /// Forward `at` bytes, then close the connection (both halves) —
    /// truncating whatever frame is in flight.
    Close {
        /// Bytes forwarded before the close.
        at: u64,
    },
}

impl WireFault {
    /// The stream position the fault triggers at.
    pub fn at(&self) -> u64 {
        match *self {
            WireFault::Drop { at, .. }
            | WireFault::Delay { at, .. }
            | WireFault::Duplicate { at, .. }
            | WireFault::Close { at } => at,
        }
    }
}

/// The wire faults planned for one proxied connection, per direction.
#[derive(Debug, Clone, Default)]
pub struct WireSchedule {
    /// Faults applied to client → server bytes, sorted by position.
    pub client_to_server: Vec<WireFault>,
    /// Faults applied to server → client bytes, sorted by position.
    pub server_to_client: Vec<WireFault>,
    /// When true the proxy accepts the connection and closes it
    /// immediately — a refused / partitioned peer.
    pub refuse: bool,
}

impl WireSchedule {
    /// A schedule that forwards everything untouched.
    pub fn clean() -> WireSchedule {
        WireSchedule::default()
    }

    /// Total planned faults (refusal counts as one).
    pub fn fault_count(&self) -> usize {
        self.client_to_server.len() + self.server_to_client.len() + usize::from(self.refuse)
    }
}

/// A seed-deterministic fault schedule. Expansion is pure: the same seed
/// and the same question (connection index, op index) always yield the
/// same answer. Convergence under chaos is guaranteed by construction —
/// faults are only planned for the first [`FaultPlan::faulty_conns`]
/// connections and the explicitly forced disk ops, so a client that keeps
/// reconnecting eventually reaches a clean connection.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    seed: u64,
    /// Connections with index `>= faulty_conns` are forwarded clean.
    faulty_conns: u64,
    /// Per-mille chance that a faulty-eligible connection is refused
    /// outright.
    refuse_per_mille: u32,
    /// Upper bound (exclusive) on planned fault positions, so schedules
    /// hit realistic offsets for the traffic under test.
    horizon: u64,
    /// Explicit disk faults: (write-op index, fault), checked before any
    /// probabilistic schedule. This is how the torture tests pin a fault
    /// to an exact operation.
    forced_disk: Vec<(u64, DiskFault)>,
    /// Per-mille chance each write op within the first `faulty_ops`
    /// draws a probabilistic disk fault.
    disk_per_mille: u32,
    /// Disk ops with index `>= faulty_ops` never draw probabilistic
    /// faults (forced faults still apply).
    faulty_ops: u64,
}

impl FaultPlan {
    /// A plan with chaos-profile defaults: the first 6 connections each
    /// draw up to 3 wire faults inside a 1 MiB horizon, occasional
    /// refusals, no disk faults.
    pub fn new(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            faulty_conns: 6,
            refuse_per_mille: 150,
            horizon: 1 << 20,
            forced_disk: Vec::new(),
            disk_per_mille: 0,
            faulty_ops: 0,
        }
    }

    /// A plan that injects no faults at all (useful as a baseline).
    pub fn clean() -> FaultPlan {
        FaultPlan {
            seed: 0,
            faulty_conns: 0,
            refuse_per_mille: 0,
            horizon: 1 << 20,
            forced_disk: Vec::new(),
            disk_per_mille: 0,
            faulty_ops: 0,
        }
    }

    /// The committed seed this plan expands from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Caps how many connections (by accept order) may draw wire faults.
    pub fn with_faulty_conns(mut self, n: u64) -> FaultPlan {
        self.faulty_conns = n;
        self
    }

    /// Sets the byte-position horizon wire faults are planned within.
    pub fn with_horizon(mut self, bytes: u64) -> FaultPlan {
        self.horizon = bytes.max(16);
        self
    }

    /// Enables probabilistic disk faults: each of the first `faulty_ops`
    /// write-class operations faults with probability `per_mille`/1000.
    pub fn with_disk_chaos(mut self, per_mille: u32, faulty_ops: u64) -> FaultPlan {
        self.disk_per_mille = per_mille;
        self.faulty_ops = faulty_ops;
        self
    }

    /// Forces `fault` at exactly the `op`-th write-class operation
    /// (0-based, counted across the [`crate::FaultyIo`] instance).
    pub fn force_disk(mut self, op: u64, fault: DiskFault) -> FaultPlan {
        self.forced_disk.push((op, fault));
        self
    }

    /// The disk fault (if any) planned for write-class operation `op`.
    pub fn disk_fault(&self, op: u64) -> Option<DiskFault> {
        if let Some(&(_, f)) = self.forced_disk.iter().find(|&&(at, _)| at == op) {
            return Some(f);
        }
        if op >= self.faulty_ops || self.disk_per_mille == 0 {
            return None;
        }
        let mut rng = Rng64::new(substream(self.seed, "disk", op));
        if !rng.chance(self.disk_per_mille) {
            return None;
        }
        Some(match rng.below(4) {
            0 => DiskFault::FailFsync,
            1 => DiskFault::ShortWrite {
                keep: rng.below(256) as u32,
            },
            2 => DiskFault::Enospc,
            _ => DiskFault::CrashHere {
                keep: rng.below(256) as u32,
            },
        })
    }

    /// The wire schedule for the `conn`-th accepted connection (0-based).
    pub fn wire_schedule(&self, conn: u64) -> WireSchedule {
        if conn >= self.faulty_conns {
            return WireSchedule::clean();
        }
        let mut rng = Rng64::new(substream(self.seed, "wire", conn));
        if rng.chance(self.refuse_per_mille) {
            return WireSchedule {
                refuse: true,
                ..WireSchedule::default()
            };
        }
        let mut sched = WireSchedule::clean();
        let n = 1 + rng.below(3);
        for _ in 0..n {
            // Log-uniform positions: most traffic is small frames, so
            // cluster faults near the start of the stream but keep a
            // tail reaching the horizon.
            let span = self.horizon.max(16);
            let exp = rng.below(64 - span.leading_zeros() as u64 + 1);
            let hi = (1u64 << exp).min(span).max(16);
            let at = rng.below(hi);
            let fault = match rng.below(4) {
                0 => WireFault::Drop {
                    at,
                    len: 1 + rng.below(512) as u32,
                },
                1 => WireFault::Delay {
                    at,
                    ms: 1 + rng.below(40) as u32,
                },
                2 => WireFault::Duplicate {
                    at,
                    len: 1 + rng.below(512) as u32,
                },
                _ => WireFault::Close { at },
            };
            let side = if rng.below(2) == 0 {
                &mut sched.client_to_server
            } else {
                &mut sched.server_to_client
            };
            side.push(fault);
        }
        sched.client_to_server.sort_by_key(WireFault::at);
        sched.server_to_client.sort_by_key(WireFault::at);
        // A Close makes everything after it unreachable; drop the rest so
        // the schedule states exactly what will happen.
        for side in [&mut sched.client_to_server, &mut sched.server_to_client] {
            if let Some(pos) = side
                .iter()
                .position(|f| matches!(f, WireFault::Close { .. }))
            {
                side.truncate(pos + 1);
            }
        }
        sched
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedules_are_deterministic() {
        let a = FaultPlan::new(123);
        let b = FaultPlan::new(123);
        for conn in 0..16 {
            assert_eq!(
                format!("{:?}", a.wire_schedule(conn)),
                format!("{:?}", b.wire_schedule(conn)),
            );
        }
    }

    #[test]
    fn conns_past_the_cap_are_clean() {
        let plan = FaultPlan::new(9).with_faulty_conns(3);
        for conn in 3..40 {
            assert_eq!(plan.wire_schedule(conn).fault_count(), 0);
        }
        let total: usize = (0..3).map(|c| plan.wire_schedule(c).fault_count()).sum();
        assert!(total > 0, "chaos profile planned nothing for seed 9");
    }

    #[test]
    fn forced_disk_faults_hit_their_op() {
        let plan = FaultPlan::clean().force_disk(2, DiskFault::Enospc);
        assert_eq!(plan.disk_fault(0), None);
        assert_eq!(plan.disk_fault(1), None);
        assert_eq!(plan.disk_fault(2), Some(DiskFault::Enospc));
        assert_eq!(plan.disk_fault(3), None);
    }

    #[test]
    fn disk_chaos_respects_op_cap() {
        let plan = FaultPlan::new(77).with_disk_chaos(1000, 5);
        for op in 0..5 {
            assert!(plan.disk_fault(op).is_some());
        }
        for op in 5..50 {
            assert_eq!(plan.disk_fault(op), None);
        }
    }

    #[test]
    fn nothing_planned_after_a_close() {
        for seed in 0..200 {
            let plan = FaultPlan::new(seed);
            for conn in 0..6 {
                let sched = plan.wire_schedule(conn);
                for side in [&sched.client_to_server, &sched.server_to_client] {
                    if let Some(pos) = side
                        .iter()
                        .position(|f| matches!(f, WireFault::Close { .. }))
                    {
                        assert_eq!(pos + 1, side.len());
                    }
                }
            }
        }
    }
}
