//! Criterion micro-benchmarks for the cryptographic substrate: the
//! measured counterparts of Table 1's `C_hash` and `C_sign`, plus the
//! primitives the scheme leans on (chains, Merkle trees, aggregation).

use adp_crypto::{
    chain_extend, chain_from_value, AggregateSignature, HashDomain, Hasher, Keypair, MerkleTree,
    Signature,
};
use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn keypair(bits: usize) -> Keypair {
    let mut rng = StdRng::seed_from_u64(0xC0DE ^ bits as u64);
    Keypair::generate(bits, &mut rng)
}

fn keypair_1024() -> Keypair {
    let mut rng = StdRng::seed_from_u64(0xC0DE);
    Keypair::generate(1024, &mut rng)
}

fn bench_hashing(c: &mut Criterion) {
    let hasher = Hasher::new(16);
    let mut g = c.benchmark_group("hash");
    for size in [64usize, 1024] {
        let msg = vec![0x5au8; size];
        g.throughput(Throughput::Bytes(size as u64));
        g.bench_function(format!("sha256_trunc128/{size}B"), |b| {
            b.iter(|| hasher.hash(HashDomain::Data, std::hint::black_box(&msg)))
        });
    }
    g.finish();
}

fn bench_chains(c: &mut Criterion) {
    let hasher = Hasher::new(16);
    let mut g = c.benchmark_group("chain");
    g.bench_function("from_value/64steps", |b| {
        b.iter(|| chain_from_value(&hasher, b"key-bytes", 0, 64))
    });
    let seed = chain_from_value(&hasher, b"key-bytes", 0, 0);
    g.throughput(Throughput::Elements(1000));
    g.bench_function("extend/1000steps", |b| {
        b.iter(|| chain_extend(&hasher, std::hint::black_box(seed), 1000))
    });
    // chain_hash at the trajectory scales: the per-step cost of the
    // owner/user iterated hash, measured over 512- and 1024-step walks.
    for steps in [512u64, 1024] {
        g.throughput(Throughput::Elements(steps));
        g.bench_function(format!("chain_hash/{steps}steps"), |b| {
            b.iter(|| chain_extend(&hasher, std::hint::black_box(seed), steps))
        });
    }
    g.finish();
}

fn bench_rsa(c: &mut Criterion) {
    // Both the fast-test size (512: 8-limb modulus, 4-limb CRT halves) and
    // the paper's M_sign (1024: 16-limb modulus, 8-limb CRT halves).
    let hasher = Hasher::new(16);
    for bits in [512usize, 1024] {
        let kp = if bits == 1024 {
            keypair_1024()
        } else {
            keypair(bits)
        };
        let digest = hasher.hash(HashDomain::Data, b"bench message");
        let sig = kp.sign(&hasher, &digest);
        let mut g = c.benchmark_group(format!("rsa{bits}"));
        g.sample_size(20);
        g.bench_function("sign_crt", |b| b.iter(|| kp.sign(&hasher, &digest)));
        g.bench_function("verify", |b| {
            b.iter(|| kp.public().verify(&hasher, &digest, &sig))
        });
        g.finish();
    }
}

fn bench_aggregation(c: &mut Criterion) {
    let hasher = Hasher::new(16);
    let kp = keypair_1024();
    let digests: Vec<_> = (0..100u32)
        .map(|i| hasher.hash(HashDomain::Data, &i.to_le_bytes()))
        .collect();
    let sigs: Vec<Signature> = digests.iter().map(|d| kp.sign(&hasher, d)).collect();
    let refs: Vec<&Signature> = sigs.iter().collect();
    let mut g = c.benchmark_group("aggregate");
    g.sample_size(20);
    g.bench_function("combine/100", |b| {
        b.iter(|| AggregateSignature::combine(kp.public(), &refs))
    });
    let agg = AggregateSignature::combine(kp.public(), &refs);
    g.bench_function("verify/100", |b| {
        b.iter(|| agg.verify(&hasher, kp.public(), &digests))
    });
    // The Section 5.2 claim: one aggregated verification beats |Q|
    // individual verifications.
    g.bench_function("verify_individually/100", |b| {
        b.iter(|| {
            digests
                .iter()
                .zip(&sigs)
                .all(|(d, s)| kp.public().verify(&hasher, d, s))
        })
    });
    g.finish();
}

fn bench_merkle(c: &mut Criterion) {
    let hasher = Hasher::new(16);
    let mut g = c.benchmark_group("merkle");
    // Builds at the trajectory scales (power-of-two leaf counts matching
    // the rep-MHT and attr-MHT shapes), plus the legacy 1000 — the
    // `build/1000` id is kept so criterion history lines up across PRs.
    for n in [512usize, 1000, 1024] {
        let leaves: Vec<_> = (0..n as u32)
            .map(|i| hasher.hash(HashDomain::Leaf, &i.to_le_bytes()))
            .collect();
        g.throughput(Throughput::Elements(n as u64));
        g.bench_function(format!("build/{n}"), |b| {
            b.iter_batched(
                || leaves.clone(),
                |l| MerkleTree::build(hasher, l),
                BatchSize::SmallInput,
            )
        });
    }
    let leaves: Vec<_> = (0..1000u32)
        .map(|i| hasher.hash(HashDomain::Leaf, &i.to_le_bytes()))
        .collect();
    let tree = MerkleTree::build(hasher, leaves);
    // Reset throughput after the build loop left it at 1024 elements.
    g.throughput(Throughput::Elements(1000));
    g.bench_function("prove/1000", |b| b.iter(|| tree.prove(500)));
    g.finish();
}

criterion_group!(
    benches,
    bench_hashing,
    bench_chains,
    bench_rsa,
    bench_aggregation,
    bench_merkle
);
criterion_main!(benches);
