//! Verification failures.
//!
//! Every way a verification can fail gets its own variant so tests can
//! assert *why* a malicious result was rejected, mirroring the case
//! analysis of Section 3.2.

use std::fmt;

/// Why a query result failed verification.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum VerifyError {
    /// The query range is empty by construction but the publisher returned
    /// rows anyway.
    ExpectedEmptyResult,
    /// VO variant does not match the result shape (e.g. a range VO with an
    /// empty result, or an empty-proof VO alongside returned rows).
    VoShapeMismatch { detail: &'static str },
    /// A returned record's key lies outside the normalized query range
    /// (precision violation).
    KeyOutOfRange { key: i64 },
    /// A returned record fails the query's non-key filters (precision
    /// violation).
    FilterViolation { entry: usize },
    /// A filtered-entry proof does not actually demonstrate that any filter
    /// predicate fails.
    FilteredNotProven { entry: usize },
    /// A filtered entry appears in a non-multipoint query.
    UnexpectedFilteredEntry { entry: usize },
    /// The attribute Merkle root recomputed from disclosed values and
    /// digests disagrees with the root in the VO.
    AttrRootMismatch { entry: usize },
    /// The attribute proof does not cover each non-key column exactly once.
    AttrCoverageInvalid { entry: usize },
    /// A record does not match the expected projection arity/typing.
    ProjectionMismatch { entry: usize },
    /// Record values violate the schema.
    SchemaViolation { entry: usize, detail: String },
    /// Number of returned records does not match the number of Match
    /// entries in the VO.
    ResultCountMismatch { records: usize, matches: usize },
    /// The boundary proof carries the wrong number of intermediate digests.
    BoundaryShapeInvalid { side: &'static str },
    /// The boundary proof's representation selector is malformed
    /// (e.g. non-canonical index out of range).
    BoundarySelectorInvalid { side: &'static str },
    /// Signature verification failed — covers omission, truncation, fake
    /// boundaries, spurious or tampered tuples (Cases 1–5 of Section 3.2
    /// all funnel into a signature/link mismatch).
    SignatureInvalid,
    /// Signature count disagrees with the entry count.
    SignatureCountMismatch { expected: usize, got: usize },
    /// A DISTINCT query's result contains duplicate projected rows
    /// (precision violation), or duplicate-elimination entries appear for a
    /// non-DISTINCT query.
    DistinctViolation { detail: &'static str },
    /// A duplicate-elimination entry references a nonexistent result row.
    DuplicateRefInvalid { entry: usize },
    /// A duplicate-elimination entry's disclosed projection does not match
    /// the referenced result row.
    DuplicateMismatch { entry: usize },
    /// The key column is missing from the projected result.
    KeyColumnMissing,
    /// Join verification: a result pairing references a foreign key with no
    /// authenticated inner record.
    JoinPairingBroken { fk: i64 },
    /// Join verification: an inner (S-side) record proof failed.
    JoinInnerInvalid { detail: String },
    /// Band join: the claimed extremum is inconsistent with the partitions.
    BandJoinBoundsInvalid { detail: String },
    /// Query not supported by the verification scheme.
    Unsupported { detail: &'static str },
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerifyError::ExpectedEmptyResult => {
                write!(
                    f,
                    "query range is empty by construction but rows were returned"
                )
            }
            VerifyError::VoShapeMismatch { detail } => write!(f, "VO shape mismatch: {detail}"),
            VerifyError::KeyOutOfRange { key } => {
                write!(
                    f,
                    "record key {key} outside the query range (precision violation)"
                )
            }
            VerifyError::FilterViolation { entry } => {
                write!(
                    f,
                    "result entry {entry} fails the query filters (precision violation)"
                )
            }
            VerifyError::FilteredNotProven { entry } => {
                write!(
                    f,
                    "filtered entry {entry} does not prove any failing predicate"
                )
            }
            VerifyError::UnexpectedFilteredEntry { entry } => {
                write!(f, "filtered entry {entry} in a non-multipoint query")
            }
            VerifyError::AttrRootMismatch { entry } => {
                write!(f, "attribute Merkle root mismatch at entry {entry}")
            }
            VerifyError::AttrCoverageInvalid { entry } => {
                write!(f, "attribute proof coverage invalid at entry {entry}")
            }
            VerifyError::ProjectionMismatch { entry } => {
                write!(f, "projection shape mismatch at entry {entry}")
            }
            VerifyError::SchemaViolation { entry, detail } => {
                write!(f, "schema violation at entry {entry}: {detail}")
            }
            VerifyError::ResultCountMismatch { records, matches } => write!(
                f,
                "result has {records} records but the VO proves {matches} matches"
            ),
            VerifyError::BoundaryShapeInvalid { side } => {
                write!(f, "{side} boundary proof has the wrong shape")
            }
            VerifyError::BoundarySelectorInvalid { side } => {
                write!(f, "{side} boundary representation selector invalid")
            }
            VerifyError::SignatureInvalid => write!(f, "signature verification failed"),
            VerifyError::SignatureCountMismatch { expected, got } => {
                write!(f, "expected {expected} signatures, got {got}")
            }
            VerifyError::DistinctViolation { detail } => {
                write!(f, "DISTINCT violation: {detail}")
            }
            VerifyError::DuplicateRefInvalid { entry } => {
                write!(
                    f,
                    "duplicate entry {entry} references a nonexistent result row"
                )
            }
            VerifyError::DuplicateMismatch { entry } => {
                write!(
                    f,
                    "duplicate entry {entry} does not match its referenced row"
                )
            }
            VerifyError::KeyColumnMissing => {
                write!(f, "the key column is missing from the projected result")
            }
            VerifyError::JoinPairingBroken { fk } => {
                write!(f, "no authenticated inner record for foreign key {fk}")
            }
            VerifyError::JoinInnerInvalid { detail } => {
                write!(f, "inner join record proof failed: {detail}")
            }
            VerifyError::BandJoinBoundsInvalid { detail } => {
                write!(f, "band join bounds invalid: {detail}")
            }
            VerifyError::Unsupported { detail } => write!(f, "unsupported query: {detail}"),
        }
    }
}

impl std::error::Error for VerifyError {}
