//! Merkle hash trees (Section 2.1, Figure 2), with inclusion proofs and
//! root reconstruction from partially disclosed leaves.
//!
//! Used in three places in the scheme:
//!
//! 1. `MHT(r.A)` — per-record tree over attribute values (formula 3). For a
//!    projection query the publisher substitutes *digests* for hidden
//!    attribute values; the user recomputes the root from a mix of plaintext
//!    values and digests ([`root_from_mixed`]).
//! 2. The tree over the `m` preferred non-canonical representations of
//!    `δ_t` (Section 5.1, Figures 7–8), where the publisher reveals the
//!    `⌈log2 m⌉` digests covering the unused representations
//!    ([`MerkleTree::prove`] / [`verify_inclusion`]).
//! 3. The Devanbu et al. baseline, which builds one tree over an entire
//!    table and proves contiguous leaf ranges ([`MerkleTree::prove_range`]).
//!
//! Odd nodes are *promoted* to the next level unchanged (no duplication),
//! so trees of any leaf count are well-defined and second-preimage-safe
//! under the domain-separated node hash.

use crate::digest::Digest;
use crate::hasher::{HashDomain, Hasher};

/// A Merkle tree retained in memory level by level.
///
/// `levels\[0\]` is the leaf level; the last level has exactly one digest,
/// the root.
#[derive(Clone, Debug)]
pub struct MerkleTree {
    levels: Vec<Vec<Digest>>,
    hasher: Hasher,
}

/// One step of an inclusion proof: the sibling digest and whether it sits to
/// the left of the path node. Steps where the path node was promoted (no
/// sibling) are omitted entirely — position binding comes purely from the
/// `sibling_is_left` flags, so the proof carries no dead bytes (every wire
/// byte is load-bearing; see the `wire_robustness` tests).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ProofStep {
    pub sibling: Digest,
    pub sibling_is_left: bool,
}

/// An inclusion proof for a single leaf.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct InclusionProof {
    pub leaf_index: u32,
    pub steps: Vec<ProofStep>,
}

impl InclusionProof {
    /// Number of digests carried by the proof.
    pub fn digest_count(&self) -> usize {
        self.steps.len()
    }
}

impl MerkleTree {
    /// Builds a tree over the given leaf digests.
    ///
    /// # Panics
    /// If `leaves` is empty.
    pub fn build(hasher: Hasher, leaves: Vec<Digest>) -> Self {
        assert!(!leaves.is_empty(), "Merkle tree needs at least one leaf");
        let mut levels = vec![leaves];
        while levels.last().unwrap().len() > 1 {
            let prev = levels.last().unwrap();
            let mut next = Vec::with_capacity(prev.len().div_ceil(2));
            let mut i = 0;
            while i + 1 < prev.len() {
                next.push(hasher.hash_digests(HashDomain::Node, &[prev[i], prev[i + 1]]));
                i += 2;
            }
            if i < prev.len() {
                next.push(prev[i]); // promote odd node
            }
            levels.push(next);
        }
        MerkleTree { levels, hasher }
    }

    /// Convenience: hashes raw byte leaves (domain `Leaf`) then builds.
    pub fn from_values(hasher: Hasher, values: &[&[u8]]) -> Self {
        let leaves = values
            .iter()
            .map(|v| hasher.hash(HashDomain::Leaf, v))
            .collect();
        Self::build(hasher, leaves)
    }

    /// The root digest.
    pub fn root(&self) -> Digest {
        self.levels.last().unwrap()[0]
    }

    /// Number of leaves.
    pub fn leaf_count(&self) -> usize {
        self.levels[0].len()
    }

    /// Leaf digest at `index`.
    pub fn leaf(&self, index: usize) -> Digest {
        self.levels[0][index]
    }

    /// Produces an inclusion proof for the leaf at `index`.
    pub fn prove(&self, index: usize) -> InclusionProof {
        assert!(index < self.leaf_count(), "leaf index out of range");
        let mut steps = Vec::new();
        let mut pos = index;
        for level in self.levels.iter() {
            if level.len() == 1 {
                break;
            }
            let sib = pos ^ 1;
            if sib < level.len() {
                steps.push(ProofStep {
                    sibling: level[sib],
                    sibling_is_left: sib < pos,
                });
            }
            pos /= 2;
        }
        InclusionProof {
            leaf_index: index as u32,
            steps,
        }
    }

    /// Digests required to recompute the root when the verifier already
    /// knows the contiguous leaf range `[lo, hi]` (inclusive). This is the
    /// Devanbu-style range VO: the returned `(level, index, digest)` triples
    /// are exactly the internal/leaf digests outside the known range's
    /// coverage at each level.
    pub fn prove_range(&self, lo: usize, hi: usize) -> Vec<RangeProofNode> {
        assert!(lo <= hi && hi < self.leaf_count(), "bad leaf range");
        let mut out = Vec::new();
        let (mut lo, mut hi) = (lo, hi);
        for (lvl, level) in self.levels.iter().enumerate() {
            if level.len() == 1 {
                break;
            }
            // Left fringe: if lo is a right child, its left sibling is needed.
            if lo % 2 == 1 {
                out.push(RangeProofNode {
                    level: lvl as u32,
                    index: (lo - 1) as u32,
                    digest: level[lo - 1],
                });
            }
            // Right fringe: if hi is a left child with an existing right sibling.
            if hi % 2 == 0 && hi + 1 < level.len() {
                out.push(RangeProofNode {
                    level: lvl as u32,
                    index: (hi + 1) as u32,
                    digest: level[hi + 1],
                });
            }
            lo /= 2;
            hi /= 2;
        }
        out
    }

    /// The hasher this tree was built with.
    pub fn hasher(&self) -> Hasher {
        self.hasher
    }
}

/// A node disclosed by [`MerkleTree::prove_range`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RangeProofNode {
    pub level: u32,
    pub index: u32,
    pub digest: Digest,
}

/// Verifies an inclusion proof: recomputes the root from `leaf` and `proof`.
pub fn verify_inclusion(hasher: &Hasher, leaf: Digest, proof: &InclusionProof) -> Digest {
    let mut acc = leaf;
    for step in &proof.steps {
        acc = if step.sibling_is_left {
            hasher.hash_digests(HashDomain::Node, &[step.sibling, acc])
        } else {
            hasher.hash_digests(HashDomain::Node, &[acc, step.sibling])
        };
    }
    acc
}

/// Recomputes a Merkle root from a full leaf layer where each entry is
/// either a plaintext value (hashed here) or an already-known digest.
///
/// This is how a user rebuilds `MHT(r.A)` for a projected record: plaintext
/// for selected columns, digests for projected-out ones (Section 4.2).
pub fn root_from_mixed(hasher: &Hasher, leaves: &[MixedLeaf<'_>]) -> Digest {
    assert!(!leaves.is_empty());
    let mut level: Vec<Digest> = leaves
        .iter()
        .map(|l| match l {
            MixedLeaf::Value(v) => hasher.hash(HashDomain::Leaf, v),
            MixedLeaf::Digest(d) => *d,
        })
        .collect();
    while level.len() > 1 {
        let mut next = Vec::with_capacity(level.len().div_ceil(2));
        let mut i = 0;
        while i + 1 < level.len() {
            next.push(hasher.hash_digests(HashDomain::Node, &[level[i], level[i + 1]]));
            i += 2;
        }
        if i < level.len() {
            next.push(level[i]);
        }
        level = next;
    }
    level[0]
}

/// A leaf that is either a disclosed plaintext value or a digest standing in
/// for a hidden value.
#[derive(Clone, Copy, Debug)]
pub enum MixedLeaf<'a> {
    Value(&'a [u8]),
    Digest(Digest),
}

/// Recomputes a root from a contiguous range of known leaves plus the
/// fringe nodes from [`MerkleTree::prove_range`].
///
/// `total_leaves` must be the tree's full leaf count; `lo` is the index of
/// `known\[0\]`.
pub fn root_from_range(
    hasher: &Hasher,
    total_leaves: usize,
    lo: usize,
    known: &[Digest],
    fringe: &[RangeProofNode],
) -> Option<Digest> {
    if known.is_empty() || lo + known.len() > total_leaves {
        return None;
    }
    let hi = lo + known.len() - 1;
    let mut nodes: Vec<Digest> = known.to_vec();
    let (mut lo, mut hi) = (lo, hi);
    let mut level_len = total_leaves;
    let mut fringe_iter = fringe.iter();
    let mut lvl = 0u32;
    let mut next_fringe = fringe_iter.next();
    while level_len > 1 {
        // Attach fringe nodes for this level.
        if lo % 2 == 1 {
            let f = next_fringe?;
            if f.level != lvl || f.index as usize != lo - 1 {
                return None;
            }
            nodes.insert(0, f.digest);
            next_fringe = fringe_iter.next();
            lo -= 1;
        }
        if hi % 2 == 0 && hi + 1 < level_len {
            let f = next_fringe?;
            if f.level != lvl || f.index as usize != hi + 1 {
                return None;
            }
            nodes.push(f.digest);
            next_fringe = fringe_iter.next();
            hi += 1;
        }
        // Pair up this level.
        let mut next_nodes = Vec::with_capacity(nodes.len() / 2 + 1);
        let mut i = 0;
        while i + 1 < nodes.len() {
            next_nodes.push(hasher.hash_digests(HashDomain::Node, &[nodes[i], nodes[i + 1]]));
            i += 2;
        }
        if i < nodes.len() {
            // Only legal if this node is the promoted odd tail of the level.
            if hi != level_len - 1 || level_len.is_multiple_of(2) {
                return None;
            }
            next_nodes.push(nodes[i]);
        }
        nodes = next_nodes;
        lo /= 2;
        hi /= 2;
        level_len = level_len.div_ceil(2);
        lvl += 1;
    }
    if next_fringe.is_some() || nodes.len() != 1 {
        return None;
    }
    Some(nodes[0])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hasher() -> Hasher {
        Hasher::default()
    }

    fn leaves(n: usize) -> Vec<Digest> {
        let h = hasher();
        (0..n)
            .map(|i| h.hash(HashDomain::Leaf, &(i as u64).to_le_bytes()))
            .collect()
    }

    #[test]
    fn figure2_example_shape() {
        // The paper's Figure 2: four leaves, root = h(h(N1|N2) | h(N3|N4)).
        let h = hasher();
        let ls = leaves(4);
        let t = MerkleTree::build(h, ls.clone());
        let n12 = h.hash_digests(HashDomain::Node, &[ls[0], ls[1]]);
        let n34 = h.hash_digests(HashDomain::Node, &[ls[2], ls[3]]);
        assert_eq!(t.root(), h.hash_digests(HashDomain::Node, &[n12, n34]));
    }

    #[test]
    fn single_leaf_tree() {
        let ls = leaves(1);
        let t = MerkleTree::build(hasher(), ls.clone());
        assert_eq!(t.root(), ls[0]);
        let p = t.prove(0);
        assert_eq!(verify_inclusion(&hasher(), ls[0], &p), t.root());
    }

    #[test]
    fn inclusion_proofs_all_sizes() {
        let h = hasher();
        for n in 1..=17 {
            let ls = leaves(n);
            let t = MerkleTree::build(h, ls.clone());
            for (i, leaf) in ls.iter().enumerate() {
                let p = t.prove(i);
                assert_eq!(verify_inclusion(&h, *leaf, &p), t.root(), "n={n} i={i}");
            }
        }
    }

    #[test]
    fn wrong_leaf_fails_inclusion() {
        let h = hasher();
        let ls = leaves(8);
        let t = MerkleTree::build(h, ls.clone());
        let p = t.prove(3);
        let wrong = h.hash(HashDomain::Leaf, b"not a leaf");
        assert_ne!(verify_inclusion(&h, wrong, &p), t.root());
    }

    #[test]
    fn proof_size_logarithmic() {
        // The paper states ⌈log2 m⌉ digests for the representation MHT.
        let t = MerkleTree::build(hasher(), leaves(32));
        assert_eq!(t.prove(0).digest_count(), 5);
        let t = MerkleTree::build(hasher(), leaves(33));
        assert!(t.prove(0).digest_count() <= 6);
    }

    #[test]
    fn mixed_root_matches_plain() {
        let h = hasher();
        let values: Vec<Vec<u8>> = (0..5u8).map(|i| vec![i; 3]).collect();
        let refs: Vec<&[u8]> = values.iter().map(|v| v.as_slice()).collect();
        let t = MerkleTree::from_values(h, &refs);
        // Hide attributes 1 and 3 behind digests.
        let mixed: Vec<MixedLeaf> = refs
            .iter()
            .enumerate()
            .map(|(i, v)| {
                if i % 2 == 1 {
                    MixedLeaf::Digest(h.hash(HashDomain::Leaf, v))
                } else {
                    MixedLeaf::Value(v)
                }
            })
            .collect();
        assert_eq!(root_from_mixed(&h, &mixed), t.root());
    }

    #[test]
    fn range_proofs_roundtrip() {
        let h = hasher();
        for n in [1usize, 2, 3, 7, 8, 9, 16, 21] {
            let ls = leaves(n);
            let t = MerkleTree::build(h, ls.clone());
            for lo in 0..n {
                for hi in lo..n.min(lo + 6) {
                    let fringe = t.prove_range(lo, hi);
                    let got = root_from_range(&h, n, lo, &ls[lo..=hi], &fringe);
                    assert_eq!(got, Some(t.root()), "n={n} lo={lo} hi={hi}");
                }
            }
        }
    }

    #[test]
    fn range_proof_rejects_shifted_range() {
        let h = hasher();
        let ls = leaves(16);
        let t = MerkleTree::build(h, ls.clone());
        let fringe = t.prove_range(4, 7);
        // Claiming the same leaves sit at a different offset must fail.
        let got = root_from_range(&h, 16, 5, &ls[4..=7], &fringe);
        assert_ne!(got, Some(t.root()));
    }

    #[test]
    fn range_proof_rejects_tampered_leaf() {
        let h = hasher();
        let ls = leaves(16);
        let t = MerkleTree::build(h, ls.clone());
        let fringe = t.prove_range(4, 7);
        let mut known = ls[4..=7].to_vec();
        known[1] = h.hash(HashDomain::Leaf, b"evil");
        let got = root_from_range(&h, 16, 4, &known, &fringe);
        assert!(got.is_none() || got != Some(t.root()));
    }

    #[test]
    fn full_range_needs_no_fringe() {
        let h = hasher();
        let ls = leaves(8);
        let t = MerkleTree::build(h, ls.clone());
        let fringe = t.prove_range(0, 7);
        assert!(fringe.is_empty());
        assert_eq!(root_from_range(&h, 8, 0, &ls, &fringe), Some(t.root()));
    }
}
