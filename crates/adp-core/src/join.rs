//! Authenticated joins (Section 4.3).
//!
//! Two join classes are supported, exactly as the paper describes:
//!
//! * **Primary-key / foreign-key equi-joins** `R ⋈_{R.fk = S.pk} S`, where
//!   `R` is signed sorted on its foreign key and `S` on its primary key.
//!   Referential integrity means the join drops no `R` rows, so
//!   completeness reduces to completeness of the `R`-side selection; each
//!   distinct `S` record is authenticated individually through its own
//!   signature link (neighbour `g`s supplied opaquely).
//! * **Band joins** `R.Ai ≤ S.Aj`: the publisher proves `max(S.Aj)` via a
//!   top-range query on `S`, proves the `R` partition complete for
//!   `(L, max(S.Aj)]`, and — if the partition is non-empty — proves the `S`
//!   partition complete for `[min(R.Ai), U)`. The user forms the pairs
//!   locally.

use crate::errors::VerifyError;
use crate::owner::Certificate;
use crate::publisher::{effective_projection, PublishError, Publisher};
use crate::verifier::{verify_select, VerifyReport};
use crate::vo::{AttrProof, EntryChains, QueryVO, SignatureProof};
use adp_crypto::{AggregateSignature, Digest, Signature};
use adp_relation::{KeyRange, Projection, Record, SelectQuery};
use std::collections::BTreeSet;
use std::ops::Bound;

/// Authentication material for one distinct inner (S-side) record of a
/// pk-fk join.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct InnerRecordProof {
    /// The projected S record (primary key always included).
    pub record: Record,
    /// Rep-MHT roots for S's chains (its key is disclosed).
    pub chains: EntryChains,
    /// Hidden-attribute digests + root for `MHT(s.A)`.
    pub attrs: AttrProof,
    /// `g(s_{prev})` bytes, opaque.
    pub prev_g: Vec<u8>,
    /// `g(s_{next})` bytes, opaque.
    pub next_g: Vec<u8>,
}

/// VO for a pk-fk equi-join.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PkFkJoinVO {
    /// Completeness proof for the outer (R-side) selection.
    pub outer: QueryVO,
    /// One proof per *distinct* S key appearing in the join result,
    /// ordered by key.
    pub inner: Vec<InnerRecordProof>,
    /// Signatures of the inner records (aggregated by default).
    pub inner_signatures: Option<SignatureProof>,
}

/// The result of a pk-fk join: outer rows plus an authenticated lookup
/// table of distinct inner rows. The client materializes the joined pairs
/// after verification (`R` row ⋈ inner row with matching key).
#[derive(Clone, Debug)]
pub struct PkFkJoinResult {
    pub outer_rows: Vec<Record>,
    pub inner_rows: Vec<Record>,
}

/// A verified pk-fk join: the report for the outer side plus the pairing.
#[derive(Clone, Debug)]
pub struct JoinReport {
    pub outer: VerifyReport,
    pub inner_verified: usize,
    pub pairs: usize,
}

/// Publisher-side: answers `σ_range(R) ⋈ S` with projections.
pub fn answer_pkfk_join(
    r_pub: &Publisher<'_>,
    s_pub: &Publisher<'_>,
    fk_range: KeyRange,
    r_projection: &Projection,
    s_projection: &Projection,
) -> Result<(PkFkJoinResult, PkFkJoinVO), PublishError> {
    let r_st = r_pub.signed_table();
    let s_st = s_pub.signed_table();
    // Outer side: ordinary verified selection on R's sort (fk) attribute.
    let outer_query = SelectQuery {
        range: fk_range,
        filters: Vec::new(),
        projection: r_projection.clone(),
        distinct: false,
    };
    let (outer_rows, outer_vo) = r_pub.answer_select(&outer_query)?;

    // Distinct fk values present in the outer result.
    let r_schema = r_st.table().schema();
    let r_proj = effective_projection(r_schema, r_projection, &[])
        .ok_or(PublishError::BadProjectionColumn)?;
    let fk_slot = r_proj
        .iter()
        .position(|&c| c == r_schema.key_index())
        .expect("effective projection includes the key");
    let fks: BTreeSet<i64> = outer_rows
        .iter()
        .map(|row| row.get(fk_slot).as_int().expect("fk column is INT"))
        .collect();

    // Inner side: one authenticated record per distinct fk.
    let s_schema = s_st.table().schema();
    let s_proj = effective_projection(s_schema, s_projection, &[])
        .ok_or(PublishError::BadProjectionColumn)?;
    let mut inner = Vec::with_capacity(fks.len());
    let mut inner_rows = Vec::with_capacity(fks.len());
    let mut sigs: Vec<&Signature> = Vec::with_capacity(fks.len());
    for fk in fks {
        let pos = s_st
            .table()
            .position_of(fk, 0)
            .unwrap_or_else(|| panic!("referential integrity violated: fk {fk}"));
        let cp = pos + 1;
        let s_row = s_st.table().row(pos);
        let record = s_row.record.project(&s_proj);
        let entry = s_st.entry(cp);
        let chains = match entry.roots {
            Some((up_root, down_root)) => EntryChains::Optimized { up_root, down_root },
            None => EntryChains::Conceptual,
        };
        // Hidden digests for the S columns outside the projection.
        let hasher = s_st.hasher();
        let mut hidden = Vec::new();
        for col in 0..s_schema.arity() {
            if col == s_schema.key_index() || s_proj.contains(&col) {
                continue;
            }
            hidden.push((
                crate::publisher::attr_position(s_schema, col),
                hasher.hash(
                    adp_crypto::HashDomain::Leaf,
                    &s_row.record.get(col).encode(),
                ),
            ));
        }
        inner.push(InnerRecordProof {
            record: record.clone(),
            chains,
            attrs: AttrProof {
                disclosed: Vec::new(),
                hidden,
                root: entry.g.attrs,
            },
            prev_g: s_st.g_bytes(cp - 1),
            next_g: s_st.g_bytes(cp + 1),
        });
        inner_rows.push(record);
        sigs.push(&entry.signature);
    }
    let inner_signatures = if sigs.is_empty() {
        None
    } else if s_st.config().aggregate_signatures {
        Some(SignatureProof::Aggregated(AggregateSignature::combine(
            s_st.public_key(),
            &sigs,
        )))
    } else {
        Some(SignatureProof::Individual(
            sigs.into_iter().cloned().collect(),
        ))
    };

    Ok((
        PkFkJoinResult {
            outer_rows,
            inner_rows,
        },
        PkFkJoinVO {
            outer: outer_vo,
            inner,
            inner_signatures,
        },
    ))
}

/// User-side verification of a pk-fk join.
pub fn verify_pkfk_join(
    r_cert: &Certificate,
    s_cert: &Certificate,
    fk_range: KeyRange,
    r_projection: &Projection,
    s_projection: &Projection,
    result: &PkFkJoinResult,
    vo: &PkFkJoinVO,
) -> Result<JoinReport, VerifyError> {
    // 1. Outer completeness: the fk-range selection on R.
    let outer_query = SelectQuery {
        range: fk_range,
        filters: Vec::new(),
        projection: r_projection.clone(),
        distinct: false,
    };
    let outer = verify_select(r_cert, &outer_query, &result.outer_rows, &vo.outer)?;

    // 2. Inner authenticity: each distinct S record's signature link.
    let s_schema = &s_cert.schema;
    let s_proj =
        effective_projection(s_schema, s_projection, &[]).ok_or(VerifyError::Unsupported {
            detail: "inner projection names unknown column",
        })?;
    let pk_slot = s_proj
        .iter()
        .position(|&c| c == s_schema.key_index())
        .ok_or(VerifyError::KeyColumnMissing)?;
    if result.inner_rows.len() != vo.inner.len() {
        return Err(VerifyError::ResultCountMismatch {
            records: result.inner_rows.len(),
            matches: vo.inner.len(),
        });
    }
    let hasher = s_cert.config.hasher();
    let radix = match s_cert.config.mode {
        crate::scheme::Mode::Conceptual => None,
        crate::scheme::Mode::Optimized { base } => {
            Some(crate::repr::Radix::for_width(base, s_cert.domain.width()))
        }
    };
    let mut links: Vec<Digest> = Vec::with_capacity(vo.inner.len());
    let mut seen_keys = BTreeSet::new();
    for (i, proof) in vo.inner.iter().enumerate() {
        if proof.record != result.inner_rows[i] {
            return Err(VerifyError::JoinInnerInvalid {
                detail: format!("inner row {i} disagrees with its proof"),
            });
        }
        if proof.record.arity() != s_proj.len() {
            return Err(VerifyError::ProjectionMismatch { entry: i });
        }
        let key = proof
            .record
            .get(pk_slot)
            .as_int()
            .ok_or(VerifyError::JoinInnerInvalid {
                detail: format!("inner row {i} has no key"),
            })?;
        if !seen_keys.insert(key) {
            return Err(VerifyError::JoinInnerInvalid {
                detail: format!("duplicate inner key {key}"),
            });
        }
        // Rebuild MHT(s.A) from projected values + hidden digests.
        let non_key = s_schema.arity() - 1;
        let mut encodings: Vec<Option<Vec<u8>>> = vec![None; non_key];
        for (slot, &col) in s_proj.iter().enumerate() {
            if col == s_schema.key_index() {
                continue;
            }
            encodings[crate::publisher::attr_position(s_schema, col) as usize] =
                Some(proof.record.get(slot).encode());
        }
        let mut hidden: Vec<Option<Digest>> = vec![None; non_key];
        for (pos, d) in &proof.attrs.hidden {
            let pos = *pos as usize;
            if pos >= non_key || hidden[pos].is_some() || encodings[pos].is_some() {
                return Err(VerifyError::AttrCoverageInvalid { entry: i });
            }
            hidden[pos] = Some(*d);
        }
        let attr_root = if non_key == 0 {
            hasher.hash(adp_crypto::HashDomain::Leaf, b"\x00__no_attrs__")
        } else {
            let mut leaves = Vec::with_capacity(non_key);
            for (j, enc) in encodings.iter().enumerate() {
                match (enc, hidden[j]) {
                    (Some(e), None) => leaves.push(adp_crypto::MixedLeaf::Value(e)),
                    (None, Some(d)) => leaves.push(adp_crypto::MixedLeaf::Digest(d)),
                    _ => return Err(VerifyError::AttrCoverageInvalid { entry: i }),
                }
            }
            adp_crypto::root_from_mixed(&hasher, &leaves)
        };
        if attr_root != proof.attrs.root {
            return Err(VerifyError::AttrRootMismatch { entry: i });
        }
        let (up, down) = match (&s_cert.config.mode, &proof.chains) {
            (crate::scheme::Mode::Conceptual, EntryChains::Conceptual) => (
                crate::gdigest::entry_component(
                    &hasher,
                    &s_cert.config,
                    None,
                    &s_cert.domain,
                    key,
                    crate::gdigest::Direction::Up,
                    None,
                ),
                crate::gdigest::entry_component(
                    &hasher,
                    &s_cert.config,
                    None,
                    &s_cert.domain,
                    key,
                    crate::gdigest::Direction::Down,
                    None,
                ),
            ),
            (
                crate::scheme::Mode::Optimized { .. },
                EntryChains::Optimized { up_root, down_root },
            ) => (
                crate::gdigest::entry_component(
                    &hasher,
                    &s_cert.config,
                    radix.as_ref(),
                    &s_cert.domain,
                    key,
                    crate::gdigest::Direction::Up,
                    Some(*up_root),
                ),
                crate::gdigest::entry_component(
                    &hasher,
                    &s_cert.config,
                    radix.as_ref(),
                    &s_cert.domain,
                    key,
                    crate::gdigest::Direction::Down,
                    Some(*down_root),
                ),
            ),
            _ => {
                return Err(VerifyError::VoShapeMismatch {
                    detail: "inner chain mode mismatch",
                })
            }
        };
        let g = crate::gdigest::GDigest {
            up,
            down,
            attrs: attr_root,
        };
        if proof.prev_g.is_empty() || proof.next_g.is_empty() {
            return Err(VerifyError::JoinInnerInvalid {
                detail: "inner proof lacks neighbour context".into(),
            });
        }
        links.push(crate::gdigest::link_digest(
            &hasher,
            &proof.prev_g,
            &g.to_bytes(),
            &proof.next_g,
        ));
    }
    match (&vo.inner_signatures, links.is_empty()) {
        (None, true) => {}
        (None, false) => {
            return Err(VerifyError::SignatureCountMismatch {
                expected: links.len(),
                got: 0,
            })
        }
        (Some(sp), _) => {
            if sp.count() != links.len() {
                return Err(VerifyError::SignatureCountMismatch {
                    expected: links.len(),
                    got: sp.count(),
                });
            }
            let ok = match sp {
                SignatureProof::Aggregated(agg) => agg.verify(&hasher, &s_cert.public_key, &links),
                SignatureProof::Individual(v) => links
                    .iter()
                    .zip(v)
                    .all(|(l, s)| s_cert.public_key.verify(&hasher, l, s)),
            };
            if !ok {
                return Err(VerifyError::SignatureInvalid);
            }
        }
    }

    // 3. Pairing: every outer row's fk has an authenticated inner record,
    //    and no unused inner records ride along (precision).
    let r_schema = &r_cert.schema;
    let r_proj =
        effective_projection(r_schema, r_projection, &[]).ok_or(VerifyError::Unsupported {
            detail: "outer projection names unknown column",
        })?;
    let fk_slot = r_proj
        .iter()
        .position(|&c| c == r_schema.key_index())
        .ok_or(VerifyError::KeyColumnMissing)?;
    let mut pairs = 0usize;
    let mut used: BTreeSet<i64> = BTreeSet::new();
    for row in &result.outer_rows {
        let fk = row
            .get(fk_slot)
            .as_int()
            .ok_or(VerifyError::JoinPairingBroken { fk: i64::MIN })?;
        if !seen_keys.contains(&fk) {
            return Err(VerifyError::JoinPairingBroken { fk });
        }
        used.insert(fk);
        pairs += 1;
    }
    if used.len() != seen_keys.len() {
        return Err(VerifyError::JoinInnerInvalid {
            detail: "inner lookup contains records no outer row references".into(),
        });
    }

    Ok(JoinReport {
        outer,
        inner_verified: vo.inner.len(),
        pairs,
    })
}

/// VO for a band join `R.Ai ≤ S.Aj` (Section 4.3's second join class).
#[derive(Clone, Debug)]
pub struct BandJoinVO {
    /// Claimed maximum of `S.Aj`.
    pub s_max: i64,
    /// Proof that `[s_max, key_max]` on S returns exactly the max-key rows
    /// (or, for an empty S, that the full range is empty).
    pub s_max_vo: QueryVO,
    /// The max-key rows of S backing the claim.
    pub s_max_rows: Vec<Record>,
    /// Completeness proof for the R partition `(L, s_max]`.
    pub r_vo: QueryVO,
    /// Completeness proof for the S partition `[r_min, U)`; `None` when the
    /// R partition is empty (join result empty).
    pub s_vo: Option<QueryVO>,
}

/// Result of a band join: the two partitions; pairs are formed locally as
/// `{(r, s) : r.key ≤ s.key}`.
#[derive(Clone, Debug)]
pub struct BandJoinResult {
    pub r_partition: Vec<Record>,
    pub s_partition: Vec<Record>,
}

/// Publisher-side band join.
pub fn answer_band_join(
    r_pub: &Publisher<'_>,
    s_pub: &Publisher<'_>,
) -> Result<(BandJoinResult, BandJoinVO), PublishError> {
    let s_st = s_pub.signed_table();
    let r_st = r_pub.signed_table();
    // Step 1: prove max(S.Aj).
    let (s_max, s_max_rows, s_max_vo) = match s_st.table().key_extent() {
        Some((_, max)) => {
            let q = SelectQuery::range(KeyRange::at_least(max));
            let (rows, vo) = s_pub.answer_select(&q)?;
            (max, rows, vo)
        }
        None => {
            // S empty: prove it with a full-range empty proof; put the
            // claimed max below every legal key so the R partition is
            // trivially empty too.
            let q = SelectQuery::range(KeyRange::all());
            let (rows, vo) = s_pub.answer_select(&q)?;
            (s_st.domain().key_min() - 1, rows, vo)
        }
    };
    // Step 2: R partition = all r with r.key ≤ s_max.
    let r_query = SelectQuery::range(KeyRange {
        lo: Bound::Unbounded,
        hi: Bound::Included(s_max),
    });
    let (r_partition, r_vo) = r_pub.answer_select(&r_query)?;
    // Step 3: S partition = all s with s.key ≥ min(R partition keys).
    let (s_partition, s_vo) = if r_partition.is_empty() {
        (Vec::new(), None)
    } else {
        let key_idx = r_st.table().schema().key_index();
        let r_min = r_partition
            .iter()
            .filter_map(|r| r.get(key_idx).as_int())
            .min()
            .expect("non-empty partition");
        let q = SelectQuery::range(KeyRange::at_least(r_min));
        let (rows, vo) = s_pub.answer_select(&q)?;
        (rows, Some(vo))
    };
    Ok((
        BandJoinResult {
            r_partition,
            s_partition,
        },
        BandJoinVO {
            s_max,
            s_max_vo,
            s_max_rows,
            r_vo,
            s_vo,
        },
    ))
}

/// User-side band join verification: the three range proofs plus the
/// consistency of the claimed extrema, per Section 4.3.
pub fn verify_band_join(
    r_cert: &Certificate,
    s_cert: &Certificate,
    result: &BandJoinResult,
    vo: &BandJoinVO,
) -> Result<(), VerifyError> {
    let s_key_idx = s_cert.schema.key_index();
    let r_key_idx = r_cert.schema.key_index();

    // 1. The s_max claim: either witnessed max-key rows, or S is empty.
    if s_cert.domain.contains_key(vo.s_max) {
        let q = SelectQuery::range(KeyRange::at_least(vo.s_max));
        verify_select(s_cert, &q, &vo.s_max_rows, &vo.s_max_vo)?;
        if vo.s_max_rows.is_empty() {
            return Err(VerifyError::BandJoinBoundsInvalid {
                detail: "claimed max has no witnesses".into(),
            });
        }
        for rec in &vo.s_max_rows {
            if rec.get(s_key_idx).as_int() != Some(vo.s_max) {
                return Err(VerifyError::BandJoinBoundsInvalid {
                    detail: "a row above the claimed max exists".into(),
                });
            }
        }
    } else {
        let q = SelectQuery::range(KeyRange::all());
        let report = verify_select(s_cert, &q, &vo.s_max_rows, &vo.s_max_vo)?;
        if !report.empty {
            return Err(VerifyError::BandJoinBoundsInvalid {
                detail: "S emptiness claim not proven".into(),
            });
        }
    }

    // 2. R partition complete for keys ≤ s_max.
    let r_query = SelectQuery::range(KeyRange {
        lo: Bound::Unbounded,
        hi: Bound::Included(vo.s_max),
    });
    verify_select(r_cert, &r_query, &result.r_partition, &vo.r_vo)?;

    // 3. S partition complete for keys ≥ min(R partition).
    match (&vo.s_vo, result.r_partition.is_empty()) {
        (None, true) => {
            if !result.s_partition.is_empty() {
                return Err(VerifyError::BandJoinBoundsInvalid {
                    detail: "S partition present but R partition empty".into(),
                });
            }
        }
        (None, false) => {
            return Err(VerifyError::BandJoinBoundsInvalid {
                detail: "missing S partition proof".into(),
            });
        }
        (Some(s_vo), false) => {
            let r_min = result
                .r_partition
                .iter()
                .filter_map(|r| r.get(r_key_idx).as_int())
                .min()
                .expect("non-empty");
            let q = SelectQuery::range(KeyRange::at_least(r_min));
            verify_select(s_cert, &q, &result.s_partition, s_vo)?;
        }
        (Some(_), true) => {
            return Err(VerifyError::BandJoinBoundsInvalid {
                detail: "S partition proof for empty R partition".into(),
            });
        }
    }
    Ok(())
}
