//! Structural VO attacks: a malicious publisher rearranges *valid* proof
//! material instead of forging digests — selector confusion, digest
//! relocation, entry reordering, proof transplants. Every rearrangement
//! must be rejected.

use adp_core::prelude::*;
use adp_core::vo::{EntryChains, EntryProof, QueryVO, RepProof};
use adp_relation::{
    Column, CompareOp, KeyRange, Predicate, Record, Schema, SelectQuery, Table, Value, ValueType,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::OnceLock;

fn owner() -> &'static Owner {
    static OWNER: OnceLock<Owner> = OnceLock::new();
    OWNER.get_or_init(|| {
        let mut rng = StdRng::seed_from_u64(0x57A7);
        Owner::new(512, &mut rng)
    })
}

fn setup(base: u32) -> (SignedTable, Certificate) {
    let schema = Schema::new(
        vec![
            Column::new("k", ValueType::Int),
            Column::new("a", ValueType::Int),
            Column::new("b", ValueType::Text),
        ],
        "k",
    );
    let mut t = Table::new("s", schema);
    for i in 0..25i64 {
        t.insert(Record::new(vec![
            Value::Int(i * 7 + 3),
            Value::Int(i % 4),
            Value::from(format!("v{i}")),
        ]))
        .unwrap();
    }
    let st = owner()
        .sign_table(t, Domain::new(0, 100_000), SchemeConfig::with_base(base))
        .unwrap();
    let cert = owner().certificate(&st);
    (st, cert)
}

fn answer(st: &SignedTable, query: &SelectQuery) -> (Vec<Record>, adp_core::vo::RangeVO) {
    let (rows, vo) = Publisher::new(st).answer_select(query).unwrap();
    let QueryVO::Range(rv) = vo else {
        panic!("expected range VO")
    };
    (rows, rv)
}

#[test]
fn swapping_boundary_proofs_rejected() {
    let (st, cert) = setup(2);
    let query = SelectQuery::range(KeyRange::closed(20, 120));
    let (rows, mut rv) = answer(&st, &query);
    std::mem::swap(&mut rv.left, &mut rv.right);
    assert!(verify_select(&cert, &query, &rows, &QueryVO::Range(rv)).is_err());
}

#[test]
fn swapping_entry_chain_roots_rejected() {
    // Swap the up/down rep-MHT roots of an entry: direction domains must
    // make this fail even if the key sits at the domain midpoint.
    let (st, cert) = setup(2);
    let query = SelectQuery::range(KeyRange::closed(20, 120));
    let (rows, mut rv) = answer(&st, &query);
    for e in rv.entries.iter_mut() {
        if let EntryProof::Match {
            chains: EntryChains::Optimized { up_root, down_root },
            ..
        } = e
        {
            std::mem::swap(up_root, down_root);
            break;
        }
    }
    assert!(verify_select(&cert, &query, &rows, &QueryVO::Range(rv)).is_err());
}

#[test]
fn transplanting_entry_proofs_between_rows_rejected() {
    // Give row i the (valid) chain roots of row j.
    let (st, cert) = setup(2);
    let query = SelectQuery::range(KeyRange::closed(20, 120));
    let (rows, mut rv) = answer(&st, &query);
    assert!(rv.entries.len() >= 2);
    let first = rv.entries[0].clone();
    let second = rv.entries[1].clone();
    rv.entries[0] = second;
    rv.entries[1] = first;
    // Result order unchanged → proofs no longer line up with rows.
    assert!(verify_select(&cert, &query, &rows, &QueryVO::Range(rv)).is_err());
}

#[test]
fn forcing_canonical_selector_rejected() {
    // If the publisher's honest proof used a non-canonical representation,
    // downgrading the selector to Canonical (with the true MHT root) must
    // fail: the user's extended digits land on the non-canonical digest.
    let (st, cert) = setup(10);
    // Search for a query whose left boundary proof is non-canonical.
    for beta in [40i64, 61, 82, 103, 124] {
        for alpha in [10i64, 17, 24, 31] {
            let query = SelectQuery::range(KeyRange::closed(alpha, beta));
            let (rows, rv) = {
                let (rows, vo) = Publisher::new(&st).answer_select(&query).unwrap();
                match vo {
                    QueryVO::Range(rv) => (rows, rv),
                    _ => continue,
                }
            };
            if let Some(RepProof::NonCanonical { path, .. }) = &rv.left.selector {
                // Rebuild a Canonical selector using the true root derived
                // from the inclusion path — the strongest thing an
                // adversary could do.
                let mut rv2 = rv.clone();
                let fake_root = adp_crypto::verify_inclusion(
                    st.hasher(),
                    *path
                        .steps
                        .first()
                        .map(|s| &s.sibling)
                        .unwrap_or(&rv.left.attr_root),
                    path,
                );
                rv2.left.selector = Some(RepProof::Canonical {
                    mht_root: fake_root,
                });
                assert!(
                    verify_select(&cert, &query, &rows, &QueryVO::Range(rv2)).is_err(),
                    "canonical downgrade must fail (α={alpha}, β={beta})"
                );
                return; // found and tested a non-canonical case
            }
        }
    }
    panic!("no non-canonical boundary found in probe space — widen the search");
}

#[test]
fn wrong_noncanonical_index_rejected() {
    let (st, cert) = setup(10);
    for beta in [40i64, 61, 82, 103, 124] {
        for alpha in [10i64, 17, 24, 31] {
            let query = SelectQuery::range(KeyRange::closed(alpha, beta));
            let (rows, rv) = {
                let (rows, vo) = Publisher::new(&st).answer_select(&query).unwrap();
                match vo {
                    QueryVO::Range(rv) => (rows, rv),
                    _ => continue,
                }
            };
            if let Some(RepProof::NonCanonical {
                index,
                canon_digest,
                path,
            }) = rv.left.selector.clone()
            {
                let mut rv2 = rv.clone();
                rv2.left.selector = Some(RepProof::NonCanonical {
                    index: index + 1,
                    canon_digest,
                    path,
                });
                let verdict = verify_select(&cert, &query, &rows, &QueryVO::Range(rv2));
                assert!(verdict.is_err(), "index shift must fail");
                return;
            }
        }
    }
    panic!("no non-canonical boundary found in probe space");
}

#[test]
fn relocating_hidden_attr_digests_rejected() {
    // Swap the positions of two hidden attribute digests in a projected
    // entry: MHT leaf positions are load-bearing.
    let (st, cert) = setup(2);
    let query = SelectQuery::range(KeyRange::closed(20, 120)).project(&["k"]);
    let (rows, mut rv) = answer(&st, &query);
    let mut mutated = false;
    for e in rv.entries.iter_mut() {
        if let EntryProof::Match { attrs, .. } = e {
            if attrs.hidden.len() >= 2 {
                let tmp = attrs.hidden[0].1;
                attrs.hidden[0].1 = attrs.hidden[1].1;
                attrs.hidden[1].1 = tmp;
                mutated = true;
                break;
            }
        }
    }
    assert!(mutated, "projected entries should carry 2 hidden digests");
    assert!(verify_select(&cert, &query, &rows, &QueryVO::Range(rv)).is_err());
}

#[test]
fn duplicate_hidden_position_rejected() {
    let (st, cert) = setup(2);
    let query = SelectQuery::range(KeyRange::closed(20, 120)).project(&["k"]);
    let (rows, mut rv) = answer(&st, &query);
    for e in rv.entries.iter_mut() {
        if let EntryProof::Match { attrs, .. } = e {
            if attrs.hidden.len() >= 2 {
                attrs.hidden[1].0 = attrs.hidden[0].0; // double-cover position 0
                break;
            }
        }
    }
    let verdict = verify_select(&cert, &query, &rows, &QueryVO::Range(rv));
    assert!(matches!(
        verdict,
        Err(VerifyError::AttrCoverageInvalid { .. })
    ));
}

#[test]
fn filtered_disclosure_on_wrong_column_rejected() {
    // The filtered entry disclosess a value for a column no filter touches;
    // even if authentic, it proves nothing.
    let (st, cert) = setup(2);
    let query = SelectQuery::range(KeyRange::closed(3, 170)).filter(Predicate::new(
        "a",
        CompareOp::Eq,
        1i64,
    ));
    let (rows, vo) = Publisher::new(&st).answer_select(&query).unwrap();
    let QueryVO::Range(mut rv) = vo else { panic!() };
    let mut mutated = false;
    for e in rv.entries.iter_mut() {
        if let EntryProof::Filtered { attrs, .. } = e {
            // Move the disclosure to attr position 1 (column "b").
            for (pos, _) in attrs.disclosed.iter_mut() {
                *pos = 1;
            }
            // Fix hidden coverage accordingly so only the proof semantics
            // (not coverage) are at stake.
            attrs.hidden.retain(|(p, _)| *p != 1);
            mutated = true;
            break;
        }
    }
    assert!(mutated);
    let verdict = verify_select(&cert, &query, &rows, &QueryVO::Range(rv));
    assert!(verdict.is_err());
}

#[test]
fn duplicate_entry_forward_reference_rejected() {
    // Duplicate entries may only reference already-verified earlier rows.
    let (st, cert) = setup(2);
    let query = SelectQuery::range(KeyRange::closed(20, 120)).distinct();
    let (rows, mut rv) = answer(&st, &query);
    // Turn the first Match into a Duplicate pointing forward.
    for e in rv.entries.iter_mut() {
        if let EntryProof::Match { chains, attrs } = e.clone() {
            *e = EntryProof::Duplicate {
                of: 5,
                chains,
                attrs,
            };
            break;
        }
    }
    let mut rows = rows;
    rows.remove(0);
    let verdict = verify_select(&cert, &query, &rows, &QueryVO::Range(rv));
    assert!(matches!(
        verdict,
        Err(VerifyError::DuplicateRefInvalid { .. }) | Err(VerifyError::ResultCountMismatch { .. })
    ));
}

#[test]
fn boundary_intermediate_count_checked() {
    let (st, cert) = setup(2);
    let query = SelectQuery::range(KeyRange::closed(20, 120));
    let (rows, mut rv) = answer(&st, &query);
    rv.left.intermediates.pop();
    let verdict = verify_select(&cert, &query, &rows, &QueryVO::Range(rv));
    assert!(matches!(
        verdict,
        Err(VerifyError::BoundaryShapeInvalid { side: "left" })
    ));
}

#[test]
fn conceptual_vo_against_optimized_cert_rejected() {
    // Mode confusion: a VO built for the conceptual scheme presented to a
    // verifier configured for the optimized scheme.
    let (st_opt, cert_opt) = setup(2);
    let schema = st_opt.table().schema().clone();
    let records: Vec<Record> = st_opt
        .table()
        .rows()
        .iter()
        .map(|r| r.record.clone())
        .collect();
    let t = Table::from_records("s", schema, records).unwrap();
    let st_con = owner()
        .sign_table(t, *st_opt.domain(), SchemeConfig::conceptual())
        .unwrap();
    let query = SelectQuery::range(KeyRange::closed(20, 120));
    let (rows, vo) = Publisher::new(&st_con).answer_select(&query).unwrap();
    let verdict = verify_select(&cert_opt, &query, &rows, &vo);
    assert!(verdict.is_err());
}

#[test]
fn empty_proof_for_nonempty_range_rejected() {
    // Present a (legitimate, adjacent) empty proof from a different part
    // of the key space for a range that actually has rows.
    let (st, cert) = setup(2);
    // [200, 300] is beyond all keys (max key = 24*7+3 = 171) → honest empty.
    let empty_q = SelectQuery::range(KeyRange::closed(200, 300));
    let (_, empty_vo) = Publisher::new(&st).answer_select(&empty_q).unwrap();
    assert!(matches!(empty_vo, QueryVO::Empty(_)));
    // Replay it for a populated range.
    let full_q = SelectQuery::range(KeyRange::closed(20, 120));
    let verdict = verify_select(&cert, &full_q, &[], &empty_vo);
    assert!(verdict.is_err());
}
