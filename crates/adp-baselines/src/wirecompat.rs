//! Record encoding shared by the baseline schemes (kept locally so the
//! baselines crate does not depend on `adp-core`).

use adp_relation::Record;

/// Canonical byte encoding of a record: length-prefixed value encodings.
pub fn encode_record(record: &Record) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(&(record.arity() as u32).to_le_bytes());
    for v in record.values() {
        let enc = v.encode();
        out.extend_from_slice(&(enc.len() as u32).to_le_bytes());
        out.extend_from_slice(&enc);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use adp_relation::Value;

    #[test]
    fn encoding_is_injective() {
        let a = Record::new(vec![Value::from("ab"), Value::from("c")]);
        let b = Record::new(vec![Value::from("a"), Value::from("bc")]);
        assert_ne!(encode_record(&a), encode_record(&b));
        let c = Record::new(vec![Value::Int(1)]);
        let d = Record::new(vec![Value::Int(2)]);
        assert_ne!(encode_record(&c), encode_record(&d));
    }
}
