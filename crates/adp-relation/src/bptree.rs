//! An order-configurable B+-tree keyed on `(key, replica)` pairs.
//!
//! Section 6.3 of the paper observes that the scheme's per-record signatures
//! can live *inside the B+-tree leaf entries*, so that a record update —
//! which re-signs the record and its two neighbours — touches at most two
//! adjacent leaf nodes, in contrast to Merkle-hash-tree schemes that must
//! recompute a path of digests up to the root (a locking hot-spot).
//!
//! To let the benchmark `sec63_updates` quantify exactly that claim, the
//! tree counts node visits ([`BPlusTree::stats`]) and can report which leaf
//! a key resides in ([`BPlusTree::leaf_id_of`]).

use std::fmt;
use std::ops::Bound;
use std::sync::atomic::{AtomicU64, Ordering};

/// Composite key: `(key attribute value, replica number)`.
pub type TreeKey = (i64, u32);

/// Node-visit statistics, updated by every operation (atomics so trees —
/// and the signed tables embedding them — can be shared across publisher
/// threads).
#[derive(Debug, Default)]
pub struct TreeStats {
    nodes_visited: AtomicU64,
    leaves_visited: AtomicU64,
}

impl Clone for TreeStats {
    fn clone(&self) -> Self {
        TreeStats {
            nodes_visited: AtomicU64::new(self.nodes_visited()),
            leaves_visited: AtomicU64::new(self.leaves_visited()),
        }
    }
}

impl TreeStats {
    /// Total nodes (internal + leaf) touched since the last reset.
    pub fn nodes_visited(&self) -> u64 {
        self.nodes_visited.load(Ordering::Relaxed)
    }

    /// Leaf nodes touched since the last reset.
    pub fn leaves_visited(&self) -> u64 {
        self.leaves_visited.load(Ordering::Relaxed)
    }

    /// Zeroes both counters.
    pub fn reset(&self) {
        self.nodes_visited.store(0, Ordering::Relaxed);
        self.leaves_visited.store(0, Ordering::Relaxed);
    }

    fn touch(&self, is_leaf: bool) {
        self.nodes_visited.fetch_add(1, Ordering::Relaxed);
        if is_leaf {
            self.leaves_visited.fetch_add(1, Ordering::Relaxed);
        }
    }
}

#[derive(Clone)]
enum Node<V> {
    Leaf {
        entries: Vec<(TreeKey, V)>,
    },
    Internal {
        keys: Vec<TreeKey>,
        children: Vec<Node<V>>,
    },
}

impl<V> Node<V> {
    fn is_leaf(&self) -> bool {
        matches!(self, Node::Leaf { .. })
    }

    fn len(&self) -> usize {
        match self {
            Node::Leaf { entries } => entries.len(),
            Node::Internal { children, .. } => children.len(),
        }
    }

    /// Smallest key in the subtree.
    fn min_key(&self) -> TreeKey {
        match self {
            Node::Leaf { entries } => entries[0].0,
            Node::Internal { children, .. } => children[0].min_key(),
        }
    }
}

/// A B+-tree mapping `(key, replica)` to values of type `V`.
///
/// Cloning copies the whole tree (used when a signed table is snapshotted
/// for live reload); the visit counters are cloned at their current values.
#[derive(Clone)]
pub struct BPlusTree<V> {
    root: Node<V>,
    order: usize,
    len: usize,
    stats: TreeStats,
}

impl<V> fmt::Debug for BPlusTree<V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "BPlusTree(len={}, order={}, height={})",
            self.len,
            self.order,
            self.height()
        )
    }
}

impl<V> Default for BPlusTree<V> {
    fn default() -> Self {
        Self::new(64)
    }
}

impl<V> BPlusTree<V> {
    /// Creates an empty tree with the given fanout (max entries per node).
    ///
    /// # Panics
    /// If `order < 4`.
    pub fn new(order: usize) -> Self {
        assert!(order >= 4, "B+-tree order must be at least 4");
        BPlusTree {
            root: Node::Leaf {
                entries: Vec::new(),
            },
            order,
            len: 0,
            stats: TreeStats::default(),
        }
    }

    /// Number of stored entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True iff no entries are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Node-visit statistics.
    pub fn stats(&self) -> &TreeStats {
        &self.stats
    }

    /// Height of the tree (1 for a lone leaf).
    pub fn height(&self) -> usize {
        let mut h = 1;
        let mut node = &self.root;
        while let Node::Internal { children, .. } = node {
            h += 1;
            node = &children[0];
        }
        h
    }

    /// Total node count (for memory accounting).
    pub fn node_count(&self) -> usize {
        fn count<V>(n: &Node<V>) -> usize {
            match n {
                Node::Leaf { .. } => 1,
                Node::Internal { children, .. } => 1 + children.iter().map(count).sum::<usize>(),
            }
        }
        count(&self.root)
    }

    /// Looks up the value for `key`.
    pub fn get(&self, key: TreeKey) -> Option<&V> {
        let mut node = &self.root;
        loop {
            self.stats.touch(node.is_leaf());
            match node {
                Node::Leaf { entries } => {
                    return entries
                        .binary_search_by_key(&key, |(k, _)| *k)
                        .ok()
                        .map(|i| &entries[i].1);
                }
                Node::Internal { keys, children } => {
                    let idx = keys.partition_point(|k| *k <= key);
                    node = &children[idx];
                }
            }
        }
    }

    /// Mutable lookup.
    pub fn get_mut(&mut self, key: TreeKey) -> Option<&mut V> {
        let stats = &self.stats;
        let mut node = &mut self.root;
        loop {
            stats.touch(node.is_leaf());
            match node {
                Node::Leaf { entries } => {
                    return match entries.binary_search_by_key(&key, |(k, _)| *k) {
                        Ok(i) => Some(&mut entries[i].1),
                        Err(_) => None,
                    };
                }
                Node::Internal { keys, children } => {
                    let idx = keys.partition_point(|k| *k <= key);
                    node = &mut children[idx];
                }
            }
        }
    }

    /// Inserts `value` under `key`, returning the previous value if any.
    pub fn insert(&mut self, key: TreeKey, value: V) -> Option<V> {
        let order = self.order;
        let (old, split) = Self::insert_rec(&mut self.root, key, value, order, &self.stats);
        if let Some((sep, right)) = split {
            let left = std::mem::replace(
                &mut self.root,
                Node::Leaf {
                    entries: Vec::new(),
                },
            );
            self.root = Node::Internal {
                keys: vec![sep],
                children: vec![left, right],
            };
        }
        if old.is_none() {
            self.len += 1;
        }
        old
    }

    fn insert_rec(
        node: &mut Node<V>,
        key: TreeKey,
        value: V,
        order: usize,
        stats: &TreeStats,
    ) -> (Option<V>, Option<(TreeKey, Node<V>)>) {
        stats.touch(node.is_leaf());
        match node {
            Node::Leaf { entries } => match entries.binary_search_by_key(&key, |(k, _)| *k) {
                Ok(i) => {
                    let old = std::mem::replace(&mut entries[i].1, value);
                    (Some(old), None)
                }
                Err(i) => {
                    entries.insert(i, (key, value));
                    if entries.len() > order {
                        let right = entries.split_off(entries.len() / 2);
                        let sep = right[0].0;
                        (None, Some((sep, Node::Leaf { entries: right })))
                    } else {
                        (None, None)
                    }
                }
            },
            Node::Internal { keys, children } => {
                let idx = keys.partition_point(|k| *k <= key);
                let (old, split) = Self::insert_rec(&mut children[idx], key, value, order, stats);
                if let Some((sep, right)) = split {
                    keys.insert(idx, sep);
                    children.insert(idx + 1, right);
                    if children.len() > order {
                        let mid = children.len() / 2;
                        let right_children = children.split_off(mid);
                        let right_keys = keys.split_off(mid);
                        // keys has `mid` entries now; the separator promoted
                        // upward is the last of them.
                        let sep_up = keys.pop().expect("internal node has keys");
                        let right_node = Node::Internal {
                            keys: right_keys,
                            children: right_children,
                        };
                        return (old, Some((sep_up, right_node)));
                    }
                }
                (old, None)
            }
        }
    }

    /// Removes `key`, returning its value.
    pub fn remove(&mut self, key: TreeKey) -> Option<V> {
        let order = self.order;
        let removed = Self::remove_rec(&mut self.root, key, order, &self.stats);
        if removed.is_some() {
            self.len -= 1;
        }
        // Collapse a root that lost all separators.
        let collapse = match &mut self.root {
            Node::Internal { children, .. } if children.len() == 1 => children.pop(),
            _ => None,
        };
        if let Some(child) = collapse {
            self.root = child;
        }
        removed
    }

    fn remove_rec(node: &mut Node<V>, key: TreeKey, order: usize, stats: &TreeStats) -> Option<V> {
        stats.touch(node.is_leaf());
        match node {
            Node::Leaf { entries } => match entries.binary_search_by_key(&key, |(k, _)| *k) {
                Ok(i) => Some(entries.remove(i).1),
                Err(_) => None,
            },
            Node::Internal { keys, children } => {
                let idx = keys.partition_point(|k| *k <= key);
                let removed = Self::remove_rec(&mut children[idx], key, order, stats);
                if removed.is_some() {
                    Self::rebalance_child(keys, children, idx, order, stats);
                }
                removed
            }
        }
    }

    /// Restores the minimum-occupancy invariant of `children[idx]` after a
    /// removal, by borrowing from or merging with a sibling.
    fn rebalance_child(
        keys: &mut Vec<TreeKey>,
        children: &mut Vec<Node<V>>,
        idx: usize,
        order: usize,
        stats: &TreeStats,
    ) {
        let min = order / 2;
        if children[idx].len() >= min {
            return;
        }
        // Try borrowing from the left sibling.
        if idx > 0 && children[idx - 1].len() > min {
            stats.touch(children[idx - 1].is_leaf());
            let (left, right) = children.split_at_mut(idx);
            match (&mut left[idx - 1], &mut right[0]) {
                (Node::Leaf { entries: le }, Node::Leaf { entries: re }) => {
                    let moved = le.pop().unwrap();
                    keys[idx - 1] = moved.0;
                    re.insert(0, moved);
                }
                (
                    Node::Internal {
                        keys: lk,
                        children: lc,
                    },
                    Node::Internal {
                        keys: rk,
                        children: rc,
                    },
                ) => {
                    let moved_child = lc.pop().unwrap();
                    let moved_key = lk.pop().unwrap();
                    rk.insert(0, keys[idx - 1]);
                    keys[idx - 1] = moved_key;
                    rc.insert(0, moved_child);
                }
                _ => unreachable!("siblings are at the same level"),
            }
            return;
        }
        // Try borrowing from the right sibling.
        if idx + 1 < children.len() && children[idx + 1].len() > min {
            stats.touch(children[idx + 1].is_leaf());
            let (left, right) = children.split_at_mut(idx + 1);
            match (&mut left[idx], &mut right[0]) {
                (Node::Leaf { entries: le }, Node::Leaf { entries: re }) => {
                    let moved = re.remove(0);
                    le.push(moved);
                    keys[idx] = re[0].0;
                }
                (
                    Node::Internal {
                        keys: lk,
                        children: lc,
                    },
                    Node::Internal {
                        keys: rk,
                        children: rc,
                    },
                ) => {
                    lk.push(keys[idx]);
                    keys[idx] = rk.remove(0);
                    lc.push(rc.remove(0));
                }
                _ => unreachable!("siblings are at the same level"),
            }
            return;
        }
        // Merge with a sibling.
        let merge_left = if idx > 0 { idx - 1 } else { idx };
        let right_node = children.remove(merge_left + 1);
        let sep = keys.remove(merge_left);
        stats.touch(right_node.is_leaf());
        match (&mut children[merge_left], right_node) {
            (Node::Leaf { entries: le }, Node::Leaf { entries: re }) => {
                le.extend(re);
            }
            (
                Node::Internal {
                    keys: lk,
                    children: lc,
                },
                Node::Internal {
                    keys: rk,
                    children: rc,
                },
            ) => {
                lk.push(sep);
                lk.extend(rk);
                lc.extend(rc);
            }
            _ => unreachable!("siblings are at the same level"),
        }
    }

    /// Iterates entries with keys in the given bounds, in order, invoking
    /// `f` for each. Returns the number of entries visited.
    pub fn range_for_each(
        &self,
        lo: Bound<TreeKey>,
        hi: Bound<TreeKey>,
        mut f: impl FnMut(TreeKey, &V),
    ) -> usize {
        fn walk<V>(
            node: &Node<V>,
            lo: &Bound<TreeKey>,
            hi: &Bound<TreeKey>,
            stats: &TreeStats,
            f: &mut impl FnMut(TreeKey, &V),
            count: &mut usize,
        ) {
            stats.touch(node.is_leaf());
            match node {
                Node::Leaf { entries } => {
                    for (k, v) in entries {
                        let above_lo = match lo {
                            Bound::Unbounded => true,
                            Bound::Included(a) => k >= a,
                            Bound::Excluded(a) => k > a,
                        };
                        let below_hi = match hi {
                            Bound::Unbounded => true,
                            Bound::Included(b) => k <= b,
                            Bound::Excluded(b) => k < b,
                        };
                        if above_lo && below_hi {
                            f(*k, v);
                            *count += 1;
                        }
                    }
                }
                Node::Internal { keys, children } => {
                    let start = match lo {
                        Bound::Unbounded => 0,
                        Bound::Included(a) | Bound::Excluded(a) => keys.partition_point(|k| k <= a),
                    };
                    let end = match hi {
                        Bound::Unbounded => children.len() - 1,
                        Bound::Included(b) | Bound::Excluded(b) => keys.partition_point(|k| k <= b),
                    };
                    for child in &children[start..=end] {
                        walk(child, lo, hi, stats, f, count);
                    }
                }
            }
        }
        let mut count = 0;
        walk(&self.root, &lo, &hi, &self.stats, &mut f, &mut count);
        count
    }

    /// Collects the key range into a vector (convenience for tests).
    pub fn range_keys(&self, lo: Bound<TreeKey>, hi: Bound<TreeKey>) -> Vec<TreeKey> {
        let mut out = Vec::new();
        self.range_for_each(lo, hi, |k, _| out.push(k));
        out
    }

    /// Identifies the leaf containing `key` by the smallest key stored in
    /// that leaf (a stable id as long as the leaf is not restructured).
    /// Used by the update-locality benchmark to show that re-signing a
    /// record and its neighbours touches at most two adjacent leaves.
    pub fn leaf_id_of(&self, key: TreeKey) -> Option<TreeKey> {
        let mut node = &self.root;
        loop {
            self.stats.touch(node.is_leaf());
            match node {
                Node::Leaf { entries } => {
                    return if entries.binary_search_by_key(&key, |(k, _)| *k).is_ok() {
                        Some(entries[0].0)
                    } else {
                        None
                    };
                }
                Node::Internal { keys, children } => {
                    let idx = keys.partition_point(|k| *k <= key);
                    node = &children[idx];
                }
            }
        }
    }

    /// Checks structural invariants (sortedness, occupancy, separator
    /// consistency). Test helper; `O(n)`.
    pub fn check_invariants(&self) {
        fn check<V>(
            node: &Node<V>,
            order: usize,
            is_root: bool,
            depth: usize,
            leaf_depth: &mut Option<usize>,
        ) {
            match node {
                Node::Leaf { entries } => {
                    assert!(entries.windows(2).all(|w| w[0].0 < w[1].0), "leaf sorted");
                    match leaf_depth {
                        None => *leaf_depth = Some(depth),
                        Some(d) => assert_eq!(*d, depth, "all leaves at same depth"),
                    }
                    if !is_root {
                        assert!(entries.len() >= order / 2, "leaf occupancy");
                    }
                    assert!(entries.len() <= order, "leaf overflow");
                }
                Node::Internal { keys, children } => {
                    assert_eq!(keys.len() + 1, children.len(), "separator count");
                    assert!(keys.windows(2).all(|w| w[0] < w[1]), "separators sorted");
                    if !is_root {
                        assert!(children.len() >= order / 2, "internal occupancy");
                    }
                    assert!(children.len() <= order, "internal overflow");
                    for (i, sep) in keys.iter().enumerate() {
                        assert!(children[i + 1].min_key() >= *sep, "separator bound");
                    }
                    for c in children {
                        check(c, order, false, depth + 1, leaf_depth);
                    }
                }
            }
        }
        let mut leaf_depth = None;
        check(&self.root, self.order, true, 0, &mut leaf_depth);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{seq::SliceRandom, Rng, SeedableRng};

    #[test]
    fn insert_get_roundtrip() {
        let mut t = BPlusTree::new(4);
        for i in 0..100i64 {
            assert!(t.insert((i, 0), i * 10).is_none());
        }
        assert_eq!(t.len(), 100);
        for i in 0..100i64 {
            assert_eq!(t.get((i, 0)), Some(&(i * 10)));
        }
        assert_eq!(t.get((200, 0)), None);
        t.check_invariants();
    }

    #[test]
    fn insert_replaces() {
        let mut t = BPlusTree::new(4);
        assert_eq!(t.insert((1, 0), "a"), None);
        assert_eq!(t.insert((1, 0), "b"), Some("a"));
        assert_eq!(t.len(), 1);
        assert_eq!(t.get((1, 0)), Some(&"b"));
    }

    #[test]
    fn replica_keys_are_distinct() {
        let mut t = BPlusTree::new(4);
        t.insert((5, 0), "first");
        t.insert((5, 1), "second");
        assert_eq!(t.len(), 2);
        assert_eq!(t.get((5, 0)), Some(&"first"));
        assert_eq!(t.get((5, 1)), Some(&"second"));
    }

    #[test]
    fn random_inserts_maintain_invariants() {
        let mut rng = StdRng::seed_from_u64(42);
        for order in [4usize, 8, 64] {
            let mut t = BPlusTree::new(order);
            let mut keys: Vec<i64> = (0..500).collect();
            keys.shuffle(&mut rng);
            for k in &keys {
                t.insert((*k, 0), *k);
                if k % 97 == 0 {
                    t.check_invariants();
                }
            }
            t.check_invariants();
            assert_eq!(t.len(), 500);
            let all = t.range_keys(Bound::Unbounded, Bound::Unbounded);
            assert!(all.windows(2).all(|w| w[0] < w[1]));
            assert_eq!(all.len(), 500);
        }
    }

    #[test]
    fn range_bounds() {
        let mut t = BPlusTree::new(4);
        for i in 0..20i64 {
            t.insert((i, 0), ());
        }
        assert_eq!(
            t.range_keys(Bound::Included((5, 0)), Bound::Excluded((8, 0))),
            vec![(5, 0), (6, 0), (7, 0)]
        );
        assert_eq!(
            t.range_keys(Bound::Excluded((17, 0)), Bound::Unbounded),
            vec![(18, 0), (19, 0)]
        );
        assert_eq!(
            t.range_keys(Bound::Included((50, 0)), Bound::Unbounded),
            vec![]
        );
    }

    #[test]
    fn removal_with_rebalance() {
        let mut rng = StdRng::seed_from_u64(7);
        for order in [4usize, 8] {
            let mut t = BPlusTree::new(order);
            let n = 300i64;
            for i in 0..n {
                t.insert((i, 0), i);
            }
            let mut keys: Vec<i64> = (0..n).collect();
            keys.shuffle(&mut rng);
            for (step, k) in keys.iter().enumerate() {
                assert_eq!(t.remove((*k, 0)), Some(*k), "order {order}");
                if step % 31 == 0 {
                    t.check_invariants();
                }
            }
            assert!(t.is_empty());
            t.check_invariants();
        }
    }

    #[test]
    fn remove_missing_returns_none() {
        let mut t: BPlusTree<()> = BPlusTree::new(4);
        t.insert((1, 0), ());
        assert_eq!(t.remove((2, 0)), None);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn mixed_workload_matches_btreemap() {
        use std::collections::BTreeMap;
        let mut rng = StdRng::seed_from_u64(99);
        let mut t = BPlusTree::new(6);
        let mut model: BTreeMap<TreeKey, u64> = BTreeMap::new();
        for _ in 0..3000 {
            let key = (rng.gen_range(0..200i64), rng.gen_range(0..3u32));
            match rng.gen_range(0..3) {
                0 => {
                    let v = rng.gen::<u64>();
                    assert_eq!(t.insert(key, v), model.insert(key, v));
                }
                1 => {
                    assert_eq!(t.remove(key), model.remove(&key));
                }
                _ => {
                    assert_eq!(t.get(key), model.get(&key));
                }
            }
        }
        t.check_invariants();
        assert_eq!(t.len(), model.len());
        let got = t.range_keys(Bound::Unbounded, Bound::Unbounded);
        let want: Vec<TreeKey> = model.keys().copied().collect();
        assert_eq!(got, want);
    }

    #[test]
    fn get_mut_updates() {
        let mut t = BPlusTree::new(4);
        t.insert((1, 0), 10);
        *t.get_mut((1, 0)).unwrap() = 20;
        assert_eq!(t.get((1, 0)), Some(&20));
        assert_eq!(t.get_mut((9, 9)), None);
    }

    #[test]
    fn stats_count_node_visits() {
        let mut t = BPlusTree::new(4);
        for i in 0..100i64 {
            t.insert((i, 0), ());
        }
        t.stats().reset();
        let _ = t.get((50, 0));
        let visited = t.stats().nodes_visited();
        assert!(visited as usize <= t.height());
        assert!(visited >= 2);
        assert_eq!(t.stats().leaves_visited(), 1);
    }

    #[test]
    fn neighbour_updates_stay_leaf_local() {
        // The Section 6.3 claim: three adjacent records live in at most two
        // adjacent leaves.
        let mut t = BPlusTree::new(16);
        for i in 0..1000i64 {
            t.insert((i, 0), ());
        }
        for mid in 1..999i64 {
            let ids: Vec<_> = [(mid - 1, 0), (mid, 0), (mid + 1, 0)]
                .iter()
                .filter_map(|k| t.leaf_id_of(*k))
                .collect();
            let mut distinct = ids.clone();
            distinct.dedup();
            assert!(
                distinct.len() <= 2,
                "three neighbours span {} leaves",
                distinct.len()
            );
        }
    }

    #[test]
    fn height_and_node_count_grow_sublinearly() {
        let mut t = BPlusTree::new(64);
        for i in 0..10_000i64 {
            t.insert((i, 0), ());
        }
        assert!(t.height() <= 4);
        assert!(t.node_count() < 1000);
    }
}
