//! Bulk-ingest end-to-end: owner → store → live server → socket →
//! `RemoteVerifier`, across an update and a process "restart".
//!
//! The flow being proven: a table is signed and persisted, served from
//! its store, queried and verified over a real socket; the owner then
//! ships an update batch (canonical ops + O(k) re-signed signatures),
//! the server verifies, logs, and hot-swaps it (bumping the table epoch
//! so cached VOs die lazily); queries verify again; the server restarts
//! from disk alone and the post-update state still verifies. Tampered
//! update batches — in flight or in the on-disk log — are rejected.

use adp_core::prelude::*;
use adp_relation::{Column, KeyRange, Record, Schema, SelectQuery, Table, Value, ValueType};
use adp_server::{RemoteVerifier, Server, ServerConfig, UpdateError};
use adp_store::{Store, StoreError, LOG_FILE};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fs;
use std::path::PathBuf;

fn workdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("adp-server-store-{name}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn schema() -> Schema {
    Schema::new(
        vec![
            Column::new("id", ValueType::Int),
            Column::new("name", ValueType::Text),
            Column::new("salary", ValueType::Int),
        ],
        "salary",
    )
}

fn rec(id: i64, salary: i64) -> Record {
    Record::new(vec![
        Value::Int(id),
        Value::from(format!("e{id}")),
        Value::Int(salary),
    ])
}

#[test]
fn ingest_update_restart_verify_over_socket() {
    let mut rng = StdRng::seed_from_u64(0xE2E);
    let owner = Owner::new(512, &mut rng);
    let mut t = Table::new("emp", schema());
    for i in 0..10i64 {
        t.insert(rec(i, 1_000 + i * 500)).unwrap();
    }
    let signed = owner
        .sign_table(t, Domain::new(0, 100_000), SchemeConfig::default())
        .unwrap();
    let cert = owner.certificate(&signed);
    // The owner's in-memory replica (what it keeps signing against).
    let mut owner_st = signed.clone();

    let dir = workdir("e2e");
    Store::create(&dir, signed).unwrap();

    // ---- serve from the store ------------------------------------------
    let mut server = Server::new(ServerConfig::default());
    server.open_store(0, &dir).unwrap();
    let handle = server.serve("127.0.0.1:0").unwrap();
    let epoch0 = handle.table_epoch(0).unwrap();

    let mut user = RemoteVerifier::connect(handle.addr(), cert.clone(), 0).unwrap();
    let query = SelectQuery::range(KeyRange::closed(1_000, 3_000));
    let pre = user.select(&query).expect("pre-update query verifies");
    assert_eq!(pre.rows.len(), 5);
    // Query again: served from the VO cache.
    user.select(&query).unwrap();
    let stats = user.client_mut().stats().unwrap();
    assert!(stats.cache_hits >= 1);
    assert_eq!(stats.invalidations, 0);

    // ---- live update ----------------------------------------------------
    let ops = vec![
        Mutation::Insert(rec(100, 2_250)),
        Mutation::Delete {
            key: 3_000,
            replica: 0,
        },
    ];
    let report = owner.apply_batch(&mut owner_st, ops).unwrap();
    let new_epoch = handle
        .apply_update(0, &report.ops, &report.resigned)
        .expect("update applies");
    assert!(new_epoch > epoch0);

    // The same query now answers the new state — the stale cache entry is
    // dropped lazily and counted.
    let post = user.select(&query).expect("post-update query verifies");
    assert_eq!(post.rows.len(), 5); // +1 insert, -1 delete
    let salaries: Vec<i64> = post.rows.iter().filter_map(|r| r.get(2).as_int()).collect();
    assert!(salaries.contains(&2_250));
    assert!(!salaries.contains(&3_000));
    let stats = user.client_mut().stats().unwrap();
    assert!(stats.invalidations >= 1, "{stats:?}");

    // ---- tampered in-flight update rejected -----------------------------
    let mut forged = report.resigned.clone();
    let mut bytes = forged[0].1.to_bytes();
    bytes[5] ^= 0x20;
    forged[0].1 = adp_crypto::Signature::from_bytes(&bytes);
    // Replaying the same batch would dirty different positions anyway, so
    // craft a fresh batch signed by the owner and forge one signature.
    let report2 = owner
        .apply_batch(
            &mut owner_st.clone(),
            vec![Mutation::Insert(rec(101, 9_999))],
        )
        .unwrap();
    let mut forged2 = report2.resigned.clone();
    let mut b2 = forged2[1].1.to_bytes();
    b2[7] ^= 0x40;
    forged2[1].1 = adp_crypto::Signature::from_bytes(&b2);
    let err = handle
        .apply_update(0, &report2.ops, &forged2)
        .expect_err("forged update must be rejected");
    assert!(matches!(
        err,
        UpdateError::Store(StoreError::Owner(
            adp_core::owner::OwnerError::ResignatureInvalid { .. }
        ))
    ));
    // Service unaffected by the rejected update.
    assert_eq!(user.select(&query).unwrap().rows.len(), 5);

    handle.shutdown();

    // ---- restart from disk ----------------------------------------------
    let mut server = Server::new(ServerConfig::default());
    server.open_store(0, &dir).unwrap();
    let handle = server.serve("127.0.0.1:0").unwrap();
    let mut user = RemoteVerifier::connect(handle.addr(), cert.clone(), 0).unwrap();
    let reloaded = user.select(&query).expect("post-restart query verifies");
    assert_eq!(reloaded.rows.len(), 5);
    let salaries: Vec<i64> = reloaded
        .rows
        .iter()
        .filter_map(|r| r.get(2).as_int())
        .collect();
    assert!(salaries.contains(&2_250), "update survived the restart");
    // The owner's in-memory replica and the twice-reloaded table agree on
    // every VO byte: verify a few more shapes.
    for q in [
        SelectQuery::range(KeyRange::all()),
        SelectQuery::range(KeyRange::at_least(5_000)).project(&["name"]),
    ] {
        user.select(&q)
            .unwrap_or_else(|e| panic!("query {q:?} must verify after restart: {e}"));
    }
    handle.shutdown();

    // ---- a bit-flipped log refuses to load ------------------------------
    let log_path = dir.join(LOG_FILE);
    let pristine = fs::read(&log_path).unwrap();
    let mut bad = pristine.clone();
    let mid = 10 + (bad.len() - 10) / 2;
    bad[mid] ^= 0x08;
    fs::write(&log_path, &bad).unwrap();
    let mut server = Server::new(ServerConfig::default());
    assert!(
        server.open_store(0, &dir).is_err(),
        "tampered log must fail to open"
    );
    fs::write(&log_path, &pristine).unwrap();

    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn open_store_refuses_unauditable_snapshot() {
    // A snapshot whose CRCs are valid but whose signatures don't match the
    // data decodes structurally — the publisher-side audit at open_store
    // must still refuse to serve it.
    let mut rng = StdRng::seed_from_u64(0xA0D1);
    let owner = Owner::new(512, &mut rng);
    let mut t = Table::new("emp", schema());
    for i in 0..4i64 {
        t.insert(rec(i, 1_000 + i * 100)).unwrap();
    }
    let signed = owner
        .sign_table(t, Domain::new(0, 100_000), SchemeConfig::default())
        .unwrap();
    // Re-assemble the table with one signature byte flipped, then frame it
    // as a perfectly well-formed snapshot.
    let mut sigs: Vec<adp_crypto::Signature> = (0..signed.chain_len())
        .map(|i| signed.entry(i).signature.clone())
        .collect();
    let mut bytes = sigs[2].to_bytes();
    bytes[0] ^= 0x01;
    sigs[2] = adp_crypto::Signature::from_bytes(&bytes);
    let forged = SignedTable::from_parts(
        signed.table().clone(),
        *signed.domain(),
        *signed.config(),
        sigs,
        signed.public_key().clone(),
    )
    .unwrap();

    let dir = workdir("unauditable");
    std::fs::create_dir_all(&dir).unwrap();
    std::fs::write(
        dir.join(adp_store::SNAPSHOT_FILE),
        adp_store::format::encode_snapshot(&forged, 0),
    )
    .unwrap();
    std::fs::write(dir.join(LOG_FILE), adp_store::log::log_header()).unwrap();

    // The raw store opens (CRCs pass) ...
    assert!(Store::open(&dir).is_ok());
    // ... but the serving path refuses it.
    let mut server = Server::new(ServerConfig::default());
    assert!(matches!(
        server.open_store(0, &dir),
        Err(StoreError::AuditFailed)
    ));
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn updates_require_a_store_backed_table() {
    let mut rng = StdRng::seed_from_u64(0xE2F);
    let owner = Owner::new(512, &mut rng);
    let mut t = Table::new("emp", schema());
    t.insert(rec(1, 1_000)).unwrap();
    let signed = owner
        .sign_table(t, Domain::new(0, 100_000), SchemeConfig::default())
        .unwrap();
    let mut owner_st = signed.clone();
    let mut server = Server::new(ServerConfig::default());
    server.add_table(3, signed);
    let handle = server.serve("127.0.0.1:0").unwrap();

    let report = owner
        .apply_batch(&mut owner_st, vec![Mutation::Insert(rec(2, 2_000))])
        .unwrap();
    assert!(matches!(
        handle.apply_update(3, &report.ops, &report.resigned),
        Err(UpdateError::NotStoreBacked(3))
    ));
    assert!(matches!(
        handle.apply_update(9, &report.ops, &report.resigned),
        Err(UpdateError::UnknownTable(9))
    ));
    handle.shutdown();
}
