//! Verified analytics over an untrusted publisher: the client-layer API.
//!
//! Shows [`adp::core::client::Client`]: session-level cost accounting (the
//! Figure 9 metric live), `K ≠ α` selections as a union of two verified
//! ranges (Section 4.1), and COUNT/SUM/AVG/MIN/MAX computed locally over
//! verified results — an untrusted publisher cannot bias a verified SUM by
//! omitting rows (Section 4.2's duplicate-retention rationale).
//!
//! Run with: `cargo run --release --example verified_analytics`

use adp::core::prelude::*;
use adp::relation::{
    Column, CompareOp, KeyRange, Predicate, Record, Schema, SelectQuery, Table, Value, ValueType,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    // An orders ledger keyed by order id.
    let schema = Schema::new(
        vec![
            Column::new("order_id", ValueType::Int),
            Column::new("region", ValueType::Int),
            Column::new("amount_cents", ValueType::Int),
        ],
        "order_id",
    );
    let mut rng = StdRng::seed_from_u64(0xA11A);
    let mut table = Table::new("orders", schema);
    let mut true_sum_region1 = 0i64;
    for i in 0..500i64 {
        let region = rng.gen_range(1..4);
        let amount = rng.gen_range(100..100_000);
        if region == 1 && (100..400).contains(&i) {
            true_sum_region1 += amount;
        }
        table
            .insert(Record::new(vec![
                Value::Int(i),
                Value::Int(region),
                Value::Int(amount),
            ]))
            .unwrap();
    }

    let mut owner_rng = StdRng::seed_from_u64(0x0713);
    let owner = Owner::new(1024, &mut owner_rng);
    let signed = owner
        .sign_table(table, Domain::new(-2, 1_000_000), SchemeConfig::default())
        .unwrap();
    let publisher = Publisher::new(&signed);
    let mut client = Client::new(owner.certificate(&signed));

    // Verified revenue for region 1, orders 100..400.
    let q = SelectQuery::range(KeyRange::closed(100, 399)).filter(Predicate::new(
        "region",
        CompareOp::Eq,
        1i64,
    ));
    let sum = client
        .aggregate(&publisher, &q, "amount_cents", AggregateKind::Sum)
        .unwrap();
    println!("verified SUM(amount) for region 1, orders [100, 400): {sum:?}");
    assert_eq!(sum, AggregateValue::Sum(true_sum_region1));
    let avg = client
        .aggregate(&publisher, &q, "amount_cents", AggregateKind::Avg)
        .unwrap();
    let count = client
        .aggregate(&publisher, &q, "amount_cents", AggregateKind::Count)
        .unwrap();
    println!("verified AVG: {avg:?}, verified COUNT: {count:?}");

    // K ≠ α: everything except order 250, as two verified ranges.
    let all_but = client
        .select_ne(&publisher, 250, &SelectQuery::range(KeyRange::all()))
        .unwrap();
    println!(
        "\nK != 250 over the full ledger: {} rows (two verified halves)",
        all_but.rows.len()
    );
    assert_eq!(all_but.rows.len(), 499);

    // Session accounting: the live Figure 9 metric.
    let stats = client.stats();
    println!(
        "\nsession: {} queries, {} rows verified, {} sigs checked, {} hash ops",
        stats.queries, stats.rows_verified, stats.signatures_verified, stats.hash_ops
    );
    println!(
        "traffic: {} result bytes + {} VO bytes → {:.1}% authentication overhead",
        stats.result_bytes,
        stats.vo_bytes,
        stats.traffic_overhead_pct()
    );
    println!(
        "verification wall time: {:.2} ms total",
        stats.verify_time.as_secs_f64() * 1e3
    );
}
