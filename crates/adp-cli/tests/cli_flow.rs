//! End-to-end CLI tests: drive the real `adp` binary through the
//! publish → query → verify file workflow, including tampering scenarios.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn adp(args: &[&str], cwd: &Path) -> Output {
    Command::new(env!("CARGO_BIN_EXE_adp"))
        .args(args)
        .current_dir(cwd)
        .output()
        .expect("binary runs")
}

fn assert_ok(out: &Output, ctx: &str) {
    assert!(
        out.status.success(),
        "{ctx} failed:\nstdout: {}\nstderr: {}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
}

fn workdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("adp-cli-test-{name}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

fn sample_csv(dir: &Path) {
    fs::write(
        dir.join("emp.csv"),
        "id,name,salary,dept\n\
         5,Alice,2000,1\n\
         2,\"Chen, C\",3500,2\n\
         1,Dana,8010,1\n\
         4,Bob,12100,3\n\
         3,Eve,25000,2\n",
    )
    .unwrap();
}

fn publish(dir: &Path) {
    let out = adp(
        &[
            "publish",
            "--csv",
            "emp.csv",
            "--key",
            "salary",
            "--domain",
            "0..100000",
            "--out",
            "pub",
            "--bits",
            "512",
        ],
        dir,
    );
    assert_ok(&out, "publish");
}

#[test]
fn publish_query_verify_roundtrip() {
    let dir = workdir("roundtrip");
    sample_csv(&dir);
    publish(&dir);
    for f in ["table.csv", "signatures.bin", "certificate.bin"] {
        assert!(dir.join("pub").join(f).exists(), "missing {f}");
    }

    let out = adp(
        &[
            "query", "--dir", "pub", "--range", "0..10000", "--out", "ans",
        ],
        &dir,
    );
    assert_ok(&out, "query");
    let result_csv = fs::read_to_string(dir.join("ans/result.csv")).unwrap();
    assert_eq!(result_csv.lines().count(), 3);
    assert!(result_csv.contains("Alice"));
    assert!(!result_csv.contains("Bob"), "12100 is out of range");

    let out = adp(
        &[
            "verify",
            "--cert",
            "pub/certificate.bin",
            "--range",
            "0..10000",
            "--answer",
            "ans",
        ],
        &dir,
    );
    assert_ok(&out, "verify");
    assert!(String::from_utf8_lossy(&out.stdout).contains("VERIFIED: 3 rows"));
}

#[test]
fn projection_flag_flows_through() {
    let dir = workdir("project");
    sample_csv(&dir);
    publish(&dir);
    let out = adp(
        &[
            "query",
            "--dir",
            "pub",
            "--range",
            "0..10000",
            "--project",
            "name",
            "--out",
            "ans",
        ],
        &dir,
    );
    assert_ok(&out, "query");
    let out = adp(
        &[
            "verify",
            "--cert",
            "pub/certificate.bin",
            "--range",
            "0..10000",
            "--project",
            "name",
            "--answer",
            "ans",
        ],
        &dir,
    );
    assert_ok(&out, "verify");
    // Wrong projection on the verifier side must fail.
    let out = adp(
        &[
            "verify",
            "--cert",
            "pub/certificate.bin",
            "--range",
            "0..10000",
            "--answer",
            "ans",
        ],
        &dir,
    );
    assert!(
        !out.status.success(),
        "projection mismatch must be rejected"
    );
}

#[test]
fn empty_range_verifies() {
    let dir = workdir("empty");
    sample_csv(&dir);
    publish(&dir);
    let out = adp(
        &[
            "query",
            "--dir",
            "pub",
            "--range",
            "4000..8000",
            "--out",
            "ans",
        ],
        &dir,
    );
    assert_ok(&out, "query");
    let out = adp(
        &[
            "verify",
            "--cert",
            "pub/certificate.bin",
            "--range",
            "4000..8000",
            "--answer",
            "ans",
        ],
        &dir,
    );
    assert_ok(&out, "verify empty");
    assert!(String::from_utf8_lossy(&out.stdout).contains("provably empty"));
}

#[test]
fn tampered_answer_rejected() {
    let dir = workdir("tamper");
    sample_csv(&dir);
    publish(&dir);
    assert_ok(
        &adp(
            &[
                "query", "--dir", "pub", "--range", "0..10000", "--out", "ans",
            ],
            &dir,
        ),
        "query",
    );
    // Flip a byte in the result.
    let path = dir.join("ans/result.bin");
    let mut bytes = fs::read(&path).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x5a;
    fs::write(&path, bytes).unwrap();
    let out = adp(
        &[
            "verify",
            "--cert",
            "pub/certificate.bin",
            "--range",
            "0..10000",
            "--answer",
            "ans",
        ],
        &dir,
    );
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("REJECTED"));
}

#[test]
fn range_replay_rejected() {
    // Verifying an answer against a different range must fail.
    let dir = workdir("replay");
    sample_csv(&dir);
    publish(&dir);
    assert_ok(
        &adp(
            &[
                "query", "--dir", "pub", "--range", "0..10000", "--out", "ans",
            ],
            &dir,
        ),
        "query",
    );
    let out = adp(
        &[
            "verify",
            "--cert",
            "pub/certificate.bin",
            "--range",
            "0..13000",
            "--answer",
            "ans",
        ],
        &dir,
    );
    assert!(
        !out.status.success(),
        "answer for a narrower range must not verify"
    );
}

#[test]
fn corrupted_publication_refused_by_publisher() {
    let dir = workdir("corrupt");
    sample_csv(&dir);
    publish(&dir);
    // The publisher's copy of the data is altered (the adversary scenario
    // of Section 2.2: overwriting storage).
    let table_path = dir.join("pub/table.csv");
    let text = fs::read_to_string(&table_path).unwrap();
    fs::write(&table_path, text.replace("8010", "8011")).unwrap();
    let out = adp(
        &[
            "query", "--dir", "pub", "--range", "0..10000", "--out", "ans",
        ],
        &dir,
    );
    assert!(
        !out.status.success(),
        "publisher must refuse unverifiable data"
    );
    assert!(String::from_utf8_lossy(&out.stderr).contains("does not match its signatures"));
}

fn publish_with_store(dir: &Path) {
    let out = adp(
        &[
            "publish",
            "--csv",
            "emp.csv",
            "--key",
            "salary",
            "--domain",
            "0..100000",
            "--out",
            "pub",
            "--bits",
            "512",
            "--seed",
            "41",
            "--store",
            "store",
        ],
        dir,
    );
    assert_ok(&out, "publish --store");
}

#[test]
fn store_publish_ingest_compact_query_verify() {
    let dir = workdir("store-flow");
    sample_csv(&dir);
    publish_with_store(&dir);
    for f in ["snapshot.adps", "update.adpl"] {
        assert!(dir.join("store").join(f).exists(), "missing {f}");
    }

    // Ingest two inserts and one delete through the update log.
    fs::write(
        dir.join("more.csv"),
        "id,name,salary,dept\n9,Frank,5000,1\n10,Grace,15000,2\n",
    )
    .unwrap();
    let out = adp(
        &[
            "ingest", "--store", "store", "--csv", "more.csv", "--delete", "3500", "--bits", "512",
            "--seed", "41",
        ],
        &dir,
    );
    assert_ok(&out, "ingest");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("3 mutation(s)"), "{stdout}");
    assert!(stdout.contains("6 rows"), "{stdout}");

    // A wrong seed regenerates a different keypair and is refused.
    let out = adp(
        &[
            "ingest", "--store", "store", "--delete", "2000", "--bits", "512", "--seed", "999",
        ],
        &dir,
    );
    assert!(!out.status.success(), "wrong seed must be refused");
    assert!(String::from_utf8_lossy(&out.stderr).contains("--seed"));

    // Query straight from the store (snapshot + replayed log) and verify
    // against the certificate from publish time.
    let out = adp(
        &[
            "query", "--store", "store", "--range", "0..10000", "--out", "ans",
        ],
        &dir,
    );
    assert_ok(&out, "query --store");
    let result_csv = fs::read_to_string(dir.join("ans/result.csv")).unwrap();
    assert!(result_csv.contains("Frank"), "ingested row served");
    assert!(!result_csv.contains("Chen"), "deleted row (3500) gone");
    let out = adp(
        &[
            "verify",
            "--cert",
            "pub/certificate.bin",
            "--range",
            "0..10000",
            "--answer",
            "ans",
        ],
        &dir,
    );
    assert_ok(&out, "verify post-ingest");
    assert!(String::from_utf8_lossy(&out.stdout).contains("VERIFIED: 3 rows"));

    // Compact, then everything still loads and verifies.
    let out = adp(&["compact", "--store", "store"], &dir);
    assert_ok(&out, "compact");
    assert!(String::from_utf8_lossy(&out.stdout).contains("folded 1 log record(s)"));
    let out = adp(
        &[
            "query", "--store", "store", "--range", "0..10000", "--out", "ans2",
        ],
        &dir,
    );
    assert_ok(&out, "query after compact");
    let out = adp(
        &[
            "verify",
            "--cert",
            "pub/certificate.bin",
            "--range",
            "0..10000",
            "--answer",
            "ans2",
        ],
        &dir,
    );
    assert_ok(&out, "verify after compact");
}

#[test]
fn corrupted_store_refused() {
    let dir = workdir("store-corrupt");
    sample_csv(&dir);
    publish_with_store(&dir);
    let snap = dir.join("store/snapshot.adps");
    let mut bytes = fs::read(&snap).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x10;
    fs::write(&snap, bytes).unwrap();
    let out = adp(
        &[
            "query", "--store", "store", "--range", "0..10000", "--out", "ans",
        ],
        &dir,
    );
    assert!(!out.status.success(), "corrupt snapshot must be refused");
    assert!(String::from_utf8_lossy(&out.stderr).contains("CRC"));
}

#[test]
fn bad_flags_reported() {
    let dir = workdir("flags");
    sample_csv(&dir);
    let out = adp(&["publish", "--csv", "emp.csv"], &dir);
    assert!(!out.status.success());
    let out = adp(
        &[
            "publish", "--csv", "emp.csv", "--key", "name", "--domain", "0..10", "--out", "p",
        ],
        &dir,
    );
    assert!(!out.status.success(), "text key column rejected");
    let out = adp(&["frobnicate"], &dir);
    assert!(!out.status.success());
}
