//! # adp-relation
//!
//! A compact relational engine substrate for the `adp` workspace
//! (reproduction of Pang et al., *Verifying Completeness of Relational
//! Query Results in Data Publishing*, SIGMOD 2005).
//!
//! The paper's scheme authenticates *relational query results*; this crate
//! supplies the relations: typed [`value::Value`]s, [`schema::Schema`]s,
//! sorted [`table::Table`]s with replica-number duplicate handling
//! (Section 3.1), a [`bptree::BPlusTree`] with node-visit instrumentation
//! (for the Section 6.3 update-locality experiment), the query AST and
//! executor for σ/π/⋈ queries (Section 4), and role-based access control
//! with query rewriting and per-role visibility columns (Figure 1 and
//! Section 4.4).
//!
//! Nothing in this crate performs authentication — `adp-core` layers the
//! signature-chain scheme on top.

pub mod access;
pub mod bptree;
pub mod catalog;
pub mod exec;
pub mod query;
pub mod record;
pub mod schema;
pub mod table;
pub mod value;

pub use access::{AccessPolicy, Role, RolePolicy};
pub use bptree::{BPlusTree, TreeKey, TreeStats};
pub use catalog::Database;
pub use exec::{
    all_rows, apply_projection, check_referential_integrity, contiguous_runs, distinct_partition,
    execute_pkfk_join, execute_select, passes_filters, JoinedRow, SelectOutcome, SelectedRow,
};
pub use query::{CompareOp, JoinQuery, KeyRange, Predicate, Projection, SelectQuery};
pub use record::Record;
pub use schema::{Column, Schema, SchemaError};
pub use table::{Row, Table};
pub use value::{Value, ValueType};
