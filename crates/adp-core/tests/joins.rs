//! Authenticated join tests (Section 4.3): pk-fk equi-joins and band joins.

mod common;

use adp_core::join::{answer_band_join, answer_pkfk_join, verify_band_join, verify_pkfk_join};
use adp_core::prelude::*;
use adp_relation::{
    check_referential_integrity, Column, KeyRange, Projection, Record, Schema, Table, Value,
    ValueType,
};
use common::{dept_table, emp_by_dept};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::OnceLock;

fn owner() -> &'static Owner {
    static OWNER: OnceLock<Owner> = OnceLock::new();
    OWNER.get_or_init(|| {
        let mut rng = StdRng::seed_from_u64(0x701A);
        Owner::new(512, &mut rng)
    })
}

fn setup() -> (SignedTable, SignedTable, Certificate, Certificate) {
    let o = owner();
    let r = emp_by_dept();
    let s = dept_table();
    check_referential_integrity(&r, &s).unwrap();
    let r_signed = o
        .sign_table(r, Domain::new(0, 1_000), SchemeConfig::default())
        .unwrap();
    let s_signed = o
        .sign_table(s, Domain::new(0, 1_000), SchemeConfig::default())
        .unwrap();
    let r_cert = o.certificate(&r_signed);
    let s_cert = o.certificate(&s_signed);
    (r_signed, s_signed, r_cert, s_cert)
}

#[test]
fn pkfk_join_full_range() {
    let (r, s, rc, sc) = setup();
    let (result, vo) = answer_pkfk_join(
        &Publisher::new(&r),
        &Publisher::new(&s),
        KeyRange::all(),
        &Projection::All,
        &Projection::All,
    )
    .unwrap();
    assert_eq!(result.outer_rows.len(), 6);
    assert_eq!(result.inner_rows.len(), 4); // depts 10, 20, 30, 40
    let report = verify_pkfk_join(
        &rc,
        &sc,
        KeyRange::all(),
        &Projection::All,
        &Projection::All,
        &result,
        &vo,
    )
    .unwrap();
    assert_eq!(report.pairs, 6);
    assert_eq!(report.inner_verified, 4);
    assert_eq!(report.outer.matched, 6);
}

#[test]
fn pkfk_join_with_fk_selection() {
    // σ_{10 ≤ dept ≤ 20}(emp) ⋈ dept
    let (r, s, rc, sc) = setup();
    let range = KeyRange::closed(10, 20);
    let (result, vo) = answer_pkfk_join(
        &Publisher::new(&r),
        &Publisher::new(&s),
        range,
        &Projection::All,
        &Projection::All,
    )
    .unwrap();
    assert_eq!(result.outer_rows.len(), 4);
    assert_eq!(result.inner_rows.len(), 2);
    verify_pkfk_join(
        &rc,
        &sc,
        range,
        &Projection::All,
        &Projection::All,
        &result,
        &vo,
    )
    .unwrap();
}

#[test]
fn pkfk_join_with_projections() {
    // Hide the budget column of S and the name column of R.
    let (r, s, rc, sc) = setup();
    let rp = Projection::Columns(vec!["id".into()]);
    let sp = Projection::Columns(vec!["dname".into()]);
    let (result, vo) = answer_pkfk_join(
        &Publisher::new(&r),
        &Publisher::new(&s),
        KeyRange::all(),
        &rp,
        &sp,
    )
    .unwrap();
    // id + forced dept key; dname + forced dept key.
    assert_eq!(result.outer_rows[0].arity(), 2);
    assert_eq!(result.inner_rows[0].arity(), 2);
    verify_pkfk_join(&rc, &sc, KeyRange::all(), &rp, &sp, &result, &vo).unwrap();
}

#[test]
fn pkfk_join_empty_outer() {
    let (r, s, rc, sc) = setup();
    let range = KeyRange::closed(500, 600);
    let (result, vo) = answer_pkfk_join(
        &Publisher::new(&r),
        &Publisher::new(&s),
        range,
        &Projection::All,
        &Projection::All,
    )
    .unwrap();
    assert!(result.outer_rows.is_empty());
    assert!(result.inner_rows.is_empty());
    let report = verify_pkfk_join(
        &rc,
        &sc,
        range,
        &Projection::All,
        &Projection::All,
        &result,
        &vo,
    )
    .unwrap();
    assert_eq!(report.pairs, 0);
}

#[test]
fn pkfk_join_tampered_inner_rejected() {
    let (r, s, rc, sc) = setup();
    let (mut result, vo) = answer_pkfk_join(
        &Publisher::new(&r),
        &Publisher::new(&s),
        KeyRange::all(),
        &Projection::All,
        &Projection::All,
    )
    .unwrap();
    // Tamper an inner record's budget.
    let mut vals = result.inner_rows[0].values().to_vec();
    vals[2] = Value::Int(999_999);
    result.inner_rows[0] = Record::new(vals);
    assert!(verify_pkfk_join(
        &rc,
        &sc,
        KeyRange::all(),
        &Projection::All,
        &Projection::All,
        &result,
        &vo
    )
    .is_err());
}

#[test]
fn pkfk_join_missing_inner_rejected() {
    let (r, s, rc, sc) = setup();
    let (mut result, mut vo) = answer_pkfk_join(
        &Publisher::new(&r),
        &Publisher::new(&s),
        KeyRange::all(),
        &Projection::All,
        &Projection::All,
    )
    .unwrap();
    // Drop one inner record + its proof: the pairing check must fail.
    result.inner_rows.pop();
    vo.inner.pop();
    // Rebuild a consistent aggregate for the remaining inner records is not
    // possible for the adversary in general, but even with individual
    // signatures the pairing must break; use count-mismatch path here.
    assert!(verify_pkfk_join(
        &rc,
        &sc,
        KeyRange::all(),
        &Projection::All,
        &Projection::All,
        &result,
        &vo
    )
    .is_err());
}

#[test]
fn pkfk_join_outer_omission_rejected() {
    let (r, s, rc, sc) = setup();
    let (mut result, vo) = answer_pkfk_join(
        &Publisher::new(&r),
        &Publisher::new(&s),
        KeyRange::all(),
        &Projection::All,
        &Projection::All,
    )
    .unwrap();
    result.outer_rows.remove(2);
    assert!(verify_pkfk_join(
        &rc,
        &sc,
        KeyRange::all(),
        &Projection::All,
        &Projection::All,
        &result,
        &vo
    )
    .is_err());
}

#[test]
fn band_join_roundtrip() {
    // R.dept ≤ S.dept pairs.
    let (r, s, rc, sc) = setup();
    let (result, vo) = answer_band_join(&Publisher::new(&r), &Publisher::new(&s)).unwrap();
    // max(S) = 50, so every R row joins; min(R) = 10, so every S row joins.
    assert_eq!(result.r_partition.len(), 6);
    assert_eq!(result.s_partition.len(), 5);
    verify_band_join(&rc, &sc, &result, &vo).unwrap();
    // Pairs formed locally: every (r, s) with r.dept ≤ s.dept.
    let pairs: usize = result
        .r_partition
        .iter()
        .map(|r_row| {
            let rk = r_row.get(2).as_int().unwrap();
            result
                .s_partition
                .iter()
                .filter(|s_row| s_row.get(0).as_int().unwrap() >= rk)
                .count()
        })
        .sum();
    assert!(pairs > 0);
}

#[test]
fn band_join_with_empty_s() {
    let o = owner();
    let r = emp_by_dept();
    let s_schema = Schema::new(
        vec![
            Column::new("dept", ValueType::Int),
            Column::new("x", ValueType::Int),
        ],
        "dept",
    );
    let s = Table::new("empty_s", s_schema);
    let r_signed = o
        .sign_table(r, Domain::new(0, 1_000), SchemeConfig::default())
        .unwrap();
    let s_signed = o
        .sign_table(s, Domain::new(0, 1_000), SchemeConfig::default())
        .unwrap();
    let (result, vo) =
        answer_band_join(&Publisher::new(&r_signed), &Publisher::new(&s_signed)).unwrap();
    assert!(result.r_partition.is_empty());
    assert!(result.s_partition.is_empty());
    verify_band_join(
        &o.certificate(&r_signed),
        &o.certificate(&s_signed),
        &result,
        &vo,
    )
    .unwrap();
}

#[test]
fn band_join_truncated_r_partition_rejected() {
    let (r, s, rc, sc) = setup();
    let (mut result, vo) = answer_band_join(&Publisher::new(&r), &Publisher::new(&s)).unwrap();
    result.r_partition.pop();
    assert!(verify_band_join(&rc, &sc, &result, &vo).is_err());
}

#[test]
fn band_join_understated_max_rejected() {
    // Publisher claims max(S) = 30 to shrink the R partition.
    let (r, s, rc, sc) = setup();
    let r_pub = Publisher::new(&r);
    let s_pub = Publisher::new(&s);
    let (result, mut vo) = answer_band_join(&r_pub, &s_pub).unwrap();
    vo.s_max = 30;
    // Rebuild the pieces the way a cheating publisher would.
    let q30 = adp_relation::SelectQuery::range(KeyRange::at_least(30));
    let (rows30, vo30) = s_pub.answer_select(&q30).unwrap();
    vo.s_max_rows = rows30;
    vo.s_max_vo = vo30;
    let mut result = result;
    result
        .r_partition
        .retain(|row| row.get(2).as_int().unwrap() <= 30);
    // The max-claim check fails: rows with key 40, 50 show up in the
    // [30, key_max] proof, betraying a larger max.
    assert!(verify_band_join(&rc, &sc, &result, &vo).is_err());
}
