//! A minimal `std`-only thread pool for batched query answering.
//!
//! This environment has no async runtime (no tokio), so concurrency is
//! plain threads: a fixed set of workers pulls boxed jobs off one shared
//! channel. Dropping the pool closes the channel and joins every worker,
//! so in-flight jobs always finish before shutdown completes.

use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// A fixed-size worker pool executing boxed closures.
pub struct ThreadPool {
    sender: Option<Sender<Job>>,
    workers: Vec<JoinHandle<()>>,
}

impl ThreadPool {
    /// Spawns `size` workers (clamped to at least one).
    pub fn new(size: usize) -> Self {
        let size = size.max(1);
        let (sender, receiver) = channel::<Job>();
        let receiver = Arc::new(Mutex::new(receiver));
        let workers = (0..size)
            .map(|i| {
                let receiver: Arc<Mutex<Receiver<Job>>> = Arc::clone(&receiver);
                std::thread::Builder::new()
                    .name(format!("adp-worker-{i}"))
                    .spawn(move || loop {
                        // Holding the lock only to receive keeps hand-off
                        // cheap; a closed channel means shutdown.
                        let job = match receiver.lock() {
                            Ok(rx) => rx.recv(),
                            Err(_) => break,
                        };
                        match job {
                            // A panicking job must not kill the worker: the
                            // pool would silently shrink until batches hang.
                            // The panic is contained here and the worker
                            // moves on to the next job.
                            Ok(job) => {
                                let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(job));
                            }
                            Err(_) => break,
                        }
                    })
                    .expect("spawning a pool worker")
            })
            .collect();
        ThreadPool {
            sender: Some(sender),
            workers,
        }
    }

    /// Number of workers.
    pub fn size(&self) -> usize {
        self.workers.len()
    }

    /// Queues `job` for execution on some worker.
    pub fn execute(&self, job: impl FnOnce() + Send + 'static) {
        self.sender
            .as_ref()
            .expect("pool alive while handle exists")
            .send(Box::new(job))
            .expect("workers outlive the sender");
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        drop(self.sender.take()); // close the channel → workers drain + exit
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn executes_all_jobs_before_drop_returns() {
        let counter = Arc::new(AtomicUsize::new(0));
        {
            let pool = ThreadPool::new(4);
            assert_eq!(pool.size(), 4);
            for _ in 0..100 {
                let counter = Arc::clone(&counter);
                pool.execute(move || {
                    counter.fetch_add(1, Ordering::SeqCst);
                });
            }
        } // drop joins the workers
        assert_eq!(counter.load(Ordering::SeqCst), 100);
    }

    #[test]
    fn panicking_job_does_not_kill_the_worker() {
        let pool = ThreadPool::new(1);
        pool.execute(|| panic!("job panic must be contained"));
        // The single worker survived and still executes jobs.
        let (tx, rx) = channel();
        pool.execute(move || tx.send(7).unwrap());
        assert_eq!(
            rx.recv_timeout(std::time::Duration::from_secs(10)).unwrap(),
            7
        );
    }

    #[test]
    fn zero_size_clamps_to_one() {
        let pool = ThreadPool::new(0);
        assert_eq!(pool.size(), 1);
        let (tx, rx) = channel();
        pool.execute(move || tx.send(42).unwrap());
        assert_eq!(rx.recv().unwrap(), 42);
    }
}
