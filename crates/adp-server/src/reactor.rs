//! The event-driven server core: reactor shards multiplexing non-blocking
//! connection sockets over epoll ([`crate::sys`]).
//!
//! Each shard is one thread owning one epoll instance, a registry of the
//! connections assigned to it, and a timer heap. Shard 0 additionally owns
//! the (non-blocking) listener and hands accepted sockets out round-robin.
//! The division of labor is strict:
//!
//! * **Shards do I/O only** — non-blocking reads into a per-connection
//!   reassembly buffer, frame parsing, non-blocking writes out of a
//!   bounded per-connection chunk queue, timeouts. Cheap frames (`Ping`,
//!   `StatsRequest`) are answered in place.
//! * **Workers do crypto** — `QueryRequest`/`BatchRequest` items run on
//!   the shared [`ThreadPool`]; the finished answer comes back to the
//!   owning shard as a [`Msg::Complete`] through the shard's injection
//!   queue plus a wake byte on its socketpair.
//!
//! Per-connection ordering matches the old thread-per-connection server
//! exactly: parsed requests queue in arrival order and at most one query
//! or batch is in flight per connection, so replies leave in request
//! order even when a `Ping` trails a slow query.
//!
//! Backpressure is byte-based: once a connection's write queue exceeds
//! [`ServerConfig::write_queue_limit`], the shard stops reading from it
//! and stops dispatching its queued requests; the kernel's socket buffers
//! then push back on the client. A client that never drains its responses
//! therefore stops making progress and falls to the idle timeout
//! (`idle_reaped` counts those). Timeouts are a lazy binary heap: an idle
//! connection costs *zero* wakeups in steady state — its deadline sits in
//! the heap and the shard sleeps in `epoll_wait` until either readiness
//! or the earliest deadline.

use crate::pool::ThreadPool;
use crate::protocol::{
    self, encode_frame, frame_type, ErrorCode, Frame, StatsSnapshot, HEADER_LEN, MAGIC, VERSION,
};
use crate::server::{
    answer, answer_planned, encode_batch_frame, follow_job, lock_recover, subscribe_job,
    AnswerBlob, BatchAnswer, Inner, ServerConfig, ServerStats,
};
use crate::sys::{Epoll, EpollEvent, EPOLLERR, EPOLLHUP, EPOLLIN, EPOLLOUT, EPOLLRDHUP};
use adp_relation::SelectQuery;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, VecDeque};
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::os::unix::net::UnixStream;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Token of the shard's wake socket (the read end of its socketpair).
const TOKEN_WAKE: u64 = 0;
/// Token of the listener (shard 0 only).
const TOKEN_LISTENER: u64 = 1;
/// First connection token; tokens are per-shard and never reused, so a
/// late completion for a closed connection simply finds no entry.
const FIRST_CONN_TOKEN: u64 = 16;
/// Parsed-but-undispatched requests per connection before reads pause.
const PENDING_CAP: usize = 64;
/// Read granularity (one shared scratch buffer per shard).
const READ_CHUNK: usize = 64 * 1024;
/// Epoll events collected per wakeup.
const EVENT_BATCH: usize = 256;
/// How long a failing listener stays out of epoll before accepts retry.
const ACCEPT_RETRY: Duration = Duration::from_millis(10);

/// Work injected into a shard from outside its thread: new sockets from
/// the accepting shard, finished answers from pool workers.
pub(crate) enum Msg {
    /// Adopt this accepted connection.
    Conn(TcpStream),
    /// Append these chunks to connection `token`'s write queue and clear
    /// its in-flight marker.
    Complete(u64, Vec<WriteChunk>),
    /// A subscription push (fan-out from an applied update): append these
    /// chunks to connection `token`'s write queue *without* touching its
    /// in-flight marker — pushes are unsolicited and interleave with the
    /// request/response stream. `sub_id` is the range subscription the
    /// chunks belong to (`None` for follower log segments); delivery
    /// re-checks it is still registered, so no delta can land on the wire
    /// after its unsubscribe ack.
    Push {
        token: u64,
        sub_id: Option<u32>,
        chunks: Vec<WriteChunk>,
    },
}

/// The cross-thread face of a shard: an injection queue plus the write
/// end of the shard's wake socketpair.
pub(crate) struct ShardHandle {
    queue: Mutex<VecDeque<Msg>>,
    wake: UnixStream,
}

impl ShardHandle {
    pub(crate) fn push(&self, msg: Msg) {
        lock_recover(&self.queue).push_back(msg);
        self.wake();
    }

    /// Nudges the shard out of `epoll_wait`. A full pipe means a wake is
    /// already pending, so the error is ignorable.
    pub(crate) fn wake(&self) {
        let _ = (&self.wake).write(&[1u8]);
    }
}

/// One queued span of outgoing bytes. Cache-hit answers keep the old
/// zero-copy property: the shared `(result, vo)` blobs are referenced,
/// not copied, with tiny owned chunks carrying the frame header and
/// length prefixes between them.
pub(crate) struct WriteChunk {
    data: ChunkData,
    pos: usize,
}

enum ChunkData {
    Owned(Vec<u8>),
    Result(AnswerBlob),
    Vo(AnswerBlob),
}

impl WriteChunk {
    pub(crate) fn owned(bytes: Vec<u8>) -> WriteChunk {
        WriteChunk {
            data: ChunkData::Owned(bytes),
            pos: 0,
        }
    }

    fn bytes(&self) -> &[u8] {
        match &self.data {
            ChunkData::Owned(v) => v,
            ChunkData::Result(b) => &b.0,
            ChunkData::Vo(b) => &b.1,
        }
    }

    fn remaining(&self) -> &[u8] {
        &self.bytes()[self.pos..]
    }

    fn len(&self) -> usize {
        self.bytes().len()
    }
}

/// A `QueryResponse` frame as chunks, byte-identical to
/// `protocol::write_query_response` but borrowing the blobs.
fn query_response_chunks(blob: &AnswerBlob) -> Vec<WriteChunk> {
    response_chunks(frame_type::QUERY_RESPONSE, blob)
}

/// A `PlannedResponse` frame as chunks (same two-blob payload layout).
fn planned_response_chunks(blob: &AnswerBlob) -> Vec<WriteChunk> {
    response_chunks(frame_type::PLANNED_RESPONSE, blob)
}

fn response_chunks(type_byte: u8, blob: &AnswerBlob) -> Vec<WriteChunk> {
    let (result_len, vo_len) = (blob.0.len(), blob.1.len());
    // `answer` / `answer_planned` already bounded result+vo+8 by
    // MAX_PAYLOAD.
    let payload_len = (8 + result_len + vo_len) as u32;
    let mut head = Vec::with_capacity(HEADER_LEN + 4);
    head.extend_from_slice(&MAGIC);
    head.push(VERSION);
    head.push(type_byte);
    head.extend_from_slice(&payload_len.to_le_bytes());
    head.extend_from_slice(&(result_len as u32).to_le_bytes());
    vec![
        WriteChunk::owned(head),
        WriteChunk {
            data: ChunkData::Result(Arc::clone(blob)),
            pos: 0,
        },
        WriteChunk::owned((vo_len as u32).to_le_bytes().to_vec()),
        WriteChunk {
            data: ChunkData::Vo(Arc::clone(blob)),
            pos: 0,
        },
    ]
}

/// A parsed request waiting its turn on the connection's FIFO.
enum Req {
    Ping,
    Stats,
    Query {
        table_id: u32,
        query: SelectQuery,
    },
    Planned {
        plan: adp_core::plan::WirePlan,
    },
    Batch {
        items: Vec<(u32, SelectQuery)>,
    },
    Subscribe {
        sub_id: u32,
        table_id: u32,
        query: SelectQuery,
    },
    Unsubscribe {
        sub_id: u32,
    },
    FollowLog {
        table_id: u32,
        have: Option<u64>,
    },
    /// A server→client frame type arrived: answered with an error frame,
    /// connection stays open (matches the old server).
    BadDirection,
    /// Framing is broken: answered with an error frame, then the
    /// connection closes once the reply (and everything before it) flushed.
    Protocol(String),
}

/// Per-connection state machine.
struct Conn {
    stream: TcpStream,
    /// Interest mask currently registered with epoll.
    interest: u32,
    /// Unparsed inbound bytes (partial frames reassemble here).
    buf: Vec<u8>,
    /// Deadline for completing the frame currently being reassembled.
    frame_deadline: Option<Instant>,
    /// Last time bytes moved in either direction.
    last_activity: Instant,
    /// Parsed requests not yet dispatched, in arrival order.
    pending: VecDeque<Req>,
    /// A query or batch is on the worker pool; replies for later requests
    /// must wait, preserving per-connection response order.
    inflight: bool,
    write_q: VecDeque<WriteChunk>,
    /// Bytes across `write_q` (mirrors into the global queue-depth gauge).
    queued_bytes: usize,
    /// Peer half-closed its sending side; finish serving what arrived.
    read_closed: bool,
    /// Stop parsing/reading (protocol error or frame timeout).
    read_dead: bool,
    /// Close as soon as the write queue drains.
    close_after_flush: bool,
    /// Unrecoverable socket error; close immediately.
    dead: bool,
    /// Earliest deadline currently sitting in the shard's timer heap for
    /// this connection (lazy deletion: stale entries no-op on pop).
    armed_until: Option<Instant>,
}

impl Conn {
    fn wants_read(&self, cfg: &ServerConfig) -> bool {
        !self.read_closed
            && !self.read_dead
            && !self.close_after_flush
            && !self.dead
            && self.pending.len() < PENDING_CAP
            && self.queued_bytes <= cfg.write_queue_limit
    }

    /// True once nothing remains to read, compute, or flush.
    fn drained(&self) -> bool {
        self.read_closed && self.pending.is_empty() && !self.inflight && self.write_q.is_empty()
    }
}

/// Fan-out state for one `BatchRequest`: each item is an independent pool
/// job; the last to finish assembles the response frame and completes it
/// to the owning shard. (The old design parked a thread on a channel
/// collecting items; a pool-worker collector would deadlock a one-worker
/// pool, so assembly rides on the final item's own job instead.)
struct BatchState {
    slots: Mutex<Vec<Option<BatchAnswer>>>,
    remaining: AtomicUsize,
    token: u64,
    shard: Arc<ShardHandle>,
    inner: Arc<Inner>,
}

/// The shard's shared, immutably-borrowed half (split from the mutable
/// registries so helpers can hold both at once).
struct ShardCore {
    epoll: Epoll,
    inner: Arc<Inner>,
    pool: Arc<ThreadPool>,
    /// This shard's own handle (workers complete through it).
    me: Arc<ShardHandle>,
    /// Every shard's handle, for round-robin distribution of accepts.
    peers: Vec<Arc<ShardHandle>>,
    cfg: ServerConfig,
    shutdown: Arc<AtomicBool>,
    /// Graceful-drain flag ([`crate::ServerHandle::drain`]): once set, the
    /// shard stops accepting, treats every connection as read-closed
    /// (finish what arrived, flush, close), and counts closes as drains.
    drain: Arc<AtomicBool>,
}

pub(crate) struct Shard {
    core: ShardCore,
    /// The drain flag has been observed and acted on by this shard.
    draining: bool,
    conns: HashMap<u64, Conn>,
    /// Min-heap of `(deadline, token)` with lazy deletion.
    timers: BinaryHeap<Reverse<(Instant, u64)>>,
    next_token: u64,
    listener: Option<TcpListener>,
    /// The listener is deregistered from epoll after a transient accept
    /// failure; a [`TOKEN_LISTENER`] timer-heap entry re-arms it.
    listener_paused: bool,
    rr: usize,
    wake: UnixStream,
    scratch: Vec<u8>,
}

/// What [`spawn_shards`] hands back to the server: one handle per shard
/// for message injection, plus the shard threads to join at shutdown.
pub(crate) type SpawnedShards = (Vec<Arc<ShardHandle>>, Vec<JoinHandle<()>>);

/// Builds the shard handles and spawns one reactor thread per shard;
/// shard 0 adopts the (already non-blocking) listener.
pub(crate) fn spawn_shards(
    listener: TcpListener,
    nshards: usize,
    inner: Arc<Inner>,
    pool: Arc<ThreadPool>,
    shutdown: Arc<AtomicBool>,
    drain: Arc<AtomicBool>,
    cfg: ServerConfig,
) -> io::Result<SpawnedShards> {
    let nshards = nshards.max(1);
    let mut handles = Vec::with_capacity(nshards);
    let mut wakes = Vec::with_capacity(nshards);
    for _ in 0..nshards {
        let (shard_end, handle_end) = UnixStream::pair()?;
        shard_end.set_nonblocking(true)?;
        handle_end.set_nonblocking(true)?;
        handles.push(Arc::new(ShardHandle {
            queue: Mutex::new(VecDeque::new()),
            wake: handle_end,
        }));
        wakes.push(shard_end);
    }
    let mut listener = Some(listener);
    let mut threads = Vec::with_capacity(nshards);
    for (i, wake) in wakes.into_iter().enumerate() {
        let epoll = Epoll::new()?;
        epoll.add(wake.as_raw_fd(), EPOLLIN, TOKEN_WAKE)?;
        let lst = if i == 0 { listener.take() } else { None };
        if let Some(l) = &lst {
            epoll.add(l.as_raw_fd(), EPOLLIN, TOKEN_LISTENER)?;
        }
        let shard = Shard {
            core: ShardCore {
                epoll,
                inner: Arc::clone(&inner),
                pool: Arc::clone(&pool),
                me: Arc::clone(&handles[i]),
                peers: handles.clone(),
                cfg: cfg.clone(),
                shutdown: Arc::clone(&shutdown),
                drain: Arc::clone(&drain),
            },
            draining: false,
            conns: HashMap::new(),
            timers: BinaryHeap::new(),
            next_token: FIRST_CONN_TOKEN,
            listener: lst,
            listener_paused: false,
            rr: i,
            wake,
            scratch: vec![0u8; READ_CHUNK],
        };
        threads.push(
            std::thread::Builder::new()
                .name(format!("adp-reactor-{i}"))
                .spawn(move || shard.run())?,
        );
    }
    Ok((handles, threads))
}

impl Shard {
    pub(crate) fn run(mut self) {
        let mut events = vec![EpollEvent::zeroed(); EVENT_BATCH];
        loop {
            let timeout = self.next_timeout();
            let n = match self.core.epoll.wait(&mut events, timeout) {
                Ok(n) => n,
                Err(_) => {
                    // `Epoll::wait` retries EINTR internally, so this is a
                    // persistent failure (e.g. EBADF); retrying would spin
                    // the shard with n=0 forever. Count it and stop.
                    ServerStats::bump(&self.core.inner.stats.errors);
                    break;
                }
            };
            ServerStats::bump(&self.core.inner.stats.wakeups);
            if self.core.shutdown.load(Ordering::SeqCst) {
                break;
            }
            if !self.draining && self.core.drain.load(Ordering::SeqCst) {
                self.begin_drain();
            }
            for ev in &events[..n] {
                match ev.token() {
                    TOKEN_WAKE => self.drain_wake(),
                    TOKEN_LISTENER => self.accept_ready(),
                    token => self.conn_event(token, ev.events()),
                }
            }
            // The queue is drained every iteration (not only on an
            // observed wake byte): level-triggered epoll re-reports an
            // undrained wake socket, so nothing is ever lost, and this
            // keeps the push→wake race harmless.
            self.drain_queue();
            self.fire_timers();
        }
        let tokens: Vec<u64> = self.conns.keys().copied().collect();
        for token in tokens {
            self.close_conn(token);
        }
    }

    /// Milliseconds until the earliest timer, or -1 to sleep until I/O.
    fn next_timeout(&self) -> i32 {
        match self.timers.peek() {
            None => -1,
            Some(&Reverse((deadline, _))) => {
                let now = Instant::now();
                if deadline <= now {
                    0
                } else {
                    // Round up so a deadline 0.4ms away doesn't spin.
                    let ms = deadline.duration_since(now).as_millis() as i64 + 1;
                    ms.min(i32::MAX as i64) as i32
                }
            }
        }
    }

    fn drain_wake(&mut self) {
        let mut buf = [0u8; 256];
        loop {
            match (&self.wake).read(&mut buf) {
                Ok(0) => break,
                Ok(_) => continue,
                Err(_) => break, // WouldBlock: drained
            }
        }
    }

    fn accept_ready(&mut self) {
        loop {
            let Some(listener) = &self.listener else {
                return;
            };
            match listener.accept() {
                Ok((stream, _)) => {
                    ServerStats::bump(&self.core.inner.stats.connections);
                    let idx = self.rr;
                    self.rr = (self.rr + 1) % self.core.peers.len();
                    if Arc::ptr_eq(&self.core.peers[idx], &self.core.me) {
                        self.register_conn(stream);
                    } else {
                        self.core.peers[idx].push(Msg::Conn(stream));
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    // Transient accept failure (fd exhaustion, aborted
                    // handshake). Pausing the listener bounds the busy-loop
                    // a level-triggered listener would otherwise spin on
                    // while fds stay exhausted — without stalling I/O for
                    // the connections this shard already owns.
                    ServerStats::bump(&self.core.inner.stats.errors);
                    self.pause_listener();
                    return;
                }
            }
        }
    }

    /// Takes the listener out of epoll and schedules its return through
    /// the timer heap, so existing connections keep being serviced while
    /// accepts back off.
    fn pause_listener(&mut self) {
        if self.listener_paused {
            return;
        }
        let Some(listener) = &self.listener else {
            return;
        };
        if self.core.epoll.delete(listener.as_raw_fd()).is_ok() {
            self.listener_paused = true;
            self.timers
                .push(Reverse((Instant::now() + ACCEPT_RETRY, TOKEN_LISTENER)));
        } else {
            // Can't deregister (shouldn't happen); fall back to a bounded
            // sleep so the shard at least doesn't spin.
            std::thread::sleep(ACCEPT_RETRY);
        }
    }

    /// Puts a paused listener back into epoll and catches up on anything
    /// that queued while it was out; if re-adding fails, retries later.
    fn resume_listener(&mut self) {
        if !self.listener_paused {
            return;
        }
        let Some(listener) = &self.listener else {
            return;
        };
        if self
            .core
            .epoll
            .add(listener.as_raw_fd(), EPOLLIN, TOKEN_LISTENER)
            .is_ok()
        {
            self.listener_paused = false;
            self.accept_ready();
        } else {
            self.timers
                .push(Reverse((Instant::now() + ACCEPT_RETRY, TOKEN_LISTENER)));
        }
    }

    /// Enters drain mode: the listener leaves epoll and closes (new
    /// connects are refused from here on), and every connection is
    /// treated as if its peer half-closed — already-received requests
    /// still answer, write queues still flush, and the close lands once
    /// both are empty. [`Shard::close_conn`] counts closes as drains
    /// while this mode is active.
    fn begin_drain(&mut self) {
        self.draining = true;
        if let Some(listener) = self.listener.take() {
            let _ = self.core.epoll.delete(listener.as_raw_fd());
            // Dropping the listener closes it.
        }
        let tokens: Vec<u64> = self.conns.keys().copied().collect();
        for token in tokens {
            if let Some(conn) = self.conns.get_mut(&token) {
                conn.read_closed = true;
                pump(&self.core, conn, token);
                write_some(&self.core, conn);
            }
            self.epilogue(token);
        }
    }

    fn register_conn(&mut self, stream: TcpStream) {
        if self.draining {
            // Raced in from the accepting shard after drain began:
            // dropping the stream closes it.
            return;
        }
        if stream.set_nonblocking(true).is_err() {
            ServerStats::bump(&self.core.inner.stats.errors);
            return;
        }
        let _ = stream.set_nodelay(true);
        let token = self.next_token;
        self.next_token += 1;
        let interest = EPOLLIN | EPOLLRDHUP;
        if self
            .core
            .epoll
            .add(stream.as_raw_fd(), interest, token)
            .is_err()
        {
            ServerStats::bump(&self.core.inner.stats.errors);
            return;
        }
        self.core
            .inner
            .stats
            .open_connections
            .fetch_add(1, Ordering::Relaxed);
        self.conns.insert(
            token,
            Conn {
                stream,
                interest,
                buf: Vec::new(),
                frame_deadline: None,
                last_activity: Instant::now(),
                pending: VecDeque::new(),
                inflight: false,
                write_q: VecDeque::new(),
                queued_bytes: 0,
                read_closed: false,
                read_dead: false,
                close_after_flush: false,
                dead: false,
                armed_until: None,
            },
        );
        self.epilogue(token); // arms the idle timer
    }

    fn conn_event(&mut self, token: u64, events: u32) {
        {
            let Some(conn) = self.conns.get_mut(&token) else {
                return;
            };
            if events & EPOLLERR != 0 {
                conn.dead = true;
            } else {
                if events & EPOLLOUT != 0 {
                    write_some(&self.core, conn);
                }
                if events & (EPOLLIN | EPOLLRDHUP | EPOLLHUP) != 0 {
                    read_and_parse(&self.core, conn, &mut self.scratch);
                }
                pump(&self.core, conn, token);
                write_some(&self.core, conn);
            }
        }
        self.epilogue(token);
    }

    fn drain_queue(&mut self) {
        let msgs: Vec<Msg> = {
            let mut q = lock_recover(&self.core.me.queue);
            q.drain(..).collect()
        };
        for msg in msgs {
            match msg {
                Msg::Conn(stream) => self.register_conn(stream),
                Msg::Complete(token, chunks) => {
                    {
                        let Some(conn) = self.conns.get_mut(&token) else {
                            continue; // closed while the worker computed
                        };
                        conn.inflight = false;
                        push_chunks(&self.core, conn, chunks);
                        write_some(&self.core, conn);
                        pump(&self.core, conn, token);
                        write_some(&self.core, conn);
                    }
                    self.epilogue(token);
                }
                Msg::Push {
                    token,
                    sub_id,
                    chunks,
                } => {
                    {
                        let Some(conn) = self.conns.get_mut(&token) else {
                            continue; // closed since the fan-out snapshot
                        };
                        // An unsubscribe may have raced the fan-out: the
                        // ack is already (or about to be) queued, and no
                        // delta may follow it on the wire.
                        if let Some(sub_id) = sub_id {
                            if !self.core.inner.sub_alive(&self.core.me, token, sub_id) {
                                continue;
                            }
                        }
                        push_chunks(&self.core, conn, chunks);
                        write_some(&self.core, conn);
                    }
                    self.epilogue(token);
                }
            }
        }
    }

    fn fire_timers(&mut self) {
        let now = Instant::now();
        loop {
            match self.timers.peek() {
                Some(&Reverse((deadline, _))) if deadline <= now => {}
                _ => break,
            }
            let Reverse((popped, token)) = self.timers.pop().expect("peeked entry exists");
            if token == TOKEN_LISTENER {
                self.resume_listener();
                continue;
            }
            let mut reap = false;
            {
                let Some(conn) = self.conns.get_mut(&token) else {
                    continue; // connection closed; stale entry
                };
                if conn.armed_until == Some(popped) {
                    conn.armed_until = None;
                }
                let Some(deadline) = desired_deadline(conn, &self.core.cfg) else {
                    continue;
                };
                if deadline > now {
                    // Activity pushed the real deadline out; re-arm lazily.
                    if conn.armed_until.is_none_or(|armed| deadline < armed) {
                        self.timers.push(Reverse((deadline, token)));
                        conn.armed_until = Some(deadline);
                    }
                    continue;
                }
                if conn.frame_deadline.is_some_and(|f| f <= now) {
                    // Slow loris: the rest of the frame never came.
                    ServerStats::bump(&self.core.inner.stats.errors);
                    conn.frame_deadline = None;
                    conn.read_dead = true;
                    conn.close_after_flush = true;
                    push_chunks(
                        &self.core,
                        conn,
                        vec![WriteChunk::owned(encode_frame(&Frame::Error {
                            code: ErrorCode::BadFrame,
                            message: "frame deadline exceeded".into(),
                        }))],
                    );
                    write_some(&self.core, conn);
                } else {
                    ServerStats::bump(&self.core.inner.stats.idle_reaped);
                    reap = true;
                }
            }
            if reap {
                self.close_conn(token);
            } else {
                self.epilogue(token);
            }
        }
    }

    /// Common tail for every state change on a connection: close it if it
    /// is finished (or broken), otherwise reconcile its epoll interest
    /// mask and (re-)arm its deadline.
    fn epilogue(&mut self, token: u64) {
        let mut close = false;
        {
            let Some(conn) = self.conns.get_mut(&token) else {
                return;
            };
            if conn.dead || conn.drained() || (conn.close_after_flush && conn.write_q.is_empty()) {
                close = true;
            } else {
                let mut want = EPOLLRDHUP;
                if conn.wants_read(&self.core.cfg) {
                    want |= EPOLLIN;
                }
                if !conn.write_q.is_empty() {
                    want |= EPOLLOUT;
                }
                if want != conn.interest {
                    match self.core.epoll.modify(conn.stream.as_raw_fd(), want, token) {
                        Ok(()) => conn.interest = want,
                        Err(_) => close = true,
                    }
                }
                if !close {
                    if let Some(deadline) = desired_deadline(conn, &self.core.cfg) {
                        if conn.armed_until.is_none_or(|armed| deadline < armed) {
                            self.timers.push(Reverse((deadline, token)));
                            conn.armed_until = Some(deadline);
                        }
                    }
                }
            }
        }
        if close {
            self.close_conn(token);
        }
    }

    fn close_conn(&mut self, token: u64) {
        if let Some(conn) = self.conns.remove(&token) {
            let stats = &self.core.inner.stats;
            if self.draining {
                ServerStats::bump(&stats.drains);
            }
            stats.open_connections.fetch_sub(1, Ordering::Relaxed);
            stats
                .queue_depth
                .fetch_sub(conn.queued_bytes as u64, Ordering::Relaxed);
            // Any subscriptions this connection held die with it (tokens
            // are never reused, so a racing fan-out pushes to nobody).
            self.core.inner.purge_conn_subs(&self.core.me, token);
            // Dropping the stream closes the fd, which also removes its
            // epoll registration (it was never duplicated).
        }
    }
}

/// The connection's next deadline: the mid-frame deadline if a frame is
/// reassembling, else the idle deadline. A connection with a query in
/// flight is not "idle" — its deadline resumes once the answer lands.
fn desired_deadline(conn: &Conn, cfg: &ServerConfig) -> Option<Instant> {
    let idle = if conn.inflight {
        None
    } else {
        cfg.idle_timeout.map(|t| conn.last_activity + t)
    };
    match (conn.frame_deadline, idle) {
        (Some(a), Some(b)) => Some(a.min(b)),
        (a, b) => a.or(b),
    }
}

/// Appends chunks to the write queue, keeping the byte accounting (local
/// and the global gauge) in step.
fn push_chunks(core: &ShardCore, conn: &mut Conn, chunks: Vec<WriteChunk>) {
    let added: usize = chunks.iter().map(WriteChunk::len).sum();
    conn.queued_bytes += added;
    core.inner
        .stats
        .queue_depth
        .fetch_add(added as u64, Ordering::Relaxed);
    conn.write_q.extend(chunks);
}

/// Writes queued chunks until the socket would block or the queue empties.
fn write_some(core: &ShardCore, conn: &mut Conn) {
    while let Some(front) = conn.write_q.front_mut() {
        let remaining = front.remaining();
        if remaining.is_empty() {
            conn.write_q.pop_front();
            continue;
        }
        match conn.stream.write(remaining) {
            Ok(0) => {
                conn.dead = true;
                return;
            }
            Ok(n) => {
                front.pos += n;
                conn.queued_bytes -= n;
                core.inner
                    .stats
                    .queue_depth
                    .fetch_sub(n as u64, Ordering::Relaxed);
                conn.last_activity = Instant::now();
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => {
                conn.dead = true;
                return;
            }
        }
    }
}

/// Reads until the socket would block (or backpressure pauses reads),
/// parsing complete frames out of the reassembly buffer as they form.
fn read_and_parse(core: &ShardCore, conn: &mut Conn, scratch: &mut [u8]) {
    loop {
        if !conn.wants_read(&core.cfg) {
            return;
        }
        match conn.stream.read(scratch) {
            Ok(0) => {
                conn.read_closed = true;
                return;
            }
            Ok(n) => {
                conn.last_activity = Instant::now();
                conn.buf.extend_from_slice(&scratch[..n]);
                parse_frames(core, conn);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => {
                conn.dead = true;
                return;
            }
        }
    }
}

/// Consumes every complete frame in `conn.buf`, queuing one [`Req`] per
/// frame. A framing error queues a [`Req::Protocol`] *behind* the frames
/// that parsed before it (the error reply must not overtake their
/// responses) and stops all further reading.
fn parse_frames(core: &ShardCore, conn: &mut Conn) {
    let mut consumed = 0;
    while !conn.read_dead && conn.pending.len() < PENDING_CAP {
        let avail = conn.buf.len() - consumed;
        if avail < HEADER_LEN {
            break;
        }
        let header: [u8; HEADER_LEN] = conn.buf[consumed..consumed + HEADER_LEN]
            .try_into()
            .expect("slice length is HEADER_LEN");
        match protocol::parse_header(&header) {
            Err(e) => {
                conn.pending.push_back(Req::Protocol(e.to_string()));
                conn.read_dead = true;
            }
            Ok((type_byte, declared)) => {
                let total = HEADER_LEN + declared as usize;
                if avail < total {
                    break;
                }
                let payload = &conn.buf[consumed + HEADER_LEN..consumed + total];
                match protocol::decode_payload(type_byte, payload) {
                    Err(e) => {
                        conn.pending.push_back(Req::Protocol(e.to_string()));
                        conn.read_dead = true;
                    }
                    Ok(frame) => {
                        consumed += total;
                        conn.pending.push_back(match frame {
                            Frame::Ping => Req::Ping,
                            Frame::StatsRequest => Req::Stats,
                            Frame::QueryRequest { table_id, query } => {
                                Req::Query { table_id, query }
                            }
                            Frame::BatchRequest { items } => Req::Batch { items },
                            Frame::Subscribe {
                                sub_id,
                                table_id,
                                query,
                            } => Req::Subscribe {
                                sub_id,
                                table_id,
                                query,
                            },
                            Frame::Unsubscribe { sub_id } => Req::Unsubscribe { sub_id },
                            Frame::FollowLog { table_id, have } => {
                                Req::FollowLog { table_id, have }
                            }
                            Frame::PlannedQuery { plan } => Req::Planned { plan },
                            Frame::Pong
                            | Frame::QueryResponse { .. }
                            | Frame::BatchResponse { .. }
                            | Frame::StatsResponse(_)
                            | Frame::Error { .. }
                            | Frame::LogSegment { .. }
                            | Frame::Snapshot { .. }
                            | Frame::DeltaVo { .. }
                            | Frame::PlannedResponse { .. }
                            | Frame::ResyncRequired { .. } => Req::BadDirection,
                        });
                    }
                }
            }
        }
    }
    conn.buf.drain(..consumed);
    // The frame deadline covers exactly one reassembling frame: armed
    // when a partial frame is waiting for its tail — even behind complete
    // frames the pending cap held back, which is why the tail is scanned
    // rather than inferred from how the loop exited — reset whenever a
    // frame completed (the clock restarts per frame), cleared otherwise.
    // Complete-but-unparsed frames held back by the pending cap are the
    // client doing nothing wrong and get no deadline themselves.
    let partial = !conn.read_dead && tail_partial(&conn.buf);
    conn.frame_deadline = if !partial {
        None
    } else if consumed > 0 || conn.frame_deadline.is_none() {
        Some(Instant::now() + core.cfg.frame_timeout)
    } else {
        conn.frame_deadline
    };
}

/// Whether the buffer ends mid-frame: walks the complete (parsed-or-not)
/// frames at the front and reports a trailing fragment. A malformed
/// header stops the walk — that is a protocol error surfacing on the next
/// parse, not a frame reassembling.
fn tail_partial(buf: &[u8]) -> bool {
    let mut off = 0;
    loop {
        let avail = buf.len() - off;
        if avail == 0 {
            return false;
        }
        if avail < HEADER_LEN {
            return true;
        }
        let header: [u8; HEADER_LEN] = buf[off..off + HEADER_LEN]
            .try_into()
            .expect("slice length is HEADER_LEN");
        let Ok((_, declared)) = protocol::parse_header(&header) else {
            return false;
        };
        let total = HEADER_LEN + declared as usize;
        if avail < total {
            return true;
        }
        off += total;
    }
}

/// Alternates [`dispatch`] with [`parse_frames`] until the connection can
/// make no more progress. Parsing stops at [`PENDING_CAP`], so a client
/// that pipelines more frames than the cap in one burst leaves complete
/// frames sitting in `conn.buf`; dispatching frees pending slots, and
/// those frames must then be re-parsed here — no further read event will
/// arrive to do it (the socket is already drained). The same resumption
/// applies after a backpressure pause lifts or an in-flight answer lands.
fn pump(core: &ShardCore, conn: &mut Conn, token: u64) {
    loop {
        dispatch(core, conn, token);
        if conn.inflight
            || conn.dead
            || conn.read_dead
            || conn.close_after_flush
            || conn.buf.is_empty()
            || conn.pending.len() >= PENDING_CAP
            || conn.queued_bytes > core.cfg.write_queue_limit
        {
            return;
        }
        let before = (conn.pending.len(), conn.buf.len());
        parse_frames(core, conn);
        if (conn.pending.len(), conn.buf.len()) == before {
            return; // only a partial frame remains
        }
    }
}

/// [`answer`] with a panic guard. The pool's own `catch_unwind` keeps the
/// worker thread alive, but a panic escaping the job still swallows the
/// completion message — the connection's in-flight marker then never
/// clears and its request FIFO wedges forever. Catching here turns a
/// panicking query (a publisher bug, a poisoned-and-recovered structure in
/// a weird state) into an ordinary per-query error that completes back to
/// the shard like any other.
fn answer_guarded(
    inner: &Inner,
    table_id: u32,
    query: &SelectQuery,
) -> Result<AnswerBlob, (ErrorCode, String)> {
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        answer(inner, table_id, query)
    }))
    .unwrap_or_else(|_| Err((ErrorCode::Internal, "query panicked".into())))
}

/// [`answer_planned`] with the same panic guard as [`answer_guarded`]
/// (the join path in particular panics on a referential-integrity
/// violation between the two served tables).
fn answer_planned_guarded(
    inner: &Inner,
    plan: &adp_core::plan::WirePlan,
) -> Result<AnswerBlob, (ErrorCode, String)> {
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| answer_planned(inner, plan)))
        .unwrap_or_else(|_| Err((ErrorCode::Internal, "planned query panicked".into())))
}

/// Drains the connection's request FIFO: cheap frames answer in place;
/// a query or batch goes to the worker pool and marks the connection
/// in-flight, parking the FIFO until the answer completes back.
fn dispatch(core: &ShardCore, conn: &mut Conn, token: u64) {
    while !conn.inflight && !conn.close_after_flush && !conn.dead {
        if conn.queued_bytes > core.cfg.write_queue_limit {
            return; // backpressure: resume once the client drains
        }
        let Some(req) = conn.pending.pop_front() else {
            return;
        };
        match req {
            Req::Ping => push_chunks(
                core,
                conn,
                vec![WriteChunk::owned(encode_frame(&Frame::Pong))],
            ),
            Req::Stats => {
                let snapshot: StatsSnapshot = core.inner.snapshot();
                push_chunks(
                    core,
                    conn,
                    vec![WriteChunk::owned(encode_frame(&Frame::StatsResponse(
                        snapshot,
                    )))],
                );
            }
            Req::BadDirection => {
                ServerStats::bump(&core.inner.stats.errors);
                push_chunks(
                    core,
                    conn,
                    vec![WriteChunk::owned(encode_frame(&Frame::Error {
                        code: ErrorCode::BadFrame,
                        message: "unexpected frame direction".into(),
                    }))],
                );
            }
            Req::Protocol(message) => {
                ServerStats::bump(&core.inner.stats.errors);
                push_chunks(
                    core,
                    conn,
                    vec![WriteChunk::owned(encode_frame(&Frame::Error {
                        code: ErrorCode::BadFrame,
                        message,
                    }))],
                );
                conn.close_after_flush = true;
            }
            Req::Query { table_id, query } => {
                conn.inflight = true;
                let inner = Arc::clone(&core.inner);
                let shard = Arc::clone(&core.me);
                core.pool.execute(move || {
                    let item = answer_guarded(&inner, table_id, &query);
                    if item.is_err() {
                        ServerStats::bump(&inner.stats.errors);
                    }
                    let chunks = match item {
                        Ok(blob) => query_response_chunks(&blob),
                        Err((code, message)) => {
                            vec![WriteChunk::owned(encode_frame(&Frame::Error {
                                code,
                                message,
                            }))]
                        }
                    };
                    shard.push(Msg::Complete(token, chunks));
                });
            }
            Req::Planned { plan } => {
                conn.inflight = true;
                let inner = Arc::clone(&core.inner);
                let shard = Arc::clone(&core.me);
                core.pool.execute(move || {
                    let item = answer_planned_guarded(&inner, &plan);
                    if item.is_err() {
                        ServerStats::bump(&inner.stats.errors);
                    }
                    let chunks = match item {
                        Ok(blob) => planned_response_chunks(&blob),
                        Err((code, message)) => {
                            vec![WriteChunk::owned(encode_frame(&Frame::Error {
                                code,
                                message,
                            }))]
                        }
                    };
                    shard.push(Msg::Complete(token, chunks));
                });
            }
            Req::Subscribe {
                sub_id,
                table_id,
                query,
            } => {
                conn.inflight = true;
                let inner = Arc::clone(&core.inner);
                let shard = Arc::clone(&core.me);
                core.pool.execute(move || {
                    subscribe_job(&inner, &shard, token, sub_id, table_id, &query);
                });
            }
            Req::FollowLog { table_id, have } => {
                conn.inflight = true;
                let inner = Arc::clone(&core.inner);
                let shard = Arc::clone(&core.me);
                core.pool.execute(move || {
                    follow_job(&inner, &shard, token, table_id, have);
                });
            }
            Req::Unsubscribe { sub_id } => {
                // Inline on the shard thread: removing the registry entry
                // and queuing the ack atomically with respect to this
                // connection's write queue guarantees no delta for
                // `sub_id` follows the ack (fan-out pushes arriving later
                // fail the delivery-time `sub_alive` check).
                if core.inner.remove_range_sub(&core.me, token, sub_id) {
                    push_chunks(
                        core,
                        conn,
                        vec![WriteChunk::owned(encode_frame(&Frame::DeltaVo {
                            sub_id,
                            epoch: 0,
                            pieces: Vec::new(),
                        }))],
                    );
                } else {
                    ServerStats::bump(&core.inner.stats.errors);
                    push_chunks(
                        core,
                        conn,
                        vec![WriteChunk::owned(encode_frame(&Frame::Error {
                            code: ErrorCode::BadQuery,
                            message: format!("no subscription with id {sub_id}"),
                        }))],
                    );
                }
            }
            Req::Batch { items } => {
                ServerStats::bump(&core.inner.stats.batches);
                if items.is_empty() {
                    let bytes = encode_batch_frame(&core.inner, &[]);
                    push_chunks(core, conn, vec![WriteChunk::owned(bytes)]);
                    continue;
                }
                conn.inflight = true;
                let state = Arc::new(BatchState {
                    slots: Mutex::new((0..items.len()).map(|_| None).collect()),
                    remaining: AtomicUsize::new(items.len()),
                    token,
                    shard: Arc::clone(&core.me),
                    inner: Arc::clone(&core.inner),
                });
                for (index, (table_id, query)) in items.into_iter().enumerate() {
                    let state = Arc::clone(&state);
                    core.pool.execute(move || {
                        let item = answer_guarded(&state.inner, table_id, &query);
                        if item.is_err() {
                            ServerStats::bump(&state.inner.stats.errors);
                        }
                        lock_recover(&state.slots)[index] = Some(item);
                        if state.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
                            let answers: Vec<BatchAnswer> = lock_recover(&state.slots)
                                .drain(..)
                                .map(|slot| {
                                    slot.unwrap_or(Err((
                                        ErrorCode::Internal,
                                        "worker dropped the answer".into(),
                                    )))
                                })
                                .collect();
                            let bytes = encode_batch_frame(&state.inner, &answers);
                            state
                                .shard
                                .push(Msg::Complete(state.token, vec![WriteChunk::owned(bytes)]));
                        }
                    });
                }
            }
        }
    }
}
