//! # adp-core
//!
//! The primary contribution of *"Verifying Completeness of Relational
//! Query Results in Data Publishing"* (Pang, Jain, Ramamritham, Tan —
//! SIGMOD 2005): a signature-chain scheme letting users verify that an
//! untrusted publisher's query results are **complete**, **authentic**,
//! and **precise** (no data beyond the access-control-rewritten query is
//! disclosed).
//!
//! ## Roles (Figure 3)
//!
//! * [`owner::Owner`] signs tables: delimiters, per-record `g(r)` digests
//!   (formula (3) / Figure 7), chained signatures (formula (1)), and
//!   maintains them under updates with 3-signature locality (Section 6.3).
//! * [`publisher::Publisher`] answers select-project(-distinct) queries
//!   with verification objects (Figures 4/8); `publisher::malicious`
//!   implements the Section 3.2 cheating strategies for testing.
//! * [`verifier::verify_select`] is the user-side check.
//! * [`join`] extends the scheme to pk-fk equi-joins and band joins
//!   (Section 4.3).
//!
//! ## Scheme internals
//!
//! * [`domain::Domain`] — the public key domain `(L, U)`, delimiters,
//!   query-bound normalization.
//! * [`repr::Radix`] — the Section 5.1 base-`B` digit algebra: canonical /
//!   preferred non-canonical representations and the Lemma's selection.
//! * [`gdigest`] — `g(r)` construction in conceptual and optimized modes.
//! * [`vo`] / [`wire`] — verification objects and their byte-exact codec.
//! * [`costmodel`] — the analytic formulas (4)/(5) with Table 1 constants,
//!   regenerating the paper's Figures 9 and 10.
//!
//! ## Quick start
//!
//! ```
//! use adp_core::prelude::*;
//! use adp_relation::{Column, KeyRange, Record, Schema, SelectQuery, Table, Value, ValueType};
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! // Owner side: sign the table.
//! let schema = Schema::new(vec![Column::new("salary", ValueType::Int)], "salary");
//! let mut table = Table::new("emp", schema);
//! for s in [2000i64, 3500, 8010, 12100, 25000] {
//!     table.insert(Record::new(vec![Value::Int(s)])).unwrap();
//! }
//! let mut rng = StdRng::seed_from_u64(7);
//! let owner = Owner::new(512, &mut rng);
//! let signed = owner.sign_table(table, Domain::new(0, 100_000), SchemeConfig::default()).unwrap();
//! let cert = owner.certificate(&signed);
//!
//! // Publisher side: answer a query with a proof.
//! let query = SelectQuery::range(KeyRange::less_than(10_000));
//! let (result, vo) = Publisher::new(&signed).answer_select(&query).unwrap();
//!
//! // User side: verify completeness + authenticity.
//! let report = verify_select(&cert, &query, &result, &vo).unwrap();
//! assert_eq!(report.matched, 3);
//! ```

pub mod client;
pub mod costmodel;
pub mod dagext;
pub mod delta;
pub mod domain;
pub mod errors;
pub mod gdigest;
pub mod join;
pub mod owner;
pub mod passes;
pub mod plan;
pub mod publisher;
pub mod repr;
pub mod scheme;
pub mod sql;
pub mod verifier;
pub mod vo;
pub mod wire;

/// The commonly used types, re-exported.
pub mod prelude {
    pub use crate::client::{AggregateKind, AggregateValue, Client, ClientError, SessionStats};
    pub use crate::domain::{Domain, QueryBounds};
    pub use crate::errors::VerifyError;
    pub use crate::owner::{BatchReport, Certificate, Mutation, Owner, SignedTable, UpdateReport};
    pub use crate::passes::{default_passes, Pass, Planned, Planner};
    pub use crate::plan::{Catalog, CatalogTable, PhysicalPlan, Plan, PlanError, WirePlan};
    pub use crate::publisher::Publisher;
    pub use crate::scheme::{Mode, SchemeConfig};
    pub use crate::sql::{parse, SqlError, Statement};
    pub use crate::verifier::{verify_select, verify_select_wire, VerifyReport};
    pub use crate::vo::QueryVO;
}

pub use prelude::*;
