//! Fixtures shared by the attack-oriented integration suites. Each test
//! binary keeps its own `Owner` (seeds differ deliberately so suites don't
//! mask each other's key-dependent behavior), but the tables under attack
//! are defined once here.
#![allow(dead_code)] // each test binary uses a subset

use adp_relation::{Column, Record, Schema, Table, Value, ValueType};

/// 20 staff rows keyed on salary (1000, 1500, … 10500); `dept` cycles
/// 0,1,2 so adjacent result rows always differ in every non-key column
/// (keeps swap-style tampering a real mutation, never a no-op).
pub fn staff_table() -> Table {
    let schema = Schema::new(
        vec![
            Column::new("id", ValueType::Int),
            Column::new("name", ValueType::Text),
            Column::new("salary", ValueType::Int),
            Column::new("dept", ValueType::Int),
        ],
        "salary",
    );
    let mut t = Table::new("staff", schema);
    for i in 0..20i64 {
        t.insert(Record::new(vec![
            Value::Int(i),
            Value::from(format!("emp{i}")),
            Value::Int(1_000 + i * 500),
            Value::Int(i % 3),
        ]))
        .unwrap();
    }
    t
}

/// Employees sorted on their dept foreign key: 6 rows over depts
/// {10, 20, 30, 40}, referentially contained in [`dept_table`].
pub fn emp_by_dept() -> Table {
    let schema = Schema::new(
        vec![
            Column::new("id", ValueType::Int),
            Column::new("name", ValueType::Text),
            Column::new("dept", ValueType::Int),
        ],
        "dept",
    );
    let mut t = Table::new("emp", schema);
    for (id, name, dept) in [
        (5i64, "A", 10i64),
        (1, "D", 10),
        (2, "C", 20),
        (3, "E", 20),
        (4, "B", 30),
        (6, "F", 40),
    ] {
        t.insert(Record::new(vec![
            Value::Int(id),
            Value::from(name),
            Value::Int(dept),
        ]))
        .unwrap();
    }
    t
}

/// Salary caps keyed on `cap`, the S side of the band join
/// `staff.salary ≤ caps.cap`: max cap 7300 lands mid-way through
/// [`staff_table`]'s salaries, so the R partition is a non-trivial prefix
/// (13 of 20 rows) with enough interior for every tampering strategy.
pub fn band_caps_table() -> Table {
    let schema = Schema::new(
        vec![
            Column::new("cap", ValueType::Int),
            Column::new("grade", ValueType::Text),
        ],
        "cap",
    );
    let mut t = Table::new("caps", schema);
    for (cap, grade) in [(2_600i64, "junior"), (4_100, "mid"), (7_300, "senior")] {
        t.insert(Record::new(vec![Value::Int(cap), Value::from(grade)]))
            .unwrap();
    }
    t
}

/// Departments keyed on dept id: 5 rows, one (legal/50) never joined.
pub fn dept_table() -> Table {
    let schema = Schema::new(
        vec![
            Column::new("dept", ValueType::Int),
            Column::new("dname", ValueType::Text),
            Column::new("budget", ValueType::Int),
        ],
        "dept",
    );
    let mut t = Table::new("dept", schema);
    for (d, n, b) in [
        (10i64, "eng", 500i64),
        (20, "sales", 300),
        (30, "hr", 100),
        (40, "ops", 200),
        (50, "legal", 50),
    ] {
        t.insert(Record::new(vec![
            Value::Int(d),
            Value::from(n),
            Value::Int(b),
        ]))
        .unwrap();
    }
    t
}
