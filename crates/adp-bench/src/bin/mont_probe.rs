use adp_crypto::bigint::BigUint;
use adp_crypto::montgomery::MontgomeryCtx;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

fn main() {
    let mut rng = StdRng::seed_from_u64(1);
    for bits in [512usize, 1024] {
        let mut m = BigUint::random_bits(&mut rng, bits);
        if m.is_even() {
            m = m.add(&BigUint::one());
        }
        let base = BigUint::random_below(&mut rng, &m);
        let exp = BigUint::random_bits(&mut rng, bits);
        let iters = 20;
        let t = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(base.mod_pow_plain(&exp, &m));
        }
        let plain = t.elapsed() / iters;
        let ctx = MontgomeryCtx::new(&m).unwrap();
        let t = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(ctx.mod_pow(&base, &exp));
        }
        let mont = t.elapsed() / iters;
        println!(
            "{bits}-bit modpow: plain {plain:?}  montgomery {mont:?}  speedup {:.1}x",
            plain.as_secs_f64() / mont.as_secs_f64()
        );
    }
}
