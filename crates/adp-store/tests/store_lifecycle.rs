//! The acceptance path for the store: a signed table persisted to disk,
//! mutated through the update log, and reloaded after a (simulated)
//! process restart must be **byte-identical** to the in-memory table the
//! owner maintained — same signatures, same `g` digests, same VO bytes —
//! and `apply_batch` must re-sign `O(k)` chain neighborhoods, not `O(n)`.

use adp_core::prelude::*;
use adp_core::publisher::Publisher;
use adp_core::wire;
use adp_relation::{Column, KeyRange, Record, Schema, SelectQuery, Table, Value, ValueType};
use adp_store::{Store, StoreError, LOG_FILE};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fs;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::OnceLock;

fn test_owner() -> &'static Owner {
    static OWNER: OnceLock<Owner> = OnceLock::new();
    OWNER.get_or_init(|| {
        let mut rng = StdRng::seed_from_u64(0x5709E);
        Owner::new(512, &mut rng)
    })
}

fn workdir(name: &str) -> PathBuf {
    static SEQ: AtomicU32 = AtomicU32::new(0);
    let dir = std::env::temp_dir().join(format!(
        "adp-store-test-{name}-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn schema() -> Schema {
    Schema::new(
        vec![
            Column::new("id", ValueType::Int),
            Column::new("name", ValueType::Text),
            Column::new("salary", ValueType::Int),
        ],
        "salary",
    )
}

fn rec(id: i64, salary: i64) -> Record {
    Record::new(vec![
        Value::Int(id),
        Value::from(format!("e{id}")),
        Value::Int(salary),
    ])
}

fn base_table(n: i64) -> Table {
    let mut t = Table::new("emp", schema());
    for i in 0..n {
        t.insert(rec(i, 1_000 + i * 50)).unwrap();
    }
    t
}

fn sign(n: i64) -> SignedTable {
    test_owner()
        .sign_table(
            base_table(n),
            Domain::new(0, 100_000),
            SchemeConfig::default(),
        )
        .unwrap()
}

/// Chain-position-indexed byte material of a signed table.
fn chain_bytes(st: &SignedTable) -> Vec<(Vec<u8>, Vec<u8>)> {
    (0..st.chain_len())
        .map(|p| (st.g_bytes(p), st.entry(p).signature.to_bytes()))
        .collect()
}

fn vo_bytes(st: &SignedTable, query: &SelectQuery) -> (Vec<u8>, Vec<u8>) {
    let (result, vo) = Publisher::new(st).answer_select(query).unwrap();
    (wire::encode_records(&result), wire::encode_vo(&vo))
}

#[test]
fn persist_mutate_reload_is_byte_identical() {
    let owner = test_owner();
    let dir = workdir("roundtrip");

    // The in-memory reference the owner keeps, and the durable store.
    let mut reference = sign(12);
    let mut store = Store::create(&dir, reference.clone()).unwrap();

    let batches: Vec<Vec<Mutation>> = vec![
        vec![
            Mutation::Insert(rec(100, 1_275)),
            Mutation::Insert(rec(101, 99_000)),
        ],
        vec![
            Mutation::Delete {
                key: 1_000,
                replica: 0,
            },
            Mutation::Update {
                key: 1_150,
                replica: 0,
                record: rec(3, 1_150),
            },
        ],
        vec![Mutation::Update {
            key: 1_200,
            replica: 0,
            record: rec(4, 77_777), // key change: decomposed delete+insert
        }],
    ];
    for ops in batches {
        owner.apply_batch(&mut reference, ops.clone()).unwrap();
        store.apply_batch(owner, ops).unwrap();
    }
    assert_eq!(store.log_record_count(), 3);
    drop(store);

    // "Restart": everything reconstructed from disk alone.
    let reloaded = Store::open(&dir).unwrap();
    assert!(reloaded.audit());
    assert_eq!(reloaded.table().len(), reference.len());
    assert_eq!(chain_bytes(reloaded.table()), chain_bytes(&reference));

    // The publisher produces byte-identical answers and VOs from either.
    let cert = owner.certificate(&reference);
    for query in [
        SelectQuery::range(KeyRange::closed(1_000, 1_400)),
        SelectQuery::range(KeyRange::at_least(50_000)),
        SelectQuery::range(KeyRange::all()).project(&["name"]),
    ] {
        let mem = vo_bytes(&reference, &query);
        let disk = vo_bytes(reloaded.table(), &query);
        assert_eq!(mem, disk, "VO bytes must match for {query:?}");
        let report = verify_select_wire(&cert, &query, &disk.0, &disk.1);
        assert!(report.is_ok(), "reloaded answer must verify: {report:?}");
    }
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn compact_folds_log_and_preserves_bytes() {
    let owner = test_owner();
    let dir = workdir("compact");
    let mut store = Store::create(&dir, sign(8)).unwrap();
    store
        .apply_batch(owner, vec![Mutation::Insert(rec(50, 5_000))])
        .unwrap();
    store
        .apply_batch(
            owner,
            vec![Mutation::Delete {
                key: 1_050,
                replica: 0,
            }],
        )
        .unwrap();
    let before = chain_bytes(store.table());

    assert_eq!(store.compact().unwrap(), 2);
    assert_eq!(store.log_record_count(), 0);
    assert_eq!(chain_bytes(store.table()), before);

    // Reload after compaction, then keep mutating: sequences stay
    // contiguous across the snapshot boundary.
    drop(store);
    let mut store = Store::open(&dir).unwrap();
    assert_eq!(chain_bytes(store.table()), before);
    assert_eq!(store.next_seq(), 2);
    store
        .apply_batch(owner, vec![Mutation::Insert(rec(51, 6_000))])
        .unwrap();
    drop(store);
    let store = Store::open(&dir).unwrap();
    assert!(store.audit());
    assert_eq!(store.next_seq(), 3);
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn store_apply_batch_resigns_o_k_not_o_n() {
    let owner = test_owner();
    let dir = workdir("locality");
    let n = 300i64;
    let mut store = Store::create(&dir, sign(n)).unwrap();
    let k = 5usize;
    let ops: Vec<Mutation> = (0..k as i64)
        .map(|i| Mutation::Insert(rec(500 + i, 2_000 + i * 3_000)))
        .collect();
    let report = store.apply_batch(owner, ops).unwrap();
    assert!(
        report.signatures_recomputed <= 3 * k,
        "k={k} mutations must re-sign O(k) neighborhoods, got {}",
        report.signatures_recomputed
    );
    assert!(report.signatures_recomputed < (n as usize + 2) / 10);
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn tampered_log_bitflip_rejected_at_replay() {
    let owner = test_owner();
    let dir = workdir("tamper");
    let mut store = Store::create(&dir, sign(8)).unwrap();
    store
        .apply_batch(owner, vec![Mutation::Insert(rec(60, 4_000))])
        .unwrap();
    drop(store);

    let log_path = dir.join(LOG_FILE);
    let pristine = fs::read(&log_path).unwrap();
    // Flip one bit somewhere in the record body (past the 10-byte header):
    // the CRC framing must reject it at replay.
    for offset in [10usize, pristine.len() / 2, pristine.len() - 1] {
        let mut bad = pristine.clone();
        bad[offset] ^= 0x04;
        fs::write(&log_path, &bad).unwrap();
        let err = Store::open(&dir).expect_err("bit-flipped log must be rejected");
        assert!(
            matches!(
                err,
                StoreError::CrcMismatch { .. }
                    | StoreError::Truncated { .. }
                    | StoreError::BadSection { .. }
            ),
            "unexpected error for flip at {offset}: {err:?}"
        );
    }
    fs::write(&log_path, &pristine).unwrap();
    assert!(Store::open(&dir).is_ok());
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn forged_record_with_valid_crc_rejected_by_signature_check() {
    // CRC framing catches corruption; the signature check catches *forgery*:
    // a record re-framed with a valid CRC but a doctored signature must
    // still be rejected when the replay verifies it against the owner key.
    let owner = test_owner();
    let dir = workdir("forge");
    let mut store = Store::create(&dir, sign(8)).unwrap();
    let report = store
        .apply_batch(owner, vec![Mutation::Insert(rec(60, 4_000))])
        .unwrap();
    drop(store);

    // Replace the genuine log record with one that is identical — same
    // seq, same ops, same positions, a freshly valid CRC — except one
    // signature byte.
    let mut forged_resigned = report.resigned.clone();
    let mut sig_bytes = forged_resigned[1].1.to_bytes();
    sig_bytes[3] ^= 0x80;
    forged_resigned[1].1 = adp_crypto::Signature::from_bytes(&sig_bytes);
    let forged = adp_store::LogRecord {
        seq: 0,
        ops: report.ops.clone(),
        resigned: forged_resigned,
    };
    let log_path = dir.join(LOG_FILE);
    let mut log: Vec<u8> = adp_store::log::log_header().to_vec();
    log.extend_from_slice(&adp_store::log::encode_record(&forged));
    fs::write(&log_path, log).unwrap();

    let err = Store::open(&dir).expect_err("forged signature must be rejected");
    assert!(
        matches!(
            err,
            StoreError::Owner(adp_core::owner::OwnerError::ResignatureInvalid { .. })
        ),
        "{err:?}"
    );
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn interrupted_compaction_recovers_on_open() {
    // Simulate a crash between compact()'s two steps: the new snapshot
    // (base_seq advanced) landed, but the old log — full of already-folded
    // records — was never truncated. Open must skip the folded prefix and
    // reconstruct the same table, not refuse with a sequence gap.
    let owner = test_owner();
    let dir = workdir("compact-crash");
    let mut store = Store::create(&dir, sign(8)).unwrap();
    store
        .apply_batch(owner, vec![Mutation::Insert(rec(50, 5_000))])
        .unwrap();
    store
        .apply_batch(
            owner,
            vec![Mutation::Delete {
                key: 1_050,
                replica: 0,
            }],
        )
        .unwrap();
    let expected = chain_bytes(store.table());
    let stale_log = fs::read(dir.join(LOG_FILE)).unwrap();
    store.compact().unwrap();
    drop(store);
    // "Crash": restore the pre-compaction log next to the new snapshot.
    fs::write(dir.join(LOG_FILE), &stale_log).unwrap();

    let store = Store::open(&dir).expect("interrupted compaction must recover");
    assert!(store.audit());
    assert_eq!(chain_bytes(store.table()), expected);
    assert_eq!(store.next_seq(), 2);
    assert_eq!(store.log_record_count(), 0, "folded records don't count");
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn sequence_gap_rejected() {
    let owner = test_owner();
    let dir = workdir("seqgap");
    let mut store = Store::create(&dir, sign(8)).unwrap();
    let report = store
        .apply_batch(owner, vec![Mutation::Insert(rec(60, 4_000))])
        .unwrap();
    drop(store);

    // Re-append the same record with a skipped sequence number.
    let log_path = dir.join(LOG_FILE);
    let mut log = fs::read(&log_path).unwrap();
    log.extend_from_slice(&adp_store::log::encode_record(&adp_store::LogRecord {
        seq: 5,
        ops: report.ops.clone(),
        resigned: report.resigned.clone(),
    }));
    fs::write(&log_path, log).unwrap();
    assert!(matches!(
        Store::open(&dir),
        Err(StoreError::SequenceGap {
            expected: 1,
            got: 5
        })
    ));
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn single_writer_lock_enforced_and_released() {
    let dir = workdir("lock");
    let store = Store::create(&dir, sign(6)).unwrap();
    // A second writer on the same directory is refused while the first
    // lives (this is what keeps log sequence numbers append-once).
    assert!(matches!(Store::open(&dir), Err(StoreError::Locked { .. })));
    drop(store);
    // The OS advisory lock is released with the handle (and would be
    // released by the kernel on any crash); the LOCK file itself stays.
    let store = Store::open(&dir).unwrap();
    drop(store);
    // A leftover LOCK file with arbitrary content holds no lock: nothing
    // to reclaim, acquisition just succeeds.
    fs::write(dir.join("LOCK"), "4294967294").unwrap();
    let store = Store::open(&dir).expect("a dead holder's lock file must not brick the store");
    drop(store);
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn wrong_owner_key_rejected() {
    let dir = workdir("wrongkey");
    let mut store = Store::create(&dir, sign(6)).unwrap();
    let mut rng = StdRng::seed_from_u64(0xBAD);
    let stranger = Owner::new(512, &mut rng);
    assert!(matches!(
        store.apply_batch(&stranger, vec![Mutation::Insert(rec(60, 4_000))]),
        Err(StoreError::OwnerKeyMismatch)
    ));
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn failed_batch_leaves_store_unchanged() {
    let owner = test_owner();
    let dir = workdir("atomic");
    let mut store = Store::create(&dir, sign(6)).unwrap();
    let before = chain_bytes(store.table());
    let err = store.apply_batch(
        owner,
        vec![
            Mutation::Insert(rec(70, 7_000)),
            Mutation::Delete {
                key: 424_242,
                replica: 0,
            },
        ],
    );
    assert!(err.is_err());
    assert_eq!(chain_bytes(store.table()), before);
    assert_eq!(store.log_record_count(), 0);
    drop(store);
    // Disk agrees: nothing was appended.
    let store = Store::open(&dir).unwrap();
    assert_eq!(chain_bytes(store.table()), before);
    fs::remove_dir_all(&dir).unwrap();
}
