//! Load harness for the epoll server core: holds thousands of idle
//! connections in one process (proving the reactor's thread count and
//! steady-state wakeups stay flat) while driving an **open-loop** query
//! workload against the same server and recording the latency
//! distribution.
//!
//! Open-loop means arrivals are scheduled on a fixed clock — request `i`
//! is *due* at `start + i/rate` — and each latency is measured from the
//! scheduled arrival, not from when the sender got around to writing it.
//! A server that stalls therefore accrues queueing delay in the recorded
//! percentiles instead of silently slowing the offered rate (the
//! coordinated-omission trap a closed loop falls into).
//!
//! Driven by `cargo run --release -p adp-bench --bin load_harness` (which
//! writes `BENCH_PR6.json`) and by `adp load`.

use crate::{bench_owner_small, WorkloadSpec};
use adp_core::prelude::SchemeConfig;
use adp_relation::{KeyRange, SelectQuery};
use adp_server::sys::raise_nofile_limit;
use adp_server::{RemoteClient, Server, ServerConfig, ServerHandle};
use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

/// Knobs for one harness run.
#[derive(Clone, Debug)]
pub struct LoadConfig {
    /// Idle connections to hold open for the whole run.
    pub idle_connections: usize,
    /// Offered open-loop arrival rate, queries per second.
    pub rate_per_sec: f64,
    /// Length of the open-loop measurement window.
    pub duration: Duration,
    /// Sender connections the scheduled arrivals are striped across.
    pub query_connections: usize,
    /// Rows in the served table.
    pub rows: usize,
    /// Server worker threads.
    pub workers: usize,
    /// Reactor shards (0 = one per core).
    pub shards: usize,
}

impl Default for LoadConfig {
    fn default() -> Self {
        LoadConfig {
            idle_connections: 10_000,
            rate_per_sec: 1_000.0,
            duration: Duration::from_secs(5),
            query_connections: 8,
            rows: 1_000,
            workers: 4,
            shards: 0,
        }
    }
}

/// The open-loop leg's outcome.
#[derive(Clone, Debug)]
pub struct OpenLoopStats {
    pub offered_rps: f64,
    pub achieved_rps: f64,
    pub sent: u64,
    pub completed: u64,
    pub errors: u64,
    pub p50_us: u64,
    pub p90_us: u64,
    pub p99_us: u64,
    pub max_us: u64,
}

/// Everything one run proves.
#[derive(Clone, Debug)]
pub struct LoadReport {
    /// Idle connections requested (after clamping to the fd limit).
    pub idle_target: usize,
    /// Idle connections actually held concurrently during the run.
    pub idle_held: usize,
    /// Reactor wakeups observed over [`Self::steady_window`] with every
    /// connection parked — the "idle connections are free" claim, as a
    /// measurement.
    pub steady_wakeups: u64,
    pub steady_window: Duration,
    /// Process thread count while holding all idle connections: shards +
    /// workers + harness threads, *independent of connection count*.
    pub threads: usize,
    pub open_loop: OpenLoopStats,
}

fn threads_now() -> usize {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines()
                .find_map(|l| l.strip_prefix("Threads:"))
                .and_then(|v| v.trim().parse().ok())
        })
        .unwrap_or(0)
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// Waits until the server's `open_connections` gauge reaches `want`.
fn wait_for_gauge(handle: &ServerHandle, want: u64, deadline: Duration) -> bool {
    let end = Instant::now() + deadline;
    while Instant::now() < end {
        if handle.stats().open_connections >= want {
            return true;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    false
}

/// The parked idle fleet: client socket ends held in this process when the
/// fd budget allows, else in a re-exec'd helper child (each connection
/// costs *two* fds when both ends live in one process, and the fd hard
/// limit may not be raisable — the server side still holds every
/// connection either way).
enum Fleet {
    InProcess(Vec<TcpStream>),
    Child(Child),
}

impl Fleet {
    fn disband(self) {
        match self {
            Fleet::InProcess(conns) => drop(conns),
            Fleet::Child(mut child) => {
                // Closing the child's stdin is the disband signal.
                drop(child.stdin.take());
                let _ = child.wait();
            }
        }
    }
}

/// Entry point for the hidden `--flood ADDR COUNT` helper mode: connects
/// `COUNT` idle connections to `ADDR`, prints `ready COUNT` on stdout,
/// and parks until stdin reaches EOF. Host binaries (`load_harness`,
/// `adp`) dispatch here before normal argument parsing.
pub fn flood_main(args: &[String]) -> io::Result<()> {
    let (addr, count) = match args {
        [addr, count] => (
            addr.clone(),
            count
                .parse::<usize>()
                .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "bad COUNT"))?,
        ),
        _ => {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "usage: --flood ADDR COUNT",
            ))
        }
    };
    raise_nofile_limit(count as u64 + 64)?;
    let mut conns = Vec::with_capacity(count);
    while conns.len() < count {
        // Paced chunks: connecting flat-out overflows the accept backlog
        // and the resulting SYN retransmits take seconds.
        for _ in 0..(count - conns.len()).min(128) {
            conns.push(connect_with_retry(&addr)?);
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    println!("ready {count}");
    io::stdout().flush()?;
    // Park until the parent hangs up.
    let mut sink = Vec::new();
    io::stdin().read_to_end(&mut sink)?;
    Ok(())
}

fn connect_with_retry(addr: &str) -> io::Result<TcpStream> {
    let mut delay = Duration::from_millis(10);
    for _ in 0..8 {
        match TcpStream::connect(addr) {
            Ok(c) => return Ok(c),
            Err(_) => {
                std::thread::sleep(delay);
                delay *= 2;
            }
        }
    }
    TcpStream::connect(addr)
}

/// Spawns this same executable in `--flood` mode and waits for its fleet
/// to come up.
fn spawn_flood_child(addr: &str, count: usize) -> io::Result<Child> {
    let exe = std::env::current_exe()?;
    let mut child = Command::new(exe)
        .arg("--flood")
        .arg(addr)
        .arg(count.to_string())
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .spawn()?;
    let stdout = child.stdout.take().expect("stdout was piped");
    let mut line = String::new();
    BufReader::new(stdout).read_line(&mut line)?;
    if line.trim() != format!("ready {count}") {
        let _ = child.kill();
        return Err(io::Error::other(format!(
            "flood helper failed to park its fleet (got {line:?})"
        )));
    }
    Ok(child)
}

/// Runs the full harness: start a server, park the idle fleet, measure
/// steady-state wakeups and thread count, then drive the open-loop leg
/// with the fleet still parked.
pub fn run(cfg: &LoadConfig) -> io::Result<LoadReport> {
    // Each idle connection is one client fd plus one server fd when both
    // ends live in this process, so budget two per connection with
    // headroom for the senders, listener, epoll fds, and stdio. If the fd
    // limit cannot stretch that far the client ends move to a helper
    // child (one fd per connection here), and only if even that does not
    // fit is the fleet shrunk.
    let overhead = (cfg.query_connections * 2 + 128) as u64;
    let want_fds = cfg.idle_connections as u64 * 2 + overhead;
    let granted = raise_nofile_limit(want_fds)?;
    let (idle_target, external_fleet) = if granted >= want_fds {
        (cfg.idle_connections, false)
    } else if granted >= cfg.idle_connections as u64 + overhead {
        (cfg.idle_connections, true)
    } else {
        ((granted.saturating_sub(overhead)) as usize, true)
    };

    let (st, _cert) =
        WorkloadSpec::new(cfg.rows).signed(bench_owner_small(), SchemeConfig::default());
    let mut server = Server::new(ServerConfig {
        workers: cfg.workers,
        shards: cfg.shards,
        // The harness parks connections on purpose; reaping them mid-run
        // would turn the held-connection count into a race.
        idle_timeout: None,
        ..ServerConfig::default()
    });
    server.add_table(0, st);
    let handle = server.serve("127.0.0.1:0")?;
    let addr = handle.addr();

    // Park the idle fleet in paced chunks so the accept backlog never
    // overflows (SYN drops on loopback retry after seconds — poison for a
    // timing harness).
    let fleet = if external_fleet {
        Fleet::Child(spawn_flood_child(&addr.to_string(), idle_target)?)
    } else {
        let mut idlers: Vec<TcpStream> = Vec::with_capacity(idle_target);
        while idlers.len() < idle_target {
            for _ in 0..(idle_target - idlers.len()).min(64) {
                idlers.push(TcpStream::connect(addr)?);
            }
            wait_for_gauge(&handle, idlers.len() as u64, Duration::from_secs(10));
        }
        Fleet::InProcess(idlers)
    };
    if !wait_for_gauge(&handle, idle_target as u64, Duration::from_secs(30)) {
        return Err(io::Error::other("idle fleet never fully registered"));
    }
    let idle_held = handle.stats().open_connections as usize;
    let threads = threads_now();

    // Steady state: with every connection parked and no timers due, the
    // reactor must not wake at all.
    let steady_window = Duration::from_millis(1_000);
    std::thread::sleep(Duration::from_millis(200));
    let wakeups_before = handle.reactor_wakeups();
    std::thread::sleep(steady_window);
    let steady_wakeups = handle.reactor_wakeups() - wakeups_before;

    // Open-loop leg, idle fleet still parked. Arrival i is due at
    // start + i/rate; sender (i mod K) owns it and measures from the due
    // time, so server stalls show up as queueing delay.
    let nsenders = cfg.query_connections.max(1);
    let total: u64 = (cfg.rate_per_sec * cfg.duration.as_secs_f64()).round() as u64;
    let tick = Duration::from_secs_f64(1.0 / cfg.rate_per_sec.max(1.0));
    let start = Instant::now() + Duration::from_millis(50);
    let senders: Vec<_> = (0..nsenders)
        .map(|s| {
            let span = cfg.rows as i64 * 10;
            std::thread::spawn(move || -> io::Result<(Vec<u64>, u64, u64)> {
                let mut client = RemoteClient::connect(addr)?;
                let mut lat_us = Vec::new();
                let mut errors = 0u64;
                let mut sent = 0u64;
                let mut i = s as u64;
                while i < total {
                    let due = start + tick * (i as u32);
                    if let Some(sleep) = due.checked_duration_since(Instant::now()) {
                        std::thread::sleep(sleep);
                    }
                    // 16 rotating ranges, ~5% of the key span each.
                    let lo = (i % 16) as i64 * (span / 16);
                    let q = SelectQuery::range(KeyRange::closed(lo, lo + span / 20));
                    sent += 1;
                    match client.query_raw(0, &q) {
                        Ok(_) => lat_us.push(due.elapsed().as_micros() as u64),
                        Err(_) => errors += 1,
                    }
                    i += nsenders as u64;
                }
                Ok((lat_us, sent, errors))
            })
        })
        .collect();

    let mut lat_us: Vec<u64> = Vec::new();
    let mut sent = 0u64;
    let mut errors = 0u64;
    for t in senders {
        let (l, s, e) = t.join().expect("sender thread panicked")?;
        lat_us.extend(l);
        sent += s;
        errors += e;
    }
    let elapsed = (Instant::now() - start).as_secs_f64().max(1e-9);
    lat_us.sort_unstable();
    let open_loop = OpenLoopStats {
        offered_rps: cfg.rate_per_sec,
        achieved_rps: lat_us.len() as f64 / elapsed,
        sent,
        completed: lat_us.len() as u64,
        errors,
        p50_us: percentile(&lat_us, 0.50),
        p90_us: percentile(&lat_us, 0.90),
        p99_us: percentile(&lat_us, 0.99),
        max_us: lat_us.last().copied().unwrap_or(0),
    };

    // The fleet must still be parked after the query storm.
    let idle_after = handle.stats().open_connections as usize;
    fleet.disband();
    handle.shutdown();

    Ok(LoadReport {
        idle_target,
        idle_held: idle_held.min(idle_after),
        steady_wakeups,
        steady_window,
        threads,
        open_loop,
    })
}

/// Renders the report as the `BENCH_PR6.json`-style snapshot (a sibling of
/// `perf_trajectory`'s format: same `schema_version`/`label` envelope, with
/// a `load` section instead of `benches`).
pub fn render_json(report: &LoadReport, label: &str) -> String {
    let o = &report.open_loop;
    format!(
        "{{\n  \"schema_version\": 1,\n  \"label\": \"{label}\",\n  \"load\": {{\n    \
         \"idle_conns_target\": {},\n    \
         \"idle_conns_held\": {},\n    \
         \"steady_wakeups\": {},\n    \
         \"steady_window_ms\": {},\n    \
         \"threads\": {},\n    \
         \"offered_rps\": {:.1},\n    \
         \"achieved_rps\": {:.1},\n    \
         \"sent\": {},\n    \
         \"completed\": {},\n    \
         \"errors\": {},\n    \
         \"p50_us\": {},\n    \
         \"p90_us\": {},\n    \
         \"p99_us\": {},\n    \
         \"max_us\": {}\n  }}\n}}\n",
        report.idle_target,
        report.idle_held,
        report.steady_wakeups,
        report.steady_window.as_millis(),
        report.threads,
        o.offered_rps,
        o.achieved_rps,
        o.sent,
        o.completed,
        o.errors,
        o.p50_us,
        o.p90_us,
        o.p99_us,
        o.max_us,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_run_holds_connections_and_measures_latency() {
        let report = run(&LoadConfig {
            idle_connections: 64,
            rate_per_sec: 200.0,
            duration: Duration::from_millis(400),
            query_connections: 2,
            rows: 100,
            workers: 2,
            shards: 1,
        })
        .unwrap();
        assert_eq!(report.idle_held, 64);
        assert_eq!(report.steady_wakeups, 0, "parked connections must be free");
        assert!(report.open_loop.completed > 0);
        assert_eq!(report.open_loop.errors, 0);
        assert!(report.open_loop.p50_us <= report.open_loop.p99_us);

        let json = render_json(&report, "test");
        for key in ["idle_conns_held", "p50_us", "p99_us", "achieved_rps"] {
            assert!(json.contains(&format!("\"{key}\"")), "missing {key}");
        }
    }
}
