//! # adp-baselines
//!
//! The prior authenticated-query-processing schemes the paper compares
//! against (Section 2.3), implemented honestly so benches measure real
//! systems:
//!
//! | Scheme | Completeness | Projection | Boundary exposure | Update cost |
//! |--------|--------------|------------|-------------------|-------------|
//! | [`devanbu`] (Merkle tree over the table \[10\]) | ✅ | ❌ all columns | ❌ exposes out-of-range tuples | root path + root re-sign |
//! | [`ma`] (per-tuple MHT + condensed sigs \[13\]) | ❌ | ✅ | — | 1 signature |
//! | [`vbtree`] (signed-digest B-tree \[20\]) | ❌ | ✅ (modeled at record granularity) | — | node path of signatures |
//!
//! The signature-chain scheme in `adp-core` is the only one achieving
//! completeness *and* precision simultaneously.

pub mod devanbu;
pub mod ma;
pub mod vbtree;
pub(crate) mod wirecompat;

pub use devanbu::{MhtCertificate, MhtRangeVO, MhtTable};
pub use ma::{MaCertificate, MaTable, MaVO};
pub use vbtree::{VbCertificate, VbTree, VbVO};
