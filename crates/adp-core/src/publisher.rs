//! The publisher (Figure 3): executes queries against a [`SignedTable`] and
//! builds the verification objects of Figures 4/8.
//!
//! The publisher is *untrusted*: everything it emits is either data it
//! hosts, digests derivable from that data, or owner signatures. The
//! [`malicious`] submodule implements the cheating strategies of
//! Section 3.2 (and a few more) so tests can assert each one is caught.

use crate::domain::QueryBounds;
use crate::gdigest::{digit_chain, direction_commitment, Direction};
use crate::owner::SignedTable;
use crate::scheme::Mode;
use crate::vo::{
    AttrProof, BoundaryProof, EmptyProof, EntryChains, EntryProof, PrevG, QueryVO, RangeVO,
    RepProof, SignatureProof,
};
use adp_crypto::{AggregateSignature, Digest, HashDomain, Signature};
use adp_relation::{passes_filters, Projection, Record, Schema, SelectQuery, Value};
use std::collections::HashMap;
use std::fmt;
use std::ops::Bound;

/// Publisher-side failures (dishonesty aside, a publisher can be handed a
/// query it cannot serve).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PublishError {
    /// A filter references the key column (key conditions belong in the
    /// range) or an unknown column.
    BadFilterColumn { column: String },
    /// The projection references an unknown column.
    BadProjectionColumn,
}

impl fmt::Display for PublishError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PublishError::BadFilterColumn { column } => {
                write!(f, "filter on unsupported column '{column}'")
            }
            PublishError::BadProjectionColumn => write!(f, "projection names unknown column"),
        }
    }
}

impl std::error::Error for PublishError {}

/// The columns actually returned for each result row: the requested
/// projection, plus the key column (the user needs it for completeness —
/// Section 4.2), plus every filter column (the user must be able to check
/// the filters held — the flip side of Section 4.4's failing-attribute
/// disclosure). Order: requested columns first, then any forced additions
/// in schema order.
pub fn effective_projection(
    schema: &Schema,
    projection: &Projection,
    filters: &[adp_relation::Predicate],
) -> Option<Vec<usize>> {
    let mut cols = projection.resolve(schema)?;
    let mut forced: Vec<usize> = vec![schema.key_index()];
    for f in filters {
        forced.push(schema.column_index(&f.column)?);
    }
    forced.sort_unstable();
    for c in forced {
        if !cols.contains(&c) {
            cols.push(c);
        }
    }
    Some(cols)
}

/// Maps a schema column index to its position among the non-key attributes
/// (the leaf index in `MHT(r.A)`).
pub fn attr_position(schema: &Schema, col: usize) -> u32 {
    debug_assert_ne!(col, schema.key_index());
    if col < schema.key_index() {
        col as u32
    } else {
        (col - 1) as u32
    }
}

/// An honest publisher serving one signed table.
pub struct Publisher<'a> {
    st: &'a SignedTable,
}

impl<'a> Publisher<'a> {
    /// Wraps a signed table.
    pub fn new(st: &'a SignedTable) -> Self {
        Publisher { st }
    }

    /// The signed table served.
    pub fn signed_table(&self) -> &SignedTable {
        self.st
    }

    /// Answers a select-project query, returning the projected result rows
    /// and the verification object.
    pub fn answer_select(
        &self,
        query: &SelectQuery,
    ) -> Result<(Vec<Record>, QueryVO), PublishError> {
        let st = self.st;
        let schema = st.table().schema();
        // Validate filters: non-key, known columns.
        for f in &query.filters {
            match schema.column_index(&f.column) {
                None => {
                    return Err(PublishError::BadFilterColumn {
                        column: f.column.clone(),
                    })
                }
                Some(c) if c == schema.key_index() => {
                    return Err(PublishError::BadFilterColumn {
                        column: f.column.clone(),
                    })
                }
                Some(_) => {}
            }
        }
        let proj = effective_projection(schema, &query.projection, &query.filters)
            .ok_or(PublishError::BadProjectionColumn)?;

        let Some(bounds) = st.domain().normalize(&query.range) else {
            return Ok((Vec::new(), QueryVO::TriviallyEmpty));
        };
        let (start, end) = st
            .table()
            .key_range_positions(Bound::Included(bounds.alpha), Bound::Included(bounds.beta));

        if start == end {
            // Empty result: adjacent chain positions (start, start + 1)
            // straddle the range.
            let left_cp = start;
            let right_cp = start + 1;
            let prev = if left_cp == 0 {
                PrevG::Edge
            } else {
                PrevG::Opaque(st.g_bytes(left_cp - 1))
            };
            let vo = QueryVO::Empty(EmptyProof {
                prev,
                left: self.boundary_proof(left_cp, Direction::Up, &bounds),
                right: self.boundary_proof(right_cp, Direction::Down, &bounds),
                signature: self.signatures(&[left_cp]),
            });
            return Ok((Vec::new(), vo));
        }

        // Non-empty: rows start..end ↔ chain positions start+1 ..= end.
        let mut result: Vec<Record> = Vec::new();
        let mut entries: Vec<EntryProof> = Vec::new();
        let mut sig_positions: Vec<usize> = Vec::new();
        // For DISTINCT: projected encoding → index in `result`.
        let mut seen: HashMap<Vec<u8>, u32> = HashMap::new();

        for pos in start..end {
            let cp = pos + 1;
            sig_positions.push(cp);
            let row = st.table().row(pos);
            let record = &row.record;
            if passes_filters(st.table(), record, &query.filters) {
                let projected = record.project(&proj);
                let key_of = if query.distinct {
                    let enc = crate::wire::encode_records(std::slice::from_ref(&projected));
                    seen.get(&enc).copied().map(|of| (of, enc))
                } else {
                    None
                };
                match key_of {
                    Some((of, _)) => {
                        entries.push(EntryProof::Duplicate {
                            of,
                            chains: self.entry_chains(cp),
                            attrs: self.attr_proof(record, &proj, &[]),
                        });
                    }
                    None => {
                        if query.distinct {
                            let enc = crate::wire::encode_records(std::slice::from_ref(&projected));
                            seen.insert(enc, result.len() as u32);
                        }
                        entries.push(EntryProof::Match {
                            chains: self.entry_chains(cp),
                            attrs: self.attr_proof(record, &proj, &[]),
                        });
                        result.push(projected);
                    }
                }
            } else {
                // Multipoint-filtered row (Section 4.4): disclose the
                // failing attribute value(s), digests for the rest.
                let failing: Vec<usize> = query
                    .filters
                    .iter()
                    .filter(|f| !f.eval(schema, record.values()))
                    .filter_map(|f| schema.column_index(&f.column))
                    .collect();
                let entry = st.entry(cp);
                entries.push(EntryProof::Filtered {
                    up_component: entry.g.up,
                    down_component: entry.g.down,
                    attrs: self.attr_proof(record, &[], &failing),
                });
            }
        }

        let vo = QueryVO::Range(RangeVO {
            left: self.boundary_proof(start, Direction::Up, &bounds),
            right: self.boundary_proof(end + 1, Direction::Down, &bounds),
            entries,
            signatures: self.signatures(&sig_positions),
        });
        Ok((result, vo))
    }

    /// Builds the attribute proof for a record: `disclosed_cols` values are
    /// revealed inside the proof (filtered rows); columns in `proj` are
    /// assumed revealed through the result record; everything else is
    /// hidden behind leaf digests.
    fn attr_proof(&self, record: &Record, proj: &[usize], disclosed_cols: &[usize]) -> AttrProof {
        let st = self.st;
        let schema = st.table().schema();
        let hasher = st.hasher();
        let mut disclosed = Vec::new();
        let mut hidden = Vec::new();
        for col in 0..schema.arity() {
            if col == schema.key_index() {
                continue;
            }
            let pos = attr_position(schema, col);
            if disclosed_cols.contains(&col) {
                disclosed.push((pos, record.get(col).clone()));
            } else if !proj.contains(&col) {
                hidden.push((
                    pos,
                    hasher.hash(HashDomain::Leaf, &record.get(col).encode()),
                ));
            }
        }
        // The root is recomputable from the record; reading it from the
        // cached g avoids rebuilding the tree.
        let cp = self.chain_pos_of(record);
        AttrProof {
            disclosed,
            hidden,
            root: st.entry(cp).g.attrs,
        }
    }

    /// Chain position of a record (by key + content match).
    fn chain_pos_of(&self, record: &Record) -> usize {
        let st = self.st;
        let schema = st.table().schema();
        let key = record.key(schema);
        let (s, e) = st
            .table()
            .key_range_positions(Bound::Included(key), Bound::Included(key));
        for pos in s..e {
            if st.table().row(pos).record == *record {
                return pos + 1;
            }
        }
        unreachable!("record not found in its own table")
    }

    /// Chain roots for an entry whose key the user knows.
    fn entry_chains(&self, cp: usize) -> EntryChains {
        match self.st.entry(cp).roots {
            Some((up_root, down_root)) => EntryChains::Optimized { up_root, down_root },
            None => EntryChains::Conceptual,
        }
    }

    /// Builds the Figure-8a boundary proof for the record at `chain_pos`:
    /// `dir = Up` proves its key `< α`; `dir = Down` proves `> β`.
    fn boundary_proof(
        &self,
        chain_pos: usize,
        dir: Direction,
        bounds: &QueryBounds,
    ) -> BoundaryProof {
        let st = self.st;
        let hasher = st.hasher();
        let domain = st.domain();
        let key = st.key_at(chain_pos);
        let entry = st.entry(chain_pos);
        let (delta_e_total, delta_c) = match dir {
            Direction::Up => (
                domain
                    .delta_up_evidence(key, bounds.alpha)
                    .expect("honest boundary satisfies key < α"),
                domain.delta_up_query(bounds.alpha),
            ),
            Direction::Down => (
                domain
                    .delta_down_evidence(key, bounds.beta)
                    .expect("honest boundary satisfies key > β"),
                domain.delta_down_query(bounds.beta),
            ),
        };
        let (other_component, attr_root) = match dir {
            Direction::Up => (entry.g.down, entry.g.attrs),
            Direction::Down => (entry.g.up, entry.g.attrs),
        };
        match st.config().mode {
            Mode::Conceptual => BoundaryProof {
                intermediates: vec![digit_chain(hasher, key, dir, 0, delta_e_total)],
                selector: None,
                other_component,
                attr_root,
            },
            Mode::Optimized { .. } => {
                let radix = st.radix().expect("optimized mode has a radix");
                let delta_t = dir.delta_t(domain, key);
                let (choice, e_digits) = radix.select_representation(delta_t, delta_c);
                let intermediates: Vec<Digest> = e_digits
                    .iter()
                    .enumerate()
                    .map(|(i, &d)| digit_chain(hasher, key, dir, i as u32, d as u64))
                    .collect();
                // Rebuild the direction commitment to obtain the rep tree
                // (the table caches only the roots).
                let commit =
                    direction_commitment(hasher, st.config(), Some(radix), domain, key, dir);
                let tree = commit.rep_tree.expect("optimized mode builds rep trees");
                let selector = match choice {
                    crate::repr::ReprChoice::Canonical => Some(RepProof::Canonical {
                        mht_root: tree.root(),
                    }),
                    crate::repr::ReprChoice::NonCanonical(j) => Some(RepProof::NonCanonical {
                        index: j,
                        canon_digest: commit.canon_digest.expect("optimized mode"),
                        path: tree.prove(j as usize),
                    }),
                };
                BoundaryProof {
                    intermediates,
                    selector,
                    other_component,
                    attr_root,
                }
            }
        }
    }

    /// Packages the signatures at the given chain positions.
    fn signatures(&self, positions: &[usize]) -> SignatureProof {
        let st = self.st;
        let sigs: Vec<&Signature> = positions.iter().map(|&p| &st.entry(p).signature).collect();
        if st.config().aggregate_signatures {
            SignatureProof::Aggregated(AggregateSignature::combine(st.public_key(), &sigs))
        } else {
            SignatureProof::Individual(sigs.into_iter().cloned().collect())
        }
    }
}

/// Cheating publishers for the Section 3.2 threat analysis. Each strategy
/// produces the most plausible forgery available to an adversary who holds
/// the published data and signatures but not the owner's private key.
pub mod malicious {
    use super::*;

    /// The attack to simulate.
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub enum Attack {
        /// Case 4: omit an interior result row (and its VO entry), keeping
        /// the remaining signatures.
        OmitInterior,
        /// Case 3: truncate the tail of the result, forging a right
        /// boundary proof from the last kept record.
        TruncateTail,
        /// Case 2: claim the result is empty although records qualify.
        FakeEmpty,
        /// Case 5: inject a spurious record with fabricated chain roots.
        InjectSpurious,
        /// Authenticity: tamper with an attribute value and adjust the VO
        /// to stay internally consistent.
        TamperValue,
        /// Authenticity: swap an attribute between two result rows (the
        /// Introduction's swapped-names example).
        SwapValues,
        /// Case 1: shift the left boundary inward, presenting a qualifying
        /// record as if it were outside the range.
        ShiftLeftBoundary,
        /// Multipoint: hide a matching row by mislabeling it as filtered
        /// with a fabricated failing attribute value.
        MislabelFiltered,
        /// DISTINCT: drop a genuinely distinct row by mislabeling it a
        /// duplicate of another row.
        FakeDuplicate,
    }

    /// Applies `attack` to an honest `(result, vo)` pair. Returns `None`
    /// when the attack is not applicable (e.g. too few rows).
    pub fn tamper(
        publisher: &Publisher<'_>,
        query: &SelectQuery,
        result: &[Record],
        vo: &QueryVO,
        attack: Attack,
    ) -> Option<(Vec<Record>, QueryVO)> {
        let st = publisher.signed_table();
        let hasher = st.hasher();
        match attack {
            Attack::OmitInterior => {
                let QueryVO::Range(rv) = vo else { return None };
                if result.len() < 3 {
                    return None;
                }
                let mut result = result.to_vec();
                let drop_idx = result.len() / 2;
                result.remove(drop_idx);
                let mut rv = rv.clone();
                // Remove the matching entry and its signature.
                let mut match_seen = 0usize;
                let mut entry_idx = None;
                for (i, e) in rv.entries.iter().enumerate() {
                    if matches!(e, EntryProof::Match { .. }) {
                        if match_seen == drop_idx {
                            entry_idx = Some(i);
                            break;
                        }
                        match_seen += 1;
                    }
                }
                let entry_idx = entry_idx?;
                rv.entries.remove(entry_idx);
                rv.signatures = drop_signature(publisher, query, entry_idx)?;
                Some((result, QueryVO::Range(rv)))
            }
            Attack::TruncateTail => {
                let QueryVO::Range(rv) = vo else { return None };
                if result.len() < 2 || rv.entries.len() != result.len() {
                    return None;
                }
                let mut result = result.to_vec();
                result.pop();
                let mut rv = rv.clone();
                rv.entries.pop();
                // Forge a right boundary from the (qualifying) last kept
                // record. Its key is ≤ β so the evidence chain is
                // unconstructible; the best the adversary can do is emit
                // zero-step chains and hope.
                let bounds = st.domain().normalize(&query.range)?;
                let kidx = result_key_index(publisher, query)?;
                let last_key = result.last()?.values()[kidx].as_int()?;
                rv.right = forge_boundary(publisher, last_key, Direction::Down, &bounds);
                rv.signatures = drop_signature(publisher, query, rv.entries.len())?;
                Some((result, QueryVO::Range(rv)))
            }
            Attack::FakeEmpty => {
                let QueryVO::Range(rv) = vo else { return None };
                let bounds = st.domain().normalize(&query.range)?;
                // Present the true left boundary and the first qualifying
                // record as the straddling pair.
                let (start, _) = st.table().key_range_positions(
                    Bound::Included(bounds.alpha),
                    Bound::Included(bounds.beta),
                );
                let left_cp = start;
                let right_key = st.key_at(left_cp + 1);
                let prev = if left_cp == 0 {
                    PrevG::Edge
                } else {
                    PrevG::Opaque(st.g_bytes(left_cp - 1))
                };
                let vo = QueryVO::Empty(EmptyProof {
                    prev,
                    left: rv.left.clone(),
                    right: forge_boundary(publisher, right_key, Direction::Down, &bounds),
                    signature: publisher.signatures(&[left_cp]),
                });
                Some((Vec::new(), vo))
            }
            Attack::InjectSpurious => {
                let QueryVO::Range(rv) = vo else { return None };
                if result.is_empty() {
                    return None;
                }
                let mut result = result.to_vec();
                let mut fake = result[0].clone();
                // Nudge the key to a fresh in-range value if possible.
                let schema = st.table().schema();
                let kidx = result_key_index(publisher, query)?;
                let bounds = st.domain().normalize(&query.range)?;
                let fake_key = (fake.values()[kidx].as_int()? + 1).min(bounds.beta);
                let mut vals = fake.values().to_vec();
                vals[kidx] = Value::Int(fake_key);
                fake = Record::new(vals);
                result.insert(1.min(result.len()), fake.clone());
                let mut rv = rv.clone();
                // Fabricate an entry: reuse chain roots from a real record.
                let template = rv
                    .entries
                    .iter()
                    .find(|e| matches!(e, EntryProof::Match { .. }))?
                    .clone();
                rv.entries.insert(1.min(rv.entries.len()), template);
                // Extend the signature multiset by replaying an existing
                // signature (the adversary has no way to mint a new one).
                rv.signatures = replay_signature(publisher, query, &rv.signatures)?;
                let _ = schema;
                Some((result, QueryVO::Range(rv)))
            }
            Attack::TamperValue => {
                if result.is_empty() {
                    return None;
                }
                let mut result = result.to_vec();
                let rec = &result[0];
                let kidx = result_key_index(publisher, query)?;
                // Find a non-key column to tamper with.
                let col = (0..rec.arity()).find(|&c| c != kidx)?;
                let mut vals = rec.values().to_vec();
                vals[col] = tampered_value(&vals[col]);
                result[0] = Record::new(vals);
                // Keep the VO exactly as-is: the recomputed attribute root
                // will disagree with the signed g.
                Some((result, vo.clone()))
            }
            Attack::SwapValues => {
                if result.len() < 2 {
                    return None;
                }
                let kidx = result_key_index(publisher, query)?;
                let col = (0..result[0].arity()).find(|&c| c != kidx)?;
                let mut result = result.to_vec();
                let tmp = result[0].values()[col].clone();
                let mut v0 = result[0].values().to_vec();
                let mut v1 = result[1].values().to_vec();
                v0[col] = v1[col].clone();
                v1[col] = tmp;
                result[0] = Record::new(v0);
                result[1] = Record::new(v1);
                Some((result, vo.clone()))
            }
            Attack::ShiftLeftBoundary => {
                let QueryVO::Range(rv) = vo else { return None };
                if result.len() < 2 {
                    return None;
                }
                // Drop the first result row and pretend the range started
                // after it: forge a left boundary proof from that row.
                let bounds = st.domain().normalize(&query.range)?;
                let kidx = result_key_index(publisher, query)?;
                let mut result = result.to_vec();
                let dropped = result.remove(0);
                let key = dropped.values()[kidx].as_int()?;
                let mut rv = rv.clone();
                rv.entries.remove(0);
                rv.left = forge_boundary(publisher, key, Direction::Up, &bounds);
                rv.signatures = drop_signature(publisher, query, 0)?;
                Some((result, QueryVO::Range(rv)))
            }
            Attack::MislabelFiltered => {
                let QueryVO::Range(rv) = vo else { return None };
                if result.is_empty() || query.filters.is_empty() {
                    return None;
                }
                let schema = st.table().schema();
                let filter = &query.filters[0];
                let fcol = schema.column_index(&filter.column)?;
                let mut result = result.to_vec();
                result.remove(0);
                let mut rv = rv.clone();
                let entry_idx = rv
                    .entries
                    .iter()
                    .position(|e| matches!(e, EntryProof::Match { .. }))?;
                // Fabricate a failing value for the filter column.
                let fake_value = tampered_value(&filter.value);
                let EntryProof::Match { attrs, .. } = rv.entries[entry_idx].clone() else {
                    return None;
                };
                let mut hidden = attrs.hidden.clone();
                // Hide every other non-key column behind its true digest.
                let dropped_cp = publisher.chain_pos_of_key_first(&query.range)?;
                let rec = st.table().row(dropped_cp - 1).record.clone();
                for col in 0..schema.arity() {
                    if col == schema.key_index() || col == fcol {
                        continue;
                    }
                    let pos = attr_position(schema, col);
                    if !hidden.iter().any(|(p, _)| *p == pos) {
                        hidden.push((pos, hasher.hash(HashDomain::Leaf, &rec.get(col).encode())));
                    }
                }
                hidden.sort_by_key(|(p, _)| *p);
                let g = st.entry(dropped_cp).g;
                rv.entries[entry_idx] = EntryProof::Filtered {
                    up_component: g.up,
                    down_component: g.down,
                    attrs: AttrProof {
                        disclosed: vec![(attr_position(schema, fcol), fake_value)],
                        hidden,
                        root: g.attrs,
                    },
                };
                Some((result, QueryVO::Range(rv)))
            }
            Attack::FakeDuplicate => {
                let QueryVO::Range(rv) = vo else { return None };
                if !query.distinct || result.len() < 2 {
                    return None;
                }
                let mut result = result.to_vec();
                result.remove(1);
                let mut rv = rv.clone();
                let mut match_seen = 0usize;
                for e in rv.entries.iter_mut() {
                    if let EntryProof::Match { chains, attrs } = e.clone() {
                        if match_seen == 1 {
                            *e = EntryProof::Duplicate {
                                of: 0,
                                chains,
                                attrs,
                            };
                            break;
                        }
                        match_seen += 1;
                    }
                }
                Some((result, QueryVO::Range(rv)))
            }
        }
    }

    /// Best-effort forged boundary proof for a key that does *not* satisfy
    /// the boundary condition: the adversary emits zero-step chains (the
    /// only digests it can compute) and the canonical selector.
    fn forge_boundary(
        publisher: &Publisher<'_>,
        key: i64,
        dir: Direction,
        _bounds: &QueryBounds,
    ) -> BoundaryProof {
        let st = publisher.signed_table();
        let hasher = st.hasher();
        let cp = publisher.chain_pos_of_key(key).unwrap_or(0);
        let entry = st.entry(cp);
        let (other, attr_root) = match dir {
            Direction::Up => (entry.g.down, entry.g.attrs),
            Direction::Down => (entry.g.up, entry.g.attrs),
        };
        let count = match st.config().mode {
            Mode::Conceptual => 1,
            Mode::Optimized { .. } => st.radix().map_or(1, |r| r.digit_count()),
        };
        let intermediates = (0..count)
            .map(|i| digit_chain(hasher, key, dir, i as u32, 0))
            .collect();
        let selector = match st.config().mode {
            Mode::Conceptual => None,
            Mode::Optimized { .. } => {
                let commit =
                    direction_commitment(hasher, st.config(), st.radix(), st.domain(), key, dir);
                Some(RepProof::Canonical {
                    mht_root: commit.rep_tree.map(|t| t.root()).unwrap_or(entry.g.attrs),
                })
            }
        };
        BoundaryProof {
            intermediates,
            selector,
            other_component: other,
            attr_root,
        }
    }

    /// Rebuilds the signature proof with the signature at entry offset
    /// `skip` removed (the adversary aggregates only what it wants).
    fn drop_signature(
        publisher: &Publisher<'_>,
        query: &SelectQuery,
        skip: usize,
    ) -> Option<SignatureProof> {
        let st = publisher.signed_table();
        let bounds = st.domain().normalize(&query.range)?;
        let (start, end) = st
            .table()
            .key_range_positions(Bound::Included(bounds.alpha), Bound::Included(bounds.beta));
        let positions: Vec<usize> = (start..end)
            .map(|p| p + 1)
            .enumerate()
            .filter(|(i, _)| *i != skip)
            .map(|(_, cp)| cp)
            .collect();
        if positions.is_empty() {
            return None;
        }
        Some(publisher.signatures(&positions))
    }

    /// Extends the aggregate by replaying the first signature once more.
    fn replay_signature(
        publisher: &Publisher<'_>,
        query: &SelectQuery,
        _existing: &SignatureProof,
    ) -> Option<SignatureProof> {
        let st = publisher.signed_table();
        let bounds = st.domain().normalize(&query.range)?;
        let (start, end) = st
            .table()
            .key_range_positions(Bound::Included(bounds.alpha), Bound::Included(bounds.beta));
        let mut positions: Vec<usize> = (start..end).map(|p| p + 1).collect();
        positions.insert(1.min(positions.len()), positions[0]);
        Some(publisher.signatures(&positions))
    }

    /// A plausible-but-different value of the same type.
    fn tampered_value(v: &Value) -> Value {
        match v {
            Value::Int(x) => Value::Int(x.wrapping_add(1)),
            Value::Text(s) => Value::Text(format!("{s}~")),
            Value::Bytes(b) => {
                let mut b = b.clone();
                if let Some(first) = b.first_mut() {
                    *first ^= 0xff;
                } else {
                    b.push(1);
                }
                Value::Bytes(b)
            }
            Value::Bool(b) => Value::Bool(!b),
        }
    }

    impl<'a> Publisher<'a> {
        pub(super) fn chain_pos_of_key(&self, key: i64) -> Option<usize> {
            let st = self.signed_table();
            let (s, e) = st
                .table()
                .key_range_positions(Bound::Included(key), Bound::Included(key));
            if s < e {
                Some(s + 1)
            } else if key == st.domain().left_delimiter() {
                Some(0)
            } else if key == st.domain().right_delimiter() {
                Some(st.chain_len() - 1)
            } else {
                None
            }
        }

        pub(super) fn chain_pos_of_key_first(
            &self,
            range: &adp_relation::KeyRange,
        ) -> Option<usize> {
            let st = self.signed_table();
            let bounds = st.domain().normalize(range)?;
            let (s, e) = st
                .table()
                .key_range_positions(Bound::Included(bounds.alpha), Bound::Included(bounds.beta));
            if s < e {
                Some(s + 1)
            } else {
                None
            }
        }
    }

    /// Index of the key column within a projected result row.
    fn result_key_index(publisher: &Publisher<'_>, query: &SelectQuery) -> Option<usize> {
        let schema = publisher.signed_table().table().schema();
        let proj = effective_projection(schema, &query.projection, &query.filters)?;
        proj.iter().position(|&c| c == schema.key_index())
    }
}
