//! Arbitrary-precision unsigned integer arithmetic.
//!
//! Substrate for the RSA signature scheme (the paper's `s(.)`): the offline
//! dependency set contains no bignum crate, so a compact, well-tested
//! implementation lives here. Little-endian `u64` limbs, normalized so the
//! most significant limb is nonzero (zero is the empty limb vector).
//!
//! Provided operations: comparison, add/sub/mul, Knuth Algorithm-D division,
//! shifts, modular exponentiation (4-bit window), gcd, modular inverse
//! (extended Euclid), random generation, and Miller–Rabin primality testing.

use rand::RngCore;
use std::cmp::Ordering;
use std::fmt;

/// An arbitrary-precision unsigned integer.
#[derive(Clone, PartialEq, Eq, Default, Hash)]
pub struct BigUint {
    /// Little-endian limbs; no trailing (most-significant) zero limbs.
    limbs: Vec<u64>,
}

impl fmt::Debug for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BigUint(0x{})", self.to_hex())
    }
}

impl fmt::Display for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "0x{}", self.to_hex())
    }
}

impl BigUint {
    /// Zero.
    pub fn zero() -> Self {
        BigUint { limbs: Vec::new() }
    }

    /// One.
    pub fn one() -> Self {
        BigUint { limbs: vec![1] }
    }

    /// From a machine word.
    pub fn from_u64(v: u64) -> Self {
        if v == 0 {
            Self::zero()
        } else {
            BigUint { limbs: vec![v] }
        }
    }

    /// From a u128.
    pub fn from_u128(v: u128) -> Self {
        let lo = v as u64;
        let hi = (v >> 64) as u64;
        let mut n = BigUint {
            limbs: vec![lo, hi],
        };
        n.normalize();
        n
    }

    /// Interprets big-endian bytes.
    pub fn from_bytes_be(bytes: &[u8]) -> Self {
        let mut limbs = Vec::with_capacity(bytes.len() / 8 + 1);
        let mut chunk_iter = bytes.rchunks(8);
        for chunk in &mut chunk_iter {
            let mut limb = 0u64;
            for &b in chunk {
                limb = (limb << 8) | b as u64;
            }
            limbs.push(limb);
        }
        let mut n = BigUint { limbs };
        n.normalize();
        n
    }

    /// Big-endian bytes without leading zeros (empty for zero).
    pub fn to_bytes_be(&self) -> Vec<u8> {
        if self.is_zero() {
            return Vec::new();
        }
        let mut out = Vec::with_capacity(self.limbs.len() * 8);
        for (i, limb) in self.limbs.iter().enumerate().rev() {
            let bytes = limb.to_be_bytes();
            if i == self.limbs.len() - 1 {
                // Skip leading zeros of the most significant limb.
                let skip = (limb.leading_zeros() / 8) as usize;
                out.extend_from_slice(&bytes[skip.min(7)..]);
            } else {
                out.extend_from_slice(&bytes);
            }
        }
        out
    }

    /// Big-endian bytes left-padded with zeros to exactly `len` bytes.
    ///
    /// # Panics
    /// If the value does not fit in `len` bytes.
    pub fn to_bytes_be_padded(&self, len: usize) -> Vec<u8> {
        let raw = self.to_bytes_be();
        assert!(raw.len() <= len, "value does not fit in {len} bytes");
        let mut out = vec![0u8; len - raw.len()];
        out.extend_from_slice(&raw);
        out
    }

    /// Parses a hexadecimal string (no prefix).
    pub fn from_hex(s: &str) -> Option<Self> {
        if s.is_empty() || !s.bytes().all(|b| b.is_ascii_hexdigit()) {
            return None;
        }
        let mut bytes = Vec::with_capacity(s.len() / 2 + 1);
        let s = s.as_bytes();
        let mut i = 0;
        if s.len() % 2 == 1 {
            bytes.push(u8::from_str_radix(std::str::from_utf8(&s[..1]).ok()?, 16).ok()?);
            i = 1;
        }
        while i < s.len() {
            bytes.push(u8::from_str_radix(std::str::from_utf8(&s[i..i + 2]).ok()?, 16).ok()?);
            i += 2;
        }
        Some(Self::from_bytes_be(&bytes))
    }

    /// Lowercase hex rendering without leading zeros ("0" for zero).
    pub fn to_hex(&self) -> String {
        if self.is_zero() {
            return "0".to_string();
        }
        let mut s = String::new();
        for (i, limb) in self.limbs.iter().enumerate().rev() {
            if i == self.limbs.len() - 1 {
                s.push_str(&format!("{limb:x}"));
            } else {
                s.push_str(&format!("{limb:016x}"));
            }
        }
        s
    }

    fn normalize(&mut self) {
        while self.limbs.last() == Some(&0) {
            self.limbs.pop();
        }
    }

    /// True iff the value is zero.
    #[inline]
    pub fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }

    /// True iff the value is one.
    pub fn is_one(&self) -> bool {
        self.limbs.len() == 1 && self.limbs[0] == 1
    }

    /// True iff even (zero is even).
    pub fn is_even(&self) -> bool {
        self.limbs.first().is_none_or(|l| l & 1 == 0)
    }

    /// Number of significant bits (0 for zero).
    pub fn bit_len(&self) -> usize {
        match self.limbs.last() {
            None => 0,
            Some(top) => self.limbs.len() * 64 - top.leading_zeros() as usize,
        }
    }

    /// Value of bit `i` (LSB = 0).
    pub fn bit(&self, i: usize) -> bool {
        let limb = i / 64;
        if limb >= self.limbs.len() {
            return false;
        }
        (self.limbs[limb] >> (i % 64)) & 1 == 1
    }

    /// Returns `self` as u64 if it fits.
    pub fn to_u64(&self) -> Option<u64> {
        match self.limbs.len() {
            0 => Some(0),
            1 => Some(self.limbs[0]),
            _ => None,
        }
    }

    /// `self + other`.
    pub fn add(&self, other: &BigUint) -> BigUint {
        let (long, short) = if self.limbs.len() >= other.limbs.len() {
            (&self.limbs, &other.limbs)
        } else {
            (&other.limbs, &self.limbs)
        };
        let mut out = Vec::with_capacity(long.len() + 1);
        let mut carry = 0u64;
        for (i, &a) in long.iter().enumerate() {
            let b = short.get(i).copied().unwrap_or(0);
            let (s1, c1) = a.overflowing_add(b);
            let (s2, c2) = s1.overflowing_add(carry);
            out.push(s2);
            carry = (c1 as u64) + (c2 as u64);
        }
        if carry > 0 {
            out.push(carry);
        }
        let mut n = BigUint { limbs: out };
        n.normalize();
        n
    }

    /// `self - other`, panicking on underflow.
    pub fn sub(&self, other: &BigUint) -> BigUint {
        self.checked_sub(other)
            .expect("BigUint subtraction underflow")
    }

    /// `self - other`, or `None` if `other > self`.
    pub fn checked_sub(&self, other: &BigUint) -> Option<BigUint> {
        if self.cmp(other) == Ordering::Less {
            return None;
        }
        let mut out = Vec::with_capacity(self.limbs.len());
        let mut borrow = 0u64;
        for i in 0..self.limbs.len() {
            let b = other.limbs.get(i).copied().unwrap_or(0);
            let (d1, b1) = self.limbs[i].overflowing_sub(b);
            let (d2, b2) = d1.overflowing_sub(borrow);
            out.push(d2);
            borrow = (b1 as u64) + (b2 as u64);
        }
        debug_assert_eq!(borrow, 0);
        let mut n = BigUint { limbs: out };
        n.normalize();
        Some(n)
    }

    /// `self * other` (schoolbook; operand sizes here are ≤ 32 limbs, where
    /// schoolbook beats Karatsuba's constant factors).
    pub fn mul(&self, other: &BigUint) -> BigUint {
        if self.is_zero() || other.is_zero() {
            return BigUint::zero();
        }
        let mut out = vec![0u64; self.limbs.len() + other.limbs.len()];
        for (i, &a) in self.limbs.iter().enumerate() {
            if a == 0 {
                continue;
            }
            let mut carry = 0u128;
            for (j, &b) in other.limbs.iter().enumerate() {
                let cur = out[i + j] as u128 + a as u128 * b as u128 + carry;
                out[i + j] = cur as u64;
                carry = cur >> 64;
            }
            let mut k = i + other.limbs.len();
            while carry > 0 {
                let cur = out[k] as u128 + carry;
                out[k] = cur as u64;
                carry = cur >> 64;
                k += 1;
            }
        }
        let mut n = BigUint { limbs: out };
        n.normalize();
        n
    }

    /// `self << bits`.
    pub fn shl(&self, bits: usize) -> BigUint {
        if self.is_zero() || bits == 0 {
            return self.clone();
        }
        let limb_shift = bits / 64;
        let bit_shift = bits % 64;
        let mut out = vec![0u64; limb_shift];
        if bit_shift == 0 {
            out.extend_from_slice(&self.limbs);
        } else {
            let mut carry = 0u64;
            for &l in &self.limbs {
                out.push((l << bit_shift) | carry);
                carry = l >> (64 - bit_shift);
            }
            if carry > 0 {
                out.push(carry);
            }
        }
        let mut n = BigUint { limbs: out };
        n.normalize();
        n
    }

    /// `self >> bits`.
    pub fn shr(&self, bits: usize) -> BigUint {
        let limb_shift = bits / 64;
        if limb_shift >= self.limbs.len() {
            return BigUint::zero();
        }
        let bit_shift = bits % 64;
        let mut out: Vec<u64> = self.limbs[limb_shift..].to_vec();
        if bit_shift > 0 {
            let mut carry = 0u64;
            for l in out.iter_mut().rev() {
                let new_carry = *l << (64 - bit_shift);
                *l = (*l >> bit_shift) | carry;
                carry = new_carry;
            }
        }
        let mut n = BigUint { limbs: out };
        n.normalize();
        n
    }

    /// `(self / divisor, self % divisor)`.
    ///
    /// # Panics
    /// If `divisor` is zero.
    pub fn div_rem(&self, divisor: &BigUint) -> (BigUint, BigUint) {
        assert!(!divisor.is_zero(), "division by zero");
        match self.cmp(divisor) {
            Ordering::Less => return (BigUint::zero(), self.clone()),
            Ordering::Equal => return (BigUint::one(), BigUint::zero()),
            Ordering::Greater => {}
        }
        if divisor.limbs.len() == 1 {
            let (q, r) = self.div_rem_limb(divisor.limbs[0]);
            return (q, BigUint::from_u64(r));
        }
        self.div_rem_knuth(divisor)
    }

    /// Division by a single limb.
    fn div_rem_limb(&self, d: u64) -> (BigUint, u64) {
        let mut q = vec![0u64; self.limbs.len()];
        let mut rem = 0u128;
        for i in (0..self.limbs.len()).rev() {
            let cur = (rem << 64) | self.limbs[i] as u128;
            q[i] = (cur / d as u128) as u64;
            rem = cur % d as u128;
        }
        let mut n = BigUint { limbs: q };
        n.normalize();
        (n, rem as u64)
    }

    /// Knuth TAOCP vol. 2 Algorithm D (multi-limb division).
    fn div_rem_knuth(&self, divisor: &BigUint) -> (BigUint, BigUint) {
        let n = divisor.limbs.len();
        // D1: normalize so the divisor's top limb has its high bit set.
        let shift = divisor.limbs[n - 1].leading_zeros() as usize;
        let v = divisor.shl(shift);
        let u_big = self.shl(shift);
        let mut u = u_big.limbs.clone();
        let m = u.len() - n; // quotient has at most m+1 limbs
        u.push(0); // u has m+n+1 limbs
        let v = &v.limbs;
        let mut q = vec![0u64; m + 1];

        let b = 1u128 << 64;
        for j in (0..=m).rev() {
            // D3: estimate q̂.
            let top = ((u[j + n] as u128) << 64) | u[j + n - 1] as u128;
            let mut qhat = top / v[n - 1] as u128;
            let mut rhat = top % v[n - 1] as u128;
            while qhat >= b || qhat * v[n - 2] as u128 > ((rhat << 64) | u[j + n - 2] as u128) {
                qhat -= 1;
                rhat += v[n - 1] as u128;
                if rhat >= b {
                    break;
                }
            }
            // D4: multiply and subtract u[j..j+n+1] -= q̂ * v.
            let mut borrow = 0i128;
            let mut carry = 0u128;
            for i in 0..n {
                let p = qhat * v[i] as u128 + carry;
                carry = p >> 64;
                let sub = (u[j + i] as i128) - (p as u64 as i128) + borrow;
                u[j + i] = sub as u64;
                borrow = sub >> 64; // arithmetic shift: 0 or -1
            }
            let sub = (u[j + n] as i128) - (carry as i128) + borrow;
            u[j + n] = sub as u64;
            let went_negative = sub < 0;

            q[j] = qhat as u64;
            if went_negative {
                // D6: add back.
                q[j] -= 1;
                let mut carry = 0u128;
                for i in 0..n {
                    let s = u[j + i] as u128 + v[i] as u128 + carry;
                    u[j + i] = s as u64;
                    carry = s >> 64;
                }
                u[j + n] = u[j + n].wrapping_add(carry as u64);
            }
        }

        let mut quotient = BigUint { limbs: q };
        quotient.normalize();
        let mut rem = BigUint {
            limbs: u[..n].to_vec(),
        };
        rem.normalize();
        (quotient, rem.shr(shift))
    }

    /// `self % modulus`.
    pub fn rem(&self, modulus: &BigUint) -> BigUint {
        self.div_rem(modulus).1
    }

    /// `(self * other) % modulus`.
    pub fn mul_mod(&self, other: &BigUint, modulus: &BigUint) -> BigUint {
        self.mul(other).rem(modulus)
    }

    /// `(self + other) % modulus` (operands assumed reduced).
    pub fn add_mod(&self, other: &BigUint, modulus: &BigUint) -> BigUint {
        let s = self.add(other);
        if s.cmp(modulus) == Ordering::Less {
            s
        } else {
            s.sub(modulus)
        }
    }

    /// Raw little-endian limbs (normalized; empty for zero).
    pub fn to_limbs(&self) -> Vec<u64> {
        self.limbs.clone()
    }

    /// Builds from little-endian limbs (normalizing).
    pub fn from_limbs(limbs: Vec<u64>) -> BigUint {
        let mut n = BigUint { limbs };
        n.normalize();
        n
    }

    /// `self^exp mod modulus`. Odd moduli (every RSA modulus, every
    /// Miller–Rabin candidate) take the Montgomery fast path; even moduli
    /// fall back to [`Self::mod_pow_plain`].
    ///
    /// # Panics
    /// If `modulus` is zero.
    pub fn mod_pow(&self, exp: &BigUint, modulus: &BigUint) -> BigUint {
        assert!(!modulus.is_zero(), "mod_pow with zero modulus");
        if let Some(ctx) = crate::montgomery::MontgomeryCtx::new(modulus) {
            return ctx.mod_pow(self, exp);
        }
        self.mod_pow_plain(exp, modulus)
    }

    /// Division-based 4-bit-window square-and-multiply (any modulus).
    ///
    /// # Panics
    /// If `modulus` is zero.
    pub fn mod_pow_plain(&self, exp: &BigUint, modulus: &BigUint) -> BigUint {
        assert!(!modulus.is_zero(), "mod_pow with zero modulus");
        if modulus.is_one() {
            return BigUint::zero();
        }
        if exp.is_zero() {
            return BigUint::one();
        }
        let base = self.rem(modulus);
        // Precompute base^0..base^15.
        let mut table = Vec::with_capacity(16);
        table.push(BigUint::one());
        table.push(base.clone());
        for i in 2..16 {
            let prev: &BigUint = &table[i - 1];
            table.push(prev.mul_mod(&base, modulus));
        }
        let bits = exp.bit_len();
        let mut result = BigUint::one();
        // Process the exponent in 4-bit windows, MSB first.
        let windows = bits.div_ceil(4);
        for w in (0..windows).rev() {
            if !result.is_one() || w != windows - 1 {
                for _ in 0..4 {
                    result = result.mul_mod(&result, modulus);
                }
            }
            let mut nib = 0usize;
            for b in (0..4).rev() {
                nib <<= 1;
                if exp.bit(w * 4 + b) {
                    nib |= 1;
                }
            }
            if nib != 0 {
                result = result.mul_mod(&table[nib], modulus);
            }
        }
        result
    }

    /// Greatest common divisor (binary GCD).
    pub fn gcd(&self, other: &BigUint) -> BigUint {
        let mut a = self.clone();
        let mut b = other.clone();
        if a.is_zero() {
            return b;
        }
        if b.is_zero() {
            return a;
        }
        let mut shift = 0usize;
        while a.is_even() && b.is_even() {
            a = a.shr(1);
            b = b.shr(1);
            shift += 1;
        }
        while a.is_even() {
            a = a.shr(1);
        }
        loop {
            while b.is_even() {
                b = b.shr(1);
            }
            if a.cmp(&b) == Ordering::Greater {
                std::mem::swap(&mut a, &mut b);
            }
            b = b.sub(&a);
            if b.is_zero() {
                return a.shl(shift);
            }
        }
    }

    /// Modular inverse: `self^{-1} mod modulus`, or `None` if not coprime.
    ///
    /// Extended Euclid with sign tracking.
    pub fn mod_inverse(&self, modulus: &BigUint) -> Option<BigUint> {
        if modulus.is_zero() || modulus.is_one() {
            return None;
        }
        let a = self.rem(modulus);
        if a.is_zero() {
            return None;
        }
        // Invariants: old_r = old_s*a - old_t*m (signs tracked separately).
        let (mut old_r, mut r) = (a, modulus.clone());
        let (mut old_s, mut s) = (BigUint::one(), BigUint::zero());
        let (mut old_neg, mut neg) = (false, false);
        while !r.is_zero() {
            let (q, rem) = old_r.div_rem(&r);
            // new_s = old_s - q*s, with sign handling.
            let qs = q.mul(&s);
            let (new_s, new_neg) = if old_neg == neg {
                // Same signs: old_s - qs may flip sign.
                if old_s.cmp(&qs) != Ordering::Less {
                    (old_s.sub(&qs), old_neg)
                } else {
                    (qs.sub(&old_s), !old_neg)
                }
            } else {
                // Opposite signs: magnitudes add, sign follows old_s.
                (old_s.add(&qs), old_neg)
            };
            old_r = std::mem::replace(&mut r, rem);
            old_s = std::mem::replace(&mut s, new_s);
            old_neg = std::mem::replace(&mut neg, new_neg);
        }
        if !old_r.is_one() {
            return None; // not coprime
        }
        let inv = old_s.rem(modulus);
        Some(if old_neg && !inv.is_zero() {
            modulus.sub(&inv)
        } else {
            inv
        })
    }

    /// Uniformly random value with exactly `bits` significant bits
    /// (top bit set).
    pub fn random_bits(rng: &mut dyn RngCore, bits: usize) -> BigUint {
        assert!(bits > 0);
        let bytes = bits.div_ceil(8);
        let mut buf = vec![0u8; bytes];
        rng.fill_bytes(&mut buf);
        // Mask excess top bits, then force the top bit on.
        let excess = bytes * 8 - bits;
        buf[0] &= 0xffu8 >> excess;
        buf[0] |= 0x80u8 >> excess;
        Self::from_bytes_be(&buf)
    }

    /// Uniformly random value in `[0, bound)` by rejection sampling.
    pub fn random_below(rng: &mut dyn RngCore, bound: &BigUint) -> BigUint {
        assert!(!bound.is_zero());
        let bits = bound.bit_len();
        let bytes = bits.div_ceil(8);
        let excess = bytes * 8 - bits;
        loop {
            let mut buf = vec![0u8; bytes];
            rng.fill_bytes(&mut buf);
            buf[0] &= 0xffu8 >> excess;
            let candidate = Self::from_bytes_be(&buf);
            if candidate.cmp(bound) == Ordering::Less {
                return candidate;
            }
        }
    }
}

impl Ord for BigUint {
    fn cmp(&self, other: &Self) -> Ordering {
        if self.limbs.len() != other.limbs.len() {
            return self.limbs.len().cmp(&other.limbs.len());
        }
        for i in (0..self.limbs.len()).rev() {
            match self.limbs[i].cmp(&other.limbs[i]) {
                Ordering::Equal => continue,
                ord => return ord,
            }
        }
        Ordering::Equal
    }
}

impl PartialOrd for BigUint {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Small primes for trial division before Miller–Rabin.
const SMALL_PRIMES: [u64; 60] = [
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67, 71, 73, 79, 83, 89, 97,
    101, 103, 107, 109, 113, 127, 131, 137, 139, 149, 151, 157, 163, 167, 173, 179, 181, 191, 193,
    197, 199, 211, 223, 227, 229, 233, 239, 241, 251, 257, 263, 269, 271, 277, 281,
];

/// Miller–Rabin probabilistic primality test with `rounds` random witnesses
/// (after small-prime trial division).
pub fn is_probable_prime(n: &BigUint, rounds: usize, rng: &mut dyn RngCore) -> bool {
    if n.is_zero() || n.is_one() {
        return false;
    }
    for &p in &SMALL_PRIMES {
        let bp = BigUint::from_u64(p);
        match n.cmp(&bp) {
            Ordering::Equal => return true,
            Ordering::Less => return false,
            Ordering::Greater => {
                if n.rem(&bp).is_zero() {
                    return false;
                }
            }
        }
    }
    // Write n-1 = d * 2^s with d odd.
    let one = BigUint::one();
    let n_minus_1 = n.sub(&one);
    let mut d = n_minus_1.clone();
    let mut s = 0usize;
    while d.is_even() {
        d = d.shr(1);
        s += 1;
    }
    let two = BigUint::from_u64(2);
    let n_minus_3 = n.sub(&BigUint::from_u64(3));
    'witness: for _ in 0..rounds {
        // a in [2, n-2]
        let a = BigUint::random_below(rng, &n_minus_3).add(&two);
        let mut x = a.mod_pow(&d, n);
        if x.is_one() || x == n_minus_1 {
            continue;
        }
        for _ in 0..s - 1 {
            x = x.mul_mod(&x, n);
            if x == n_minus_1 {
                continue 'witness;
            }
        }
        return false;
    }
    true
}

/// Generates a random probable prime with exactly `bits` bits.
pub fn gen_prime(bits: usize, rng: &mut dyn RngCore) -> BigUint {
    assert!(bits >= 16, "prime size too small");
    loop {
        let mut candidate = BigUint::random_bits(rng, bits);
        // Force odd.
        if candidate.is_even() {
            candidate = candidate.add(&BigUint::one());
        }
        if is_probable_prime(&candidate, 24, rng) {
            return candidate;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn b(v: u128) -> BigUint {
        BigUint::from_u128(v)
    }

    #[test]
    fn basic_construction() {
        assert!(BigUint::zero().is_zero());
        assert!(BigUint::one().is_one());
        assert_eq!(BigUint::from_u64(42).to_u64(), Some(42));
        assert_eq!(b(u128::MAX).bit_len(), 128);
    }

    #[test]
    fn bytes_roundtrip() {
        for v in [0u128, 1, 255, 256, u64::MAX as u128, u128::MAX, 1 << 100] {
            let n = b(v);
            assert_eq!(BigUint::from_bytes_be(&n.to_bytes_be()), n, "value {v}");
        }
    }

    #[test]
    fn padded_bytes() {
        let n = BigUint::from_u64(0x1234);
        assert_eq!(n.to_bytes_be_padded(4), vec![0, 0, 0x12, 0x34]);
    }

    #[test]
    fn hex_roundtrip() {
        for s in [
            "1",
            "ff",
            "deadbeefcafebabe0123456789abcdef55",
            "8000000000000000",
        ] {
            let n = BigUint::from_hex(s).unwrap();
            assert_eq!(n.to_hex(), s, "hex {s}");
        }
        assert_eq!(BigUint::from_hex("0").unwrap(), BigUint::zero());
        assert_eq!(BigUint::from_hex("00ff").unwrap().to_hex(), "ff");
        assert!(BigUint::from_hex("xyz").is_none());
        assert!(BigUint::from_hex("").is_none());
    }

    #[test]
    fn add_sub_against_u128() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..500 {
            let x = rng.next_u64() as u128;
            let y = rng.next_u64() as u128;
            assert_eq!(b(x).add(&b(y)), b(x + y));
            let (hi, lo) = if x > y { (x, y) } else { (y, x) };
            assert_eq!(b(hi).sub(&b(lo)), b(hi - lo));
        }
        assert!(b(3).checked_sub(&b(5)).is_none());
    }

    #[test]
    fn mul_against_u128() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..500 {
            let x = (rng.next_u64() >> 1) as u128;
            let y = (rng.next_u64() >> 1) as u128;
            assert_eq!(b(x).mul(&b(y)), b(x * y));
        }
    }

    #[test]
    fn div_rem_against_u128() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..500 {
            let x = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
            let y = (rng.next_u64() as u128).max(1);
            let (q, r) = b(x).div_rem(&b(y));
            assert_eq!(q, b(x / y), "x={x} y={y}");
            assert_eq!(r, b(x % y));
        }
    }

    #[test]
    fn div_rem_multi_limb() {
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..200 {
            let a = BigUint::random_bits(&mut rng, 512);
            let d = BigUint::random_bits(&mut rng, 200);
            let (q, r) = a.div_rem(&d);
            assert!(r.cmp(&d) == Ordering::Less);
            assert_eq!(q.mul(&d).add(&r), a);
        }
    }

    #[test]
    fn div_rem_edge_cases() {
        assert_eq!(b(10).div_rem(&b(10)), (BigUint::one(), BigUint::zero()));
        assert_eq!(b(3).div_rem(&b(10)), (BigUint::zero(), b(3)));
        // Case that exercises the Knuth D add-back path with high probability:
        let a = BigUint::from_hex("7fffffffffffffff8000000000000000").unwrap();
        let d = BigUint::from_hex("80000000000000008000000000000001").unwrap();
        let (q, r) = a.div_rem(&d);
        assert_eq!(q.mul(&d).add(&r), a);
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn div_by_zero_panics() {
        let _ = b(1).div_rem(&BigUint::zero());
    }

    #[test]
    fn shifts() {
        let n = b(0b1011);
        assert_eq!(n.shl(3), b(0b1011000));
        assert_eq!(n.shl(64).shr(64), n);
        assert_eq!(n.shr(2), b(0b10));
        assert_eq!(n.shr(200), BigUint::zero());
        assert_eq!(b(1).shl(127), b(1u128 << 127));
    }

    #[test]
    fn mod_pow_small() {
        assert_eq!(b(3).mod_pow(&b(4), &b(100)), b(81));
        assert_eq!(b(2).mod_pow(&b(10), &b(1000)), b(24));
        assert_eq!(b(7).mod_pow(&BigUint::zero(), &b(13)), BigUint::one());
        assert_eq!(b(5).mod_pow(&b(3), &BigUint::one()), BigUint::zero());
    }

    #[test]
    fn mod_pow_fermat() {
        // Fermat's little theorem for a handful of primes.
        let mut rng = StdRng::seed_from_u64(5);
        for &p in &[65537u64, 1_000_000_007, 4_294_967_311] {
            let p = BigUint::from_u64(p);
            let pm1 = p.sub(&BigUint::one());
            for _ in 0..10 {
                let a = BigUint::random_below(&mut rng, &p);
                if a.is_zero() {
                    continue;
                }
                assert_eq!(a.mod_pow(&pm1, &p), BigUint::one());
            }
        }
    }

    #[test]
    fn gcd_cases() {
        assert_eq!(b(12).gcd(&b(18)), b(6));
        assert_eq!(b(17).gcd(&b(31)), b(1));
        assert_eq!(b(0).gcd(&b(5)), b(5));
        assert_eq!(b(5).gcd(&b(0)), b(5));
        assert_eq!(b(48).gcd(&b(64)), b(16));
    }

    #[test]
    fn mod_inverse_cases() {
        let m = b(1_000_000_007);
        for v in [2u128, 3, 999, 123456789] {
            let inv = b(v).mod_inverse(&m).unwrap();
            assert_eq!(b(v).mul_mod(&inv, &m), BigUint::one(), "v={v}");
        }
        // Non-coprime has no inverse.
        assert!(b(6).mod_inverse(&b(12)).is_none());
        assert!(BigUint::zero().mod_inverse(&m).is_none());
    }

    #[test]
    fn mod_inverse_large() {
        let mut rng = StdRng::seed_from_u64(6);
        let m = gen_prime(128, &mut rng);
        for _ in 0..20 {
            let a = BigUint::random_below(&mut rng, &m);
            if a.is_zero() {
                continue;
            }
            let inv = a.mod_inverse(&m).unwrap();
            assert_eq!(a.mul_mod(&inv, &m), BigUint::one());
        }
    }

    #[test]
    fn primality_known_values() {
        let mut rng = StdRng::seed_from_u64(7);
        for &p in &[2u64, 3, 5, 65537, 1_000_000_007, 67_280_421_310_721] {
            assert!(
                is_probable_prime(&BigUint::from_u64(p), 16, &mut rng),
                "{p} is prime"
            );
        }
        for &c in &[1u64, 4, 100, 65536, 1_000_000_011, 561, 41041, 825_265] {
            // 561, 41041, 825265 are Carmichael numbers.
            assert!(
                !is_probable_prime(&BigUint::from_u64(c), 16, &mut rng),
                "{c} is composite"
            );
        }
    }

    #[test]
    fn gen_prime_has_requested_size() {
        let mut rng = StdRng::seed_from_u64(8);
        let p = gen_prime(96, &mut rng);
        assert_eq!(p.bit_len(), 96);
        assert!(!p.is_even());
    }

    #[test]
    fn random_below_in_range() {
        let mut rng = StdRng::seed_from_u64(9);
        let bound = b(1000);
        for _ in 0..200 {
            let v = BigUint::random_below(&mut rng, &bound);
            assert!(v.cmp(&bound) == Ordering::Less);
        }
    }

    #[test]
    fn ordering() {
        assert!(b(5) < b(6));
        assert!(b(1 << 100) > b(u64::MAX as u128));
        assert_eq!(b(7).cmp(&b(7)), Ordering::Equal);
    }
}
