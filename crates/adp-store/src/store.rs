//! The [`Store`]: a directory pairing a snapshot with an append-only
//! update log, owning the authoritative in-memory [`SignedTable`].
//!
//! Commit discipline:
//!
//! * [`Store::apply_batch`] / [`Store::apply_replayed`] stage the batch on
//!   a **clone** of the table, append the log record (synced), and only
//!   then swap the clone in — an error at any step leaves both the disk
//!   and the in-memory table at the previous state.
//! * [`Store::compact`] writes the new snapshot to a temp file and
//!   `rename`s it over the old one before truncating the log, so a crash
//!   between the two steps leaves a fresh snapshot plus a log of
//!   already-folded records — never a torn snapshot. [`Store::open`]
//!   skips the folded prefix (records with `seq < base_seq`; their
//!   effects are in the snapshot) and replays only from `base_seq` on,
//!   so an interrupted compaction costs nothing but the next cleanup.

use crate::format::{decode_snapshot, encode_snapshot};
use crate::log::{
    check_log_header, decode_records, decode_records_recovering, encode_record, log_header,
    LogRecord, LOG_HEADER_LEN,
};
use crate::StoreError;
use adp_core::owner::BatchReport;
use adp_core::prelude::{Mutation, Owner, SignedTable};
use adp_crypto::Signature;
use adp_faults::{crash_point, RealIo, StoreIo};
use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// File name of the snapshot inside a store directory.
pub const SNAPSHOT_FILE: &str = "snapshot.adps";

/// File name of the update log inside a store directory.
pub const LOG_FILE: &str = "update.adpl";

/// File name of the single-writer lock inside a store directory.
pub const LOCK_FILE: &str = "LOCK";

/// An exclusive per-directory writer lock: an OS advisory lock
/// (`File::try_lock`, i.e. `flock`-style) on the `LOCK` file, which also
/// records the holder's PID for diagnostics. The kernel releases the lock
/// when the holding process exits — cleanly or not — so a crash can never
/// leave a stale lock, a live holder can never be stolen from, and the
/// acquisition race is atomic on every platform. The file itself is left
/// in place (unlinking a lock file reintroduces the classic
/// unlink-vs-open race).
#[derive(Debug)]
struct DirLock {
    /// Keeping the handle open keeps the lock held; dropping releases it.
    _file: fs::File,
}

impl DirLock {
    fn acquire(dir: &Path) -> Result<DirLock, StoreError> {
        let path = dir.join(LOCK_FILE);
        let mut file = fs::OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&path)?;
        match file.try_lock() {
            Ok(()) => {
                let _ = file.set_len(0);
                let _ = write!(file, "{}", std::process::id());
                let _ = file.sync_data();
                Ok(DirLock { _file: file })
            }
            Err(std::fs::TryLockError::WouldBlock) => {
                let holder = fs::read_to_string(&path)
                    .ok()
                    .and_then(|s| s.trim().parse::<u32>().ok())
                    .unwrap_or(0);
                Err(StoreError::Locked { holder })
            }
            Err(std::fs::TryLockError::Error(e)) => Err(StoreError::Io(e)),
        }
    }
}

/// A durable signed table: snapshot + update log + the live in-memory
/// reconstruction. Holds the directory's single-writer lock for its whole
/// lifetime — a second `Store` on the same directory (same or another
/// process) fails with [`StoreError::Locked`], which is what keeps log
/// sequence numbers append-once.
#[derive(Debug)]
pub struct Store {
    dir: PathBuf,
    /// Behind an `Arc` so live-serving callers can take a cheap handle to
    /// the current version while the store stages the next one.
    table: Arc<SignedTable>,
    /// Sequence number the current snapshot starts from.
    base_seq: u64,
    /// Sequence number the next appended record will carry.
    next_seq: u64,
    /// Every durability-relevant filesystem operation goes through this —
    /// [`RealIo`] in production, a fault-injecting shim in tests.
    io: Arc<dyn StoreIo>,
    _lock: DirLock,
}

impl Store {
    /// Creates a new store directory holding `st` as its initial snapshot
    /// and an empty update log. Fails if a snapshot already exists there.
    pub fn create(dir: impl AsRef<Path>, st: SignedTable) -> Result<Store, StoreError> {
        Store::create_with_io(dir, st, Arc::new(RealIo))
    }

    /// [`Store::create`] with an explicit [`StoreIo`] (fault injection).
    pub fn create_with_io(
        dir: impl AsRef<Path>,
        st: SignedTable,
        io: Arc<dyn StoreIo>,
    ) -> Result<Store, StoreError> {
        Store::create_inner(dir, st, 0, io)
    }

    /// Like [`Store::create`], but the snapshot starts at `base_seq`
    /// instead of 0 — the follower bootstrap path: a mirror seeded from
    /// an owner snapshot taken after `base_seq` batches must log its
    /// first replayed record as `base_seq`, or a later `Store::open`
    /// would mis-sequence the stream.
    pub fn create_at(
        dir: impl AsRef<Path>,
        st: SignedTable,
        base_seq: u64,
    ) -> Result<Store, StoreError> {
        Store::create_inner(dir, st, base_seq, Arc::new(RealIo))
    }

    /// [`Store::create_at`] with an explicit [`StoreIo`].
    pub fn create_at_with_io(
        dir: impl AsRef<Path>,
        st: SignedTable,
        base_seq: u64,
        io: Arc<dyn StoreIo>,
    ) -> Result<Store, StoreError> {
        Store::create_inner(dir, st, base_seq, io)
    }

    fn create_inner(
        dir: impl AsRef<Path>,
        st: SignedTable,
        base_seq: u64,
        io: Arc<dyn StoreIo>,
    ) -> Result<Store, StoreError> {
        let dir = dir.as_ref().to_path_buf();
        fs::create_dir_all(&dir)?;
        let lock = DirLock::acquire(&dir)?;
        let snap_path = dir.join(SNAPSHOT_FILE);
        if snap_path.exists() {
            return Err(StoreError::Io(std::io::Error::new(
                std::io::ErrorKind::AlreadyExists,
                format!("{} already exists", snap_path.display()),
            )));
        }
        write_atomically(io.as_ref(), &snap_path, &encode_snapshot(&st, base_seq))?;
        crash_point("store.create.between");
        write_atomically(io.as_ref(), &dir.join(LOG_FILE), &log_header())?;
        Ok(Store {
            dir,
            table: Arc::new(st),
            base_seq,
            next_seq: base_seq,
            io,
            _lock: lock,
        })
    }

    /// Opens an existing store: loads the snapshot, then replays the
    /// update log, verifying every replayed record's signatures against
    /// link digests recomputed from local state. *Corruption* anywhere in
    /// either file is a typed error (every byte is CRC-covered), and
    /// *tampering with the log* is rejected by the replay's signature
    /// checks — but a snapshot edited together with a recomputed CRC
    /// decodes structurally; its authenticity is established by
    /// [`Store::audit`] (which serving paths run — see
    /// `Server::open_store` and `adp serve`/`adp query`) and, end to end,
    /// by client-side VO verification.
    ///
    /// Crash recovery is automatic for the two states a process death can
    /// leave behind (see `docs/ROBUSTNESS.md`): a **torn log tail** (death
    /// mid-append) is rolled back to the last complete record, and a
    /// **missing log file** (death between `create`'s snapshot and log
    /// writes) is re-created empty. Both recoveries only ever discard an
    /// *uncommitted* suffix — a record whose append never returned.
    pub fn open(dir: impl AsRef<Path>) -> Result<Store, StoreError> {
        Store::open_with_io(dir, Arc::new(RealIo))
    }

    /// [`Store::open`] with an explicit [`StoreIo`] (fault injection).
    pub fn open_with_io(dir: impl AsRef<Path>, io: Arc<dyn StoreIo>) -> Result<Store, StoreError> {
        let dir = dir.as_ref().to_path_buf();
        let lock = DirLock::acquire(&dir)?;
        let snap_bytes = io.read(&dir.join(SNAPSHOT_FILE))?;
        let (mut table, base_seq) = decode_snapshot(&snap_bytes)?;
        let log_path = dir.join(LOG_FILE);
        let log_bytes = match io.read(&log_path) {
            Ok(bytes) => bytes,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                // `create` died between writing the snapshot and the log
                // header; the committed state is exactly the snapshot.
                write_atomically(io.as_ref(), &log_path, &log_header())?;
                log_header().to_vec()
            }
            Err(e) => return Err(StoreError::Io(e)),
        };
        let body = check_log_header(&log_bytes)?;
        let (records, torn_at) = decode_records_recovering(body)?;
        let mut next_seq = base_seq;
        for rec in &records {
            if rec.seq < base_seq {
                // Already folded into the snapshot by a compaction that
                // crashed before truncating the log; the snapshot carries
                // this record's effects, so skip it.
                continue;
            }
            if rec.seq != next_seq {
                return Err(StoreError::SequenceGap {
                    expected: next_seq,
                    got: rec.seq,
                });
            }
            table.replay_batch(&rec.ops, &rec.resigned)?;
            next_seq += 1;
        }
        if let Some(off) = torn_at {
            // Roll the torn tail (an append that never returned) back so
            // later appends land after complete records only.
            io.truncate(&log_path, (LOG_HEADER_LEN + off) as u64)?;
        }
        Ok(Store {
            dir,
            table: Arc::new(table),
            base_seq,
            next_seq,
            io,
            _lock: lock,
        })
    }

    /// The live signed table.
    pub fn table(&self) -> &SignedTable {
        &self.table
    }

    /// Consumes the store, returning the live signed table (for callers
    /// that only wanted to load, not to keep mutating).
    pub fn into_table(self) -> SignedTable {
        Arc::try_unwrap(self.table).unwrap_or_else(|shared| (*shared).clone())
    }

    /// A cheap shared handle to the current table version (what the
    /// server swaps into its registry — no deep copy).
    pub fn table_arc(&self) -> Arc<SignedTable> {
        Arc::clone(&self.table)
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Sequence number the next batch will be logged under (equivalently:
    /// total batches applied since the store was created).
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Records currently in the log (folded away by [`Store::compact`]).
    pub fn log_record_count(&self) -> u64 {
        self.next_seq - self.base_seq
    }

    /// Current size of the update log file in bytes (header + framed
    /// records). This is the owner→publisher churn traffic a follower
    /// replaying the stream would download, and the quantity the
    /// `baseline_compare` churn experiment charges per batch
    /// (`docs/EVALUATION.md` §"Update churn").
    pub fn log_bytes(&self) -> Result<u64, StoreError> {
        Ok(self.io.file_len(&self.dir.join(LOG_FILE))?)
    }

    /// The framed bytes of every log record with `seq >= from_seq`, in
    /// sequence order — the log-shipping backlog a follower resuming from
    /// `from_seq` needs (`LogSegment` payloads concatenate these frames).
    /// Returns `None` when `from_seq` predates the snapshot's `base_seq`:
    /// those records were compacted away and the follower must
    /// re-bootstrap from a snapshot instead.
    pub fn log_records_from(&self, from_seq: u64) -> Result<Option<Vec<u8>>, StoreError> {
        if from_seq < self.base_seq {
            return Ok(None);
        }
        let log_bytes = self.io.read(&self.dir.join(LOG_FILE))?;
        let records = decode_records(check_log_header(&log_bytes)?)?;
        let mut out = Vec::new();
        for rec in &records {
            if rec.seq >= from_seq {
                out.extend_from_slice(&encode_record(rec));
            }
        }
        Ok(Some(out))
    }

    /// The current table encoded as a bootstrap snapshot (base sequence =
    /// [`Store::next_seq`]): what a fresh follower downloads before
    /// switching to the log stream.
    pub fn snapshot_bytes(&self) -> Vec<u8> {
        encode_snapshot(&self.table, self.next_seq)
    }

    /// Owner-side ingest: signs a batch into the table with
    /// [`Owner::apply_batch`] (O(k) re-signing), appends the log record,
    /// and commits. Returns the batch report (whose `ops`/`resigned` are
    /// what was logged — ship them to publishers replaying the stream).
    pub fn apply_batch(
        &mut self,
        owner: &Owner,
        ops: Vec<Mutation>,
    ) -> Result<BatchReport, StoreError> {
        if owner.public_key() != self.table.public_key() {
            return Err(StoreError::OwnerKeyMismatch);
        }
        let mut next = (*self.table).clone();
        let report = owner.apply_batch(&mut next, ops)?;
        self.append_record(&LogRecord {
            seq: self.next_seq,
            ops: report.ops.clone(),
            resigned: report.resigned.clone(),
        })?;
        self.table = Arc::new(next);
        self.next_seq += 1;
        Ok(report)
    }

    /// Publisher-side ingest: replays a batch received from the owner
    /// (no signing key involved), verifying every signature before the
    /// log record is persisted and the table swapped.
    pub fn apply_replayed(
        &mut self,
        ops: &[Mutation],
        resigned: &[(u32, Signature)],
    ) -> Result<(), StoreError> {
        let mut next = (*self.table).clone();
        next.replay_batch(ops, resigned)?;
        self.append_record(&LogRecord {
            seq: self.next_seq,
            ops: ops.to_vec(),
            resigned: resigned.to_vec(),
        })?;
        self.table = Arc::new(next);
        self.next_seq += 1;
        Ok(())
    }

    /// Folds the update log into a fresh snapshot: writes the current
    /// table as a snapshot with `base_seq = next_seq` (atomic rename),
    /// then truncates the log to its header. Returns the number of log
    /// records folded away.
    pub fn compact(&mut self) -> Result<u64, StoreError> {
        let folded = self.log_record_count();
        crash_point("store.compact.before_snapshot");
        write_atomically(
            self.io.as_ref(),
            &self.dir.join(SNAPSHOT_FILE),
            &encode_snapshot(&self.table, self.next_seq),
        )?;
        crash_point("store.compact.after_snapshot");
        write_atomically(self.io.as_ref(), &self.dir.join(LOG_FILE), &log_header())?;
        crash_point("store.compact.after_log");
        self.base_seq = self.next_seq;
        Ok(folded)
    }

    /// Full chain audit of the live table (`O(n)` signature verifications).
    pub fn audit(&self) -> bool {
        self.table.audit()
    }

    fn append_record(&self, rec: &LogRecord) -> Result<(), StoreError> {
        crash_point("store.append.before");
        let path = self.dir.join(LOG_FILE);
        let committed_len = self.io.file_len(&path)?;
        if let Err(e) = self.io.append_sync(&path, &encode_record(rec)) {
            // Roll a torn append back so the log stays parseable: later
            // appends must never land after partial garbage. (If the
            // rollback itself is interrupted, `open` truncates the torn
            // tail on the next start.)
            let _ = self.io.truncate(&path, committed_len);
            return Err(StoreError::Io(e));
        }
        crash_point("store.append.after");
        Ok(())
    }
}

/// Writes `bytes` to `path` via a temp file + rename + parent-directory
/// fsync, so readers never see a torn file, a crash mid-write leaves the
/// previous version intact, and the rename itself is durable on power
/// loss (the rename lives in the directory inode, which must be synced
/// separately from the file).
fn write_atomically(io: &dyn StoreIo, path: &Path, bytes: &[u8]) -> Result<(), StoreError> {
    let tmp = path.with_extension("tmp");
    io.write_sync(&tmp, bytes)?;
    io.rename(&tmp, path)?;
    if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
        io.sync_dir(parent)?;
    }
    Ok(())
}
