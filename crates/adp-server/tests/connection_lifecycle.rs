//! Connection-lifecycle behaviour of the epoll reactor: idle connections
//! must cost zero wakeups, slow and hostile clients (trickled headers,
//! mid-payload stalls, never-draining readers) must be bounded by the
//! frame deadline / idle timeout / write-queue cap, pipelined requests
//! must come back in order, and thread count must not scale with
//! connection count.

use adp_core::prelude::*;
use adp_relation::{Column, KeyRange, Record, Schema, SelectQuery, Table, Value, ValueType};
use adp_server::protocol::{encode_frame, read_frame, ErrorCode, Frame};
use adp_server::{RemoteClient, Server, ServerConfig, ServerHandle};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::io::{ErrorKind, Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// Signs a table of `rows` records whose text column is `text_len` bytes,
/// so tests can dial the response size.
fn signed_table(rows: i64, text_len: usize) -> SignedTable {
    let schema = Schema::new(
        vec![
            Column::new("k", ValueType::Int),
            Column::new("v", ValueType::Text),
        ],
        "k",
    );
    let mut t = Table::new("life", schema);
    for i in 0..rows {
        t.insert(Record::new(vec![
            Value::Int(i * 10 + 5),
            Value::from("x".repeat(text_len)),
        ]))
        .unwrap();
    }
    let mut rng = StdRng::seed_from_u64(0x11FE);
    let owner = Owner::new(512, &mut rng);
    owner
        .sign_table(t, Domain::new(0, 1_000_000), SchemeConfig::default())
        .unwrap()
}

fn serve(config: ServerConfig) -> ServerHandle {
    let mut server = Server::new(config);
    server.add_table(0, signed_table(10, 8));
    server.serve("127.0.0.1:0").unwrap()
}

/// Polls the server's stats until `pred` holds or the deadline passes.
fn wait_for(handle: &ServerHandle, pred: impl Fn(&adp_server::StatsSnapshot) -> bool) -> bool {
    let deadline = Instant::now() + Duration::from_secs(5);
    while Instant::now() < deadline {
        if pred(&handle.stats()) {
            return true;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    false
}

/// Satellite 3: idle connections must not wake the reactor. With lazy
/// timers and level-triggered epoll, a parked connection's only cost is
/// its heap entry — steady state is *zero* `epoll_wait` returns.
#[test]
fn idle_connections_cost_zero_wakeups() {
    let handle = serve(ServerConfig::default());
    let mut idlers: Vec<TcpStream> = (0..8)
        .map(|_| TcpStream::connect(handle.addr()).unwrap())
        .collect();
    let mut client = RemoteClient::connect(handle.addr()).unwrap();
    client.ping().unwrap();
    assert!(
        wait_for(&handle, |s| s.open_connections == 9),
        "all 9 connections registered"
    );

    // Let the accept/register churn settle, then measure.
    std::thread::sleep(Duration::from_millis(300));
    let before = handle.reactor_wakeups();
    std::thread::sleep(Duration::from_millis(1_500));
    let after = handle.reactor_wakeups();
    assert_eq!(
        after - before,
        0,
        "idle connections must cost zero reactor wakeups"
    );

    // The gauge tracks closes, too.
    idlers.clear();
    assert!(wait_for(&handle, |s| s.open_connections == 1));
    handle.shutdown();
}

/// A slow-but-honest client that trickles a Ping one byte at a time must
/// still get its Pong: the frame deadline covers a whole frame, not the
/// gap between bytes.
#[test]
fn trickled_ping_byte_by_byte_still_answered() {
    let handle = serve(ServerConfig::default());
    let mut stream = TcpStream::connect(handle.addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    for byte in encode_frame(&Frame::Ping) {
        stream.write_all(&[byte]).unwrap();
        stream.flush().unwrap();
        std::thread::sleep(Duration::from_millis(10));
    }
    assert_eq!(read_frame(&mut stream).unwrap(), Frame::Pong);
    handle.shutdown();
}

/// Slow loris, variant 1: a client that stalls mid-payload is cut off by
/// the frame deadline with an explanatory Error frame, and the error
/// counter records it.
#[test]
fn mid_payload_stall_hits_frame_deadline() {
    let handle = serve(ServerConfig {
        frame_timeout: Duration::from_millis(300),
        ..ServerConfig::default()
    });
    let mut stream = TcpStream::connect(handle.addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();

    let frame = encode_frame(&Frame::QueryRequest {
        table_id: 0,
        query: SelectQuery::range(KeyRange::all()),
    });
    // Header plus half the payload, then silence.
    stream
        .write_all(&frame[..8 + (frame.len() - 8) / 2])
        .unwrap();
    stream.flush().unwrap();

    match read_frame(&mut stream).unwrap() {
        Frame::Error { code, message } => {
            assert_eq!(code, ErrorCode::BadFrame);
            assert!(message.contains("frame deadline"), "got {message:?}");
        }
        other => panic!("expected Error frame, got {other:?}"),
    }
    // The server hangs up after the error.
    let mut rest = Vec::new();
    assert_eq!(stream.read_to_end(&mut rest).unwrap_or(0), 0);
    assert!(wait_for(&handle, |s| s.errors >= 1));
    handle.shutdown();
}

/// Slow loris, variant 2: stalling inside the 8-byte header is the same
/// offence — the deadline arms as soon as the first byte arrives.
#[test]
fn partial_header_stall_hits_frame_deadline() {
    let handle = serve(ServerConfig {
        frame_timeout: Duration::from_millis(300),
        ..ServerConfig::default()
    });
    let mut stream = TcpStream::connect(handle.addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    stream.write_all(&[0xAD, 0x50, 0x03]).unwrap();
    stream.flush().unwrap();

    match read_frame(&mut stream).unwrap() {
        Frame::Error { code, message } => {
            assert_eq!(code, ErrorCode::BadFrame);
            assert!(message.contains("frame deadline"), "got {message:?}");
        }
        other => panic!("expected Error frame, got {other:?}"),
    }
    handle.shutdown();
}

/// A client that pipelines queries but never reads responses fills the
/// bounded write queue, gets its reads paused (backpressure), stops
/// making progress, and is reaped by the idle timeout — with the reap
/// counted and the queue-depth gauge returning to zero.
#[test]
fn non_draining_client_is_reaped() {
    let mut server = Server::new(ServerConfig {
        idle_timeout: Some(Duration::from_millis(400)),
        write_queue_limit: 256 * 1024,
        ..ServerConfig::default()
    });
    // ~1 MiB per response: 64 rows × 16 KiB of text.
    server.add_table(0, signed_table(64, 16 * 1024));
    let handle = server.serve("127.0.0.1:0").unwrap();

    let mut stream = TcpStream::connect(handle.addr()).unwrap();
    let frame = encode_frame(&Frame::QueryRequest {
        table_id: 0,
        query: SelectQuery::range(KeyRange::all()),
    });
    let mut burst = Vec::new();
    for _ in 0..16 {
        burst.extend_from_slice(&frame);
    }
    stream.write_all(&burst).unwrap();
    stream.flush().unwrap();
    // Never read a byte; keep the socket open so only the idle timeout
    // (not a peer close) can end the connection.

    assert!(
        wait_for(&handle, |s| s.idle_reaped >= 1),
        "non-draining connection must be idle-reaped"
    );
    assert!(
        wait_for(&handle, |s| s.queue_depth == 0),
        "reaping must release the queued response bytes"
    );
    drop(stream);
    handle.shutdown();
}

/// Pipelining: four frames in one write come back as four replies in
/// request order, even though queries detour through the worker pool
/// while pings and stats are answered on the reactor.
#[test]
fn pipelined_requests_answered_in_order() {
    let handle = serve(ServerConfig::default());
    let mut stream = TcpStream::connect(handle.addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();

    let mut burst = encode_frame(&Frame::Ping);
    burst.extend_from_slice(&encode_frame(&Frame::QueryRequest {
        table_id: 0,
        query: SelectQuery::range(KeyRange::all()),
    }));
    burst.extend_from_slice(&encode_frame(&Frame::Ping));
    burst.extend_from_slice(&encode_frame(&Frame::StatsRequest));
    stream.write_all(&burst).unwrap();
    stream.flush().unwrap();

    assert_eq!(read_frame(&mut stream).unwrap(), Frame::Pong);
    match read_frame(&mut stream).unwrap() {
        Frame::QueryResponse { result, .. } => assert!(!result.is_empty()),
        other => panic!("expected QueryResponse, got {other:?}"),
    }
    assert_eq!(read_frame(&mut stream).unwrap(), Frame::Pong);
    match read_frame(&mut stream).unwrap() {
        Frame::StatsResponse(stats) => assert_eq!(stats.queries, 1),
        other => panic!("expected StatsResponse, got {other:?}"),
    }
    handle.shutdown();
}

/// Regression: a single write that pipelines more frames than the
/// reactor's pending cap (64) must still get every reply. The socket is
/// drained in one read, so no further read event will arrive — the
/// stranded frames in the reassembly buffer must be re-parsed as
/// dispatch frees pending slots.
#[test]
fn burst_beyond_pending_cap_gets_every_reply() {
    let handle = serve(ServerConfig::default());
    let mut stream = TcpStream::connect(handle.addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();

    let ping = encode_frame(&Frame::Ping);
    let mut burst = Vec::new();
    for _ in 0..200 {
        burst.extend_from_slice(&ping);
    }
    stream.write_all(&burst).unwrap();
    stream.flush().unwrap();
    for i in 0..200 {
        assert_eq!(read_frame(&mut stream).unwrap(), Frame::Pong, "reply {i}");
    }
    handle.shutdown();
}

/// Regression, worker-pool variant: a query at the head of an over-cap
/// burst parks dispatch until its answer completes back to the shard;
/// the completion must resume parsing the frames still buffered behind
/// the cap.
#[test]
fn burst_with_query_resumes_parsing_after_completion() {
    let handle = serve(ServerConfig::default());
    let mut stream = TcpStream::connect(handle.addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();

    let mut burst = encode_frame(&Frame::QueryRequest {
        table_id: 0,
        query: SelectQuery::range(KeyRange::all()),
    });
    let ping = encode_frame(&Frame::Ping);
    for _ in 0..100 {
        burst.extend_from_slice(&ping);
    }
    stream.write_all(&burst).unwrap();
    stream.flush().unwrap();

    match read_frame(&mut stream).unwrap() {
        Frame::QueryResponse { result, .. } => assert!(!result.is_empty()),
        other => panic!("expected QueryResponse, got {other:?}"),
    }
    for i in 0..100 {
        assert_eq!(read_frame(&mut stream).unwrap(), Frame::Pong, "reply {i}");
    }
    handle.shutdown();
}

/// A partial frame stalled at the tail of an over-cap burst is still
/// slow loris: after the complete frames are answered, the dangling
/// fragment must hit the frame deadline, not sit disarmed behind the
/// pending cap.
#[test]
fn partial_tail_behind_pending_cap_hits_frame_deadline() {
    let handle = serve(ServerConfig {
        frame_timeout: Duration::from_millis(300),
        ..ServerConfig::default()
    });
    let mut stream = TcpStream::connect(handle.addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();

    let ping = encode_frame(&Frame::Ping);
    let mut burst = Vec::new();
    for _ in 0..70 {
        burst.extend_from_slice(&ping);
    }
    // Three bytes of a 71st header, then silence.
    burst.extend_from_slice(&ping[..3]);
    stream.write_all(&burst).unwrap();
    stream.flush().unwrap();

    for i in 0..70 {
        assert_eq!(read_frame(&mut stream).unwrap(), Frame::Pong, "reply {i}");
    }
    match read_frame(&mut stream).unwrap() {
        Frame::Error { code, message } => {
            assert_eq!(code, ErrorCode::BadFrame);
            assert!(message.contains("frame deadline"), "got {message:?}");
        }
        other => panic!("expected Error frame, got {other:?}"),
    }
    handle.shutdown();
}

/// The idle timeout reaps a connection that simply goes quiet, and the
/// client observes a clean close (EOF), not a hang.
#[test]
fn idle_timeout_reaps_quiet_connection() {
    let handle = serve(ServerConfig {
        idle_timeout: Some(Duration::from_millis(300)),
        ..ServerConfig::default()
    });
    let mut stream = TcpStream::connect(handle.addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    stream.write_all(&encode_frame(&Frame::Ping)).unwrap();
    assert_eq!(read_frame(&mut stream).unwrap(), Frame::Pong);

    // Go quiet past the timeout: the server closes the socket.
    let mut byte = [0u8; 1];
    match stream.read(&mut byte) {
        Ok(0) => {}
        Ok(n) => panic!("unexpected {n} bytes after idle timeout"),
        Err(e) if e.kind() == ErrorKind::ConnectionReset => {}
        Err(e) => panic!("expected EOF after idle timeout, got {e}"),
    }
    assert!(wait_for(&handle, |s| s.idle_reaped >= 1));
    handle.shutdown();
}

/// Regression: a query that panics inside the answer path (here via the
/// tamper hook, standing in for any publisher bug) must not wedge the
/// connection. The worker's completion must still fire, the client gets
/// a typed Internal error, and the same connection keeps answering.
#[test]
fn panicking_query_answers_error_and_connection_survives() {
    let mut server = Server::new(ServerConfig::default());
    server.add_table(0, signed_table(10, 8));
    // Panic on the marker range; answer honestly otherwise.
    server.set_tamper(|_publisher, query, result, vo| {
        if query.range == KeyRange::closed(666, 777) {
            panic!("synthetic publisher bug");
        }
        (result, vo)
    });
    let handle = server.serve("127.0.0.1:0").unwrap();
    let mut stream = TcpStream::connect(handle.addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();

    stream
        .write_all(&encode_frame(&Frame::QueryRequest {
            table_id: 0,
            query: SelectQuery::range(KeyRange::closed(666, 777)),
        }))
        .unwrap();
    match read_frame(&mut stream).unwrap() {
        Frame::Error { code, message } => {
            assert_eq!(code, ErrorCode::Internal);
            assert!(message.contains("panic"), "got {message:?}");
        }
        other => panic!("expected Error frame, got {other:?}"),
    }

    // The connection is not wedged: the very next query on the same
    // socket answers, and so does a ping.
    stream
        .write_all(&encode_frame(&Frame::QueryRequest {
            table_id: 0,
            query: SelectQuery::range(KeyRange::all()),
        }))
        .unwrap();
    match read_frame(&mut stream).unwrap() {
        Frame::QueryResponse { result, .. } => assert!(!result.is_empty()),
        other => panic!("expected QueryResponse, got {other:?}"),
    }
    stream.write_all(&encode_frame(&Frame::Ping)).unwrap();
    assert_eq!(read_frame(&mut stream).unwrap(), Frame::Pong);
    assert!(wait_for(&handle, |s| s.errors >= 1));
    handle.shutdown();
}

/// The whole point of the reactor: thread count is a function of shards
/// and workers, not of connection count.
#[test]
fn thread_count_independent_of_connection_count() {
    fn threads_now() -> usize {
        let status = std::fs::read_to_string("/proc/self/status").unwrap();
        status
            .lines()
            .find_map(|l| l.strip_prefix("Threads:"))
            .unwrap()
            .trim()
            .parse()
            .unwrap()
    }

    let handle = serve(ServerConfig::default());
    let mut warm = RemoteClient::connect(handle.addr()).unwrap();
    warm.ping().unwrap();
    let before = threads_now();

    let mut conns = Vec::new();
    for _ in 0..50 {
        let mut stream = TcpStream::connect(handle.addr()).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        stream.write_all(&encode_frame(&Frame::Ping)).unwrap();
        assert_eq!(read_frame(&mut stream).unwrap(), Frame::Pong);
        conns.push(stream);
    }
    // Other tests in this binary run in parallel and start/stop their own
    // server threads, so the process-wide count can drift by a few either
    // way; thread-per-connection would add all 50.
    let after = threads_now();
    assert!(
        after < before + 25,
        "thread count grew {before} -> {after} across 50 connections — \
         scaling with connection count"
    );
    drop(conns);
    handle.shutdown();
}
