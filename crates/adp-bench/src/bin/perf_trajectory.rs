//! The committed performance trajectory: measures the crypto hot paths the
//! paper's cost model leans on (Section 6, Figures 9–10) and writes them to
//! a `BENCH_*.json` snapshot at the repo root so successive PRs can prove
//! speedups against a fixed, machine-local baseline.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p adp-bench --bin perf_trajectory -- \
//!     [--out BENCH_PR3.json] [--label pr3] [--baseline BENCH_PR2.json]
//! ```
//!
//! With `--baseline`, each bench in the output carries `before_ns` (the
//! baseline's `after_ns`), `after_ns`, and `speedup`. Without it only
//! `after_ns` is recorded. `ADP_PERF_SAMPLES` (default 25) bounds the
//! number of timing samples per bench — CI's bench-smoke job sets it to 2
//! so the harness cannot rot without burning minutes.
//!
//! See `docs/PERFORMANCE.md` for how to read the snapshot.

use adp_core::delta::{build_delta_pieces, dirty_intervals};
use adp_core::prelude::*;
use adp_crypto::{
    chain_extend, chain_from_value, sha256::sha256, AggregateSignature, HashDomain, Hasher,
    Keypair, MerkleTree, Signature,
};
use adp_relation::{Column, Record, Schema, Table, Value, ValueType};
use adp_server::protocol::encode_frame;
use adp_server::Frame;
use adp_store::format::{decode_snapshot, encode_snapshot};
use adp_store::LogRecord;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

/// Every bench key the snapshot must contain (CI asserts this set).
pub const EXPECTED_BENCHES: &[&str] = &[
    "hash/sha256_64B",
    "hash/sha256_1024B",
    "chain/from_value_64steps",
    "chain/extend_1000steps",
    "merkle/build_1000",
    "rsa512/sign_crt",
    "rsa512/verify",
    "rsa1024/sign_crt",
    "rsa1024/verify",
    "aggregate/verify_100_1024",
    "store/ingest_batch",
    "store/log_replay",
    "store/snapshot_load",
    "subscribe/fanout_p99",
    "subscribe/delta_bytes",
];

// Sampling and the calibrated-median estimator are shared with the
// baseline_compare harness so the two snapshot families stay comparable.
use adp_bench::measure_ns as measure;
use adp_bench::perf_samples as samples;

fn keypair(bits: usize, seed: u64) -> Keypair {
    let mut rng = StdRng::seed_from_u64(seed);
    Keypair::generate(bits, &mut rng)
}

fn run_benches() -> Vec<(String, f64)> {
    let n = samples();
    let hasher = Hasher::new(16);
    let mut out: Vec<(String, f64)> = Vec::new();
    let mut record = |name: &str, ns: f64| {
        eprintln!("{name:<32} {ns:>14.1} ns");
        out.push((name.to_string(), ns));
    };

    // Hashing (the paper's C_hash).
    let msg64 = vec![0x5au8; 64];
    let msg1k = vec![0x5au8; 1024];
    record(
        "hash/sha256_64B",
        measure(n, || sha256(std::hint::black_box(&msg64))),
    );
    record(
        "hash/sha256_1024B",
        measure(n, || sha256(std::hint::black_box(&msg1k))),
    );

    // Hash chains (owner-side g(r) computation, user-side extension).
    record(
        "chain/from_value_64steps",
        measure(n, || chain_from_value(&hasher, b"key-bytes", 0, 64)),
    );
    let seed = chain_from_value(&hasher, b"key-bytes", 0, 0);
    record(
        "chain/extend_1000steps",
        measure(n, || {
            chain_extend(&hasher, std::hint::black_box(seed), 1000)
        }),
    );

    // Merkle builds (MHT(r.A), rep trees, Devanbu baseline).
    let leaves: Vec<_> = (0..1000u32)
        .map(|i| hasher.hash(HashDomain::Leaf, &i.to_le_bytes()))
        .collect();
    record(
        "merkle/build_1000",
        measure(n, || {
            MerkleTree::build(hasher, std::hint::black_box(leaves.clone()))
        }),
    );

    // RSA signing/verification at the test size and the paper's M_sign.
    for (bits, seed) in [(512usize, 0x0512u64), (1024, 0xC0DE)] {
        let kp = keypair(bits, seed);
        let digest = hasher.hash(HashDomain::Data, b"bench message");
        let sig = kp.sign(&hasher, &digest);
        record(
            &format!("rsa{bits}/sign_crt"),
            measure(n, || kp.sign(&hasher, &digest)),
        );
        record(
            &format!("rsa{bits}/verify"),
            measure(n, || kp.public().verify(&hasher, &digest, &sig)),
        );
        if bits == 1024 {
            let digests: Vec<_> = (0..100u32)
                .map(|i| hasher.hash(HashDomain::Data, &i.to_le_bytes()))
                .collect();
            let sigs: Vec<Signature> = digests.iter().map(|d| kp.sign(&hasher, d)).collect();
            let refs: Vec<&Signature> = sigs.iter().collect();
            let agg = AggregateSignature::combine(kp.public(), &refs);
            record(
                "aggregate/verify_100_1024",
                measure(n, || agg.verify(&hasher, kp.public(), &digests)),
            );
        }
    }

    // Durable store (PR 4): incremental ingest, log replay, snapshot load.
    {
        let mut rng = StdRng::seed_from_u64(0x5704);
        let owner = Owner::new(512, &mut rng);
        let schema = Schema::new(
            vec![
                Column::new("id", ValueType::Int),
                Column::new("k", ValueType::Int),
            ],
            "k",
        );
        let mut t = Table::new("bench", schema);
        for i in 0..256i64 {
            t.insert(Record::new(vec![Value::Int(i), Value::Int(1_000 + i * 10)]))
                .unwrap();
        }
        let base = owner
            .sign_table(t, Domain::new(0, 1_000_000), SchemeConfig::default())
            .unwrap();

        // ingest_batch: a steady-state cycle on ONE table — a batch of 16
        // scattered inserts followed by the batch deleting them — so the
        // measured closure is pure apply_batch (O(k) re-signing), with no
        // per-iteration O(n) table clone polluting the number. One
        // iteration = 2 batches = 32 mutations.
        // Keys ≡ 3 (mod 10) can never collide with the base table's
        // ≡ 0 (mod 10) keys, so each delete removes exactly its insert.
        let inserts: Vec<Mutation> = (0..16i64)
            .map(|i| {
                Mutation::Insert(Record::new(vec![
                    Value::Int(500 + i),
                    Value::Int(1_003 + i * 170),
                ]))
            })
            .collect();
        let deletes: Vec<Mutation> = (0..16i64)
            .map(|i| Mutation::Delete {
                key: 1_003 + i * 170,
                replica: 0,
            })
            .collect();
        let mut ingest_st = base.clone();
        record(
            "store/ingest_batch",
            measure(n, || {
                owner.apply_batch(&mut ingest_st, inserts.clone()).unwrap();
                owner.apply_batch(&mut ingest_st, deletes.clone()).unwrap()
            }),
        );

        // log_replay: the publisher-side mirror — verify and splice 8
        // logged batches (2 mutations each) without the signing key.
        let mut replay_src = base.clone();
        let records: Vec<LogRecord> = (0..8u64)
            .map(|seq| {
                let ops = vec![
                    Mutation::Insert(Record::new(vec![
                        Value::Int(700 + seq as i64),
                        Value::Int(2_000 + seq as i64 * 331),
                    ])),
                    Mutation::Delete {
                        key: 1_000 + seq as i64 * 10,
                        replica: 0,
                    },
                ];
                let report = owner.apply_batch(&mut replay_src, ops).unwrap();
                LogRecord {
                    seq,
                    ops: report.ops,
                    resigned: report.resigned,
                }
            })
            .collect();
        record(
            "store/log_replay",
            measure(n, || {
                let mut st = base.clone();
                for rec in &records {
                    st.replay_batch(&rec.ops, &rec.resigned).unwrap();
                }
                st.len()
            }),
        );

        // snapshot_load: decode + full digest rematerialization of the
        // 256-row snapshot (the restart path).
        let snapshot = encode_snapshot(&base, 0);
        record(
            "store/snapshot_load",
            measure(n, || decode_snapshot(&snapshot).unwrap().0.len()),
        );
    }

    // Subscription fan-out (PR 7): what the reactor pays per subscriber
    // after a churn batch — build the delta pieces for the dirtied
    // intervals ∩ the subscribed range and encode the DeltaVo frame.
    // The fleet mirrors the CI subscription-smoke job: 50 subscribers on
    // 5 distinct overlapping ranges over a 256-row table.
    {
        let mut rng = StdRng::seed_from_u64(0x5B57);
        let owner = Owner::new(512, &mut rng);
        let schema = Schema::new(
            vec![
                Column::new("id", ValueType::Int),
                Column::new("salary", ValueType::Int),
            ],
            "salary",
        );
        let mut t = Table::new("subs", schema);
        for i in 0..256i64 {
            t.insert(Record::new(vec![Value::Int(i), Value::Int(1_000 + i * 40)]))
                .unwrap();
        }
        let mut st = owner
            .sign_table(t, Domain::new(0, 100_000), SchemeConfig::default())
            .unwrap();
        let report = owner
            .apply_batch(
                &mut st,
                vec![
                    Mutation::Insert(Record::new(vec![Value::Int(500), Value::Int(2_110)])),
                    Mutation::Insert(Record::new(vec![Value::Int(501), Value::Int(4_310)])),
                    Mutation::Insert(Record::new(vec![Value::Int(502), Value::Int(6_510)])),
                    Mutation::Delete {
                        key: 3_000,
                        replica: 0,
                    },
                    Mutation::Delete {
                        key: 7_000,
                        replica: 0,
                    },
                ],
            )
            .unwrap();
        let intervals = dirty_intervals(&st, &report.resigned);
        assert!(!intervals.is_empty(), "churn batch must dirty the table");
        let subs: Vec<(i64, i64)> = (0..50i64)
            .map(|i| {
                let lo = 1_000 + (i % 5) * 400;
                (lo, lo + 6_000)
            })
            .collect();

        // fanout_p99: p99 over every (pass, subscriber) sample of the
        // per-subscriber build+encode closure — the tail a slow delta
        // adds to the apply_update caller, since fan-out is serial.
        let encode_delta = |lo: i64, hi: i64| {
            let pieces = build_delta_pieces(&st, &intervals, lo, hi)
                .unwrap()
                .into_iter()
                .map(|p| adp_server::protocol::DeltaPiece {
                    lo: p.lo,
                    hi: p.hi,
                    result: adp_core::wire::encode_records(&p.records),
                    vo: adp_core::wire::encode_vo(&p.vo),
                })
                .collect();
            encode_frame(&Frame::DeltaVo {
                sub_id: 1,
                epoch: 1,
                pieces,
            })
        };
        let mut fan_ns: Vec<f64> = Vec::with_capacity(n * subs.len());
        for _ in 0..n {
            for &(lo, hi) in &subs {
                let t0 = Instant::now();
                std::hint::black_box(encode_delta(lo, hi));
                fan_ns.push(t0.elapsed().as_nanos() as f64);
            }
        }
        fan_ns.sort_by(|a, b| a.partial_cmp(b).unwrap());
        record(
            "subscribe/fanout_p99",
            fan_ns[(fan_ns.len() - 1) * 99 / 100],
        );

        // delta_bytes: the pushed DeltaVo's wire payload for the widest
        // fleet range. Seed-determined and machine-independent — the
        // snapshot schema stores it in the same numeric cell as the
        // timings (the value is bytes, not nanoseconds).
        let frame = encode_delta(1_000, 7_000);
        record("subscribe/delta_bytes", (frame.len() - 8) as f64);
    }
    out
}

/// Pulls `"name": { ... "after_ns": <num> ... }` out of a snapshot we wrote
/// ourselves (not a general JSON parser; the emitter below is its dual).
fn baseline_after_ns(json: &str, name: &str) -> Option<f64> {
    let needle = format!("\"{name}\"");
    let obj = &json[json.find(&needle)? + needle.len()..];
    let obj = &obj[..obj.find('}')?];
    let tail = &obj[obj.find("\"after_ns\":")? + "\"after_ns\":".len()..];
    let num: String = tail
        .chars()
        .skip_while(|c| c.is_whitespace())
        .take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-')
        .collect();
    num.parse().ok()
}

/// The `"label"` of a snapshot we wrote (same scanner caveat as above).
fn baseline_label(json: &str) -> Option<String> {
    let tail = &json[json.find("\"label\":")? + "\"label\":".len()..];
    let tail = tail.trim_start();
    let tail = tail.strip_prefix('"')?;
    Some(tail[..tail.find('"')?].to_string())
}

fn main() {
    let mut out_path = "BENCH_PR3.json".to_string();
    let mut label = "pr3".to_string();
    let mut baseline_path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => out_path = args.next().expect("--out needs a path"),
            "--label" => label = args.next().expect("--label needs a value"),
            "--baseline" => baseline_path = Some(args.next().expect("--baseline needs a path")),
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }
    let baseline = baseline_path.map(|p| {
        (
            std::fs::read_to_string(&p).unwrap_or_else(|e| panic!("cannot read baseline {p}: {e}")),
            p,
        )
    });

    let results = run_benches();
    for expected in EXPECTED_BENCHES {
        assert!(
            results.iter().any(|(n, _)| n == expected),
            "bench {expected} missing from the run"
        );
    }

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"schema_version\": 1,\n");
    json.push_str(&format!("  \"label\": \"{label}\",\n"));
    if let Some((text, p)) = &baseline {
        let id = baseline_label(text).unwrap_or_else(|| p.clone());
        json.push_str(&format!("  \"baseline\": \"{id}\",\n"));
    }
    json.push_str(&format!("  \"samples\": {},\n", samples()));
    json.push_str("  \"benches\": {\n");
    for (i, (name, after)) in results.iter().enumerate() {
        let sep = if i + 1 == results.len() { "" } else { "," };
        match baseline
            .as_ref()
            .and_then(|(text, _)| baseline_after_ns(text, name))
        {
            Some(before) => {
                json.push_str(&format!(
                    "    \"{name}\": {{ \"before_ns\": {before:.1}, \"after_ns\": {after:.1}, \
                     \"speedup\": {:.2} }}{sep}\n",
                    before / after
                ));
            }
            None => {
                json.push_str(&format!(
                    "    \"{name}\": {{ \"after_ns\": {after:.1} }}{sep}\n"
                ));
            }
        }
    }
    json.push_str("  }\n}\n");
    std::fs::write(&out_path, &json).expect("write snapshot");
    eprintln!("wrote {out_path}");
}
