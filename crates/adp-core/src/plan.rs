//! The typed logical-plan IR behind the SQL frontend, its lowering to
//! wire-executable *physical* plans, and the cost model hook that lets the
//! optimizer in [`crate::passes`] pick the plan with the **cheapest
//! proof** — VO bytes plus verification time per formulas (4)/(5) in
//! [`crate::costmodel`] — rather than the cheapest scan.
//!
//! A statement lowers ([`lower`]) to a [`Plan`] tree of Scan / Filter /
//! Project / Distinct / Join / Aggregate nodes, is rewritten by passes,
//! and finally lowers again ([`physical`]) to a [`PhysicalPlan`]: the
//! server-side [`WirePlan`] (what the `PlannedQuery` protocol frame
//! carries) plus the client-side residue — predicates the proof does not
//! cover (evaluated locally over *verified* rows, so completeness still
//! transfers) and the aggregate, computed client-side per Section 4.2.

use crate::client::{AggregateKind, AggregateValue};
use crate::costmodel::{self, CostParams};
use crate::domain::Domain;
use crate::errors::VerifyError;
use crate::join::{verify_pkfk_join, PkFkJoinResult, PkFkJoinVO};
use crate::owner::{Certificate, SignedTable};
use crate::publisher::{effective_projection, PublishError, Publisher};
use crate::scheme::Mode;
use crate::sql::{AggFunc, ColumnRef, Condition, JoinClause, SelectList, Statement};
use crate::verifier::verify_select;
use crate::vo::QueryVO;
use crate::wire::{self, Reader, WireError, Writer};
use adp_relation::{
    CompareOp, KeyRange, Predicate, Projection, Record, Schema, SelectQuery, Value,
};
use std::ops::Bound;

// ---------------------------------------------------------------------------
// Catalog
// ---------------------------------------------------------------------------

/// What the planner knows about one published table.
#[derive(Clone, Debug)]
pub struct CatalogTable {
    pub name: String,
    /// The table id used on the wire (`QueryRequest` / `PlannedQuery`).
    pub id: u32,
    pub schema: Schema,
    pub domain: Domain,
    /// Row-count estimate for selectivity (need not be exact).
    pub rows: u64,
    /// The scheme's digit base (drives `m` in formulas (4)/(5)).
    pub base: u32,
    /// Set when this table's sort key is a foreign key into another
    /// table's sort key (referential integrity declared by the owner).
    pub fk_into: Option<String>,
}

impl CatalogTable {
    /// Builds an entry from an owner certificate plus a row estimate.
    pub fn from_certificate(id: u32, cert: &Certificate, rows: u64) -> Self {
        let base = match cert.config.mode {
            Mode::Optimized { base } => base,
            _ => 2,
        };
        CatalogTable {
            name: cert.table_name.clone(),
            id,
            schema: cert.schema.clone(),
            domain: cert.domain,
            rows,
            base,
            fk_into: None,
        }
    }
}

/// The set of tables visible to the planner.
#[derive(Clone, Debug, Default)]
pub struct Catalog {
    tables: Vec<CatalogTable>,
}

impl Catalog {
    pub fn new() -> Self {
        Catalog::default()
    }

    /// Adds (or replaces, by name) a table.
    pub fn add(&mut self, table: CatalogTable) {
        self.tables.retain(|t| t.name != table.name);
        self.tables.push(table);
    }

    /// Declares `from`'s key a foreign key into `to`'s key. Returns false
    /// if `from` is unknown.
    pub fn declare_fk(&mut self, from: &str, to: &str) -> bool {
        match self.tables.iter_mut().find(|t| t.name == from) {
            Some(t) => {
                t.fk_into = Some(to.to_string());
                true
            }
            None => false,
        }
    }

    pub fn table(&self, name: &str) -> Option<&CatalogTable> {
        self.tables.iter().find(|t| t.name == name)
    }

    pub fn table_by_id(&self, id: u32) -> Option<&CatalogTable> {
        self.tables.iter().find(|t| t.id == id)
    }

    pub fn tables(&self) -> &[CatalogTable] {
        &self.tables
    }
}

// ---------------------------------------------------------------------------
// Logical plan
// ---------------------------------------------------------------------------

/// Projection list carried by [`Plan::Project`] (qualified names allowed
/// above a join).
#[derive(Clone, Debug, PartialEq)]
pub enum ProjectList {
    All,
    Columns(Vec<ColumnRef>),
}

/// The logical plan IR. Optimizer passes are `Plan → Plan` rewrites.
#[derive(Clone, Debug, PartialEq)]
pub enum Plan {
    /// Sequential key-range scan of one table.
    Scan { table: String, range: KeyRange },
    /// Conjunctive selection.
    Filter {
        input: Box<Plan>,
        predicates: Vec<Predicate>,
    },
    /// Projection.
    Project { input: Box<Plan>, list: ProjectList },
    /// Duplicate elimination over the projected output.
    Distinct { input: Box<Plan> },
    /// pk-fk equi-join; `outer` is the fk side (Section 4.3).
    Join { outer: Box<Plan>, inner: Box<Plan> },
    /// Client-side aggregate over the verified input.
    Aggregate {
        input: Box<Plan>,
        func: AggFunc,
        column: Option<ColumnRef>,
    },
}

impl Plan {
    /// The single table a (sub)plan scans, if the subtree is join-free.
    pub fn scan_table(&self) -> Option<&str> {
        match self {
            Plan::Scan { table, .. } => Some(table),
            Plan::Filter { input, .. }
            | Plan::Project { input, .. }
            | Plan::Distinct { input }
            | Plan::Aggregate { input, .. } => input.scan_table(),
            Plan::Join { .. } => None,
        }
    }

    fn indent(f: &mut std::fmt::Formatter<'_>, depth: usize) -> std::fmt::Result {
        for _ in 0..depth {
            write!(f, "  ")?;
        }
        Ok(())
    }

    fn explain(&self, f: &mut std::fmt::Formatter<'_>, depth: usize) -> std::fmt::Result {
        Plan::indent(f, depth)?;
        match self {
            Plan::Scan { table, range } => writeln!(f, "Scan {table} range={range:?}"),
            Plan::Filter { input, predicates } => {
                let preds: Vec<String> = predicates
                    .iter()
                    .map(|p| format!("{} {:?} {:?}", p.column, p.op, p.value))
                    .collect();
                writeln!(f, "Filter [{}]", preds.join(", "))?;
                input.explain(f, depth + 1)
            }
            Plan::Project { input, list } => {
                match list {
                    ProjectList::All => writeln!(f, "Project *")?,
                    ProjectList::Columns(cols) => {
                        let names: Vec<String> = cols.iter().map(|c| c.to_string()).collect();
                        writeln!(f, "Project [{}]", names.join(", "))?;
                    }
                }
                input.explain(f, depth + 1)
            }
            Plan::Distinct { input } => {
                writeln!(f, "Distinct")?;
                input.explain(f, depth + 1)
            }
            Plan::Join { outer, inner } => {
                writeln!(f, "PkFkJoin")?;
                outer.explain(f, depth + 1)?;
                inner.explain(f, depth + 1)
            }
            Plan::Aggregate {
                input,
                func,
                column,
            } => {
                match column {
                    Some(c) => writeln!(f, "Aggregate {}({c})", func.name())?,
                    None => writeln!(f, "Aggregate {}(*)", func.name())?,
                }
                input.explain(f, depth + 1)
            }
        }
    }
}

impl std::fmt::Display for Plan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.explain(f, 0)
    }
}

/// Why lowering or planning failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PlanError {
    UnknownTable(String),
    UnknownColumn(String),
    AmbiguousColumn(String),
    Unsupported(String),
}

impl std::fmt::Display for PlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlanError::UnknownTable(t) => write!(f, "unknown table '{t}'"),
            PlanError::UnknownColumn(c) => write!(f, "unknown column '{c}'"),
            PlanError::AmbiguousColumn(c) => write!(f, "ambiguous column '{c}'"),
            PlanError::Unsupported(m) => write!(f, "unsupported: {m}"),
        }
    }
}
impl std::error::Error for PlanError {}

// ---------------------------------------------------------------------------
// Lowering: Statement → Plan
// ---------------------------------------------------------------------------

/// Resolves which of the (one or two) tables a column reference names.
fn resolve_side<'a>(
    col: &ColumnRef,
    tables: &[&'a CatalogTable],
) -> Result<(&'a CatalogTable, usize), PlanError> {
    if let Some(q) = &col.table {
        match tables.iter().find(|t| &t.name == q) {
            Some(t) => match t.schema.column_index(&col.column) {
                Some(i) => Ok((t, i)),
                None => Err(PlanError::UnknownColumn(col.to_string())),
            },
            None => Err(PlanError::UnknownTable(q.clone())),
        }
    } else {
        let hits: Vec<(&CatalogTable, usize)> = tables
            .iter()
            .filter_map(|t| t.schema.column_index(&col.column).map(|i| (*t, i)))
            .collect();
        match hits.len() {
            0 => Err(PlanError::UnknownColumn(col.column.clone())),
            1 => Ok(hits[0]),
            _ => Err(PlanError::AmbiguousColumn(col.column.clone())),
        }
    }
}

fn condition_predicates(cond: &Condition) -> Vec<Predicate> {
    match cond {
        Condition::Compare { col, op, value } => {
            vec![Predicate::new(col.column.clone(), *op, value.clone())]
        }
        Condition::Between { col, lo, hi } => vec![
            Predicate::new(col.column.clone(), CompareOp::Ge, Value::Int(*lo)),
            Predicate::new(col.column.clone(), CompareOp::Le, Value::Int(*hi)),
        ],
    }
}

/// Lowers a parsed statement to the *naive* logical plan: a full-domain
/// scan with every WHERE conjunct left as a Filter. The optimizer passes
/// are what turn this into something with a small proof. (One exception:
/// DISTINCT queries push key-range predicates into the scan eagerly —
/// with DISTINCT the duplicate-representative choice would otherwise
/// differ between a wide and a narrow scan.)
pub fn lower(stmt: &Statement, catalog: &Catalog) -> Result<Plan, PlanError> {
    let t1 = catalog
        .table(&stmt.from)
        .ok_or_else(|| PlanError::UnknownTable(stmt.from.clone()))?;
    match &stmt.join {
        None => lower_single(stmt, t1),
        Some(j) => lower_join(stmt, t1, j, catalog),
    }
}

fn lower_single(stmt: &Statement, t: &CatalogTable) -> Result<Plan, PlanError> {
    let tables = [t];
    let mut range = KeyRange::all();
    let mut predicates = Vec::new();
    for cond in &stmt.conditions {
        let col = match cond {
            Condition::Compare { col, .. } | Condition::Between { col, .. } => col,
        };
        let (_, idx) = resolve_side(col, &tables)?;
        for p in condition_predicates(cond) {
            let on_key = idx == t.schema.key_index();
            if on_key && stmt.distinct {
                // Eager pushdown under DISTINCT (see doc comment).
                match KeyRange::from_predicate(&p) {
                    Some(kr) => range = range.intersect(&kr),
                    None => {
                        return Err(PlanError::Unsupported(
                            "non-range key predicate under DISTINCT".to_string(),
                        ))
                    }
                }
            } else {
                predicates.push(p);
            }
        }
    }
    let mut plan = Plan::Scan {
        table: t.name.clone(),
        range,
    };
    if !predicates.is_empty() {
        plan = Plan::Filter {
            input: Box::new(plan),
            predicates,
        };
    }
    let (agg, project) = split_select(&stmt.select, &tables)?;
    if let Some(list) = project {
        plan = Plan::Project {
            input: Box::new(plan),
            list,
        };
    }
    if stmt.distinct {
        if agg.is_some() {
            return Err(PlanError::Unsupported(
                "DISTINCT with an aggregate".to_string(),
            ));
        }
        plan = Plan::Distinct {
            input: Box::new(plan),
        };
    }
    if let Some((func, column)) = agg {
        plan = Plan::Aggregate {
            input: Box::new(plan),
            func,
            column,
        };
    }
    Ok(plan)
}

/// Splits a select list into (aggregate, projection-under-it).
#[allow(clippy::type_complexity)]
fn split_select(
    select: &SelectList,
    tables: &[&CatalogTable],
) -> Result<(Option<(AggFunc, Option<ColumnRef>)>, Option<ProjectList>), PlanError> {
    match select {
        SelectList::Star => Ok((None, None)),
        SelectList::Columns(cols) => {
            for c in cols {
                resolve_side(c, tables)?;
            }
            Ok((None, Some(ProjectList::Columns(cols.clone()))))
        }
        SelectList::Aggregate { func, arg } => {
            let project = match arg {
                Some(c) => {
                    resolve_side(c, tables)?;
                    Some(ProjectList::Columns(vec![c.clone()]))
                }
                None => None,
            };
            Ok((Some((*func, arg.clone())), project))
        }
    }
}

fn lower_join(
    stmt: &Statement,
    t1: &CatalogTable,
    j: &JoinClause,
    catalog: &Catalog,
) -> Result<Plan, PlanError> {
    let t2 = catalog
        .table(&j.table)
        .ok_or_else(|| PlanError::UnknownTable(j.table.clone()))?;
    if t1.name == t2.name {
        return Err(PlanError::Unsupported("self-join".to_string()));
    }
    let tables = [t1, t2];
    // The join must equate the two sort keys (the only equi-join the
    // signature chains can prove, Section 4.3).
    for side in [&j.left, &j.right] {
        let (t, idx) = resolve_side(side, &tables)?;
        if idx != t.schema.key_index() {
            return Err(PlanError::Unsupported(format!(
                "join column '{side}' is not the sort key of '{}'",
                t.name
            )));
        }
    }
    let (lt, _) = resolve_side(&j.left, &tables)?;
    let (rt, _) = resolve_side(&j.right, &tables)?;
    if lt.name == rt.name {
        return Err(PlanError::Unsupported(
            "join condition references one table twice".to_string(),
        ));
    }
    if stmt.distinct {
        return Err(PlanError::Unsupported("DISTINCT over a join".to_string()));
    }
    // Distribute WHERE conjuncts to their side; only key predicates are
    // supported over a join.
    let mut preds1 = Vec::new();
    let mut preds2 = Vec::new();
    for cond in &stmt.conditions {
        let col = match cond {
            Condition::Compare { col, .. } | Condition::Between { col, .. } => col,
        };
        let (t, idx) = resolve_side(col, &tables)?;
        if idx != t.schema.key_index() {
            return Err(PlanError::Unsupported(format!(
                "non-key predicate on '{col}' over a join"
            )));
        }
        let bucket = if t.name == t1.name {
            &mut preds1
        } else {
            &mut preds2
        };
        bucket.extend(condition_predicates(cond));
    }
    let side = |t: &CatalogTable, preds: Vec<Predicate>| {
        let scan = Plan::Scan {
            table: t.name.clone(),
            range: KeyRange::all(),
        };
        if preds.is_empty() {
            scan
        } else {
            Plan::Filter {
                input: Box::new(scan),
                predicates: preds,
            }
        }
    };
    // The statement's FROM table starts as the outer (fk) side; the
    // join-order pass reorients by declared integrity and cost.
    let mut plan = Plan::Join {
        outer: Box::new(side(t1, preds1)),
        inner: Box::new(side(t2, preds2)),
    };
    let (agg, project) = split_select(&stmt.select, &tables)?;
    if let Some(list) = project {
        plan = Plan::Project {
            input: Box::new(plan),
            list,
        };
    }
    if let Some((func, column)) = agg {
        plan = Plan::Aggregate {
            input: Box::new(plan),
            func,
            column,
        };
    }
    Ok(plan)
}

// ---------------------------------------------------------------------------
// Physical plan + wire encoding
// ---------------------------------------------------------------------------

/// The server-executable part of a plan — exactly what the `PlannedQuery`
/// protocol frame carries, and (canonically encoded) the VO-cache
/// fingerprint.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WirePlan {
    /// A select-project(-distinct) against one table.
    Select { table_id: u32, query: SelectQuery },
    /// A pk-fk equi-join: `fk_table`'s sort key into `pk_table`'s.
    PkFkJoin {
        fk_table: u32,
        pk_table: u32,
        fk_range: KeyRange,
        fk_projection: Projection,
        pk_projection: Projection,
    },
}

impl WirePlan {
    /// Canonical byte encoding; doubles as the VO-cache fingerprint.
    pub fn fingerprint(&self) -> Vec<u8> {
        encode_wire_plan(self)
    }
}

fn write_bound(w: &mut Writer, b: &Bound<i64>) {
    match b {
        Bound::Unbounded => w.u8(0),
        Bound::Included(v) => {
            w.u8(1);
            w.i64(*v);
        }
        Bound::Excluded(v) => {
            w.u8(2);
            w.i64(*v);
        }
    }
}

fn read_bound(r: &mut Reader) -> Result<Bound<i64>, WireError> {
    match r.u8()? {
        0 => Ok(Bound::Unbounded),
        1 => Ok(Bound::Included(r.i64()?)),
        2 => Ok(Bound::Excluded(r.i64()?)),
        _ => Err(WireError("bad bound tag")),
    }
}

fn write_projection(w: &mut Writer, p: &Projection) {
    match p {
        Projection::All => w.u8(0),
        Projection::Columns(cols) => {
            w.u8(1);
            w.u32(cols.len() as u32);
            for c in cols {
                w.bytes(c.as_bytes());
            }
        }
    }
}

fn read_projection(r: &mut Reader) -> Result<Projection, WireError> {
    match r.u8()? {
        0 => Ok(Projection::All),
        1 => {
            let n = r.u32()? as usize;
            let mut cols = Vec::with_capacity(n.min(1024));
            for _ in 0..n {
                let raw = r.bytes()?;
                let s =
                    String::from_utf8(raw.to_vec()).map_err(|_| WireError("non-utf8 column"))?;
                cols.push(s);
            }
            Ok(Projection::Columns(cols))
        }
        _ => Err(WireError("bad projection tag")),
    }
}

/// Encodes a wire plan (tag `1` = Select, `2` = PkFkJoin).
pub fn encode_wire_plan(plan: &WirePlan) -> Vec<u8> {
    let mut w = Writer::new();
    match plan {
        WirePlan::Select { table_id, query } => {
            w.u8(1);
            w.u32(*table_id);
            w.bytes(&wire::encode_query(query));
        }
        WirePlan::PkFkJoin {
            fk_table,
            pk_table,
            fk_range,
            fk_projection,
            pk_projection,
        } => {
            w.u8(2);
            w.u32(*fk_table);
            w.u32(*pk_table);
            write_bound(&mut w, &fk_range.lo);
            write_bound(&mut w, &fk_range.hi);
            write_projection(&mut w, fk_projection);
            write_projection(&mut w, pk_projection);
        }
    }
    w.into_bytes()
}

/// Decodes a wire plan; rejects trailing bytes.
pub fn decode_wire_plan(data: &[u8]) -> Result<WirePlan, WireError> {
    let mut r = Reader::new(data);
    let plan = match r.u8()? {
        1 => {
            let table_id = r.u32()?;
            let query = wire::decode_query(r.bytes()?)?;
            WirePlan::Select { table_id, query }
        }
        2 => {
            let fk_table = r.u32()?;
            let pk_table = r.u32()?;
            let lo = read_bound(&mut r)?;
            let hi = read_bound(&mut r)?;
            let fk_projection = read_projection(&mut r)?;
            let pk_projection = read_projection(&mut r)?;
            WirePlan::PkFkJoin {
                fk_table,
                pk_table,
                fk_range: KeyRange { lo, hi },
                fk_projection,
                pk_projection,
            }
        }
        _ => return Err(WireError("bad plan tag")),
    };
    if !r.done() {
        return Err(WireError("trailing bytes after plan"));
    }
    Ok(plan)
}

/// A client-side predicate the proof does not cover; evaluated locally
/// over verified rows.
#[derive(Clone, Debug, PartialEq)]
pub enum ResidualPred {
    Cmp {
        slot: usize,
        op: CompareOp,
        value: Value,
    },
    Range {
        slot: usize,
        range: KeyRange,
    },
}

impl ResidualPred {
    fn keeps(&self, row: &Record) -> bool {
        match self {
            ResidualPred::Cmp { slot, op, value } => row
                .values()
                .get(*slot)
                .and_then(|v| op.eval(v, value))
                .unwrap_or(false),
            ResidualPred::Range { slot, range } => row
                .values()
                .get(*slot)
                .and_then(|v| v.as_int())
                .map(|k| range.contains(k))
                .unwrap_or(false),
        }
    }
}

/// The aggregate finishing step (client-side).
#[derive(Clone, Debug, PartialEq)]
pub struct PlanAggregate {
    pub kind: AggregateKind,
    /// Output slot of the aggregated column (None for COUNT(*)).
    pub slot: Option<usize>,
    /// Display label, e.g. `SUM(salary)`.
    pub label: String,
}

/// A fully lowered plan: the wire part plus the client-side residue.
#[derive(Clone, Debug, PartialEq)]
pub struct PhysicalPlan {
    pub wire: WirePlan,
    pub residual: Vec<ResidualPred>,
    pub aggregate: Option<PlanAggregate>,
    /// Display names of the output slots (joins qualify as `table.col`).
    pub columns: Vec<String>,
}

fn agg_kind(func: AggFunc) -> AggregateKind {
    match func {
        AggFunc::Count => AggregateKind::Count,
        AggFunc::Sum => AggregateKind::Sum,
        AggFunc::Min => AggregateKind::Min,
        AggFunc::Max => AggregateKind::Max,
        AggFunc::Avg => AggregateKind::Avg,
    }
}

/// Flattened single-table chain.
struct SelectChain {
    table: String,
    range: KeyRange,
    predicates: Vec<Predicate>,
    project: Option<ProjectList>,
    distinct: bool,
}

fn flatten_select(plan: &Plan) -> Result<SelectChain, PlanError> {
    match plan {
        Plan::Scan { table, range } => Ok(SelectChain {
            table: table.clone(),
            range: *range,
            predicates: Vec::new(),
            project: None,
            distinct: false,
        }),
        Plan::Filter { input, predicates } => {
            let mut c = flatten_select(input)?;
            if c.project.is_some() || c.distinct {
                return Err(PlanError::Unsupported(
                    "filter above project/distinct".to_string(),
                ));
            }
            c.predicates.extend(predicates.iter().cloned());
            Ok(c)
        }
        Plan::Project { input, list } => {
            let mut c = flatten_select(input)?;
            if c.project.is_some() {
                return Err(PlanError::Unsupported("nested projections".to_string()));
            }
            c.project = Some(list.clone());
            Ok(c)
        }
        Plan::Distinct { input } => {
            let mut c = flatten_select(input)?;
            c.distinct = true;
            Ok(c)
        }
        Plan::Join { .. } | Plan::Aggregate { .. } => Err(PlanError::Unsupported(
            "join/aggregate below a select chain".to_string(),
        )),
    }
}

/// Lowers a (possibly rewritten) logical plan to its physical form.
pub fn physical(plan: &Plan, catalog: &Catalog) -> Result<PhysicalPlan, PlanError> {
    // Peel a top-level aggregate.
    let (agg, body) = match plan {
        Plan::Aggregate {
            input,
            func,
            column,
        } => (Some((*func, column.clone())), input.as_ref()),
        other => (None, other),
    };
    let mut phys = if find_join(body).is_some() {
        physical_join(body, catalog)?
    } else {
        physical_select(body, catalog)?
    };
    if let Some((func, column)) = agg {
        let kind = agg_kind(func);
        let (slot, label) = match &column {
            None => (None, format!("{}(*)", func.name())),
            Some(c) => {
                let pos = phys
                    .columns
                    .iter()
                    .position(|name| column_matches(name, c))
                    .ok_or_else(|| PlanError::UnknownColumn(c.to_string()))?;
                (Some(pos), format!("{}({c})", func.name()))
            }
        };
        phys.aggregate = Some(PlanAggregate { kind, slot, label });
    }
    Ok(phys)
}

/// Does output column `name` (possibly `table.col`) match the reference?
fn column_matches(name: &str, c: &ColumnRef) -> bool {
    match name.split_once('.') {
        Some((t, col)) => col == c.column && c.table.as_deref().map(|q| q == t).unwrap_or(true),
        // Single-table outputs use plain names; any qualifier was already
        // validated during lowering.
        None => name == c.column,
    }
}

fn find_join(plan: &Plan) -> Option<&Plan> {
    match plan {
        Plan::Join { .. } => Some(plan),
        Plan::Filter { input, .. }
        | Plan::Project { input, .. }
        | Plan::Distinct { input }
        | Plan::Aggregate { input, .. } => find_join(input),
        Plan::Scan { .. } => None,
    }
}

fn physical_select(plan: &Plan, catalog: &Catalog) -> Result<PhysicalPlan, PlanError> {
    let chain = flatten_select(plan)?;
    let t = catalog
        .table(&chain.table)
        .ok_or_else(|| PlanError::UnknownTable(chain.table.clone()))?;
    let key_idx = t.schema.key_index();
    // Split predicates: non-key ones ride in the query (the multipoint
    // proofs cover them); key predicates the server was not asked to
    // range-restrict become client-side residue.
    let mut filters = Vec::new();
    let mut residual_raw = Vec::new();
    for p in chain.predicates {
        let idx = t
            .schema
            .column_index(&p.column)
            .ok_or_else(|| PlanError::UnknownColumn(p.column.clone()))?;
        if idx == key_idx {
            residual_raw.push(p);
        } else {
            filters.push(p);
        }
    }
    let projection = match chain.project {
        None => Projection::All,
        Some(ProjectList::All) => Projection::All,
        Some(ProjectList::Columns(cols)) => {
            let mut names = Vec::new();
            for c in cols {
                if let Some(q) = &c.table {
                    if q != &t.name {
                        return Err(PlanError::UnknownTable(q.clone()));
                    }
                }
                if t.schema.column_index(&c.column).is_none() {
                    return Err(PlanError::UnknownColumn(c.to_string()));
                }
                names.push(c.column);
            }
            Projection::Columns(names)
        }
    };
    let query = SelectQuery {
        range: chain.range,
        filters,
        projection,
        distinct: chain.distinct,
    };
    let eff = effective_projection(&t.schema, &query.projection, &query.filters)
        .ok_or_else(|| PlanError::UnknownColumn("<projection>".to_string()))?;
    let columns: Vec<String> = eff
        .iter()
        .map(|&i| t.schema.columns()[i].name.clone())
        .collect();
    let key_slot = eff
        .iter()
        .position(|&i| i == key_idx)
        .expect("effective projection includes the key");
    let residual = residual_raw
        .into_iter()
        .map(|p| ResidualPred::Cmp {
            slot: key_slot,
            op: p.op,
            value: p.value,
        })
        .collect();
    Ok(PhysicalPlan {
        wire: WirePlan::Select {
            table_id: t.id,
            query,
        },
        residual,
        aggregate: None,
        columns,
    })
}

fn side_projection(
    cols: &[ColumnRef],
    t: &CatalogTable,
    other: &CatalogTable,
) -> Result<Projection, PlanError> {
    let mut names = Vec::new();
    for c in cols {
        let belongs = match &c.table {
            Some(q) => q == &t.name,
            None => {
                let here = t.schema.column_index(&c.column).is_some();
                let there = other.schema.column_index(&c.column).is_some();
                if here && there {
                    return Err(PlanError::AmbiguousColumn(c.column.clone()));
                }
                here
            }
        };
        if belongs {
            if t.schema.column_index(&c.column).is_none() {
                return Err(PlanError::UnknownColumn(c.to_string()));
            }
            if !names.contains(&c.column) {
                names.push(c.column.clone());
            }
        }
    }
    Ok(Projection::Columns(names))
}

fn physical_join(plan: &Plan, catalog: &Catalog) -> Result<PhysicalPlan, PlanError> {
    // Peel Project above the Join.
    let (project, join) = match plan {
        Plan::Project { input, list } => match input.as_ref() {
            Plan::Join { outer, inner } => (Some(list.clone()), (outer, inner)),
            _ => return Err(PlanError::Unsupported("project above non-join".to_string())),
        },
        Plan::Join { outer, inner } => (None, (outer, inner)),
        _ => return Err(PlanError::Unsupported("distinct over a join".to_string())),
    };
    let (outer, inner) = join;
    let o_chain = flatten_select(outer)?;
    let i_chain = flatten_select(inner)?;
    if o_chain.project.is_some()
        || i_chain.project.is_some()
        || o_chain.distinct
        || i_chain.distinct
    {
        return Err(PlanError::Unsupported(
            "project/distinct inside a join side".to_string(),
        ));
    }
    let ot = catalog
        .table(&o_chain.table)
        .ok_or_else(|| PlanError::UnknownTable(o_chain.table.clone()))?;
    let it = catalog
        .table(&i_chain.table)
        .ok_or_else(|| PlanError::UnknownTable(i_chain.table.clone()))?;
    let (fk_projection, pk_projection) = match &project {
        None | Some(ProjectList::All) => (Projection::All, Projection::All),
        Some(ProjectList::Columns(cols)) => (
            side_projection(cols, ot, it)?,
            side_projection(cols, it, ot)?,
        ),
    };
    // Residuals: key predicates not folded into the fk range, plus the
    // inner side's scan range if a pass has not transferred it.
    let o_eff = effective_projection(&ot.schema, &fk_projection, &[])
        .ok_or_else(|| PlanError::UnknownColumn("<projection>".to_string()))?;
    let i_eff = effective_projection(&it.schema, &pk_projection, &[])
        .ok_or_else(|| PlanError::UnknownColumn("<projection>".to_string()))?;
    let fk_slot = o_eff
        .iter()
        .position(|&i| i == ot.schema.key_index())
        .expect("key is forced into the effective projection");
    let pk_slot = o_eff.len()
        + i_eff
            .iter()
            .position(|&i| i == it.schema.key_index())
            .expect("key is forced into the effective projection");
    let mut residual = Vec::new();
    for (chain, t, slot) in [(&o_chain, ot, fk_slot), (&i_chain, it, pk_slot)] {
        for p in &chain.predicates {
            let idx = t
                .schema
                .column_index(&p.column)
                .ok_or_else(|| PlanError::UnknownColumn(p.column.clone()))?;
            if idx != t.schema.key_index() {
                return Err(PlanError::Unsupported(format!(
                    "non-key predicate on '{}' over a join",
                    p.column
                )));
            }
            residual.push(ResidualPred::Cmp {
                slot,
                op: p.op,
                value: p.value.clone(),
            });
        }
    }
    if i_chain.range != KeyRange::all() {
        residual.push(ResidualPred::Range {
            slot: pk_slot,
            range: i_chain.range,
        });
    }
    let mut columns: Vec<String> = o_eff
        .iter()
        .map(|&i| format!("{}.{}", ot.name, ot.schema.columns()[i].name))
        .collect();
    columns.extend(
        i_eff
            .iter()
            .map(|&i| format!("{}.{}", it.name, it.schema.columns()[i].name)),
    );
    Ok(PhysicalPlan {
        wire: WirePlan::PkFkJoin {
            fk_table: ot.id,
            pk_table: it.id,
            fk_range: o_chain.range,
            fk_projection,
            pk_projection,
        },
        residual,
        aggregate: None,
        columns,
    })
}

// ---------------------------------------------------------------------------
// Cost model hook
// ---------------------------------------------------------------------------

/// Exchange rate between the two proof-cost axes: one millisecond of
/// user verification time is charged like this many VO bytes.
pub const VERIFY_MS_BYTE_WEIGHT: f64 = 1024.0;

/// Estimated proof cost of a plan (formulas (4)/(5)).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PlanCost {
    pub vo_bytes: f64,
    pub verify_ms: f64,
}

impl PlanCost {
    pub fn score(&self) -> f64 {
        self.vo_bytes + self.verify_ms * VERIFY_MS_BYTE_WEIGHT
    }
}

fn range_fraction(range: &KeyRange, domain: &Domain) -> f64 {
    match domain.normalize(range) {
        None => 0.0,
        Some(b) => {
            let width = (b.beta - b.alpha).unsigned_abs().saturating_add(1);
            (width as f64 / domain.width().max(1) as f64).min(1.0)
        }
    }
}

fn select_estimate(t: &CatalogTable, range: &KeyRange, params: &CostParams) -> (u64, PlanCost) {
    let m = costmodel::paper_m(t.base, t.domain.width()).max(1);
    let q = ((t.rows as f64 * range_fraction(range, &t.domain)).ceil() as u64).max(1);
    let cost = PlanCost {
        vo_bytes: costmodel::muser_bytes(params, m, q),
        verify_ms: costmodel::cuser_ms(params, t.base, m, q),
    };
    (q, cost)
}

/// Estimates the proof cost of a wire plan against the catalog.
pub fn estimate_cost(plan: &WirePlan, catalog: &Catalog, params: &CostParams) -> PlanCost {
    match plan {
        WirePlan::Select { table_id, query } => match catalog.table_by_id(*table_id) {
            Some(t) => select_estimate(t, &query.range, params).1,
            None => PlanCost {
                vo_bytes: f64::INFINITY,
                verify_ms: f64::INFINITY,
            },
        },
        WirePlan::PkFkJoin {
            fk_table,
            pk_table,
            fk_range,
            ..
        } => {
            let (Some(ft), Some(pt)) = (
                catalog.table_by_id(*fk_table),
                catalog.table_by_id(*pk_table),
            ) else {
                return PlanCost {
                    vo_bytes: f64::INFINITY,
                    verify_ms: f64::INFINITY,
                };
            };
            let (q_outer, outer_cost) = select_estimate(ft, fk_range, params);
            // Each distinct fk adds one inner entry proof: a chain pair,
            // an attribute proof, and a share of the signature proof —
            // approximated as a one-record select proof on S.
            let m_s = costmodel::paper_m(pt.base, pt.domain.width()).max(1);
            let inner_bytes = costmodel::muser_bytes(params, m_s, 1);
            let inner_ms = costmodel::cuser_ms(params, pt.base, m_s, 1);
            PlanCost {
                vo_bytes: outer_cost.vo_bytes + q_outer as f64 * inner_bytes,
                verify_ms: outer_cost.verify_ms + q_outer as f64 * inner_ms,
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Execution + verification over the wire shapes
// ---------------------------------------------------------------------------

/// An un-encoded planned answer (the server's tamper hook operates here).
#[derive(Clone, Debug)]
pub enum PlanAnswer {
    Select {
        rows: Vec<Record>,
        vo: QueryVO,
    },
    Join {
        result: PkFkJoinResult,
        vo: PkFkJoinVO,
    },
}

/// Why a planned answer could not be produced.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PlanAnswerError {
    UnknownTable(u32),
    Publish(PublishError),
}

impl std::fmt::Display for PlanAnswerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlanAnswerError::UnknownTable(id) => write!(f, "unknown table {id}"),
            PlanAnswerError::Publish(e) => write!(f, "{e}"),
        }
    }
}
impl std::error::Error for PlanAnswerError {}

/// Computes the publisher-side answer to a wire plan. `resolve` maps a
/// wire table id to its signed table.
pub fn compute_plan_answer<'a, F>(
    plan: &WirePlan,
    resolve: F,
) -> Result<PlanAnswer, PlanAnswerError>
where
    F: Fn(u32) -> Option<&'a SignedTable>,
{
    match plan {
        WirePlan::Select { table_id, query } => {
            let st = resolve(*table_id).ok_or(PlanAnswerError::UnknownTable(*table_id))?;
            let (rows, vo) = Publisher::new(st)
                .answer_select(query)
                .map_err(PlanAnswerError::Publish)?;
            Ok(PlanAnswer::Select { rows, vo })
        }
        WirePlan::PkFkJoin {
            fk_table,
            pk_table,
            fk_range,
            fk_projection,
            pk_projection,
        } => {
            let fst = resolve(*fk_table).ok_or(PlanAnswerError::UnknownTable(*fk_table))?;
            let pst = resolve(*pk_table).ok_or(PlanAnswerError::UnknownTable(*pk_table))?;
            let (result, vo) = crate::join::answer_pkfk_join(
                &Publisher::new(fst),
                &Publisher::new(pst),
                *fk_range,
                fk_projection,
                pk_projection,
            )
            .map_err(PlanAnswerError::Publish)?;
            Ok(PlanAnswer::Join { result, vo })
        }
    }
}

/// Encodes a planned answer as the `(result, vo)` byte pair the
/// `PlannedResponse` frame carries.
pub fn encode_plan_answer(answer: &PlanAnswer) -> (Vec<u8>, Vec<u8>) {
    match answer {
        PlanAnswer::Select { rows, vo } => (wire::encode_records(rows), wire::encode_vo(vo)),
        PlanAnswer::Join { result, vo } => {
            (wire::encode_join_result(result), wire::encode_join_vo(vo))
        }
    }
}

/// A verified planned answer: the flat output rows (join pairs are
/// stitched as `outer ++ inner`) plus verification accounting.
#[derive(Clone, Debug)]
pub struct PlanVerified {
    pub rows: Vec<Record>,
    pub rows_verified: usize,
    pub signatures_verified: usize,
}

/// Verifies a planned answer end to end from wire bytes. `cert_of` maps a
/// wire table id to the owner certificate the client trusts.
pub fn verify_plan<'a, F>(
    plan: &WirePlan,
    cert_of: F,
    result_bytes: &[u8],
    vo_bytes: &[u8],
) -> Result<PlanVerified, VerifyError>
where
    F: Fn(u32) -> Option<&'a Certificate>,
{
    let unknown = VerifyError::Unsupported {
        detail: "no certificate for table in plan",
    };
    match plan {
        WirePlan::Select { table_id, query } => {
            let cert = cert_of(*table_id).ok_or(unknown)?;
            let rows =
                wire::decode_records(result_bytes).map_err(|_| VerifyError::VoShapeMismatch {
                    detail: "result bytes malformed",
                })?;
            let vo = wire::decode_vo(vo_bytes).map_err(|_| VerifyError::VoShapeMismatch {
                detail: "VO bytes malformed",
            })?;
            let report = verify_select(cert, query, &rows, &vo)?;
            Ok(PlanVerified {
                rows,
                rows_verified: report.matched,
                signatures_verified: report.signatures_verified,
            })
        }
        WirePlan::PkFkJoin {
            fk_table,
            pk_table,
            fk_range,
            fk_projection,
            pk_projection,
        } => {
            let fk_cert = cert_of(*fk_table).ok_or(unknown.clone())?;
            let pk_cert = cert_of(*pk_table).ok_or(unknown)?;
            let result = wire::decode_join_result(result_bytes).map_err(|_| {
                VerifyError::VoShapeMismatch {
                    detail: "join result bytes malformed",
                }
            })?;
            let vo = wire::decode_join_vo(vo_bytes).map_err(|_| VerifyError::VoShapeMismatch {
                detail: "join VO bytes malformed",
            })?;
            let report = verify_pkfk_join(
                fk_cert,
                pk_cert,
                *fk_range,
                fk_projection,
                pk_projection,
                &result,
                &vo,
            )?;
            let rows = stitch_join_pairs(fk_cert, pk_cert, fk_projection, pk_projection, &result)?;
            Ok(PlanVerified {
                rows,
                rows_verified: report.outer.matched + report.inner_verified,
                signatures_verified: report.outer.signatures_verified,
            })
        }
    }
}

/// Builds the flat `outer ++ inner` pair rows from a verified join result.
fn stitch_join_pairs(
    fk_cert: &Certificate,
    pk_cert: &Certificate,
    fk_projection: &Projection,
    pk_projection: &Projection,
    result: &PkFkJoinResult,
) -> Result<Vec<Record>, VerifyError> {
    let shape_err = VerifyError::VoShapeMismatch {
        detail: "join result rows do not match projections",
    };
    let o_eff = effective_projection(&fk_cert.schema, fk_projection, &[])
        .ok_or_else(|| shape_err.clone())?;
    let i_eff = effective_projection(&pk_cert.schema, pk_projection, &[])
        .ok_or_else(|| shape_err.clone())?;
    let fk_slot = o_eff
        .iter()
        .position(|&i| i == fk_cert.schema.key_index())
        .ok_or_else(|| shape_err.clone())?;
    let pk_slot = i_eff
        .iter()
        .position(|&i| i == pk_cert.schema.key_index())
        .ok_or_else(|| shape_err.clone())?;
    let mut pairs = Vec::with_capacity(result.outer_rows.len());
    for outer in &result.outer_rows {
        let fk = outer
            .values()
            .get(fk_slot)
            .and_then(|v| v.as_int())
            .ok_or_else(|| shape_err.clone())?;
        let inner = result
            .inner_rows
            .iter()
            .find(|r| {
                r.values()
                    .get(pk_slot)
                    .and_then(|v| v.as_int())
                    .map(|k| k == fk)
                    .unwrap_or(false)
            })
            .ok_or_else(|| shape_err.clone())?;
        let mut vals = outer.values().to_vec();
        vals.extend(inner.values().iter().cloned());
        pairs.push(Record::new(vals));
    }
    Ok(pairs)
}

/// The finished, client-visible output of a plan.
#[derive(Clone, Debug)]
pub struct SqlRows {
    pub columns: Vec<String>,
    pub rows: Vec<Record>,
    pub aggregate: Option<(String, AggregateValue)>,
}

impl PhysicalPlan {
    /// Applies the client-side residue (residual predicates, aggregate)
    /// to verified rows.
    pub fn finish(&self, rows: Vec<Record>) -> Result<SqlRows, PlanError> {
        let rows: Vec<Record> = rows
            .into_iter()
            .filter(|r| self.residual.iter().all(|p| p.keeps(r)))
            .collect();
        let aggregate = match &self.aggregate {
            None => None,
            Some(a) => {
                let value = match (a.kind, a.slot) {
                    (AggregateKind::Count, _) => AggregateValue::Count(rows.len() as u64),
                    (_, None) => {
                        return Err(PlanError::Unsupported(
                            "aggregate without a column".to_string(),
                        ))
                    }
                    (kind, Some(slot)) => {
                        let mut vals = Vec::with_capacity(rows.len());
                        for r in &rows {
                            match r.values().get(slot) {
                                Some(Value::Int(v)) => vals.push(*v),
                                _ => {
                                    return Err(PlanError::Unsupported(format!(
                                        "aggregate over non-integer column '{}'",
                                        a.label
                                    )))
                                }
                            }
                        }
                        match kind {
                            AggregateKind::Count => unreachable!(),
                            AggregateKind::Sum => AggregateValue::Sum(vals.iter().sum()),
                            AggregateKind::Min => AggregateValue::Min(vals.iter().min().copied()),
                            AggregateKind::Max => AggregateValue::Max(vals.iter().max().copied()),
                            AggregateKind::Avg => AggregateValue::Avg(if vals.is_empty() {
                                None
                            } else {
                                Some(vals.iter().sum::<i64>() as f64 / vals.len() as f64)
                            }),
                        }
                    }
                };
                Some((a.label.clone(), value))
            }
        };
        Ok(SqlRows {
            columns: self.columns.clone(),
            rows,
            aggregate,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sql::parse;
    use adp_relation::{Column, ValueType};

    fn catalog() -> Catalog {
        let schema = Schema::new(
            vec![
                Column::new("salary", ValueType::Int),
                Column::new("dept", ValueType::Text),
            ],
            "salary",
        );
        let mut c = Catalog::new();
        c.add(CatalogTable {
            name: "emp".to_string(),
            id: 3,
            schema,
            domain: Domain::new(0, 100_000),
            rows: 1000,
            base: 2,
            fk_into: None,
        });
        c
    }

    #[test]
    fn lower_produces_naive_full_scan() {
        let stmt =
            parse("SELECT * FROM emp WHERE salary BETWEEN 10 AND 99 AND dept = 'a'").unwrap();
        let plan = lower(&stmt, &catalog()).unwrap();
        let Plan::Filter { input, predicates } = &plan else {
            panic!("want filter, got {plan}")
        };
        assert_eq!(predicates.len(), 3);
        assert_eq!(
            **input,
            Plan::Scan {
                table: "emp".to_string(),
                range: KeyRange::all()
            }
        );
    }

    #[test]
    fn physical_splits_residual_from_filters() {
        let stmt = parse("SELECT * FROM emp WHERE salary >= 10 AND dept = 'a'").unwrap();
        let cat = catalog();
        let phys = physical(&lower(&stmt, &cat).unwrap(), &cat).unwrap();
        let WirePlan::Select { table_id, query } = &phys.wire else {
            panic!()
        };
        assert_eq!(*table_id, 3);
        assert_eq!(query.range, KeyRange::all());
        assert_eq!(query.filters.len(), 1);
        assert_eq!(phys.residual.len(), 1);
    }

    #[test]
    fn wire_plan_roundtrip() {
        let plans = [
            WirePlan::Select {
                table_id: 7,
                query: SelectQuery::range(KeyRange::closed(2000, 9000)),
            },
            WirePlan::PkFkJoin {
                fk_table: 1,
                pk_table: 2,
                fk_range: KeyRange::at_least(5),
                fk_projection: Projection::All,
                pk_projection: Projection::Columns(vec!["price".to_string()]),
            },
        ];
        for p in &plans {
            let bytes = encode_wire_plan(p);
            assert_eq!(&decode_wire_plan(&bytes).unwrap(), p);
        }
        assert!(decode_wire_plan(&[9]).is_err());
        let mut trailing = encode_wire_plan(&plans[0]);
        trailing.push(0);
        assert!(decode_wire_plan(&trailing).is_err());
    }

    #[test]
    fn narrower_range_estimates_cheaper() {
        let cat = catalog();
        let narrow = WirePlan::Select {
            table_id: 3,
            query: SelectQuery::range(KeyRange::closed(10, 99)),
        };
        let wide = WirePlan::Select {
            table_id: 3,
            query: SelectQuery::range(KeyRange::all()),
        };
        let params = CostParams::default();
        let cn = estimate_cost(&narrow, &cat, &params);
        let cw = estimate_cost(&wide, &cat, &params);
        assert!(
            cn.score() < cw.score(),
            "narrow {:?} should beat wide {:?}",
            cn,
            cw
        );
    }
}
