//! **Figure 9** reproduction: user traffic overhead (%) vs record size, for
//! result sizes |Q| ∈ {1, 2, 5, 10, 100}.
//!
//! Two panels:
//! 1. the paper's analytic formula (4) with Table 1 constants — the exact
//!    curves of Figure 9;
//! 2. measured: real VO byte sizes produced by this implementation (wire
//!    encoding, 128-bit digests, 1024-bit aggregated signature) divided by
//!    the encoded result bytes.
//!
//! Expected shape (the paper's reading): overhead drops sharply as |Q|
//! grows beyond 1 — the single aggregated signature amortizes — and
//! stabilizes around |Q| = 5; larger records dilute the per-entry digests.

use adp_bench::{bench_owner, f2, TablePrinter, WorkloadSpec};
use adp_core::costmodel::{self, CostParams, FIG9_RESULT_SIZES};
use adp_core::prelude::*;
use adp_core::wire;
use adp_relation::{KeyRange, SelectQuery};

fn main() {
    let params = CostParams::default();
    let m = 32; // 4-byte integer keys, B = 2 (the paper's running setting)

    println!("\n=== Figure 9 (analytic, formula (4), m = 32) ===");
    println!("traffic overhead % = M_user / (|Q| * M_r) * 100\n");
    let headers: Vec<String> = std::iter::once("M_r (bytes)".to_string())
        .chain(FIG9_RESULT_SIZES.iter().map(|q| format!("|Q|={q}")))
        .collect();
    let t = TablePrinter::new(&headers.iter().map(String::as_str).collect::<Vec<_>>());
    for row in costmodel::figure9(&params, m) {
        if ![64, 128, 256, 512, 1024, 1536, 2048].contains(&(row.record_bytes as i64)) {
            continue;
        }
        let mut cells = vec![row.record_bytes.to_string()];
        cells.extend(row.overhead_pct.iter().map(|v| f2(*v)));
        t.row(&cells.iter().map(String::as_str).collect::<Vec<_>>());
    }

    println!("\n=== Figure 9 (measured: encoded VO bytes / encoded result bytes) ===\n");
    let owner = bench_owner(); // 1024-bit signatures, matching M_sign
    let t = TablePrinter::new(&headers.iter().map(String::as_str).collect::<Vec<_>>());
    for target_mr in [64usize, 256, 512, 1024, 2048] {
        // Size the payload so the encoded record is ≈ target_mr bytes.
        // Fixed overhead: k (9) + grp (9) + payload framing (5) + record
        // framing in the result encoding (4).
        let payload = target_mr.saturating_sub(27).max(1);
        let (st, cert) = WorkloadSpec::new(120)
            .payload(payload)
            .signed(owner, SchemeConfig::default());
        let publisher = Publisher::new(&st);
        let domain = *st.domain();
        let mut cells = vec![target_mr.to_string()];
        for &q in &FIG9_RESULT_SIZES {
            let beta = domain.key_min() + (q as i64 - 1) * 10;
            let query = SelectQuery::range(KeyRange::closed(domain.key_min(), beta));
            let (result, vo) = publisher.answer_select(&query).unwrap();
            assert_eq!(result.len() as u64, q, "workload selectivity");
            let report = verify_select(&cert, &query, &result, &vo).unwrap();
            assert_eq!(report.matched as u64, q);
            let vo_bytes = wire::encode_vo(&vo).len();
            let result_bytes = wire::encode_records(&result).len();
            cells.push(f2(100.0 * vo_bytes as f64 / result_bytes as f64));
        }
        t.row(&cells.iter().map(String::as_str).collect::<Vec<_>>());
    }
    println!(
        "\nShape check (both panels): overhead falls rapidly with |Q| (aggregated\n\
         signature amortized), stabilizing near |Q| = 5; larger records reduce\n\
         relative overhead. Measured values differ from analytic by the wire\n\
         framing bytes and the real (not worst-case) boundary-proof sizes.\n"
    );
}
