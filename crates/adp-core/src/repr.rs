//! Base-`B` digit representations of chain exponents (Section 5.1).
//!
//! Any `δ ∈ [0, U-L)` is written `δ = δ_0 + δ_1·B + … + δ_m·B^m`. The
//! *canonical* representation has `0 ≤ δ_i < B`. The owner additionally
//! commits to `m` *preferred non-canonical* representations `^jδ_t`
//! (0 ≤ j < m), which "borrow" from digit `j+1` to inflate digits `0..=j`:
//!
//! ```text
//! ^jδ:  δ_0 + B,  δ_1 + B-1, …, δ_j + B-1,  δ_{j+1} - 1,  δ_{j+2}, …, δ_m
//! ```
//!
//! (for `j = 0` only `δ_0 + B` and `δ_1 - 1` change). A representation is
//! *valid* iff no digit is negative, i.e. iff `δ_{j+1} ≥ 1`.
//!
//! Why this matters: the publisher must hand the user digit-wise
//! intermediate digests `h^{δ_{e,i}}(r|i)` such that extending digit `i` by
//! the canonical digit `δ_{c,i}` of `δ_c = U - α` lands exactly on a
//! representation of `δ_t = U - r - 1` that the owner committed to. When
//! some canonical digit of `δ_t` is smaller than the corresponding digit of
//! `δ_c`, the canonical target is unreachable (chains cannot be walked
//! backwards), so the publisher steers the user toward a preferred
//! non-canonical representation. The paper's Lemma guarantees a suitable
//! one exists whenever `δ_c ≤ δ_t`; [`Radix::select_representation`]
//! implements the constructive choice.

/// A base-`B`, `m+1`-digit positional system covering a domain width.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Radix {
    base: u32,
    /// Highest digit index `m`; digits are `0..=m`.
    m: u32,
}

impl Radix {
    /// Builds the radix for domain width `width` (all `δ < width` must be
    /// representable): the smallest `m` with `B^{m+1} ≥ width`.
    ///
    /// # Panics
    /// If `base < 2`.
    pub fn for_width(base: u32, width: u64) -> Self {
        assert!(base >= 2, "base B must be > 1");
        let mut m = 0u32;
        let mut cap = base as u128;
        while cap < width as u128 {
            cap *= base as u128;
            m += 1;
        }
        Radix { base, m }
    }

    /// The base `B`.
    pub fn base(&self) -> u32 {
        self.base
    }

    /// The highest digit index `m` (`m + 1` digits total).
    pub fn m(&self) -> u32 {
        self.m
    }

    /// Number of digits (`m + 1`).
    pub fn digit_count(&self) -> usize {
        self.m as usize + 1
    }

    /// Canonical digits of `δ`, least significant first, exactly
    /// `m + 1` entries.
    ///
    /// # Panics
    /// If `δ` does not fit in `m + 1` digits.
    pub fn canonical(&self, delta: u64) -> Vec<u32> {
        let mut digits = vec![0u32; self.digit_count()];
        let mut rest = delta as u128;
        let b = self.base as u128;
        for d in digits.iter_mut() {
            *d = (rest % b) as u32;
            rest /= b;
        }
        assert_eq!(
            rest,
            0,
            "delta {delta} does not fit in {} base-{} digits",
            self.digit_count(),
            self.base
        );
        digits
    }

    /// Reassembles a digit vector into its value (digits may exceed `B`;
    /// that is the point of non-canonical representations).
    pub fn value_of(&self, digits: &[u32]) -> u64 {
        let b = self.base as u128;
        let mut acc: u128 = 0;
        let mut pow: u128 = 1;
        for &d in digits {
            acc += d as u128 * pow;
            pow *= b;
        }
        acc as u64
    }

    /// The `j`-th preferred non-canonical representation of the value with
    /// the given canonical digits, as *owner-side* digits: entry `j+1` is
    /// `None` when the representation is invalid (`δ_{j+1} = 0`), meaning
    /// that component is dropped from the digest (Figure 7's handling).
    ///
    /// # Panics
    /// If `j >= m`.
    pub fn preferred(&self, canonical: &[u32], j: u32) -> Vec<Option<u32>> {
        assert!(j < self.m, "preferred representations are indexed 0..m");
        let b = self.base;
        let mut out: Vec<Option<u32>> = canonical.iter().map(|&d| Some(d)).collect();
        out[0] = Some(canonical[0] + b);
        for i in 1..=j as usize {
            out[i] = Some(canonical[i] + b - 1);
        }
        let borrow_idx = j as usize + 1;
        out[borrow_idx] = canonical[borrow_idx].checked_sub(1);
        out
    }

    /// Whether the `j`-th preferred representation is valid for these
    /// canonical digits.
    pub fn preferred_is_valid(&self, canonical: &[u32], j: u32) -> bool {
        canonical[j as usize + 1] >= 1
    }

    /// Publisher-side choice of the representation `Δ_t` of `δ_t` that the
    /// user can reach by extending digit-wise from `δ_e = Δ_t - δ_c`
    /// (Figure 8a). Requires `δ_c ≤ δ_t`.
    ///
    /// Returns the choice and the per-digit evidence exponents `δ_{e,i}`.
    pub fn select_representation(&self, delta_t: u64, delta_c: u64) -> (ReprChoice, Vec<u32>) {
        assert!(delta_c <= delta_t, "selection requires δ_c ≤ δ_t");
        let t = self.canonical(delta_t);
        let c = self.canonical(delta_c);
        // Fast path: canonical digits dominate.
        if t.iter().zip(&c).all(|(a, b)| a >= b) {
            let e: Vec<u32> = t.iter().zip(&c).map(|(a, b)| a - b).collect();
            return (ReprChoice::Canonical, e);
        }
        // The Lemma's i_max: the largest i where the length-(i+1) prefix of
        // δ_t is numerically smaller than that of δ_c. Starting there,
        // advance until the representation is valid and all evidence digits
        // are non-negative (the analysis shows the first i_max already
        // works; the loop mirrors the paper's "increment i_max until
        // valid" wording defensively).
        let mut imax = None;
        let mut pt: u128 = 0;
        let mut pc: u128 = 0;
        let mut pow: u128 = 1;
        for i in 0..self.digit_count() - 1 {
            pt += t[i] as u128 * pow;
            pc += c[i] as u128 * pow;
            pow *= self.base as u128;
            if pt < pc {
                imax = Some(i as u32);
            }
        }
        let start = imax.expect("some prefix must be smaller when canonical does not dominate");
        for j in start..self.m {
            if !self.preferred_is_valid(&t, j) {
                continue;
            }
            let rep = self.preferred(&t, j);
            let evidence: Option<Vec<u32>> = rep
                .iter()
                .zip(&c)
                .map(|(r, cd)| r.and_then(|r| r.checked_sub(*cd)))
                .collect();
            if let Some(e) = evidence {
                debug_assert_eq!(self.value_of(&e) + delta_c, delta_t);
                return (ReprChoice::NonCanonical(j), e);
            }
        }
        unreachable!("the Lemma guarantees a valid representation exists for δ_c ≤ δ_t")
    }

    /// User-side reconstruction of the digits of `Δ_t` from the canonical
    /// digits of `δ_c` and the evidence digits `δ_e` (user computes
    /// `Δ_{t,i} = δ_{e,i} + δ_{c,i}` by extending each chain).
    pub fn target_digits(&self, evidence: &[u32], delta_c: u64) -> Vec<u32> {
        let c = self.canonical(delta_c);
        evidence.iter().zip(&c).map(|(e, c)| e + c).collect()
    }
}

/// Which representation of `δ_t` the publisher steered the user toward.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReprChoice {
    Canonical,
    /// `^jδ_t` for this `j`.
    NonCanonical(u32),
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn radix_sizing() {
        // 2^{m+1} >= 2^32 → m = 31 for width exactly 2^32.
        assert_eq!(Radix::for_width(2, 1u64 << 32).m(), 31);
        // The paper speaks of m = log_B 2^32 = 32 for B = 2; width 2^32 + ε
        // indeed needs m = 32.
        assert_eq!(Radix::for_width(2, (1u64 << 32) + 5).m(), 32);
        assert_eq!(Radix::for_width(10, 100_000).m(), 4);
        assert_eq!(Radix::for_width(10, 10).m(), 0);
        assert_eq!(Radix::for_width(2, u64::MAX).m(), 63);
    }

    #[test]
    fn canonical_roundtrip() {
        let r = Radix::for_width(10, 100_000);
        assert_eq!(r.canonical(5555), vec![5, 5, 5, 5, 0]);
        assert_eq!(r.value_of(&r.canonical(98_765)), 98_765);
        assert_eq!(r.canonical(0), vec![0; 5]);
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn overflow_rejected() {
        let r = Radix::for_width(10, 100);
        let _ = r.canonical(100);
    }

    #[test]
    fn paper_preferred_example() {
        // Section 5.1 running example: δ_t = 5555, B = 10.
        // δ_c = 2828 forces a non-canonical representation; the paper picks
        // δ_e = 7 + 12·10 + 6·10² + 2·10³ so the user derives
        // 5555 = 15 + 14·10 + 14·10² + 4·10³.
        let r = Radix::for_width(10, 10_000);
        assert_eq!(r.m(), 3);
        let (choice, e) = r.select_representation(5555, 2828);
        assert_eq!(choice, ReprChoice::NonCanonical(2));
        assert_eq!(e, vec![7, 12, 6, 2]);
        let target = r.target_digits(&e, 2828);
        assert_eq!(target, vec![15, 14, 14, 4]);
        assert_eq!(r.value_of(&target), 5555);
    }

    #[test]
    fn paper_canonical_example() {
        // δ_c = 1 + 2·10 + 3·10² + 4·10³ = 4321 dominates digit-wise:
        // δ_e = 4 + 3·10 + 2·10² + 1·10³.
        let r = Radix::for_width(10, 10_000);
        let (choice, e) = r.select_representation(5555, 4321);
        assert_eq!(choice, ReprChoice::Canonical);
        assert_eq!(e, vec![4, 3, 2, 1]);
        assert_eq!(r.target_digits(&e, 4321), vec![5, 5, 5, 5]);
    }

    #[test]
    fn preferred_digit_shapes() {
        // Canonical 3 + 2·B + 0·B² + 3·B³ (B=10): the paper's invalidity
        // example — ^1δ is invalid because δ_2 - 1 < 0.
        let r = Radix::for_width(10, 10_000);
        let canon = r.canonical(3 + 2 * 10 + 3 * 1000);
        assert!(r.preferred_is_valid(&canon, 0));
        assert!(!r.preferred_is_valid(&canon, 1));
        assert!(r.preferred_is_valid(&canon, 2));
        // ^0δ: [3+10, 2-1, 0, 3]
        assert_eq!(
            r.preferred(&canon, 0),
            vec![Some(13), Some(1), Some(0), Some(3)]
        );
        // ^1δ: [3+10, 2+9, None, 3] (dropped component).
        assert_eq!(
            r.preferred(&canon, 1),
            vec![Some(13), Some(11), None, Some(3)]
        );
        // ^2δ: [3+10, 2+9, 0+9, 3-1]
        assert_eq!(
            r.preferred(&canon, 2),
            vec![Some(13), Some(11), Some(9), Some(2)]
        );
    }

    #[test]
    fn preferred_preserves_value() {
        let r = Radix::for_width(7, 100_000);
        for delta in [0u64, 1, 6, 7, 48, 343, 99_999, 12_345] {
            let canon = r.canonical(delta);
            for j in 0..r.m() {
                if !r.preferred_is_valid(&canon, j) {
                    continue;
                }
                let rep: Vec<u32> = r
                    .preferred(&canon, j)
                    .into_iter()
                    .map(Option::unwrap)
                    .collect();
                assert_eq!(r.value_of(&rep), delta, "delta={delta} j={j}");
            }
        }
    }

    #[test]
    fn selection_exhaustive_small() {
        // For every δ_c ≤ δ_t in a small space, the selected representation
        // must (a) have non-negative evidence digits, (b) reconstruct δ_t,
        // and (c) for non-canonical choices, be a valid preferred rep.
        for base in [2u32, 3, 10] {
            let width = 200u64;
            let r = Radix::for_width(base, width);
            for dt in 0..width {
                let canon_t = r.canonical(dt);
                for dc in 0..=dt {
                    let (choice, e) = r.select_representation(dt, dc);
                    assert_eq!(
                        r.value_of(&e) + dc,
                        dt,
                        "B={base} δt={dt} δc={dc} choice={choice:?}"
                    );
                    let target = r.target_digits(&e, dc);
                    match choice {
                        ReprChoice::Canonical => {
                            assert_eq!(target, canon_t);
                        }
                        ReprChoice::NonCanonical(j) => {
                            assert!(r.preferred_is_valid(&canon_t, j));
                            let rep: Vec<u32> = r
                                .preferred(&canon_t, j)
                                .into_iter()
                                .map(Option::unwrap)
                                .collect();
                            assert_eq!(target, rep, "B={base} δt={dt} δc={dc} j={j}");
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn evidence_digit_bounds() {
        // The Lemma's bound: 0 ≤ δ_{e,i} < 2B.
        for base in [2u32, 5] {
            let r = Radix::for_width(base, 500);
            for dt in 0..500u64 {
                for dc in (0..=dt).step_by(7) {
                    let (_, e) = r.select_representation(dt, dc);
                    for (i, &d) in e.iter().enumerate() {
                        assert!(d < 2 * base, "B={base} δt={dt} δc={dc} digit {i} = {d}");
                    }
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "δ_c ≤ δ_t")]
    fn selection_requires_order() {
        let r = Radix::for_width(2, 100);
        let _ = r.select_representation(5, 6);
    }
}
