//! **Comparison across schemes** (Sections 2.3 and 6.1): the signature
//! chain vs Devanbu et al. [10], Ma et al. [13], and the VB-tree [20], on
//! one workload.
//!
//! Reported per scheme and result size: VO bytes, verification wall time,
//! whether completeness is verifiable, precision violations (out-of-range
//! boundary tuples exposed), projection support, and the owner's
//! dissemination size.

use adp_baselines::{devanbu, ma, vbtree};
use adp_bench::{bench_owner_small, ms, TablePrinter, WorkloadSpec};
use adp_core::prelude::*;
use adp_core::wire;
use adp_crypto::Hasher;
use adp_relation::{KeyRange, SelectQuery};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

const N: usize = 5_000;

fn main() {
    println!("\n=== Scheme comparison ({N}-row table, 100-byte payload) ===\n");
    let spec = WorkloadSpec::new(N).payload(100);
    let owner = bench_owner_small();

    // Publish under all four schemes.
    let (st, cert) = spec.signed(owner, SchemeConfig::default());
    let publisher = Publisher::new(&st);
    let domain = *st.domain();

    let (table, _) = spec.build();
    let mut kp_rng = StdRng::seed_from_u64(0xC09);
    let keypair = adp_crypto::Keypair::generate(512, &mut kp_rng);
    let mht = devanbu::MhtTable::publish(&keypair, Hasher::default(), table.clone());
    let mht_cert = mht.certificate();
    let ma_table = ma::MaTable::publish(&keypair, Hasher::default(), table.clone());
    let ma_cert = ma_table.certificate();
    let vb = vbtree::VbTree::publish(&keypair, Hasher::default(), 64, table.clone());
    let vb_cert = vb.certificate();

    println!("Owner dissemination (signatures shipped to the publisher):");
    let t = TablePrinter::new(&["scheme", "bytes", "signatures"]);
    t.row(&[
        "sig-chain",
        &st.dissemination_size().to_string(),
        &(N + 2).to_string(),
    ]);
    t.row(&["devanbu-mht", &mht.dissemination_size().to_string(), "1"]);
    t.row(&[
        "ma-aggregate",
        &ma_table.dissemination_size().to_string(),
        &N.to_string(),
    ]);
    t.row(&[
        "vb-tree",
        &vb.dissemination_size().to_string(),
        &(vb.dissemination_size() / 64).to_string(),
    ]);

    for q in [5usize, 50, 500] {
        // Interior range so both boundary tuples exist for Devanbu.
        let alpha = domain.key_min() + 1_000;
        let beta = alpha + (q as i64 - 1) * 10;
        let range = KeyRange::closed(alpha, beta);
        println!("\n--- |Q| = {q} (range [{alpha}, {beta}]) ---\n");
        let t = TablePrinter::new(&[
            "scheme",
            "VO bytes",
            "verify ms",
            "complete?",
            "rows leaked",
            "projection?",
        ]);

        // Signature chain.
        let query = SelectQuery::range(range);
        let (result, vo) = publisher.answer_select(&query).unwrap();
        assert_eq!(result.len(), q);
        let iters = 5;
        let start = Instant::now();
        for _ in 0..iters {
            verify_select(&cert, &query, &result, &vo).unwrap();
        }
        t.row(&[
            "sig-chain",
            &wire::encode_vo(&vo).len().to_string(),
            &ms(start.elapsed() / iters as u32),
            "yes",
            "0",
            "yes",
        ]);

        // Devanbu.
        let (rows, mvo) = mht.answer_range(&range);
        let start = Instant::now();
        for _ in 0..iters {
            devanbu::verify_range(&mht_cert, 0, &range, &rows, &mvo).unwrap();
        }
        let leaked = mht
            .disclosure_beyond_query(&range, &rows)
            .boundary_rows_exposed;
        t.row(&[
            "devanbu-mht",
            &mvo.wire_size().to_string(),
            &ms(start.elapsed() / iters as u32),
            "yes",
            &leaked.to_string(),
            "no (full tuples)",
        ]);

        // Ma et al.
        let proj: Vec<usize> = (0..3).collect();
        let (ma_rows, ma_vo) = ma_table.answer_range(&range, &proj);
        let start = Instant::now();
        for _ in 0..iters {
            ma::verify_range(&ma_cert, &proj, 3, &ma_rows, &ma_vo).unwrap();
        }
        t.row(&[
            "ma-aggregate",
            &ma_vo.wire_size().to_string(),
            &ms(start.elapsed() / iters as u32),
            "NO",
            "0",
            "yes",
        ]);

        // VB-tree.
        let (vb_rows, vb_vo) = vb.answer_range(&range);
        let start = Instant::now();
        for _ in 0..iters {
            vbtree::verify_range(&vb_cert, &vb_rows, &vb_vo).unwrap();
        }
        t.row(&[
            "vb-tree",
            &vb_vo.wire_size().to_string(),
            &ms(start.elapsed() / iters as u32),
            "NO",
            "0",
            "yes*",
        ]);
    }

    // Demonstrate the completeness gap of the authenticity-only schemes.
    println!("\n--- Omission detection (drop the last row of a 50-row answer) ---\n");
    let range = KeyRange::closed(domain.key_min(), domain.key_min() + 490);
    let t = TablePrinter::new(&["scheme", "omission detected?"]);
    // sig-chain: tampering machinery already proven in the attack tests.
    t.row(&["sig-chain", "yes (signature chain breaks)"]);
    t.row(&["devanbu-mht", "yes (contiguity/boundary check)"]);
    // Ma: answer a narrower range, present as full — verifies fine.
    let proj: Vec<usize> = (0..3).collect();
    let narrower = KeyRange::closed(domain.key_min(), domain.key_min() + 480);
    let (ma_rows, ma_vo) = ma_table.answer_range(&narrower, &proj);
    let ok = ma::verify_range(&ma_cert, &proj, 3, &ma_rows, &ma_vo).is_ok();
    t.row(&[
        "ma-aggregate",
        if ok {
            "NO (passes verification)"
        } else {
            "yes"
        },
    ]);
    let (vb_rows, vb_vo) = vb.answer_range(&narrower);
    let ok = vbtree::verify_range(&vb_cert, &vb_rows, &vb_vo).is_ok();
    t.row(&[
        "vb-tree",
        if ok {
            "NO (passes verification)"
        } else {
            "yes"
        },
    ]);
    let _ = range;
    println!(
        "\n(*) The original VB-tree works at attribute granularity; this\n\
         implementation models record granularity — constants differ,\n\
         capabilities do not.\n"
    );
}
