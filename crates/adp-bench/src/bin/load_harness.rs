//! The PR 6 load snapshot: parks a 10k-connection idle fleet on the epoll
//! server, proves steady-state wakeups and thread count stay flat, then
//! drives an open-loop query load and writes the latency distribution to
//! `BENCH_PR6.json` at the repo root.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p adp-bench --bin load_harness -- \
//!     [--out BENCH_PR6.json] [--label pr6] [--idle-conns 10000] \
//!     [--rate 1000] [--duration-secs 5] [--query-conns 8]
//! ```
//!
//! `ADP_PERF_SAMPLES` (the same knob the other harnesses honor) shortens
//! the measurement window when set to a smoke value: CI runs with
//! `ADP_PERF_SAMPLES=2 --idle-conns 200` so the harness stays exercised
//! without needing a raised fd limit or burning minutes.
//!
//! See `docs/PERFORMANCE.md` for how to read the snapshot.

use adp_bench::load::{render_json, run, LoadConfig};
use std::time::Duration;

fn main() {
    // Hidden helper mode the harness re-execs itself in when the fd limit
    // cannot hold both ends of every idle connection in one process.
    let raw: Vec<String> = std::env::args().skip(1).collect();
    if raw.first().map(String::as_str) == Some("--flood") {
        adp_bench::load::flood_main(&raw[1..]).expect("flood helper failed");
        return;
    }

    let mut out_path = "BENCH_PR6.json".to_string();
    let mut label = "pr6".to_string();
    let mut cfg = LoadConfig::default();
    if adp_bench::perf_samples() <= 2 {
        cfg.duration = Duration::from_secs(1);
    }
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{flag} needs a value"))
        };
        match arg.as_str() {
            "--out" => out_path = value("--out"),
            "--label" => label = value("--label"),
            "--idle-conns" => cfg.idle_connections = value("--idle-conns").parse().unwrap(),
            "--rate" => cfg.rate_per_sec = value("--rate").parse().unwrap(),
            "--duration-secs" => {
                cfg.duration = Duration::from_secs_f64(value("--duration-secs").parse().unwrap())
            }
            "--query-conns" => cfg.query_connections = value("--query-conns").parse().unwrap(),
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }

    let report = run(&cfg).expect("load run failed");
    eprintln!(
        "idle fleet   {} held / {} target, {} wakeups over {:?}, {} threads",
        report.idle_held,
        report.idle_target,
        report.steady_wakeups,
        report.steady_window,
        report.threads,
    );
    let o = &report.open_loop;
    eprintln!(
        "open loop    {:.0} rps offered / {:.0} achieved, {} ok / {} err",
        o.offered_rps, o.achieved_rps, o.completed, o.errors
    );
    eprintln!(
        "latency      p50 {} us, p90 {} us, p99 {} us, max {} us",
        o.p50_us, o.p90_us, o.p99_us, o.max_us
    );
    assert_eq!(
        report.steady_wakeups, 0,
        "idle connections must not wake the reactor"
    );

    std::fs::write(&out_path, render_json(&report, &label)).expect("write snapshot");
    eprintln!("wrote {out_path}");
}
