//! The Devanbu et al. \[10\] Merkle-hash-tree baseline ("Authentic Data
//! Publication over the Internet", IFIP 11.3 2000) — the only prior scheme
//! with completeness verification, and the paper's main comparator.
//!
//! Construction: the owner builds one Merkle tree over the table (sorted on
//! the query attribute; one tree **per sort order**, limitation 1 in the
//! paper's Section 2.3) and signs the root. To answer a range query
//! `[α, β]` the publisher returns the *expanded* result — the qualifying
//! rows **plus the two rows immediately outside the range** (limitation 4:
//! boundary exposure) with **all columns** (limitation 3: no projection) —
//! together with the fringe digests needed to recompute the root and the
//! signed root digest (limitation 2: the VO grows logarithmically with the
//! table).
//!
//! Updates recompute the leaf-to-root digest path and re-sign the root
//! (the Section 6.3 contention hot-spot).
//!
//! The implementation is honest and complete so the comparison benches
//! measure a real system, not a strawman.

use adp_crypto::{
    root_from_range, Digest, HashDomain, Hasher, Keypair, MerkleTree, PublicKey, RangeProofNode,
    Signature,
};
use adp_relation::{KeyRange, Record, Table};

/// Leaf encoding: hash of the full record (all columns — the scheme cannot
/// project).
fn leaf_digest(hasher: &Hasher, record: &Record) -> Digest {
    let bytes = crate::wirecompat::encode_record(record);
    hasher.hash(HashDomain::Leaf, &bytes)
}

/// A table published under the Devanbu scheme.
pub struct MhtTable {
    table: Table,
    tree: MerkleTree,
    root_signature: Signature,
    public_key: PublicKey,
    hasher: Hasher,
    /// Digest-path recomputations performed by updates (for the update
    /// cost experiment).
    pub update_digests_recomputed: std::cell::Cell<u64>,
    /// Root re-signatures performed by updates — every update pays one,
    /// which is the Section 6.3 contention hot-spot.
    pub root_resignatures: std::cell::Cell<u64>,
}

/// What users need to verify results.
#[derive(Clone, Debug)]
pub struct MhtCertificate {
    /// The owner's verification key.
    pub public_key: PublicKey,
    /// The hash configuration the tree was built under.
    pub hasher: Hasher,
    /// Users must know the table cardinality to check range positions.
    pub row_count: usize,
}

/// The VO for a range query.
#[derive(Clone, Debug)]
pub struct MhtRangeVO {
    /// Index of the first returned row in the table's sort order.
    pub lo: u32,
    /// Fringe digests for the contiguous leaf range.
    pub fringe: Vec<RangeProofNode>,
    /// The signed root.
    pub root_signature: Signature,
    /// Encoded bytes of the out-of-range boundary tuples the expansion
    /// ships (accounting only — the tuples themselves travel in the
    /// result vector, but the user never asked for them, so the shared
    /// accounting rule charges them to the VO).
    pub boundary_bytes: u32,
}

impl MhtRangeVO {
    /// Wire size under the shared baseline accounting rule
    /// (`docs/EVALUATION.md` §"VO size accounting"): a 4-byte start
    /// position, a 4-byte fringe count, `4 + 4 + 1 + len` per fringe node
    /// (level, index, length-prefixed digest), `2 + len` for the root
    /// signature, plus the encoded out-of-range boundary tuples.
    pub fn wire_size(&self) -> usize {
        4 + 4
            + self
                .fringe
                .iter()
                .map(|n| 4 + 4 + 1 + n.digest.len())
                .sum::<usize>()
            + 2
            + self.root_signature.byte_len()
            + self.boundary_bytes as usize
    }
}

/// Verification failures for the baseline.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MhtError {
    RootMismatch,
    SignatureInvalid,
    BoundaryMissing,
    NotContiguous,
    EmptyExpansion,
}

impl std::fmt::Display for MhtError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            MhtError::RootMismatch => "reconstructed root does not match",
            MhtError::SignatureInvalid => "root signature invalid",
            MhtError::BoundaryMissing => "boundary tuples do not straddle the range",
            MhtError::NotContiguous => "returned rows are not a contiguous leaf range",
            MhtError::EmptyExpansion => "expanded result cannot be empty",
        };
        f.write_str(s)
    }
}
impl std::error::Error for MhtError {}

impl MhtTable {
    /// Owner-side: builds the tree and signs the root.
    pub fn publish(keypair: &Keypair, hasher: Hasher, table: Table) -> Self {
        let leaves: Vec<Digest> = table
            .rows()
            .iter()
            .map(|r| leaf_digest(&hasher, &r.record))
            .collect();
        let leaves = if leaves.is_empty() {
            // Commit to an explicit empty-table sentinel.
            vec![hasher.hash(HashDomain::Leaf, b"\x00__empty_table__")]
        } else {
            leaves
        };
        let tree = MerkleTree::build(hasher, leaves);
        let root_signature = keypair.sign(&hasher, &tree.root());
        MhtTable {
            table,
            tree,
            root_signature,
            public_key: keypair.public().clone(),
            hasher,
            update_digests_recomputed: std::cell::Cell::new(0),
            root_resignatures: std::cell::Cell::new(0),
        }
    }

    /// The underlying table.
    pub fn table(&self) -> &Table {
        &self.table
    }

    /// The user-facing certificate.
    pub fn certificate(&self) -> MhtCertificate {
        MhtCertificate {
            public_key: self.public_key.clone(),
            hasher: self.hasher,
            row_count: self.table.len(),
        }
    }

    /// Bytes the owner ships: one signature (plus the data).
    pub fn dissemination_size(&self) -> usize {
        self.root_signature.byte_len()
    }

    /// Publisher-side: answers a range query with the boundary-expanded
    /// result (full records!) and the Merkle range proof.
    ///
    /// Returns `(expanded rows, VO)`. The first and last returned rows are
    /// the boundary tuples whenever they exist (i.e. unless the range
    /// touches the table's edge).
    pub fn answer_range(&self, range: &KeyRange) -> (Vec<Record>, MhtRangeVO) {
        let n = self.table.len();
        let (start, end) = self.table.key_range_positions(range.lo, range.hi);
        // Expand by one row on each side (Devanbu's completeness device).
        let lo = start.saturating_sub(1);
        let hi = if end < n { end } else { n.saturating_sub(1) };
        // Note: `end` is exclusive; the row at `end` (if any) is the right
        // boundary tuple. hi is inclusive below.
        let hi = hi.min(n.saturating_sub(1));
        if n == 0 {
            return (
                Vec::new(),
                MhtRangeVO {
                    lo: 0,
                    fringe: self.tree.prove_range(0, 0),
                    root_signature: self.root_signature.clone(),
                    boundary_bytes: 0,
                },
            );
        }
        let rows: Vec<Record> = (lo..=hi)
            .map(|i| self.table.row(i).record.clone())
            .collect();
        let key_idx = self.table.schema().key_index();
        let boundary_bytes: usize = rows
            .iter()
            .filter(|r| {
                r.get(key_idx)
                    .as_int()
                    .map(|k| !range.contains(k))
                    .unwrap_or(true)
            })
            .map(|r| crate::wirecompat::encode_record(r).len())
            .sum();
        let fringe = self.tree.prove_range(lo, hi);
        (
            rows,
            MhtRangeVO {
                lo: lo as u32,
                fringe,
                root_signature: self.root_signature.clone(),
                boundary_bytes: boundary_bytes as u32,
            },
        )
    }

    /// Owner-side update: replace the record at `pos`, recomputing the
    /// digest path and re-signing the root.
    pub fn update_record(&mut self, keypair: &Keypair, pos: usize, record: Record) {
        self.table
            .update_in_place(pos, record)
            .expect("schema-valid update");
        // Rebuild (a real system would update the path in place; the cost
        // accounting below charges only the path, which is what matters
        // for the comparison).
        let path_len = (self.table.len().max(2) as f64).log2().ceil() as u64;
        self.update_digests_recomputed
            .set(self.update_digests_recomputed.get() + path_len);
        self.root_resignatures.set(self.root_resignatures.get() + 1);
        let leaves: Vec<Digest> = self
            .table
            .rows()
            .iter()
            .map(|r| leaf_digest(&self.hasher, &r.record))
            .collect();
        self.tree = MerkleTree::build(self.hasher, leaves);
        self.root_signature = keypair.sign(&self.hasher, &self.tree.root());
    }

    /// Quantifies the precision violations of the expanded answer for a
    /// range query: how many rows and how many attribute values the user
    /// receives that the query did not ask for.
    pub fn disclosure_beyond_query(&self, range: &KeyRange, rows: &[Record]) -> Disclosure {
        let key_idx = self.table.schema().key_index();
        let mut extra_rows = 0usize;
        for r in rows {
            let k = r.get(key_idx).as_int().unwrap_or(i64::MIN);
            if !range.contains(k) {
                extra_rows += 1;
            }
        }
        Disclosure {
            boundary_rows_exposed: extra_rows,
            projection_supported: false,
        }
    }
}

/// Precision-violation report (what the scheme leaks beyond the query).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Disclosure {
    /// Out-of-range boundary tuples handed to the user.
    pub boundary_rows_exposed: usize,
    /// Whether projected-out columns can be withheld (Devanbu: no).
    pub projection_supported: bool,
}

/// User-side verification of a Devanbu range answer.
///
/// Checks: (1) the rows hash to a contiguous leaf range reconstructing the
/// signed root; (2) the expansion straddles the query range (first row
/// below α or at position 0; last row above β or at the last position).
pub fn verify_range(
    cert: &MhtCertificate,
    key_index: usize,
    range: &KeyRange,
    rows: &[Record],
    vo: &MhtRangeVO,
) -> Result<(), MhtError> {
    if cert.row_count == 0 {
        // Empty table: verify the sentinel root.
        let sentinel = cert.hasher.hash(HashDomain::Leaf, b"\x00__empty_table__");
        let root = root_from_range(&cert.hasher, 1, 0, &[sentinel], &vo.fringe)
            .ok_or(MhtError::RootMismatch)?;
        if !cert
            .public_key
            .verify(&cert.hasher, &root, &vo.root_signature)
        {
            return Err(MhtError::SignatureInvalid);
        }
        return if rows.is_empty() {
            Ok(())
        } else {
            Err(MhtError::NotContiguous)
        };
    }
    if rows.is_empty() {
        return Err(MhtError::EmptyExpansion);
    }
    let leaves: Vec<Digest> = rows
        .iter()
        .map(|r| {
            cert.hasher
                .hash(HashDomain::Leaf, &crate::wirecompat::encode_record(r))
        })
        .collect();
    let root = root_from_range(
        &cert.hasher,
        cert.row_count,
        vo.lo as usize,
        &leaves,
        &vo.fringe,
    )
    .ok_or(MhtError::NotContiguous)?;
    if !cert
        .public_key
        .verify(&cert.hasher, &root, &vo.root_signature)
    {
        return Err(MhtError::SignatureInvalid);
    }
    // Boundary conditions.
    let first_key = rows[0]
        .get(key_index)
        .as_int()
        .ok_or(MhtError::BoundaryMissing)?;
    let last_key = rows[rows.len() - 1]
        .get(key_index)
        .as_int()
        .ok_or(MhtError::BoundaryMissing)?;
    let lo_ok = vo.lo == 0 || !range.contains(first_key);
    let hi_pos = vo.lo as usize + rows.len() - 1;
    let hi_ok = hi_pos == cert.row_count - 1 || !range.contains(last_key);
    // The *interior* rows must all be in range only when boundaries are
    // exposed; keys must also be sorted (they come from the sorted table).
    let sorted = rows
        .windows(2)
        .all(|w| w[0].get(key_index).as_int() <= w[1].get(key_index).as_int());
    if !sorted {
        return Err(MhtError::NotContiguous);
    }
    if lo_ok && hi_ok {
        Ok(())
    } else {
        Err(MhtError::BoundaryMissing)
    }
}

/// Extracts the in-range rows from a verified expanded answer (what the
/// user actually wanted).
pub fn strip_expansion(key_index: usize, range: &KeyRange, rows: &[Record]) -> Vec<Record> {
    rows.iter()
        .filter(|r| {
            r.get(key_index)
                .as_int()
                .map(|k| range.contains(k))
                .unwrap_or(false)
        })
        .cloned()
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use adp_relation::{Column, Schema, Value, ValueType};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::sync::OnceLock;

    fn keypair() -> &'static Keypair {
        static K: OnceLock<Keypair> = OnceLock::new();
        K.get_or_init(|| {
            let mut rng = StdRng::seed_from_u64(0xDE7A);
            Keypair::generate(512, &mut rng)
        })
    }

    fn table(n: i64) -> Table {
        let schema = Schema::new(
            vec![
                Column::new("k", ValueType::Int),
                Column::new("v", ValueType::Text),
            ],
            "k",
        );
        let mut t = Table::new("t", schema);
        for i in 0..n {
            t.insert(Record::new(vec![
                Value::Int(i * 10),
                Value::from(format!("r{i}")),
            ]))
            .unwrap();
        }
        t
    }

    #[test]
    fn range_query_verifies() {
        let mht = MhtTable::publish(keypair(), Hasher::default(), table(20));
        let cert = mht.certificate();
        let range = KeyRange::closed(50, 120);
        let (rows, vo) = mht.answer_range(&range);
        verify_range(&cert, 0, &range, &rows, &vo).unwrap();
        // Expanded: rows 40..130 (boundary tuples at 40 and 130).
        assert_eq!(rows.first().unwrap().get(0), &Value::Int(40));
        assert_eq!(rows.last().unwrap().get(0), &Value::Int(130));
        let stripped = strip_expansion(0, &range, &rows);
        assert_eq!(stripped.len(), 8); // 50..=120
        assert_eq!(
            mht.disclosure_beyond_query(&range, &rows)
                .boundary_rows_exposed,
            2
        );
    }

    #[test]
    fn edge_ranges_verify() {
        let mht = MhtTable::publish(keypair(), Hasher::default(), table(10));
        let cert = mht.certificate();
        for range in [
            KeyRange::less_than(30),  // touches the left edge
            KeyRange::at_least(60),   // touches the right edge
            KeyRange::all(),          // whole table
            KeyRange::closed(35, 44), // empty (between rows)
        ] {
            let (rows, vo) = mht.answer_range(&range);
            verify_range(&cert, 0, &range, &rows, &vo)
                .unwrap_or_else(|e| panic!("range {range:?}: {e}"));
        }
    }

    #[test]
    fn omission_detected() {
        let mht = MhtTable::publish(keypair(), Hasher::default(), table(20));
        let cert = mht.certificate();
        let range = KeyRange::closed(50, 120);
        let (mut rows, vo) = mht.answer_range(&range);
        rows.remove(3);
        assert!(verify_range(&cert, 0, &range, &rows, &vo).is_err());
    }

    #[test]
    fn truncation_detected() {
        let mht = MhtTable::publish(keypair(), Hasher::default(), table(20));
        let cert = mht.certificate();
        let range = KeyRange::closed(50, 120);
        let (mut rows, mut vo) = mht.answer_range(&range);
        // Drop the tail including the right boundary; adjust nothing else.
        rows.truncate(rows.len() - 2);
        assert!(verify_range(&cert, 0, &range, &rows, &vo).is_err());
        // Even if the publisher recomputes a fringe for the shorter range,
        // the boundary check fails (last row is in range, not beyond).
        let tree_rows = rows.clone();
        let _ = tree_rows;
        vo.fringe.clear();
        assert!(verify_range(&cert, 0, &range, &rows, &vo).is_err());
    }

    #[test]
    fn tamper_detected() {
        let mht = MhtTable::publish(keypair(), Hasher::default(), table(20));
        let cert = mht.certificate();
        let range = KeyRange::closed(50, 120);
        let (mut rows, vo) = mht.answer_range(&range);
        let mut vals = rows[2].values().to_vec();
        vals[1] = Value::from("evil");
        rows[2] = Record::new(vals);
        assert!(verify_range(&cert, 0, &range, &rows, &vo).is_err());
    }

    #[test]
    fn boundary_exposure_is_inherent() {
        // The HR-executive scenario: the scheme must expose an out-of-range
        // tuple to prove completeness — the motivating flaw of the paper.
        let mht = MhtTable::publish(keypair(), Hasher::default(), table(20));
        let range = KeyRange::less_than(100);
        let (rows, _) = mht.answer_range(&range);
        let disclosure = mht.disclosure_beyond_query(&range, &rows);
        assert_eq!(disclosure.boundary_rows_exposed, 1);
        assert!(!disclosure.projection_supported);
    }

    #[test]
    fn update_recomputes_root_path() {
        let mut mht = MhtTable::publish(keypair(), Hasher::default(), table(100));
        let cert = mht.certificate();
        let new_rec = Record::new(vec![Value::Int(500), Value::from("updated")]);
        mht.update_record(keypair(), 50, new_rec);
        assert_eq!(mht.root_resignatures.get(), 1);
        assert!(mht.update_digests_recomputed.get() >= 7); // ⌈log2 100⌉
                                                           // Queries still verify after the update (row count unchanged, so
                                                           // the certificate stays valid; the signed root was refreshed).
        let range = KeyRange::closed(480, 520);
        let (rows, vo) = mht.answer_range(&range);
        verify_range(&cert, 0, &range, &rows, &vo).unwrap();
    }

    #[test]
    fn empty_table_verifies() {
        let mht = MhtTable::publish(keypair(), Hasher::default(), table(0));
        let cert = mht.certificate();
        let (rows, vo) = mht.answer_range(&KeyRange::all());
        assert!(rows.is_empty());
        verify_range(&cert, 0, &KeyRange::all(), &rows, &vo).unwrap();
    }
}
