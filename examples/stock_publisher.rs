//! The Introduction's motivating deployment: a financial information
//! provider pushes historical stock prices to proxy servers run by partner
//! ISPs. Users run pricing models against the proxies and must be able to
//! check that no trading day was omitted and no price tampered with.
//!
//! Demonstrates: bulk publishing, range scans over a date key, a pk-fk join
//! (prices ⋈ listings), an update stream (owner re-signs locally), and a
//! compromised proxy being caught.
//!
//! Run with: `cargo run --release --example stock_publisher`

use adp::core::join::{answer_pkfk_join, verify_pkfk_join};
use adp::core::prelude::*;
use adp::relation::{
    check_referential_integrity, Column, KeyRange, Projection, Record, Schema, SelectQuery, Table,
    Value, ValueType,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Trading days encoded as days-since-2000 (the sort key).
fn prices_table(rng: &mut StdRng) -> Table {
    let schema = Schema::new(
        vec![
            Column::new("day", ValueType::Int),
            Column::new("ticker_id", ValueType::Int),
            Column::new("close_cents", ValueType::Int),
            Column::new("volume", ValueType::Int),
        ],
        "day",
    );
    let mut t = Table::new("prices", schema);
    let mut price = 15_000i64;
    for day in 0..750i64 {
        // ~3 years of trading days; a few tickers share each day (replica
        // numbers disambiguate).
        for ticker in 0..3i64 {
            price += rng.gen_range(-300..320);
            t.insert(Record::new(vec![
                Value::Int(day),
                Value::Int(ticker + 1),
                Value::Int(price.max(100)),
                Value::Int(rng.gen_range(10_000..5_000_000)),
            ]))
            .unwrap();
        }
    }
    t
}

/// Prices keyed by ticker id (for the join), and the listing master table.
fn tables_for_join(rng: &mut StdRng) -> (Table, Table) {
    let price_schema = Schema::new(
        vec![
            Column::new("ticker_id", ValueType::Int),
            Column::new("day", ValueType::Int),
            Column::new("close_cents", ValueType::Int),
        ],
        "ticker_id",
    );
    let mut by_ticker = Table::new("prices_by_ticker", price_schema);
    for ticker in 1..=5i64 {
        for day in 0..20i64 {
            by_ticker
                .insert(Record::new(vec![
                    Value::Int(ticker),
                    Value::Int(day),
                    Value::Int(rng.gen_range(1_000..90_000)),
                ]))
                .unwrap();
        }
    }
    let listing_schema = Schema::new(
        vec![
            Column::new("ticker_id", ValueType::Int),
            Column::new("symbol", ValueType::Text),
            Column::new("exchange", ValueType::Text),
        ],
        "ticker_id",
    );
    let mut listings = Table::new("listings", listing_schema);
    for (id, sym, ex) in [
        (1i64, "AAAA", "NYSE"),
        (2, "BBBB", "NASDAQ"),
        (3, "CCCC", "NYSE"),
        (4, "DDDD", "LSE"),
        (5, "EEEE", "SGX"),
    ] {
        listings
            .insert(Record::new(vec![
                Value::Int(id),
                Value::from(sym),
                Value::from(ex),
            ]))
            .unwrap();
    }
    (by_ticker, listings)
}

fn main() {
    let mut rng = StdRng::seed_from_u64(0x57_0C_C5);
    let mut owner_rng = StdRng::seed_from_u64(0x0117);
    let owner = Owner::new(1024, &mut owner_rng);

    // ----- Publish the price history ------------------------------------
    let prices = prices_table(&mut rng);
    let n = prices.len();
    let (mut signed, elapsed) = {
        let start = std::time::Instant::now();
        let st = owner
            .sign_table(prices, Domain::new(-2, 100_000), SchemeConfig::default())
            .unwrap();
        (st, start.elapsed())
    };
    let cert = owner.certificate(&signed);
    println!(
        "owner: signed {n} price rows in {:.2}s ({} signatures, {} KiB shipped)",
        elapsed.as_secs_f64(),
        n + 2,
        signed.dissemination_size() / 1024
    );

    // ----- A quarter's window query at the proxy ------------------------
    let q = SelectQuery::range(KeyRange::closed(180, 270)).project(&["day", "close_cents"]);
    let publisher = Publisher::new(&signed);
    let (rows, vo) = publisher.answer_select(&q).unwrap();
    let report = verify_select(&cert, &q, &rows, &vo).unwrap();
    println!(
        "\nproxy: Q2 window (days 180-270) → {} rows; user verified complete ({} sigs)",
        report.matched, report.signatures_verified
    );

    // ----- The owner appends a new trading day --------------------------
    let new_day = 750i64;
    for ticker in 0..3i64 {
        owner
            .insert_record(
                &mut signed,
                Record::new(vec![
                    Value::Int(new_day),
                    Value::Int(ticker + 1),
                    Value::Int(20_000 + ticker),
                    Value::Int(123_456),
                ]),
            )
            .unwrap();
    }
    println!("\nowner: appended day {new_day} (3 rows, 3 re-signs each — no root bottleneck)");
    let publisher = Publisher::new(&signed);
    let q_latest = SelectQuery::range(KeyRange::at_least(new_day));
    let (rows, vo) = publisher.answer_select(&q_latest).unwrap();
    verify_select(&cert, &q_latest, &rows, &vo).unwrap();
    println!("proxy: latest-day query verified ({} rows)", rows.len());

    // ----- Join: prices ⋈ listings --------------------------------------
    let (by_ticker, listings) = tables_for_join(&mut rng);
    check_referential_integrity(&by_ticker, &listings).unwrap();
    let pt = owner
        .sign_table(by_ticker, Domain::new(-2, 1_000), SchemeConfig::default())
        .unwrap();
    let lt = owner
        .sign_table(listings, Domain::new(-2, 1_000), SchemeConfig::default())
        .unwrap();
    let (jr, jvo) = answer_pkfk_join(
        &Publisher::new(&pt),
        &Publisher::new(&lt),
        KeyRange::closed(2, 4),
        &Projection::All,
        &Projection::Columns(vec!["symbol".into()]),
    )
    .unwrap();
    let jreport = verify_pkfk_join(
        &owner.certificate(&pt),
        &owner.certificate(&lt),
        KeyRange::closed(2, 4),
        &Projection::All,
        &Projection::Columns(vec!["symbol".into()]),
        &jr,
        &jvo,
    )
    .unwrap();
    println!(
        "\njoin: σ(ticker 2..4)(prices) ⋈ listings → {} price rows × {} listings, verified",
        jreport.pairs, jreport.inner_verified
    );

    // ----- A compromised proxy -------------------------------------------
    // The adversary rewrites one closing price (insider shenanigans).
    let q_probe = SelectQuery::range(KeyRange::closed(100, 105));
    let (mut tampered, tvo) = Publisher::new(&signed).answer_select(&q_probe).unwrap();
    let mut vals = tampered[0].values().to_vec();
    vals[2] = Value::Int(1); // the market did not crash
    tampered[0] = Record::new(vals);
    let verdict = verify_select(&cert, &q_probe, &tampered, &tvo);
    println!(
        "\ncompromised proxy rewrites a close price → {:?}",
        verdict.unwrap_err()
    );

    // …and another one silently withholds a whole day.
    let (mut withheld, wvo) = Publisher::new(&signed).answer_select(&q_probe).unwrap();
    withheld.retain(|r| r.get(0).as_int() != Some(103));
    let verdict = verify_select(&cert, &q_probe, &withheld, &wvo);
    println!(
        "compromised proxy withholds day 103 → {:?}",
        verdict.unwrap_err()
    );
}
