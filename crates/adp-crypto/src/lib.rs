//! # adp-crypto
//!
//! Cryptographic substrate for the `adp` authenticated-data-publishing
//! workspace, which reproduces *"Verifying Completeness of Relational Query
//! Results in Data Publishing"* (Pang, Jain, Ramamritham, Tan — SIGMOD
//! 2005).
//!
//! Everything here is implemented from scratch (the offline dependency set
//! contains no cryptography), mirroring the primitives of the paper's
//! Section 2.1:
//!
//! | Paper primitive | Module |
//! |-----------------|--------|
//! | one-way hash `h(.)` | [`sha256`], [`hasher`] |
//! | digital signature `s(.)` | [`rsa`] (needs [`bigint`]) |
//! | signature aggregation | [`aggregate`] (condensed RSA, single signer) |
//! | Merkle hash tree | [`merkle`] |
//! | iterated hash `h^i(r)` (Sections 3.1/5.1) | [`chain`] |
//!
//! ## Security posture
//!
//! This is a research reproduction: the RSA implementation is not hardened
//! against timing side channels and the FDH padding is a textbook
//! construction. It is suitable for studying the protocol's completeness /
//! authenticity guarantees and cost profile — the purpose of this
//! repository — not for protecting production data.

pub mod aggregate;
pub mod bigint;
pub mod chain;
pub mod digest;
pub mod hasher;
pub mod merkle;
pub mod montgomery;
pub mod sha256;

pub use aggregate::AggregateSignature;
pub use bigint::BigUint;
pub use chain::{chain_extend, chain_from_value, chain_run, ChainWalker};
pub use digest::Digest;
pub use hasher::{hash_ops, reset_hash_ops, HashDomain, Hasher};
pub use merkle::{
    root_from_mixed, root_from_range, verify_inclusion, InclusionProof, MerkleTree, MixedLeaf,
    ProofStep, RangeProofNode,
};
pub use montgomery::MontgomeryCtx;
pub use rsa::{Keypair, PublicKey, Signature};

pub mod rsa;
