//! A small CSV reader/writer for the CLI (RFC-4180 subset: quoted fields
//! with `""` escapes, no embedded newlines).

/// Parses one CSV line into fields.
pub fn parse_line(line: &str) -> Result<Vec<String>, String> {
    let mut fields = Vec::new();
    let mut cur = String::new();
    let mut chars = line.chars().peekable();
    loop {
        match chars.peek() {
            None => {
                fields.push(cur);
                return Ok(fields);
            }
            Some('"') => {
                chars.next();
                loop {
                    match chars.next() {
                        None => return Err("unterminated quoted field".into()),
                        Some('"') => {
                            if chars.peek() == Some(&'"') {
                                chars.next();
                                cur.push('"');
                            } else {
                                break;
                            }
                        }
                        Some(c) => cur.push(c),
                    }
                }
                match chars.next() {
                    None => {
                        fields.push(cur);
                        return Ok(fields);
                    }
                    Some(',') => {
                        fields.push(std::mem::take(&mut cur));
                    }
                    Some(c) => return Err(format!("unexpected '{c}' after quoted field")),
                }
            }
            Some(_) => {
                loop {
                    match chars.peek() {
                        None | Some(',') => break,
                        _ => cur.push(chars.next().unwrap()),
                    }
                }
                if chars.peek() == Some(&',') {
                    chars.next();
                    fields.push(std::mem::take(&mut cur));
                } else {
                    fields.push(std::mem::take(&mut cur));
                    return Ok(fields);
                }
            }
        }
    }
}

/// Quotes a field if needed.
pub fn write_field(f: &str) -> String {
    if f.contains(',') || f.contains('"') {
        format!("\"{}\"", f.replace('"', "\"\""))
    } else {
        f.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_fields() {
        assert_eq!(parse_line("a,b,c").unwrap(), vec!["a", "b", "c"]);
        assert_eq!(parse_line("").unwrap(), vec![""]);
        assert_eq!(parse_line("x").unwrap(), vec!["x"]);
        assert_eq!(parse_line("a,,c").unwrap(), vec!["a", "", "c"]);
        assert_eq!(parse_line("a,b,").unwrap(), vec!["a", "b", ""]);
    }

    #[test]
    fn quoted_fields() {
        assert_eq!(parse_line("\"a,b\",c").unwrap(), vec!["a,b", "c"]);
        assert_eq!(
            parse_line("\"he said \"\"hi\"\"\"").unwrap(),
            vec!["he said \"hi\""]
        );
        assert_eq!(parse_line("a,\"\"").unwrap(), vec!["a", ""]);
    }

    #[test]
    fn errors() {
        assert!(parse_line("\"open").is_err());
        assert!(parse_line("\"x\"y").is_err());
    }

    #[test]
    fn writer_roundtrip() {
        for f in ["plain", "with,comma", "with\"quote", ""] {
            let line = write_field(f);
            assert_eq!(parse_line(&line).unwrap(), vec![f.to_string()]);
        }
    }
}
