//! The publisher wire protocol: length-prefixed frames layered on the
//! [`adp_core::wire`] codec.
//!
//! Every frame starts with an 8-byte header:
//!
//! ```text
//! offset  size  field
//! 0       2     magic  0xAD 0x50
//! 2       1     protocol version (currently 0x05)
//! 3       1     frame type
//! 4       4     payload length, u32 little-endian (max 64 MiB)
//! ```
//!
//! followed by `payload length` bytes encoded with the same primitives as
//! the VO codec (`u32` little-endian lengths, tagged unions, canonical
//! value encodings). The full byte-level specification with worked
//! examples lives in `docs/PROTOCOL.md`; the examples there are asserted
//! verbatim by `tests/protocol_doc_examples.rs`.
//!
//! Decoding is defensive on both sides: the server treats request bytes as
//! adversarial (bounds-checked lengths, tag validation, a hard payload
//! cap *checked before allocation*), and the client treats response bytes
//! the same way — a malicious publisher controls them.

use adp_core::plan::{decode_wire_plan, encode_wire_plan, WirePlan};
use adp_core::wire::{self, Reader, WireError, Writer};
use adp_relation::SelectQuery;
use std::fmt;
use std::io::{self, Read, Write};

/// The two magic bytes opening every frame.
pub const MAGIC: [u8; 2] = [0xAD, 0x50];

/// Protocol version spoken by this implementation. A server receiving any
/// other version byte answers with an [`ErrorCode::BadFrame`] error frame
/// and closes the connection.
///
/// Version history (see `docs/PROTOCOL.md` §9): `0x01` shipped seven
/// stats counters; `0x02` appended the `invalidations` counter to
/// `StatsResponse` (the VO cache is no longer static — live updates bump
/// per-table epochs and stale entries are dropped lazily); `0x03` added
/// the connection-lifecycle gauges (`open_connections`, `queue_depth`,
/// `idle_reaped`) that the event-driven server core exports; `0x04` added
/// verified subscriptions — the log-shipping frames (`FollowLog`,
/// `LogSegment`, `Snapshot`) that let a follower publisher mirror a
/// table over the wire, the client-facing `Subscribe`/`DeltaVO`/
/// `Unsubscribe` frames that push re-verifiable VO deltas on every epoch
/// bump, and the `subscriptions`/`deltas_pushed` stats fields; `0x05`
/// added the robustness layer — the `ResyncRequired` push (a subscriber
/// whose delta could not be shipped must re-subscribe for a fresh
/// baseline instead of silently stalling) and the
/// `reconnects`/`resyncs`/`drains` stats fields backing the self-healing
/// clients and graceful drain; `0x06` added planned queries — the
/// `PlannedQuery`/`PlannedResponse` frames that carry an optimizer-chosen
/// [`WirePlan`] (joins and narrowed scans the SQL planner produces) to
/// the server and its multi-relation VO back.
pub const VERSION: u8 = 0x06;

/// Fixed header length in bytes.
pub const HEADER_LEN: usize = 8;

/// Hard cap on a frame's payload length, checked before any allocation.
pub const MAX_PAYLOAD: u32 = 1 << 26; // 64 MiB

/// Frame type bytes (header offset 3).
pub mod frame_type {
    /// Liveness probe.
    pub const PING: u8 = 0x01;
    /// Liveness reply.
    pub const PONG: u8 = 0x02;
    /// Single query request.
    pub const QUERY_REQUEST: u8 = 0x03;
    /// Single query answer.
    pub const QUERY_RESPONSE: u8 = 0x04;
    /// Batched query request (one round-trip, N answers).
    pub const BATCH_REQUEST: u8 = 0x05;
    /// Batched query answer.
    pub const BATCH_RESPONSE: u8 = 0x06;
    /// Server statistics request.
    pub const STATS_REQUEST: u8 = 0x07;
    /// Server statistics snapshot.
    pub const STATS_RESPONSE: u8 = 0x08;
    /// Error reply.
    pub const ERROR: u8 = 0x09;
    /// Follower handshake: start shipping a table's update log. New in
    /// version 4.
    pub const FOLLOW_LOG: u8 = 0x0A;
    /// A run of signed update-log records (handshake backlog or live
    /// push). New in version 4.
    pub const LOG_SEGMENT: u8 = 0x0B;
    /// A full signed-table snapshot for follower bootstrap. New in
    /// version 4.
    pub const SNAPSHOT: u8 = 0x0C;
    /// Client subscription request: a table + key range to watch. New in
    /// version 4.
    pub const SUBSCRIBE: u8 = 0x0D;
    /// An incremental, self-verifying VO delta pushed to a subscriber.
    /// New in version 4.
    pub const DELTA_VO: u8 = 0x0E;
    /// Cancel a subscription. New in version 4.
    pub const UNSUBSCRIBE: u8 = 0x0F;
    /// Server → subscriber: the subscription was terminated because a
    /// delta could not be shipped (e.g. it would exceed the frame cap);
    /// the client must re-subscribe for a fresh verified baseline. New
    /// in version 5.
    pub const RESYNC_REQUIRED: u8 = 0x10;
    /// A planned query: an optimizer-chosen wire plan (select or pk-fk
    /// join). New in version 6.
    pub const PLANNED_QUERY: u8 = 0x11;
    /// Answer to a planned query. New in version 6.
    pub const PLANNED_RESPONSE: u8 = 0x12;
}

/// Error codes carried by [`Frame::Error`] and batch error items.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum ErrorCode {
    /// The request frame was malformed or arrived out of protocol.
    BadFrame = 1,
    /// The requested `table_id` is not served here.
    UnknownTable = 2,
    /// The query was rejected by the publisher (bad filter/projection).
    BadQuery = 3,
    /// Internal server failure.
    Internal = 4,
}

impl ErrorCode {
    /// Parses the wire byte.
    pub fn from_byte(b: u8) -> Option<ErrorCode> {
        Some(match b {
            1 => ErrorCode::BadFrame,
            2 => ErrorCode::UnknownTable,
            3 => ErrorCode::BadQuery,
            4 => ErrorCode::Internal,
            _ => return None,
        })
    }
}

impl fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ErrorCode::BadFrame => "bad frame",
            ErrorCode::UnknownTable => "unknown table",
            ErrorCode::BadQuery => "bad query",
            ErrorCode::Internal => "internal error",
        };
        f.write_str(s)
    }
}

/// Aggregate server counters, shipped in [`Frame::StatsResponse`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Connections accepted since start.
    pub connections: u64,
    /// Queries answered (single frames plus batch items).
    pub queries: u64,
    /// Batch frames answered.
    pub batches: u64,
    /// Answers served from the VO cache.
    pub cache_hits: u64,
    /// Answers computed because the cache had no entry.
    pub cache_misses: u64,
    /// Entries currently resident in the VO cache.
    pub cache_entries: u64,
    /// Cached answers dropped because their table's epoch moved on (an
    /// applied update invalidates lazily, on lookup). New in version 2.
    pub invalidations: u64,
    /// Connections currently registered with a reactor shard (a gauge,
    /// not a counter). New in version 3.
    pub open_connections: u64,
    /// Bytes currently queued across all per-connection write queues (a
    /// gauge; backpressure pauses reads once a connection's share exceeds
    /// the configured limit). New in version 3.
    pub queue_depth: u64,
    /// Connections reaped by the idle timeout. New in version 3.
    pub idle_reaped: u64,
    /// Error frames emitted.
    pub errors: u64,
    /// Registry entries currently live — range subscriptions plus log
    /// followers (a gauge, not a counter). New in version 4.
    pub subscriptions: u64,
    /// `DeltaVO` frames pushed to subscribers since start. New in
    /// version 4.
    pub deltas_pushed: u64,
    /// Reconnections observed: follower handshakes that resumed from a
    /// `have` cursor plus subscriber re-registrations of a `sub_id` this
    /// server already saw on an earlier connection. New in version 5.
    pub reconnects: u64,
    /// `ResyncRequired` frames pushed (a subscription terminated because
    /// its delta could not be shipped). New in version 5.
    pub resyncs: u64,
    /// Connections closed by graceful drain: accepted no new work, had
    /// their write queues flushed, then closed. New in version 5.
    pub drains: u64,
}

/// One self-contained piece of a [`Frame::DeltaVo`]: a complete
/// `(result, vo)` answer for the sub-range `[lo, hi]` of the subscribed
/// key range, verifiable with `verify_select_wire` against the query
/// `SelectQuery::range(KeyRange::closed(lo, hi))` and the owner's
/// certificate alone.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DeltaPiece {
    /// Inclusive lower key bound of the refreshed interval.
    pub lo: i64,
    /// Inclusive upper key bound of the refreshed interval.
    pub hi: i64,
    /// `wire::encode_records` bytes for the interval.
    pub result: Vec<u8>,
    /// `wire::encode_vo` bytes for the interval.
    pub vo: Vec<u8>,
}

/// One item of a [`Frame::BatchResponse`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BatchItem {
    /// The query was answered: encoded result records and encoded VO.
    Ok {
        /// `wire::encode_records` bytes.
        result: Vec<u8>,
        /// `wire::encode_vo` bytes.
        vo: Vec<u8>,
    },
    /// The query failed; the rest of the batch is still answered.
    Err {
        /// What went wrong.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
}

/// A protocol frame.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Frame {
    /// Liveness probe; the server answers [`Frame::Pong`].
    Ping,
    /// Reply to [`Frame::Ping`].
    Pong,
    /// Answer one query against the table registered as `table_id`.
    QueryRequest {
        /// Which served table to query.
        table_id: u32,
        /// The select-project(-distinct) query.
        query: SelectQuery,
    },
    /// Answer to [`Frame::QueryRequest`]: both blobs decode with the
    /// `adp_core::wire` codec and feed `verify_select_wire` unchanged.
    QueryResponse {
        /// `wire::encode_records` bytes.
        result: Vec<u8>,
        /// `wire::encode_vo` bytes.
        vo: Vec<u8>,
    },
    /// Answer N queries in one round-trip; the server fans the items out
    /// across its thread pool and replies in request order.
    BatchRequest {
        /// `(table_id, query)` per item.
        items: Vec<(u32, SelectQuery)>,
    },
    /// Answer to [`Frame::BatchRequest`], one item per request item.
    BatchResponse {
        /// Outcomes in request order.
        items: Vec<BatchItem>,
    },
    /// Ask for the server's counters.
    StatsRequest,
    /// Reply to [`Frame::StatsRequest`].
    StatsResponse(StatsSnapshot),
    /// The request could not be served at all.
    Error {
        /// What went wrong.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
    /// Follower handshake: ship `table_id`'s update log to this
    /// connection. `have = None` asks for a bootstrap [`Frame::Snapshot`];
    /// `have = Some(n)` resumes from log sequence `n` (the follower's
    /// `next_seq`).
    FollowLog {
        /// Which served table to follow.
        table_id: u32,
        /// Resume point: the lowest log sequence the follower still
        /// needs, or `None` for a fresh bootstrap.
        have: Option<u64>,
    },
    /// A run of signed update-log records for a followed table, in the
    /// `adp-store` framed log-record encoding (possibly empty — the
    /// handshake ack when there is no backlog).
    LogSegment {
        /// The followed table.
        table_id: u32,
        /// Concatenated `adp_store::log::encode_record` frames.
        records: Vec<u8>,
    },
    /// A full signed-table snapshot for follower bootstrap, in the
    /// `adp-store` snapshot encoding. The follower authenticates it by
    /// checking the embedded public key against the owner certificate it
    /// already holds and re-running the full signature audit.
    Snapshot {
        /// The followed table.
        table_id: u32,
        /// `adp_store::format::encode_snapshot` bytes.
        snapshot: Vec<u8>,
    },
    /// Register a subscription: push a [`Frame::DeltaVo`] to this
    /// connection whenever an update batch touches `query`'s key range.
    /// The server answers immediately with an initial `DeltaVo` carrying
    /// one piece that covers the whole subscribed range.
    Subscribe {
        /// Client-chosen subscription id, echoed in every `DeltaVo`.
        sub_id: u32,
        /// Which served table to watch.
        table_id: u32,
        /// The watched range. Filters, projections, and DISTINCT are
        /// rejected with [`ErrorCode::BadQuery`] — deltas are raw range
        /// refreshes.
        query: SelectQuery,
    },
    /// An incremental delta pushed to a subscriber: for each key interval
    /// the update batch dirtied (intersected with the subscription
    /// range), one self-contained `(result, vo)` proof. An empty `pieces`
    /// list acknowledges an [`Frame::Unsubscribe`].
    DeltaVo {
        /// The subscription this delta belongs to.
        sub_id: u32,
        /// The table epoch this delta brings the subscriber to.
        epoch: u64,
        /// Refreshed intervals, in ascending key order.
        pieces: Vec<DeltaPiece>,
    },
    /// Cancel the subscription `sub_id`; acknowledged by an empty
    /// [`Frame::DeltaVo`]. No deltas for `sub_id` follow the ack.
    Unsubscribe {
        /// The subscription to cancel.
        sub_id: u32,
    },
    /// Pushed by the server when it had to terminate subscription
    /// `sub_id` without shipping a delta — today, when the delta for one
    /// epoch bump would exceed the frame cap. The subscription is gone
    /// the moment this frame is sent; the client's recovery is to
    /// re-subscribe, which re-verifies a fresh whole-range baseline at
    /// an epoch `>= epoch`. No `DeltaVo` for `sub_id` follows.
    ResyncRequired {
        /// The terminated subscription.
        sub_id: u32,
        /// The epoch whose delta could not be shipped (the subscriber's
        /// verified state is strictly older than this).
        epoch: u64,
    },
    /// Execute an optimizer-chosen plan — a narrowed select or a pk-fk
    /// join the legacy `QueryRequest` frame cannot express. Table ids
    /// inside the plan refer to the server's registry, exactly as in
    /// `QueryRequest`.
    PlannedQuery {
        /// The plan to execute (`adp_core::plan::encode_wire_plan`).
        plan: WirePlan,
    },
    /// Answer to [`Frame::PlannedQuery`]. For a `Select` plan the blobs
    /// are the `QueryResponse` encodings; for a `PkFkJoin` plan they are
    /// `wire::encode_join_result` / `wire::encode_join_vo` bytes, feeding
    /// `adp_core::plan::verify_plan` unchanged.
    PlannedResponse {
        /// Encoded result rows (shape depends on the plan).
        result: Vec<u8>,
        /// Encoded verification object (shape depends on the plan).
        vo: Vec<u8>,
    },
}

impl Frame {
    /// The header frame-type byte for this frame.
    pub fn type_byte(&self) -> u8 {
        match self {
            Frame::Ping => frame_type::PING,
            Frame::Pong => frame_type::PONG,
            Frame::QueryRequest { .. } => frame_type::QUERY_REQUEST,
            Frame::QueryResponse { .. } => frame_type::QUERY_RESPONSE,
            Frame::BatchRequest { .. } => frame_type::BATCH_REQUEST,
            Frame::BatchResponse { .. } => frame_type::BATCH_RESPONSE,
            Frame::StatsRequest => frame_type::STATS_REQUEST,
            Frame::StatsResponse(_) => frame_type::STATS_RESPONSE,
            Frame::Error { .. } => frame_type::ERROR,
            Frame::FollowLog { .. } => frame_type::FOLLOW_LOG,
            Frame::LogSegment { .. } => frame_type::LOG_SEGMENT,
            Frame::Snapshot { .. } => frame_type::SNAPSHOT,
            Frame::Subscribe { .. } => frame_type::SUBSCRIBE,
            Frame::DeltaVo { .. } => frame_type::DELTA_VO,
            Frame::Unsubscribe { .. } => frame_type::UNSUBSCRIBE,
            Frame::ResyncRequired { .. } => frame_type::RESYNC_REQUIRED,
            Frame::PlannedQuery { .. } => frame_type::PLANNED_QUERY,
            Frame::PlannedResponse { .. } => frame_type::PLANNED_RESPONSE,
        }
    }
}

/// Why a frame could not be read or decoded.
#[derive(Debug)]
pub enum ProtoError {
    /// The underlying transport failed (includes clean EOF).
    Io(io::Error),
    /// The first two bytes were not [`MAGIC`].
    BadMagic([u8; 2]),
    /// The version byte is not [`VERSION`].
    BadVersion(u8),
    /// The frame-type byte is unassigned.
    UnknownFrameType(u8),
    /// The declared payload length exceeds [`MAX_PAYLOAD`].
    Oversized {
        /// Length declared in the header.
        declared: u32,
    },
    /// The payload failed to decode.
    Malformed(WireError),
}

impl fmt::Display for ProtoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtoError::Io(e) => write!(f, "i/o error: {e}"),
            ProtoError::BadMagic(m) => write!(f, "bad magic {:02x} {:02x}", m[0], m[1]),
            ProtoError::BadVersion(v) => write!(f, "unsupported protocol version {v:#04x}"),
            ProtoError::UnknownFrameType(t) => write!(f, "unknown frame type {t:#04x}"),
            ProtoError::Oversized { declared } => {
                write!(f, "payload length {declared} exceeds cap {MAX_PAYLOAD}")
            }
            ProtoError::Malformed(e) => write!(f, "malformed payload: {e}"),
        }
    }
}

impl std::error::Error for ProtoError {}

impl From<io::Error> for ProtoError {
    fn from(e: io::Error) -> Self {
        ProtoError::Io(e)
    }
}

impl From<WireError> for ProtoError {
    fn from(e: WireError) -> Self {
        ProtoError::Malformed(e)
    }
}

impl ProtoError {
    /// True when the peer closed the connection cleanly before a header.
    pub fn is_eof(&self) -> bool {
        matches!(self, ProtoError::Io(e) if e.kind() == io::ErrorKind::UnexpectedEof)
    }
}

fn encode_payload(frame: &Frame) -> Vec<u8> {
    let mut w = Writer::new();
    match frame {
        Frame::Ping | Frame::Pong | Frame::StatsRequest => {}
        Frame::QueryRequest { table_id, query } => {
            w.u32(*table_id);
            w.bytes(&wire::encode_query(query));
        }
        Frame::QueryResponse { result, vo } => {
            w.bytes(result);
            w.bytes(vo);
        }
        Frame::BatchRequest { items } => {
            w.u32(items.len() as u32);
            for (table_id, query) in items {
                w.u32(*table_id);
                w.bytes(&wire::encode_query(query));
            }
        }
        Frame::BatchResponse { items } => {
            w.u32(items.len() as u32);
            for item in items {
                match item {
                    BatchItem::Ok { result, vo } => {
                        w.u8(0);
                        w.bytes(result);
                        w.bytes(vo);
                    }
                    BatchItem::Err { code, message } => {
                        w.u8(1);
                        w.u8(*code as u8);
                        w.bytes(message.as_bytes());
                    }
                }
            }
        }
        Frame::StatsResponse(s) => {
            w.u64(s.connections);
            w.u64(s.queries);
            w.u64(s.batches);
            w.u64(s.cache_hits);
            w.u64(s.cache_misses);
            w.u64(s.cache_entries);
            w.u64(s.invalidations);
            w.u64(s.open_connections);
            w.u64(s.queue_depth);
            w.u64(s.idle_reaped);
            w.u64(s.errors);
            w.u64(s.subscriptions);
            w.u64(s.deltas_pushed);
            w.u64(s.reconnects);
            w.u64(s.resyncs);
            w.u64(s.drains);
        }
        Frame::Error { code, message } => {
            w.u8(*code as u8);
            w.bytes(message.as_bytes());
        }
        Frame::FollowLog { table_id, have } => {
            w.u32(*table_id);
            match have {
                None => w.u8(0),
                Some(seq) => {
                    w.u8(1);
                    w.u64(*seq);
                }
            }
        }
        Frame::LogSegment { table_id, records } => {
            w.u32(*table_id);
            w.bytes(records);
        }
        Frame::Snapshot { table_id, snapshot } => {
            w.u32(*table_id);
            w.bytes(snapshot);
        }
        Frame::Subscribe {
            sub_id,
            table_id,
            query,
        } => {
            w.u32(*sub_id);
            w.u32(*table_id);
            w.bytes(&wire::encode_query(query));
        }
        Frame::DeltaVo {
            sub_id,
            epoch,
            pieces,
        } => {
            w.u32(*sub_id);
            w.u64(*epoch);
            w.u32(pieces.len() as u32);
            for p in pieces {
                w.i64(p.lo);
                w.i64(p.hi);
                w.bytes(&p.result);
                w.bytes(&p.vo);
            }
        }
        Frame::Unsubscribe { sub_id } => {
            w.u32(*sub_id);
        }
        Frame::ResyncRequired { sub_id, epoch } => {
            w.u32(*sub_id);
            w.u64(*epoch);
        }
        Frame::PlannedQuery { plan } => {
            w.bytes(&encode_wire_plan(plan));
        }
        Frame::PlannedResponse { result, vo } => {
            w.bytes(result);
            w.bytes(vo);
        }
    }
    w.into_bytes()
}

/// Validates a frame header, returning `(frame type, payload length)`.
/// The length is checked against [`MAX_PAYLOAD`] so callers can refuse
/// before allocating or reading the payload.
pub fn parse_header(header: &[u8; HEADER_LEN]) -> Result<(u8, u32), ProtoError> {
    if header[0..2] != MAGIC {
        return Err(ProtoError::BadMagic([header[0], header[1]]));
    }
    if header[2] != VERSION {
        return Err(ProtoError::BadVersion(header[2]));
    }
    let declared = u32::from_le_bytes(header[4..8].try_into().unwrap());
    if declared > MAX_PAYLOAD {
        return Err(ProtoError::Oversized { declared });
    }
    Ok((header[3], declared))
}

/// Decodes a frame body whose header was already validated with
/// [`parse_header`] (exposed so transports with their own read loops —
/// e.g. the server's deadline-bounded reader — can reuse the codec).
pub fn decode_payload(type_byte: u8, payload: &[u8]) -> Result<Frame, ProtoError> {
    let mut r = Reader::new(payload);
    let frame = match type_byte {
        frame_type::PING => Frame::Ping,
        frame_type::PONG => Frame::Pong,
        frame_type::QUERY_REQUEST => {
            let table_id = r.u32()?;
            let query = wire::decode_query(r.bytes()?)?;
            Frame::QueryRequest { table_id, query }
        }
        frame_type::QUERY_RESPONSE => Frame::QueryResponse {
            result: r.bytes()?.to_vec(),
            vo: r.bytes()?.to_vec(),
        },
        frame_type::BATCH_REQUEST => {
            let n = r.u32()? as usize;
            if n > 1 << 16 {
                return Err(WireError("too many batch items").into());
            }
            let mut items = Vec::with_capacity(n);
            for _ in 0..n {
                let table_id = r.u32()?;
                let query = wire::decode_query(r.bytes()?)?;
                items.push((table_id, query));
            }
            Frame::BatchRequest { items }
        }
        frame_type::BATCH_RESPONSE => {
            let n = r.u32()? as usize;
            if n > 1 << 16 {
                return Err(WireError("too many batch items").into());
            }
            let mut items = Vec::with_capacity(n);
            for _ in 0..n {
                items.push(match r.u8()? {
                    0 => BatchItem::Ok {
                        result: r.bytes()?.to_vec(),
                        vo: r.bytes()?.to_vec(),
                    },
                    1 => {
                        let code =
                            ErrorCode::from_byte(r.u8()?).ok_or(WireError("bad error code"))?;
                        let message = String::from_utf8(r.bytes()?.to_vec())
                            .map_err(|_| WireError("bad utf8"))?;
                        BatchItem::Err { code, message }
                    }
                    _ => return Err(WireError("bad batch item tag").into()),
                });
            }
            Frame::BatchResponse { items }
        }
        frame_type::STATS_REQUEST => Frame::StatsRequest,
        frame_type::STATS_RESPONSE => Frame::StatsResponse(StatsSnapshot {
            connections: r.u64()?,
            queries: r.u64()?,
            batches: r.u64()?,
            cache_hits: r.u64()?,
            cache_misses: r.u64()?,
            cache_entries: r.u64()?,
            invalidations: r.u64()?,
            open_connections: r.u64()?,
            queue_depth: r.u64()?,
            idle_reaped: r.u64()?,
            errors: r.u64()?,
            subscriptions: r.u64()?,
            deltas_pushed: r.u64()?,
            reconnects: r.u64()?,
            resyncs: r.u64()?,
            drains: r.u64()?,
        }),
        frame_type::ERROR => {
            let code = ErrorCode::from_byte(r.u8()?).ok_or(WireError("bad error code"))?;
            let message =
                String::from_utf8(r.bytes()?.to_vec()).map_err(|_| WireError("bad utf8"))?;
            Frame::Error { code, message }
        }
        frame_type::FOLLOW_LOG => {
            let table_id = r.u32()?;
            let have = match r.u8()? {
                0 => None,
                1 => Some(r.u64()?),
                _ => return Err(WireError("bad resume tag").into()),
            };
            Frame::FollowLog { table_id, have }
        }
        frame_type::LOG_SEGMENT => Frame::LogSegment {
            table_id: r.u32()?,
            records: r.bytes()?.to_vec(),
        },
        frame_type::SNAPSHOT => Frame::Snapshot {
            table_id: r.u32()?,
            snapshot: r.bytes()?.to_vec(),
        },
        frame_type::SUBSCRIBE => {
            let sub_id = r.u32()?;
            let table_id = r.u32()?;
            let query = wire::decode_query(r.bytes()?)?;
            Frame::Subscribe {
                sub_id,
                table_id,
                query,
            }
        }
        frame_type::DELTA_VO => {
            let sub_id = r.u32()?;
            let epoch = r.u64()?;
            let n = r.u32()? as usize;
            if n > 1 << 16 {
                return Err(WireError("too many delta pieces").into());
            }
            let mut pieces = Vec::with_capacity(n);
            for _ in 0..n {
                pieces.push(DeltaPiece {
                    lo: r.i64()?,
                    hi: r.i64()?,
                    result: r.bytes()?.to_vec(),
                    vo: r.bytes()?.to_vec(),
                });
            }
            Frame::DeltaVo {
                sub_id,
                epoch,
                pieces,
            }
        }
        frame_type::UNSUBSCRIBE => Frame::Unsubscribe { sub_id: r.u32()? },
        frame_type::RESYNC_REQUIRED => Frame::ResyncRequired {
            sub_id: r.u32()?,
            epoch: r.u64()?,
        },
        frame_type::PLANNED_QUERY => Frame::PlannedQuery {
            plan: decode_wire_plan(r.bytes()?)?,
        },
        frame_type::PLANNED_RESPONSE => Frame::PlannedResponse {
            result: r.bytes()?.to_vec(),
            vo: r.bytes()?.to_vec(),
        },
        other => return Err(ProtoError::UnknownFrameType(other)),
    };
    if !r.done() {
        return Err(WireError("trailing bytes").into());
    }
    Ok(frame)
}

/// Encodes a complete frame: 8-byte header plus payload.
///
/// # Panics
/// If the payload exceeds [`MAX_PAYLOAD`] (the length field would lie).
/// [`write_frame`] returns an error instead; the server additionally
/// bounds answers before framing them.
pub fn encode_frame(frame: &Frame) -> Vec<u8> {
    let payload = encode_payload(frame);
    assert!(
        payload.len() as u64 <= MAX_PAYLOAD as u64,
        "frame payload of {} bytes exceeds MAX_PAYLOAD",
        payload.len()
    );
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    out.extend_from_slice(&MAGIC);
    out.push(VERSION);
    out.push(frame.type_byte());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&payload);
    out
}

/// Decodes exactly one frame from a byte slice (the whole slice must be
/// consumed). Streaming callers use [`read_frame`] instead.
pub fn decode_frame(bytes: &[u8]) -> Result<Frame, ProtoError> {
    if bytes.len() < HEADER_LEN {
        return Err(WireError("truncated header").into());
    }
    let (header, payload) = bytes.split_at(HEADER_LEN);
    let (type_byte, declared) = parse_header(header.try_into().unwrap())?;
    if payload.len() != declared as usize {
        return Err(WireError("payload length mismatch").into());
    }
    decode_payload(type_byte, payload)
}

/// Writes one frame to a stream. Refuses (with `InvalidData`, before any
/// byte is written, so the stream never desyncs) a frame whose payload
/// exceeds [`MAX_PAYLOAD`] — the receiver would reject it anyway.
pub fn write_frame(w: &mut impl Write, frame: &Frame) -> io::Result<()> {
    let payload = encode_payload(frame);
    write_header(w, frame.type_byte(), payload.len())?;
    w.write_all(&payload)?;
    w.flush()
}

fn write_header(w: &mut impl Write, type_byte: u8, payload_len: usize) -> io::Result<()> {
    if payload_len as u64 > MAX_PAYLOAD as u64 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame payload of {payload_len} bytes exceeds cap {MAX_PAYLOAD}"),
        ));
    }
    let mut header = [0u8; HEADER_LEN];
    header[0..2].copy_from_slice(&MAGIC);
    header[2] = VERSION;
    header[3] = type_byte;
    header[4..8].copy_from_slice(&(payload_len as u32).to_le_bytes());
    w.write_all(&header)
}

/// Writes a `QueryResponse` frame straight from borrowed blobs — the
/// cache-hit hot path: no intermediate [`Frame`] and no blob copies, the
/// slices go directly to the socket. Byte-identical to
/// `write_frame(&Frame::QueryResponse { .. })`.
pub fn write_query_response(w: &mut impl Write, result: &[u8], vo: &[u8]) -> io::Result<()> {
    write_header(w, frame_type::QUERY_RESPONSE, 8 + result.len() + vo.len())?;
    w.write_all(&(result.len() as u32).to_le_bytes())?;
    w.write_all(result)?;
    w.write_all(&(vo.len() as u32).to_le_bytes())?;
    w.write_all(vo)?;
    w.flush()
}

/// A borrowed batch-response item for [`write_batch_response`].
pub type BatchItemRef<'a> = Result<(&'a [u8], &'a [u8]), (ErrorCode, &'a str)>;

/// Writes a `BatchResponse` frame from borrowed per-item blobs (one copy
/// into the payload buffer instead of two). Byte-identical to
/// `write_frame(&Frame::BatchResponse { .. })` with the corresponding
/// owned items.
pub fn write_batch_response(w: &mut impl Write, items: &[BatchItemRef<'_>]) -> io::Result<()> {
    let mut payload = Writer::new();
    payload.u32(items.len() as u32);
    for item in items {
        match item {
            Ok((result, vo)) => {
                payload.u8(0);
                payload.bytes(result);
                payload.bytes(vo);
            }
            Err((code, message)) => {
                payload.u8(1);
                payload.u8(*code as u8);
                payload.bytes(message.as_bytes());
            }
        }
    }
    let payload = payload.into_bytes();
    write_header(w, frame_type::BATCH_RESPONSE, payload.len())?;
    w.write_all(&payload)?;
    w.flush()
}

/// Reads one frame from a stream: header first (validated before the
/// payload is allocated or read), then the payload.
pub fn read_frame(r: &mut impl Read) -> Result<Frame, ProtoError> {
    let mut header = [0u8; HEADER_LEN];
    r.read_exact(&mut header)?;
    let (type_byte, declared) = parse_header(&header)?;
    let mut payload = vec![0u8; declared as usize];
    r.read_exact(&mut payload)?;
    decode_payload(type_byte, &payload)
}

#[cfg(test)]
mod tests {
    use super::*;
    use adp_relation::{CompareOp, KeyRange, Predicate, SelectQuery};

    fn sample_frames() -> Vec<Frame> {
        vec![
            Frame::Ping,
            Frame::Pong,
            Frame::QueryRequest {
                table_id: 7,
                query: SelectQuery::range(KeyRange::closed(2_000, 9_000)),
            },
            Frame::QueryResponse {
                result: vec![1, 2, 3],
                vo: vec![4, 5],
            },
            Frame::BatchRequest {
                items: vec![
                    (0, SelectQuery::range(KeyRange::all())),
                    (
                        1,
                        SelectQuery::range(KeyRange::less_than(10))
                            .filter(Predicate::new("c", CompareOp::Eq, 1i64))
                            .distinct(),
                    ),
                ],
            },
            Frame::BatchResponse {
                items: vec![
                    BatchItem::Ok {
                        result: vec![0],
                        vo: vec![],
                    },
                    BatchItem::Err {
                        code: ErrorCode::UnknownTable,
                        message: "no table 9".into(),
                    },
                ],
            },
            Frame::StatsRequest,
            Frame::StatsResponse(StatsSnapshot {
                connections: 1,
                queries: 2,
                batches: 3,
                cache_hits: 4,
                cache_misses: 5,
                cache_entries: 6,
                invalidations: 7,
                open_connections: 8,
                queue_depth: 9,
                idle_reaped: 10,
                errors: 11,
                subscriptions: 12,
                deltas_pushed: 13,
                reconnects: 14,
                resyncs: 15,
                drains: 16,
            }),
            Frame::Error {
                code: ErrorCode::BadFrame,
                message: "nope".into(),
            },
            Frame::FollowLog {
                table_id: 3,
                have: None,
            },
            Frame::FollowLog {
                table_id: 3,
                have: Some(17),
            },
            Frame::LogSegment {
                table_id: 3,
                records: vec![0xAB; 9],
            },
            Frame::Snapshot {
                table_id: 3,
                snapshot: vec![0xCD; 12],
            },
            Frame::Subscribe {
                sub_id: 1,
                table_id: 7,
                query: SelectQuery::range(KeyRange::closed(100, 500)),
            },
            Frame::DeltaVo {
                sub_id: 1,
                epoch: 4,
                pieces: vec![
                    DeltaPiece {
                        lo: 100,
                        hi: 180,
                        result: vec![1, 2],
                        vo: vec![3],
                    },
                    DeltaPiece {
                        lo: 400,
                        hi: 500,
                        result: vec![],
                        vo: vec![4, 5, 6],
                    },
                ],
            },
            Frame::DeltaVo {
                sub_id: 9,
                epoch: 0,
                pieces: vec![],
            },
            Frame::Unsubscribe { sub_id: 1 },
            Frame::ResyncRequired {
                sub_id: 1,
                epoch: 3,
            },
            Frame::PlannedQuery {
                plan: WirePlan::Select {
                    table_id: 7,
                    query: SelectQuery::range(KeyRange::closed(2_000, 9_000)),
                },
            },
            Frame::PlannedQuery {
                plan: WirePlan::PkFkJoin {
                    fk_table: 0,
                    pk_table: 1,
                    fk_range: KeyRange::closed(100, 500),
                    fk_projection: adp_relation::Projection::All,
                    pk_projection: adp_relation::Projection::Columns(vec!["title".into()]),
                },
            },
            Frame::PlannedResponse {
                result: vec![1, 2, 3],
                vo: vec![4, 5],
            },
        ]
    }

    #[test]
    fn frames_roundtrip() {
        for f in sample_frames() {
            let bytes = encode_frame(&f);
            assert_eq!(decode_frame(&bytes).unwrap(), f, "{f:?}");
            // Streaming path agrees with the slice path.
            let mut cursor = std::io::Cursor::new(bytes);
            assert_eq!(read_frame(&mut cursor).unwrap(), f, "{f:?}");
        }
    }

    #[test]
    fn borrowed_writers_match_owned_frames_byte_for_byte() {
        let (result, vo) = (vec![1u8, 2, 3], vec![4u8, 5]);
        let mut direct = Vec::new();
        write_query_response(&mut direct, &result, &vo).unwrap();
        assert_eq!(
            direct,
            encode_frame(&Frame::QueryResponse {
                result: result.clone(),
                vo: vo.clone()
            })
        );

        let mut direct = Vec::new();
        write_batch_response(
            &mut direct,
            &[
                Ok((result.as_slice(), vo.as_slice())),
                Err((ErrorCode::UnknownTable, "no table 9")),
            ],
        )
        .unwrap();
        assert_eq!(
            direct,
            encode_frame(&Frame::BatchResponse {
                items: vec![
                    BatchItem::Ok { result, vo },
                    BatchItem::Err {
                        code: ErrorCode::UnknownTable,
                        message: "no table 9".into(),
                    },
                ],
            })
        );
    }

    #[test]
    fn ping_frame_fixed_vector_matches_protocol_doc() {
        assert_eq!(
            encode_frame(&Frame::Ping),
            vec![0xAD, 0x50, 0x06, 0x01, 0, 0, 0, 0]
        );
    }

    #[test]
    fn follow_log_resume_tag_validated() {
        let mut bytes = encode_frame(&Frame::FollowLog {
            table_id: 1,
            have: None,
        });
        // Corrupt the resume tag (last payload byte) to an unassigned
        // value: defensive decode must refuse it.
        let last = bytes.len() - 1;
        bytes[last] = 2;
        assert!(matches!(
            decode_frame(&bytes),
            Err(ProtoError::Malformed(_))
        ));
    }

    #[test]
    fn bad_magic_rejected() {
        let mut bytes = encode_frame(&Frame::Ping);
        bytes[0] = 0x00;
        assert!(matches!(
            decode_frame(&bytes),
            Err(ProtoError::BadMagic([0x00, 0x50]))
        ));
    }

    #[test]
    fn bad_version_rejected() {
        // Older versions are refused too: the StatsResponse layout
        // changed in v2, v3, v4, and v5, and v6 added frame types a v5
        // peer would reject, so a v6 speaker must not silently accept
        // earlier peers.
        for old in [0x01, 0x02, 0x03, 0x04, 0x05] {
            let mut bytes = encode_frame(&Frame::Ping);
            bytes[2] = old;
            assert!(matches!(
                decode_frame(&bytes),
                Err(ProtoError::BadVersion(v)) if v == old
            ));
        }
    }

    #[test]
    fn unknown_frame_type_rejected() {
        let mut bytes = encode_frame(&Frame::Ping);
        bytes[3] = 0xEE;
        assert!(matches!(
            decode_frame(&bytes),
            Err(ProtoError::UnknownFrameType(0xEE))
        ));
    }

    #[test]
    fn oversized_length_prefix_rejected_before_allocation() {
        let mut bytes = encode_frame(&Frame::Ping);
        bytes[4..8].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            decode_frame(&bytes),
            Err(ProtoError::Oversized { declared: u32::MAX })
        ));
        // The streaming reader also refuses without trying to read 4 GiB.
        let mut cursor = std::io::Cursor::new(bytes);
        assert!(matches!(
            read_frame(&mut cursor),
            Err(ProtoError::Oversized { declared: u32::MAX })
        ));
    }

    #[test]
    fn truncated_header_rejected() {
        let bytes = encode_frame(&Frame::Ping);
        for cut in 0..HEADER_LEN {
            assert!(decode_frame(&bytes[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn trailing_bytes_rejected() {
        let frame = Frame::QueryRequest {
            table_id: 0,
            query: SelectQuery::range(KeyRange::all()),
        };
        let mut bytes = encode_frame(&frame);
        // Grow the payload and fix up the declared length: decoders must
        // still notice the unconsumed tail.
        bytes.push(0xFF);
        let len = (bytes.len() - HEADER_LEN) as u32;
        bytes[4..8].copy_from_slice(&len.to_le_bytes());
        assert!(matches!(
            decode_frame(&bytes),
            Err(ProtoError::Malformed(_))
        ));
    }
}
