//! The user side of the wire: a raw frame client and the
//! [`RemoteVerifier`], which runs the *unchanged* `adp-core` verifier
//! against answers arriving through a live socket.
//!
//! The trust model is identical to the in-process path: the verifier
//! trusts only the owner's [`Certificate`] (obtained out of band over an
//! authenticated channel) and treats every byte the server sends —
//! result, VO, even frame structure — as adversarial.

use crate::protocol::{
    read_frame, write_frame, BatchItem, DeltaPiece, ErrorCode, Frame, ProtoError, StatsSnapshot,
};
use crate::retry::RetryPolicy;
use adp_core::client::{SessionStats, VerifiedResult};
use adp_core::errors::VerifyError;
use adp_core::owner::Certificate;
use adp_core::passes::{Planned, Planner};
use adp_core::plan::{verify_plan, Catalog, CatalogTable, SqlRows, WirePlan};
use adp_core::sql::parse;
use adp_core::verifier::verify_select_wire;
use adp_relation::{KeyRange, Record, SelectQuery};
use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::io;
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

/// Why a remote call failed.
#[derive(Debug)]
pub enum RemoteError {
    /// Transport or framing failure.
    Proto(ProtoError),
    /// The server answered with an error frame (or batch error item).
    Server {
        /// Error code from the server.
        code: ErrorCode,
        /// Server-provided detail.
        message: String,
    },
    /// The server answered with a frame of the wrong type.
    UnexpectedFrame(&'static str),
    /// The answer arrived but failed verification — from the user's point
    /// of view, the publisher is cheating (or serving a different table).
    Verify(VerifyError),
    /// The SQL text could not be parsed or planned client-side (nothing
    /// was sent to the server).
    Sql(String),
}

impl fmt::Display for RemoteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RemoteError::Proto(e) => write!(f, "protocol error: {e}"),
            RemoteError::Server { code, message } => {
                write!(f, "server error ({code}): {message}")
            }
            RemoteError::UnexpectedFrame(detail) => {
                write!(f, "unexpected reply frame: {detail}")
            }
            RemoteError::Verify(e) => write!(f, "verification failed: {e}"),
            RemoteError::Sql(e) => write!(f, "sql error: {e}"),
        }
    }
}

impl RemoteError {
    /// Whether retrying the operation (after reconnecting) could succeed.
    ///
    /// Transport failures and framing desyncs are retryable: they say
    /// nothing about the answer, only about its delivery. A server error
    /// frame or a verification failure is **fatal** — the peer answered,
    /// and the answer was a refusal or a forgery; asking again cannot
    /// make it true. The one exception is a server-reported
    /// [`ErrorCode::BadFrame`]: it means the server could not even parse
    /// what arrived, which is transport damage seen from the other side —
    /// a fresh connection re-sends the bytes intact. The self-healing
    /// clients retry only on this predicate, and only for operations that
    /// are idempotent to repeat.
    pub fn is_retryable(&self) -> bool {
        matches!(
            self,
            RemoteError::Proto(_)
                | RemoteError::UnexpectedFrame(_)
                | RemoteError::Server {
                    code: ErrorCode::BadFrame,
                    ..
                }
        )
    }
}

impl std::error::Error for RemoteError {}

impl From<ProtoError> for RemoteError {
    fn from(e: ProtoError) -> Self {
        RemoteError::Proto(e)
    }
}

impl From<io::Error> for RemoteError {
    fn from(e: io::Error) -> Self {
        RemoteError::Proto(ProtoError::Io(e))
    }
}

impl From<VerifyError> for RemoteError {
    fn from(e: VerifyError) -> Self {
        RemoteError::Verify(e)
    }
}

/// Default patience for a server reply before the client gives up (the
/// server is untrusted — it must not be able to pin a client forever by
/// accepting and then stalling).
pub const DEFAULT_REPLY_TIMEOUT: Duration = Duration::from_secs(30);

/// A raw frame-level client: one TCP connection, synchronous round-trips.
///
/// With a [`RetryPolicy`] mounted ([`RemoteClient::set_retry_policy`]),
/// every **idempotent** call — `ping`, `stats`, `query_raw`,
/// `query_batch_raw` — transparently reconnects and retries on
/// [retryable](RemoteError::is_retryable) failures, with the policy's
/// capped, jittered backoff between attempts. A retried query may execute
/// twice on the server, which is why only reads get the loop; fatal
/// errors (server refusals, verification failures upstack) never retry.
pub struct RemoteClient {
    stream: TcpStream,
    /// Resolved peer addresses, kept for reconnects.
    addrs: Vec<SocketAddr>,
    timeout: Option<Duration>,
    retry: RetryPolicy,
    retries: u64,
    reconnects: u64,
}

impl RemoteClient {
    /// Connects to a publisher server. Reads and writes time out after
    /// [`DEFAULT_REPLY_TIMEOUT`]; adjust with [`RemoteClient::set_timeout`].
    /// No retries until a policy is mounted.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Self> {
        let addrs: Vec<SocketAddr> = addr.to_socket_addrs()?.collect();
        let stream = TcpStream::connect(&addrs[..])?;
        let _ = stream.set_nodelay(true);
        stream.set_read_timeout(Some(DEFAULT_REPLY_TIMEOUT))?;
        stream.set_write_timeout(Some(DEFAULT_REPLY_TIMEOUT))?;
        Ok(RemoteClient {
            stream,
            addrs,
            timeout: Some(DEFAULT_REPLY_TIMEOUT),
            retry: RetryPolicy::none(),
            retries: 0,
            reconnects: 0,
        })
    }

    /// Sets the per-operation socket timeout (`None` waits forever).
    pub fn set_timeout(&mut self, timeout: Option<Duration>) -> io::Result<()> {
        self.timeout = timeout;
        self.stream.set_read_timeout(timeout)?;
        self.stream.set_write_timeout(timeout)
    }

    /// Mounts a retry policy for the idempotent calls.
    pub fn set_retry_policy(&mut self, policy: RetryPolicy) -> &mut Self {
        self.retry = policy;
        self
    }

    /// Retries performed so far (each is one extra request attempt).
    pub fn retries(&self) -> u64 {
        self.retries
    }

    /// Successful reconnections performed so far.
    pub fn reconnects(&self) -> u64 {
        self.reconnects
    }

    /// Replaces the broken stream with a fresh connection.
    fn reconnect(&mut self) -> io::Result<()> {
        let stream = TcpStream::connect(&self.addrs[..])?;
        let _ = stream.set_nodelay(true);
        stream.set_read_timeout(self.timeout)?;
        stream.set_write_timeout(self.timeout)?;
        self.stream = stream;
        self.reconnects += 1;
        Ok(())
    }

    /// One request/response round-trip on the current stream.
    fn call_once(&mut self, request: &Frame) -> Result<Frame, RemoteError> {
        write_frame(&mut self.stream, request).map_err(ProtoError::Io)?;
        Ok(read_frame(&mut self.stream)?)
    }

    /// A round-trip for an idempotent request: on a retryable failure,
    /// sleeps the policy's backoff, reconnects, and tries again until the
    /// budget runs out (the last error is returned). The request must be
    /// safe to execute more than once server-side.
    fn call(&mut self, request: &Frame) -> Result<Frame, RemoteError> {
        let mut attempt = 0;
        loop {
            match self.call_once(request) {
                Err(e) if e.is_retryable() && attempt < self.retry.max_retries => {
                    std::thread::sleep(self.retry.backoff(attempt));
                    attempt += 1;
                    self.retries += 1;
                    // A failed reconnect leaves the old broken stream in
                    // place; the next attempt fails fast and burns budget.
                    let _ = self.reconnect();
                }
                other => return other,
            }
        }
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<(), RemoteError> {
        match self.call(&Frame::Ping)? {
            Frame::Pong => Ok(()),
            Frame::Error { code, message } => Err(RemoteError::Server { code, message }),
            _ => Err(RemoteError::UnexpectedFrame("expected Pong")),
        }
    }

    /// Fetches the server's counters (including VO cache hits/misses).
    pub fn stats(&mut self) -> Result<StatsSnapshot, RemoteError> {
        match self.call(&Frame::StatsRequest)? {
            Frame::StatsResponse(s) => Ok(s),
            Frame::Error { code, message } => Err(RemoteError::Server { code, message }),
            _ => Err(RemoteError::UnexpectedFrame("expected StatsResponse")),
        }
    }

    /// Answers one query, returning the *unverified* encoded
    /// `(result, vo)` blobs. Use [`RemoteVerifier`] unless you are
    /// measuring or proxying.
    pub fn query_raw(
        &mut self,
        table_id: u32,
        query: &SelectQuery,
    ) -> Result<(Vec<u8>, Vec<u8>), RemoteError> {
        let request = Frame::QueryRequest {
            table_id,
            query: query.clone(),
        };
        match self.call(&request)? {
            Frame::QueryResponse { result, vo } => Ok((result, vo)),
            Frame::Error { code, message } => Err(RemoteError::Server { code, message }),
            _ => Err(RemoteError::UnexpectedFrame("expected QueryResponse")),
        }
    }

    /// Executes a planned query (v6 `PlannedQuery` frame), returning the
    /// *unverified* encoded `(result, vo)` blobs. Use [`SqlSession`] or
    /// [`RemoteVerifier::query_sql`] unless you are measuring or proxying.
    pub fn query_planned_raw(
        &mut self,
        plan: &WirePlan,
    ) -> Result<(Vec<u8>, Vec<u8>), RemoteError> {
        let request = Frame::PlannedQuery { plan: plan.clone() };
        match self.call(&request)? {
            Frame::PlannedResponse { result, vo } => Ok((result, vo)),
            Frame::Error { code, message } => Err(RemoteError::Server { code, message }),
            _ => Err(RemoteError::UnexpectedFrame("expected PlannedResponse")),
        }
    }

    /// Answers N queries in one round-trip. Outcomes come back in request
    /// order; per-item failures do not fail the batch.
    #[allow(clippy::type_complexity)]
    pub fn query_batch_raw(
        &mut self,
        items: &[(u32, SelectQuery)],
    ) -> Result<Vec<Result<(Vec<u8>, Vec<u8>), (ErrorCode, String)>>, RemoteError> {
        let request = Frame::BatchRequest {
            items: items.to_vec(),
        };
        match self.call(&request)? {
            Frame::BatchResponse { items: replies } => {
                if replies.len() != items.len() {
                    return Err(RemoteError::UnexpectedFrame("batch length mismatch"));
                }
                Ok(replies
                    .into_iter()
                    .map(|item| match item {
                        BatchItem::Ok { result, vo } => Ok((result, vo)),
                        BatchItem::Err { code, message } => Err((code, message)),
                    })
                    .collect())
            }
            Frame::Error { code, message } => Err(RemoteError::Server { code, message }),
            _ => Err(RemoteError::UnexpectedFrame("expected BatchResponse")),
        }
    }
}

/// A verifying client bound to one served table: the remote counterpart of
/// `adp_core::client::Client`. Every answer is checked with
/// `verify_select_wire` before it is returned, so a cheating or buggy
/// server surfaces as [`RemoteError::Verify`], never as wrong data.
pub struct RemoteVerifier {
    client: RemoteClient,
    cert: Certificate,
    table_id: u32,
    stats: SessionStats,
}

impl RemoteVerifier {
    /// Wraps an existing connection. Warms the certificate key's Montgomery
    /// context so the first verification doesn't pay the one-time setup.
    pub fn new(client: RemoteClient, cert: Certificate, table_id: u32) -> Self {
        cert.public_key.precompute();
        RemoteVerifier {
            client,
            cert,
            table_id,
            stats: SessionStats::default(),
        }
    }

    /// Connects and binds to `table_id` under the given certificate.
    pub fn connect(addr: impl ToSocketAddrs, cert: Certificate, table_id: u32) -> io::Result<Self> {
        Ok(Self::new(RemoteClient::connect(addr)?, cert, table_id))
    }

    /// The certificate in use.
    pub fn certificate(&self) -> &Certificate {
        &self.cert
    }

    /// Cumulative session statistics (same accounting as the in-process
    /// client: bytes, signatures, hash operations, verification time).
    pub fn stats(&self) -> SessionStats {
        self.stats
    }

    /// Direct access to the underlying frame client (for `ping`/`stats`).
    pub fn client_mut(&mut self) -> &mut RemoteClient {
        &mut self.client
    }

    /// Issues `query`, verifies the answer against the certificate, and
    /// accounts for it. The publisher is never trusted: a forged or
    /// tampered answer returns [`RemoteError::Verify`].
    pub fn select(&mut self, query: &SelectQuery) -> Result<VerifiedResult, RemoteError> {
        Ok(self.select_with_bytes(query)?.0)
    }

    /// Like [`RemoteVerifier::select`], additionally returning the
    /// *verified* encoded `(result, vo)` blobs exactly as they came off
    /// the wire — e.g. to persist an answer for later offline
    /// re-verification (`adp rquery --out` / `adp verify`).
    #[allow(clippy::type_complexity)]
    pub fn select_with_bytes(
        &mut self,
        query: &SelectQuery,
    ) -> Result<(VerifiedResult, Vec<u8>, Vec<u8>), RemoteError> {
        let (result_bytes, vo_bytes) = self.client.query_raw(self.table_id, query)?;
        let verified = self.verify_and_account(query, &result_bytes, &vo_bytes)?;
        Ok((verified, result_bytes, vo_bytes))
    }

    /// Issues a batch of queries in one round-trip and verifies every
    /// answer. Fails on the first item the server errored or that fails
    /// verification.
    pub fn select_batch(
        &mut self,
        queries: &[SelectQuery],
    ) -> Result<Vec<VerifiedResult>, RemoteError> {
        let items: Vec<(u32, SelectQuery)> =
            queries.iter().map(|q| (self.table_id, q.clone())).collect();
        let replies = self.client.query_batch_raw(&items)?;
        queries
            .iter()
            .zip(replies)
            .map(|(query, reply)| {
                let (result_bytes, vo_bytes) =
                    reply.map_err(|(code, message)| RemoteError::Server { code, message })?;
                self.verify_and_account(query, &result_bytes, &vo_bytes)
            })
            .collect()
    }

    /// Parses, plans, executes, and verifies one SQL statement against the
    /// bound table — the single-table convenience over [`SqlSession`]
    /// (which also handles joins across several served tables). The
    /// planner prices candidates with the default cost parameters and a
    /// nominal row estimate; the *verification* is exact regardless.
    pub fn query_sql(&mut self, sql: &str) -> Result<SqlOutcome, RemoteError> {
        let mut catalog = Catalog::new();
        catalog.add(CatalogTable::from_certificate(
            self.table_id,
            &self.cert,
            1024,
        ));
        let planned = plan_sql(sql, &catalog)?;
        let outcome = run_planned(&mut self.client, planned, |id| {
            (id == self.table_id).then_some(&self.cert)
        })?;
        self.stats.queries += 1;
        self.stats.rows_verified += outcome.rows_verified;
        self.stats.result_bytes += outcome.result_bytes;
        self.stats.vo_bytes += outcome.vo_bytes;
        self.stats.signatures_verified += outcome.signatures_verified;
        self.stats.verify_time += outcome.verify_time;
        Ok(outcome)
    }

    fn verify_and_account(
        &mut self,
        query: &SelectQuery,
        result_bytes: &[u8],
        vo_bytes: &[u8],
    ) -> Result<VerifiedResult, RemoteError> {
        let ops_before = adp_crypto::hash_ops();
        let start = Instant::now();
        let (rows, report) = verify_select_wire(&self.cert, query, result_bytes, vo_bytes)?;
        let elapsed = start.elapsed();
        self.stats.queries += 1;
        self.stats.rows_verified += report.matched;
        self.stats.result_bytes += result_bytes.len();
        self.stats.vo_bytes += vo_bytes.len();
        self.stats.signatures_verified += report.signatures_verified;
        self.stats.hash_ops += adp_crypto::hash_ops().saturating_sub(ops_before);
        self.stats.verify_time += elapsed;
        Ok(VerifiedResult {
            rows,
            report,
            result_bytes: result_bytes.len(),
            vo_bytes: vo_bytes.len(),
        })
    }
}

/// The verified outcome of one `query_sql` round-trip.
#[derive(Clone, Debug)]
pub struct SqlOutcome {
    /// Finished output: verified rows after client-side residue, plus the
    /// aggregate value if the statement asked for one.
    pub output: SqlRows,
    /// The full planning record: naive vs chosen plan, their costs, and
    /// the passes that produced the winner (EXPLAIN material).
    pub planned: Planned,
    /// Encoded result bytes that crossed the wire.
    pub result_bytes: usize,
    /// Encoded VO bytes that crossed the wire.
    pub vo_bytes: usize,
    /// Rows covered by the verified proof (before residual filtering).
    pub rows_verified: usize,
    /// Signatures checked during verification.
    pub signatures_verified: usize,
    /// Wall-clock verification time.
    pub verify_time: Duration,
}

/// Parses and plans one statement (client-side only; no I/O).
fn plan_sql(sql: &str, catalog: &Catalog) -> Result<Planned, RemoteError> {
    let stmt = parse(sql).map_err(|e| RemoteError::Sql(e.to_string()))?;
    Planner::default()
        .plan(&stmt, catalog)
        .map_err(|e| RemoteError::Sql(e.to_string()))
}

/// Sends the chosen plan, verifies the multi-relation VO against the
/// trusted certificates, and applies the client-side residue.
fn run_planned<'a, F>(
    client: &mut RemoteClient,
    planned: Planned,
    cert_of: F,
) -> Result<SqlOutcome, RemoteError>
where
    F: Fn(u32) -> Option<&'a Certificate>,
{
    let (result_bytes, vo_bytes) = client.query_planned_raw(&planned.chosen.wire)?;
    let start = Instant::now();
    let verified = verify_plan(&planned.chosen.wire, cert_of, &result_bytes, &vo_bytes)?;
    let verify_time = start.elapsed();
    let output = planned
        .chosen
        .finish(verified.rows)
        .map_err(|e| RemoteError::Sql(e.to_string()))?;
    Ok(SqlOutcome {
        output,
        planned,
        result_bytes: result_bytes.len(),
        vo_bytes: vo_bytes.len(),
        rows_verified: verified.rows_verified,
        signatures_verified: verified.signatures_verified,
        verify_time,
    })
}

/// A verifying SQL client over one connection and any number of served
/// tables: the remote face of the `adp-core` SQL frontend.
///
/// Register each table's owner certificate (with a row estimate for the
/// cost model) and any declared referential integrity, then
/// [`SqlSession::query_sql`]: the statement is parsed and planned
/// locally, the **cheapest-proof** plan goes to the server as a v6
/// `PlannedQuery` frame, and the multi-relation VO that comes back is
/// verified against the certificates alone — the server is untrusted
/// end to end, exactly as with [`RemoteVerifier`].
pub struct SqlSession {
    client: RemoteClient,
    catalog: Catalog,
    certs: HashMap<u32, Certificate>,
    planner: Planner,
    stats: SessionStats,
}

impl SqlSession {
    /// Wraps an existing connection; no tables yet.
    pub fn new(client: RemoteClient) -> Self {
        SqlSession {
            client,
            catalog: Catalog::new(),
            certs: HashMap::new(),
            planner: Planner::default(),
            stats: SessionStats::default(),
        }
    }

    /// Connects with no tables registered.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Self> {
        Ok(Self::new(RemoteClient::connect(addr)?))
    }

    /// Registers a served table under its wire id: the certificate is what
    /// answers verify against; `rows` is the cost model's cardinality
    /// estimate (it affects plan choice, never soundness).
    pub fn add_table(&mut self, table_id: u32, cert: Certificate, rows: u64) -> &mut Self {
        cert.public_key.precompute();
        self.catalog
            .add(CatalogTable::from_certificate(table_id, &cert, rows));
        self.certs.insert(table_id, cert);
        self
    }

    /// Declares `from`'s sort key a foreign key into `to`'s sort key
    /// (owner-attested referential integrity — what licenses the planner
    /// to orient a pk-fk join). Returns false if `from` is unregistered.
    pub fn declare_fk(&mut self, from: &str, to: &str) -> bool {
        self.catalog.declare_fk(from, to)
    }

    /// The planner's current catalog (for EXPLAIN tooling).
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// Direct access to the underlying frame client.
    pub fn client_mut(&mut self) -> &mut RemoteClient {
        &mut self.client
    }

    /// Cumulative verification accounting across `query_sql` calls.
    pub fn stats(&self) -> SessionStats {
        self.stats
    }

    /// Parses and plans a statement without executing it (EXPLAIN).
    pub fn plan(&self, sql: &str) -> Result<Planned, RemoteError> {
        let stmt = parse(sql).map_err(|e| RemoteError::Sql(e.to_string()))?;
        self.planner
            .plan(&stmt, &self.catalog)
            .map_err(|e| RemoteError::Sql(e.to_string()))
    }

    /// Parses, plans, executes, and verifies one SQL statement. A forged
    /// or tampered answer — on either relation of a join — surfaces as
    /// [`RemoteError::Verify`], never as wrong rows.
    pub fn query_sql(&mut self, sql: &str) -> Result<SqlOutcome, RemoteError> {
        let planned = self.plan(sql)?;
        let certs = &self.certs;
        let outcome = run_planned(&mut self.client, planned, |id| certs.get(&id))?;
        self.stats.queries += 1;
        self.stats.rows_verified += outcome.rows_verified;
        self.stats.result_bytes += outcome.result_bytes;
        self.stats.vo_bytes += outcome.vo_bytes;
        self.stats.signatures_verified += outcome.signatures_verified;
        self.stats.verify_time += outcome.verify_time;
        Ok(outcome)
    }
}

/// A verified live subscription to one key range of a served table.
///
/// On registration the server answers with an initial [`Frame::DeltaVo`]
/// whose single piece proves the whole subscribed range; thereafter every
/// update batch touching the range pushes a delta whose pieces each carry
/// a self-contained `(result, vo)` proof for one dirtied sub-range. The
/// subscriber verifies every piece with the unchanged `verify_select_wire`
/// — completeness, authenticity, and precision against the owner's
/// certificate alone — and splices the verified rows into its local
/// mirror **without ever refetching the full range**: verification work
/// and bytes scale with what the batch dirtied, not with the subscription
/// size (the `O(k)` update locality of Section 6.3, carried to the wire).
pub struct RemoteSubscriber {
    stream: TcpStream,
    cert: Certificate,
    /// Resolved server addresses, kept for re-subscribes.
    addrs: Vec<SocketAddr>,
    table_id: u32,
    sub_id: u32,
    retry: RetryPolicy,
    /// Subscribed bounds, domain-normalized exactly as the server
    /// normalizes them — any piece outside is a precision violation.
    lo: i64,
    hi: i64,
    /// The table epoch the mirror currently reflects.
    epoch: u64,
    /// The verified mirror: key → the verified records at that key (>1
    /// with duplicate-key replicas).
    rows: BTreeMap<i64, Vec<Record>>,
    /// Deltas verified and applied, counting the initial snapshot.
    deltas_applied: u64,
    /// Re-subscribes performed (after drops or `ResyncRequired`).
    reconnects: u64,
    /// `ResyncRequired` frames honored.
    resyncs: u64,
    stats: SessionStats,
}

impl RemoteSubscriber {
    /// Connects, registers subscription `sub_id` for `range` on
    /// `table_id`, and verifies the initial full-range proof. The server
    /// is untrusted throughout: a forged initial answer fails here.
    /// No self-healing until a policy is mounted
    /// ([`RemoteSubscriber::subscribe_with_retry`]).
    pub fn subscribe(
        addr: impl ToSocketAddrs,
        cert: Certificate,
        table_id: u32,
        sub_id: u32,
        range: KeyRange,
    ) -> Result<Self, RemoteError> {
        Self::subscribe_with_retry(addr, cert, table_id, sub_id, range, RetryPolicy::none())
    }

    /// [`RemoteSubscriber::subscribe`] with a [`RetryPolicy`]: the initial
    /// registration retries on retryable failures, and thereafter
    /// [`RemoteSubscriber::poll_delta`] self-heals — a dropped connection
    /// or a server [`Frame::ResyncRequired`] push triggers an automatic
    /// reconnect and re-subscribe, whose fresh baseline is verified
    /// against the certificate and must not be older than what the mirror
    /// already verified (a stale baseline is a replay and fails).
    pub fn subscribe_with_retry(
        addr: impl ToSocketAddrs,
        cert: Certificate,
        table_id: u32,
        sub_id: u32,
        range: KeyRange,
        retry: RetryPolicy,
    ) -> Result<Self, RemoteError> {
        cert.public_key.precompute();
        let Some(bounds) = cert.domain.normalize(&range) else {
            return Err(RemoteError::Server {
                code: ErrorCode::BadQuery,
                message: "subscribed range is empty under the table's domain".into(),
            });
        };
        let addrs: Vec<SocketAddr> = addr
            .to_socket_addrs()
            .map_err(|e| RemoteError::Proto(ProtoError::Io(e)))?
            .collect();
        let mut sub = RemoteSubscriber {
            stream: Self::connect_stream(&addrs)?,
            cert,
            addrs,
            table_id,
            sub_id,
            retry,
            lo: bounds.alpha,
            hi: bounds.beta,
            epoch: 0,
            rows: BTreeMap::new(),
            deltas_applied: 0,
            reconnects: 0,
            resyncs: 0,
            stats: SessionStats::default(),
        };
        match sub.handshake(0) {
            Ok(()) => Ok(sub),
            Err(e) if e.is_retryable() && sub.retry.max_retries > 0 => {
                sub.resubscribe(0)?;
                Ok(sub)
            }
            Err(e) => Err(e),
        }
    }

    fn connect_stream(addrs: &[SocketAddr]) -> Result<TcpStream, RemoteError> {
        let stream =
            TcpStream::connect(addrs).map_err(|e| RemoteError::Proto(ProtoError::Io(e)))?;
        let _ = stream.set_nodelay(true);
        stream
            .set_read_timeout(Some(DEFAULT_REPLY_TIMEOUT))
            .and_then(|()| stream.set_write_timeout(Some(DEFAULT_REPLY_TIMEOUT)))
            .map_err(|e| RemoteError::Proto(ProtoError::Io(e)))?;
        Ok(stream)
    }

    /// Sends `Subscribe` on the current stream and verifies the initial
    /// full-range baseline, which must carry an epoch `>= min_epoch`.
    fn handshake(&mut self, min_epoch: u64) -> Result<(), RemoteError> {
        write_frame(
            &mut self.stream,
            &Frame::Subscribe {
                sub_id: self.sub_id,
                table_id: self.table_id,
                query: SelectQuery::range(KeyRange::closed(self.lo, self.hi)),
            },
        )
        .map_err(ProtoError::Io)?;
        match read_frame(&mut self.stream)? {
            frame @ Frame::DeltaVo { .. } => {
                // Epoch floor checked *before* applying: a stale baseline
                // (however well it verifies — it is a replay of a table
                // state older than one the mirror already verified) must
                // not touch the mirror at all.
                if let Frame::DeltaVo { epoch, .. } = &frame {
                    if *epoch < min_epoch {
                        return Err(RemoteError::UnexpectedFrame(
                            "re-subscribe baseline is older than the verified mirror",
                        ));
                    }
                }
                self.apply_delta_frame(frame, true)?;
                Ok(())
            }
            Frame::Error { code, message } => Err(RemoteError::Server { code, message }),
            _ => Err(RemoteError::UnexpectedFrame("expected initial DeltaVo")),
        }
    }

    /// Reconnects and re-subscribes under the retry budget: each attempt
    /// opens a fresh connection and re-verifies a fresh whole-range
    /// baseline no older than `min_epoch` (nor than the mirror's epoch).
    fn resubscribe(&mut self, min_epoch: u64) -> Result<(), RemoteError> {
        let floor = min_epoch.max(self.epoch);
        let mut attempt = 0;
        loop {
            std::thread::sleep(self.retry.backoff(attempt));
            let result = Self::connect_stream(&self.addrs).and_then(|stream| {
                self.stream = stream;
                self.handshake(floor)
            });
            match result {
                Ok(()) => {
                    self.reconnects += 1;
                    return Ok(());
                }
                Err(e) if e.is_retryable() && attempt + 1 < self.retry.max_retries => {
                    attempt += 1;
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// The epoch the mirror currently reflects.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Deltas verified and applied so far (the initial snapshot counts).
    pub fn deltas_applied(&self) -> u64 {
        self.deltas_applied
    }

    /// Re-subscribes performed (after drops or `ResyncRequired` pushes).
    pub fn reconnects(&self) -> u64 {
        self.reconnects
    }

    /// Server `ResyncRequired` pushes honored with a fresh baseline.
    pub fn resyncs(&self) -> u64 {
        self.resyncs
    }

    /// Cumulative verification accounting (bytes, signatures, hash ops).
    pub fn stats(&self) -> SessionStats {
        self.stats
    }

    /// The verified mirror of the subscribed range, in key order.
    pub fn rows(&self) -> impl Iterator<Item = &Record> {
        self.rows.values().flatten()
    }

    /// Verified keys currently in the subscribed range, in order.
    pub fn keys(&self) -> Vec<i64> {
        self.rows.keys().copied().collect()
    }

    /// Waits up to `timeout` for a pushed delta, verifying and applying
    /// it. Returns the new epoch, or `None` if nothing arrived in time.
    ///
    /// The timeout covers frame *arrival*: it must only elapse while the
    /// connection is quiet (a server that stalls mid-frame desyncs the
    /// stream, and the next read errors — the server is untrusted, so
    /// that is treated like any other protocol failure).
    ///
    /// With a retry policy mounted, two failures self-heal instead of
    /// surfacing:
    ///
    /// * a **retryable** transport failure reconnects and re-subscribes
    ///   (the fresh verified baseline reflects every delta the drop may
    ///   have swallowed — no gap is possible);
    /// * a server [`Frame::ResyncRequired`] push (the delta for some
    ///   epoch could not be shipped) re-subscribes the same way, and the
    ///   fresh baseline must be at least that epoch.
    ///
    /// Both return `Ok(Some(epoch))` for the re-verified baseline. Fatal
    /// errors (server refusals, verification failures) still surface.
    pub fn poll_delta(&mut self, timeout: Duration) -> Result<Option<u64>, RemoteError> {
        match self.poll_delta_once(timeout) {
            Err(e) if e.is_retryable() && self.retry.max_retries > 0 => {
                self.resubscribe(self.epoch)?;
                Ok(Some(self.epoch))
            }
            other => other,
        }
    }

    fn poll_delta_once(&mut self, timeout: Duration) -> Result<Option<u64>, RemoteError> {
        self.stream.set_read_timeout(Some(timeout))?;
        let frame = match read_frame(&mut self.stream) {
            Ok(frame) => frame,
            Err(ProtoError::Io(e))
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                return Ok(None);
            }
            Err(e) => return Err(e.into()),
        };
        match frame {
            frame @ Frame::DeltaVo { .. } => {
                self.apply_delta_frame(frame, false)?;
                Ok(Some(self.epoch))
            }
            Frame::ResyncRequired { sub_id, epoch } if sub_id == self.sub_id => {
                // The server terminated the subscription without shipping
                // the delta for `epoch`. With no retry policy this is as
                // far as a dumb client gets; a self-healing one re-
                // subscribes for a baseline at least that fresh.
                if self.retry.max_retries == 0 {
                    return Err(RemoteError::UnexpectedFrame(
                        "server requires re-subscription (delta could not be shipped)",
                    ));
                }
                self.resyncs += 1;
                self.resubscribe(epoch)?;
                Ok(Some(self.epoch))
            }
            Frame::Error { code, message } => Err(RemoteError::Server { code, message }),
            _ => Err(RemoteError::UnexpectedFrame("expected pushed DeltaVo")),
        }
    }

    /// Cancels the subscription and drains the stream to the server's
    /// empty-pieces ack, verifying and applying any deltas that were
    /// already in flight. After the ack the server pushes nothing further
    /// for this `sub_id`.
    pub fn unsubscribe(mut self) -> Result<(), RemoteError> {
        write_frame(
            &mut self.stream,
            &Frame::Unsubscribe {
                sub_id: self.sub_id,
            },
        )
        .map_err(ProtoError::Io)?;
        loop {
            match read_frame(&mut self.stream)? {
                Frame::DeltaVo { sub_id, pieces, .. }
                    if sub_id == self.sub_id && pieces.is_empty() =>
                {
                    return Ok(());
                }
                frame @ Frame::DeltaVo { .. } => self.apply_delta_frame(frame, false)?,
                Frame::ResyncRequired { sub_id, .. } if sub_id == self.sub_id => {
                    // The server already terminated the subscription on
                    // its own; the goal of unsubscribing is achieved.
                    return Ok(());
                }
                Frame::Error { code, message } => {
                    return Err(RemoteError::Server { code, message })
                }
                _ => return Err(RemoteError::UnexpectedFrame("expected unsubscribe ack")),
            }
        }
    }

    /// Verifies and applies one `DeltaVo` frame. `initial` marks the
    /// registration response, which sets the baseline epoch; pushed
    /// deltas must carry an epoch `>=` the mirror's (equal is the benign
    /// registration race — the same state verified twice — and re-merging
    /// is idempotent; *lower* would be a replayed stale delta).
    fn apply_delta_frame(&mut self, frame: Frame, initial: bool) -> Result<(), RemoteError> {
        let Frame::DeltaVo {
            sub_id,
            epoch,
            pieces,
        } = frame
        else {
            return Err(RemoteError::UnexpectedFrame("expected DeltaVo"));
        };
        if sub_id != self.sub_id {
            return Err(RemoteError::UnexpectedFrame(
                "DeltaVo for a different sub_id",
            ));
        }
        if !initial && epoch < self.epoch {
            return Err(RemoteError::UnexpectedFrame("delta epoch went backwards"));
        }
        for piece in &pieces {
            self.apply_piece(piece)?;
        }
        self.epoch = epoch;
        self.deltas_applied += 1;
        Ok(())
    }

    /// Verifies one piece against the certificate and splices it into the
    /// mirror: everything previously held for `[lo, hi]` is replaced by
    /// the verified rows — completeness of the piece's proof is exactly
    /// what licenses deleting keys the piece no longer carries.
    fn apply_piece(&mut self, piece: &DeltaPiece) -> Result<(), RemoteError> {
        // Precision: a piece outside the subscribed range means the
        // server is pushing data we never asked to see (or trying to
        // overwrite mirror state it has no proof for).
        if piece.lo > piece.hi || piece.lo < self.lo || piece.hi > self.hi {
            return Err(RemoteError::UnexpectedFrame(
                "delta piece outside the subscribed range",
            ));
        }
        let query = SelectQuery::range(KeyRange::closed(piece.lo, piece.hi));
        let ops_before = adp_crypto::hash_ops();
        let start = Instant::now();
        let (rows, report) = verify_select_wire(&self.cert, &query, &piece.result, &piece.vo)?;
        self.stats.queries += 1;
        self.stats.rows_verified += report.matched;
        self.stats.result_bytes += piece.result.len();
        self.stats.vo_bytes += piece.vo.len();
        self.stats.signatures_verified += report.signatures_verified;
        self.stats.hash_ops += adp_crypto::hash_ops().saturating_sub(ops_before);
        self.stats.verify_time += start.elapsed();
        let stale: Vec<i64> = self
            .rows
            .range(piece.lo..=piece.hi)
            .map(|(k, _)| *k)
            .collect();
        for key in stale {
            self.rows.remove(&key);
        }
        for row in rows {
            let key = row.key(&self.cert.schema);
            self.rows.entry(key).or_default().push(row);
        }
        Ok(())
    }
}
