//! The paper's analytic cost model (Section 6, Table 1, formulas (4), (5)).
//!
//! These functions regenerate the exact curves of **Figure 9** (user
//! traffic overhead) and **Figure 10** (user computation overhead) with the
//! paper's constants, so the bench harness can print the paper's series
//! next to values *measured* from this implementation.
//!
//! Formula (4) — authentication traffic to the user:
//!
//! ```text
//! M_user = [m + 4 + 3(n-a+1) + ⌈log₂ m⌉] · M_digest + M_sign
//! ```
//!
//! Formula (5) — user verification cost:
//!
//! ```text
//! C_user = [2(n-a+1)(B(m+1)+2) + B(m+1) + ⌈log₂ m⌉ + 3] · C_hash + C_sign
//! ```
//!
//! With the defaults (`B = 2`, `m = 32`, `C_hash = 50 µs`,
//! `C_sign = 5 ms`) formula (5) reduces to the paper's
//! `C_user = 6.8·(n-a+1) + 8.7 ms` (Section 6.2).

/// Table 1 cost parameters (paper defaults).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CostParams {
    /// Cost of one hash operation, µs (Table 1: 50).
    pub c_hash_us: f64,
    /// Cost of one signature verification, ms (Table 1: 5).
    pub c_sign_ms: f64,
    /// Digest size in bits (Table 1: 128).
    pub m_digest_bits: u32,
    /// Signature size in bits (Table 1: 1024).
    pub m_sign_bits: u32,
}

impl Default for CostParams {
    fn default() -> Self {
        CostParams {
            c_hash_us: 50.0,
            c_sign_ms: 5.0,
            m_digest_bits: 128,
            m_sign_bits: 1024,
        }
    }
}

/// `⌈log₂ m⌉` as used by the paper's formulas.
pub fn ceil_log2(m: u32) -> u32 {
    assert!(m > 0);
    32 - (m - 1).leading_zeros()
}

/// The paper's `m = ⌈log_B (U - L)⌉` for a domain width.
pub fn paper_m(base: u32, width: u64) -> u32 {
    assert!(base >= 2);
    let mut m = 0u32;
    let mut cap: u128 = 1;
    while cap < width as u128 {
        cap *= base as u128;
        m += 1;
    }
    m
}

/// Formula (4): total authentication bytes sent to the user for a result
/// of `q` entries.
pub fn muser_bytes(params: &CostParams, m: u32, q: u64) -> f64 {
    let digests = m as u64 + 4 + 3 * q + ceil_log2(m) as u64;
    digests as f64 * (params.m_digest_bits as f64 / 8.0) + params.m_sign_bits as f64 / 8.0
}

/// Figure 9's y-axis: traffic overhead (%) = `M_user / (q · M_r) · 100`.
pub fn traffic_overhead_pct(params: &CostParams, m: u32, q: u64, record_bytes: u64) -> f64 {
    100.0 * muser_bytes(params, m, q) / (q * record_bytes) as f64
}

/// Formula (5)'s bracketed term: the number of hash operations the user
/// performs for a result of `q` entries.
pub fn cuser_hashes(base: u32, m: u32, q: u64) -> u64 {
    let bm1 = (base as u64) * (m as u64 + 1);
    2 * q * (bm1 + 2) + bm1 + ceil_log2(m) as u64 + 3
}

/// Formula (5): user verification cost in milliseconds.
pub fn cuser_ms(params: &CostParams, base: u32, m: u32, q: u64) -> f64 {
    cuser_hashes(base, m, q) as f64 * params.c_hash_us / 1_000.0 + params.c_sign_ms
}

/// One row of the Figure 9 reproduction.
#[derive(Clone, Debug)]
pub struct Fig9Row {
    pub record_bytes: u64,
    /// Overhead % per result size, aligned with [`FIG9_RESULT_SIZES`].
    pub overhead_pct: Vec<f64>,
}

/// The |Q| series of Figure 9.
pub const FIG9_RESULT_SIZES: [u64; 5] = [1, 2, 5, 10, 100];

/// Regenerates Figure 9 (analytic curves): traffic overhead vs record size
/// for each result size. `m` defaults to 32 (4-byte keys, B = 2).
pub fn figure9(params: &CostParams, m: u32) -> Vec<Fig9Row> {
    let mut rows = Vec::new();
    let mut mr = 64u64;
    while mr <= 2048 {
        rows.push(Fig9Row {
            record_bytes: mr,
            overhead_pct: FIG9_RESULT_SIZES
                .iter()
                .map(|&q| traffic_overhead_pct(params, m, q, mr))
                .collect(),
        });
        mr += 64;
    }
    rows
}

/// One row of the Figure 10 reproduction.
#[derive(Clone, Debug)]
pub struct Fig10Row {
    pub base: u32,
    pub m: u32,
    /// `C_user` (ms) per result size, aligned with [`FIG10_RESULT_SIZES`].
    pub cuser_ms: Vec<f64>,
}

/// The result-size series of Figure 10.
pub const FIG10_RESULT_SIZES: [u64; 3] = [1, 5, 10];

/// Regenerates Figure 10 (analytic curves): `C_user` vs base `B` for a
/// 32-bit key domain; `m` adapts to `B` as in the paper.
pub fn figure10(params: &CostParams) -> Vec<Fig10Row> {
    (2u32..=10)
        .map(|base| {
            let m = paper_m(base, 1u64 << 32);
            Fig10Row {
                base,
                m,
                cuser_ms: FIG10_RESULT_SIZES
                    .iter()
                    .map(|&q| cuser_ms(params, base, m, q))
                    .collect(),
            }
        })
        .collect()
}

/// Section 6.2's closed form at `B = 2`, `m = 32`: the (slope, intercept)
/// of `C_user = slope · q + intercept` in milliseconds.
pub fn sec62_linear_form(params: &CostParams) -> (f64, f64) {
    let base = 2u32;
    let m = 32u32;
    let per_entry = 2.0 * (base as f64 * (m as f64 + 1.0) + 2.0) * params.c_hash_us / 1_000.0;
    let constant = (base as f64 * (m as f64 + 1.0) + ceil_log2(m) as f64 + 3.0) * params.c_hash_us
        / 1_000.0
        + params.c_sign_ms;
    (per_entry, constant)
}

/// Analytic VO size of the Devanbu et al. \[10\] Merkle-tree baseline for a
/// result of `q` entries over a table of `n` records: the two boundary
/// *records* (full tuples of `record_bytes`), plus ~`2·⌈log₂ n⌉` path
/// digests, plus the signed root digest.
pub fn devanbu_vo_bytes(params: &CostParams, n: u64, q: u64, record_bytes: u64) -> f64 {
    let _ = q;
    let path_digests = 2 * ceil_log2(n.max(2) as u32) as u64;
    2.0 * record_bytes as f64
        + path_digests as f64 * (params.m_digest_bits as f64 / 8.0)
        + params.m_sign_bits as f64 / 8.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ceil_log2_values() {
        assert_eq!(ceil_log2(1), 0);
        assert_eq!(ceil_log2(2), 1);
        assert_eq!(ceil_log2(3), 2);
        assert_eq!(ceil_log2(32), 5);
        assert_eq!(ceil_log2(33), 6);
    }

    #[test]
    fn paper_m_values() {
        // "With B = 2, m = log_B 2^32 = 32 if the key is an integer."
        assert_eq!(paper_m(2, 1u64 << 32), 32);
        assert_eq!(paper_m(10, 100_000), 5);
        assert_eq!(paper_m(3, 1u64 << 32), 21);
    }

    #[test]
    fn sec62_closed_form_matches_paper() {
        // "formula (5) reduces to C_user = 6.8(n-a+1) + 8.7 msec"
        let (slope, intercept) = sec62_linear_form(&CostParams::default());
        assert!((slope - 6.8).abs() < 0.05, "slope {slope}");
        assert!((intercept - 8.7).abs() < 0.05, "intercept {intercept}");
    }

    #[test]
    fn sec62_absolute_numbers() {
        // "C_user is roughly 15.5 msec, 689 msec and 6.81 sec for result
        // size of 1, 100 and 1000 records."
        let p = CostParams::default();
        let m = 32;
        assert!((cuser_ms(&p, 2, m, 1) - 15.5).abs() < 0.1);
        assert!((cuser_ms(&p, 2, m, 100) - 689.0).abs() < 1.0);
        assert!((cuser_ms(&p, 2, m, 1000) - 6_810.0).abs() < 10.0);
    }

    #[test]
    fn figure10_minimum_between_2_and_3() {
        // "It can be shown that this occurs at 2 < B < 3": among integer
        // bases, B = 2 and B = 3 must beat B ≥ 4 and B = 10 must be worst.
        let rows = figure10(&CostParams::default());
        let at = |b: u32| {
            rows.iter().find(|r| r.base == b).unwrap().cuser_ms[2] // q = 10
        };
        let best = (2..=10).map(at).fold(f64::INFINITY, f64::min);
        assert!(at(2) <= best + 0.2, "B=2 near-optimal");
        assert!(at(10) > at(2), "large B is worse");
        assert!(at(10) > at(3), "large B is worse than 3");
    }

    #[test]
    fn figure9_overhead_decreases_with_q_and_mr() {
        let rows = figure9(&CostParams::default(), 32);
        // Larger records → lower overhead.
        let col = |mr: u64, qi: usize| {
            rows.iter()
                .find(|r| r.record_bytes == mr)
                .unwrap()
                .overhead_pct[qi]
        };
        assert!(col(64, 0) > col(2048, 0));
        // Larger result → lower overhead (aggregation amortized).
        assert!(col(512, 0) > col(512, 2));
        assert!(col(512, 2) > col(512, 4));
        // The reduction stabilizes: going 10 → 100 changes little.
        let delta_small = col(512, 1) - col(512, 2); // 2 → 5
        let delta_large = col(512, 3) - col(512, 4); // 10 → 100
        assert!(delta_small > delta_large);
    }

    #[test]
    fn muser_matches_formula_by_hand() {
        // m=32: digests = 32 + 4 + 3q + 5 = 41 + 3q; bytes = ·16 + 128.
        let p = CostParams::default();
        assert_eq!(muser_bytes(&p, 32, 1), (44.0 * 16.0) + 128.0);
        assert_eq!(muser_bytes(&p, 32, 10), (71.0 * 16.0) + 128.0);
    }

    #[test]
    fn cuser_hashes_by_hand() {
        // B=2, m=32, q=1: 2(66+2) + 66 + 5 + 3 = 210.
        assert_eq!(cuser_hashes(2, 32, 1), 210);
        // q=10: 20·68 + 74 = 1434.
        assert_eq!(cuser_hashes(2, 32, 10), 1434);
    }

    #[test]
    fn devanbu_grows_with_table_size() {
        let p = CostParams::default();
        assert!(
            devanbu_vo_bytes(&p, 1_000_000, 10, 256) > devanbu_vo_bytes(&p, 1_000, 10, 256),
            "Devanbu VO grows logarithmically with the database"
        );
    }
}
